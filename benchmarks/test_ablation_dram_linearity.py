"""Ablation A: is the linear queueing assumption microarchitecturally
sound?

The analytical model's MTL-selection proof rests on
``T_mb = T_ml + b * T_ql`` — per-request latency growing linearly with
the number of concurrent streaming tasks.  The paper validates this
implicitly on real hardware; this reproduction validates it against
its own bank-level DRAM simulator (FR-FCFS controller, row buffers,
bank timing, channel bus).

Asserted findings:

* mean request latency grows monotonically with stream concurrency;
* a linear fit over concurrency 1..8 explains >95% of the variance;
* the slope (our ``T_ql``) is positive and the intercept (our
  ``T_ml``) is near the device's unloaded access time;
* adding a second channel roughly halves the queueing slope, the
  assumption behind the 2-DIMM machine model.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import linear_fit, render_table
from repro.memory.dram import measure_latency_curve
from repro.memory.timing import DDR3_1066

CONCURRENCIES = [1, 2, 3, 4, 5, 6, 7, 8]


def regenerate():
    single = measure_latency_curve(CONCURRENCIES, requests_per_stream=1024)
    dual = measure_latency_curve(
        CONCURRENCIES, requests_per_stream=1024, channels=2
    )
    return single, dual


@pytest.mark.benchmark(group="ablation-dram")
def test_ablation_dram_latency_is_linear_in_concurrency(benchmark):
    single, dual = run_once(benchmark, regenerate)

    fit_single = linear_fit(
        CONCURRENCIES, [single[c].mean_latency for c in CONCURRENCIES]
    )
    fit_dual = linear_fit(
        CONCURRENCIES, [dual[c].mean_latency for c in CONCURRENCIES]
    )

    rows = [
        [
            str(c),
            f"{single[c].mean_latency * 1e9:.1f} ns",
            f"{single[c].row_hit_rate:.2%}",
            f"{dual[c].mean_latency * 1e9:.1f} ns",
        ]
        for c in CONCURRENCIES
    ]
    table = render_table(
        ["streams", "1-ch latency", "1-ch row hits", "2-ch latency"], rows
    )
    summary = (
        f"1-ch fit: L(c) = {fit_single.intercept * 1e9:.1f} ns + "
        f"c * {fit_single.slope * 1e9:.1f} ns  (R^2 = {fit_single.r_squared:.4f})\n"
        f"2-ch fit: L(c) = {fit_dual.intercept * 1e9:.1f} ns + "
        f"c * {fit_dual.slope * 1e9:.1f} ns  (R^2 = {fit_dual.r_squared:.4f})"
    )
    save_artifact("ablation_dram_linearity", table + "\n\n" + summary)

    # Monotone growth.
    latencies = [single[c].mean_latency for c in CONCURRENCIES]
    assert latencies == sorted(latencies)

    # Linear to >95% of variance — the T_ml + b*T_ql decomposition.
    assert fit_single.r_squared > 0.95
    assert fit_single.slope > 0

    # Intercept positive and of the unloaded device latency's order
    # (the fit intercept sits below the raw row-hit time because bank
    # preparation overlaps the previous burst).
    unloaded = DDR3_1066.row_hit_latency
    assert 0 < fit_single.intercept < 4 * unloaded

    # A second channel dilutes queueing: the slope drops by ~2x.
    assert fit_dual.slope < 0.7 * fit_single.slope
