"""Ablation C: is the coarse IdleBound trigger actually necessary?

Section IV-B argues against the naive policy of re-selecting whenever
the memory-to-compute ratio moves: "not each distinctive memory-to-
compute ratio maps to different target MTLs", so a fine-grained
trigger "may lead to unnecessary triggering of MTL selection and hurt
overall performance".

This ablation runs a workload whose phases change *ratio* but not
*IdleBound* (ratios 0.45 / 0.60 / 0.50 / 0.55, all with IdleBound = 2,
so each re-selection probes the genuinely expensive MTL = 1 where
cores idle), comparing the shipped IdleBound-gated throttler against a
naive variant that re-selects on any >5% ratio movement.  Asserted:

* the IdleBound policy performs exactly one selection across all four
  phases (they share IdleBound = 2);
* the naive policy re-selects at (nearly) every phase change;
* the naive policy's extra probing costs real time: its makespan is
  worse, and its probe share is a multiple of the gated policy's.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_percent, format_speedup, render_table
from repro.core import DynamicThrottlingPolicy, conventional_policy
from repro.core.phase import PairSample
from repro.core.selection import MtlSelector
from repro.sim import i7_860, simulate
from repro.stream.program import StreamProgram, build_phase
from repro.workloads.base import REFERENCE_SOLO_LATENCY


class NaiveRatioTriggerPolicy(DynamicThrottlingPolicy):
    """The throttler with its coarse trigger replaced by a fine one.

    Re-selects whenever the window's T_m/T_c ratio moves more than
    ``ratio_threshold`` relative to the last selection's ratio, even
    when the IdleBound (and therefore the right MTL) is unchanged.
    """

    def __init__(self, context_count: int, window_pairs: int = 16,
                 ratio_threshold: float = 0.05) -> None:
        super().__init__(context_count=context_count, window_pairs=window_pairs)
        self._ratio_threshold = ratio_threshold
        self._reference_ratio = None

    @property
    def name(self) -> str:
        return "naive-ratio-trigger"

    def _monitor(self, sample: PairSample, now: float) -> None:
        window = self._detector.observe(sample)
        if window is None:
            return
        ratio = window.t_m / window.t_c if window.t_c > 0 else float("inf")
        reference = self._reference_ratio
        changed = (
            reference is None
            or abs(ratio - reference) / reference > self._ratio_threshold
        )
        if not changed:
            return
        self._reference_ratio = ratio
        selector = MtlSelector(self._model)
        selector.provide(self._mtl, window.t_m, window.t_c)
        self._pending_trigger_bound = window.idle_bound
        self._finish_or_continue_selection(selector, now)


def same_bound_program() -> StreamProgram:
    """Four phases, four ratios, one IdleBound (all in (1/3, 1])."""
    t_m1 = 8192 * REFERENCE_SOLO_LATENCY
    ratios = [0.45, 0.60, 0.50, 0.55]
    return StreamProgram(
        "ratio-wobble",
        [
            build_phase(f"p{i}", i, 96, 8192, t_m1 / r)
            for i, r in enumerate(ratios)
        ],
    )


def regenerate():
    program = same_bound_program()
    machine = i7_860()
    baseline = simulate(program, conventional_policy(4), machine).makespan

    gated_policy = DynamicThrottlingPolicy(context_count=4)
    gated = simulate(program, gated_policy, machine)

    naive_policy = NaiveRatioTriggerPolicy(context_count=4)
    naive = simulate(program, naive_policy, machine)

    return {
        "gated": {
            "speedup": baseline / gated.makespan,
            "selections": len(gated_policy.selections),
            "probe_share": gated.probe_task_time_fraction(),
        },
        "naive": {
            "speedup": baseline / naive.makespan,
            "selections": len(naive_policy.selections),
            "probe_share": naive.probe_task_time_fraction(),
        },
    }


@pytest.mark.benchmark(group="ablation-phase")
def test_ablation_idlebound_gating_pays_off(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = [
        [
            label,
            format_speedup(o["speedup"]),
            str(o["selections"]),
            format_percent(o["probe_share"]),
        ]
        for label, o in outcomes.items()
    ]
    save_artifact(
        "ablation_phase_detection",
        render_table(
            ["Trigger", "Speedup", "Selections", "Probe share"], rows
        ),
    )

    gated, naive = outcomes["gated"], outcomes["naive"]
    # One selection suffices when the IdleBound never moves.
    assert gated["selections"] == 1
    # The naive trigger re-selects on the ratio wobble.
    assert naive["selections"] >= 3
    # And pays for it.
    assert naive["probe_share"] > 2 * gated["probe_share"]
    assert gated["speedup"] > naive["speedup"]
