"""Table III: memory-to-compute ratios of SIFT's parallel functions.

Runs the full 14-phase SIFT trace at MTL=1 and reports the per-phase
``T_m1/T_c``, checking every row against the published table.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_percent, render_table
from repro.runtime import measure_phase_ratios
from repro.workloads import SIFT_FUNCTION_RATIOS, SiftWorkload


def regenerate_table3():
    # A scaled-down pair count keeps the MTL=1 run quick; the ratio is
    # a per-task property and does not depend on the pair count.
    program = SiftWorkload(pair_scale=0.25).build()
    return measure_phase_ratios(program)


@pytest.mark.benchmark(group="table3")
def test_table3_sift_ratios(benchmark):
    measured = run_once(benchmark, regenerate_table3)

    rows = [
        [name, format_percent(paper_value), format_percent(measured[name])]
        for name, paper_value in SIFT_FUNCTION_RATIOS.items()
    ]
    save_artifact(
        "table3_sift_ratios",
        render_table(["Function", "paper T_m1/T_c", "measured"], rows),
    )

    for name, paper_value in SIFT_FUNCTION_RATIOS.items():
        assert measured[name] == pytest.approx(paper_value, rel=1e-3), name
