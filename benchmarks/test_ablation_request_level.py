"""Ablation G: rate-based machine vs request-level co-simulation.

The strongest internal validation the reproduction offers: run the
same workloads on (a) the rate-based simulator whose contention law
was *fitted from* the bank-level DRAM model
(:func:`~repro.memory.calibration.calibrate_linear_model`) and (b) the
request-level detailed simulator where every cache line is an event
and contention emerges from bank/bus state.  If the abstraction stack
is sound, the two machines must agree on the things the paper cares
about: who wins, which MTL is best, and roughly how much is won.

Asserted per workload ratio:

* both machines see throttling gains at moderate ratios;
* the best static MTL matches within one step;
* best-static speedups agree within 6 points.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.memory.calibration import calibrate_linear_model
from repro.sim.detailed import DetailedSimulator
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram, build_phase
from repro.units import kibibytes

REQUESTS = kibibytes(64) // 64  # small tiles keep the event count sane
PAIRS = 24
#: Compute times spanning compute-bound to memory-bound regimes at the
#: detailed machine's ~20 ns/request solo service time.
COMPUTE_TIMES = [70e-6, 30e-6, 12e-6]


def make_program(t_c: float) -> StreamProgram:
    return StreamProgram(
        f"tc-{t_c:.0e}", [build_phase("p", 0, PAIRS, REQUESTS, t_c)]
    )


def best_static(run):
    """(best_mtl, speedup_over_conventional) under a runner callable."""
    baseline = run(conventional_policy(4)).makespan
    by_mtl = {m: run(FixedMtlPolicy(m)).makespan for m in (1, 2, 3, 4)}
    best = min(by_mtl, key=lambda m: (by_mtl[m], m))
    return best, baseline / by_mtl[best]


def regenerate():
    calibration = calibrate_linear_model(requests_per_stream=512)
    rate_machine = i7_860(contention=calibration.model)

    out = {}
    for t_c in COMPUTE_TIMES:
        program = make_program(t_c)
        detailed_mtl, detailed_speedup = best_static(
            lambda policy: DetailedSimulator().run(program, policy)
        )
        rate_mtl, rate_speedup = best_static(
            lambda policy: Simulator(rate_machine).run(program, policy)
        )
        out[t_c] = {
            "detailed": (detailed_mtl, detailed_speedup),
            "rate": (rate_mtl, rate_speedup),
        }
    return out


@pytest.mark.benchmark(group="ablation-request-level")
def test_ablation_request_level_agreement(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = []
    for t_c, o in outcomes.items():
        rows.append(
            [
                f"{t_c * 1e6:.0f} us",
                f"{format_speedup(o['detailed'][1])} ({o['detailed'][0]})",
                f"{format_speedup(o['rate'][1])} ({o['rate'][0]})",
            ]
        )
    save_artifact(
        "ablation_request_level",
        render_table(
            ["compute time", "request-level (S-MTL)",
             "rate-based, DRAM-calibrated (S-MTL)"],
            rows,
        ),
    )

    for t_c, o in outcomes.items():
        detailed_mtl, detailed_speedup = o["detailed"]
        rate_mtl, rate_speedup = o["rate"]
        assert abs(detailed_mtl - rate_mtl) <= 1, t_c
        assert detailed_speedup == pytest.approx(rate_speedup, abs=0.06), t_c
    # At least one point must show a solid gain on both machines.
    assert any(
        o["detailed"][1] > 1.05 and o["rate"][1] > 1.05
        for o in outcomes.values()
    )
