"""Figures 4 and 5: the scheduling situations that motivate MTL tuning.

These figures are illustrations rather than measurements, but they
make falsifiable claims about schedule shape, which this bench
verifies on real simulations and renders as gantt charts:

* Figure 4 (memory-heavy workload): MTL=2 beats MTL=4 (contention)
  and MTL=1 (cores idle waiting for the one memory slot);
* Figure 5 (compute-heavy workload): MTL=1 is best — compute work
  hides the serialised memory tasks completely;
* throttled schedules show idle gaps at over-throttled MTLs (the
  circles in the paper's figures), visible as context idle time.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.sim import FixedMtlPolicy, i7_860, simulate
from repro.sim.gantt import render_gantt
from repro.workloads import synthetic_from_ratio

MEMORY_HEAVY_RATIO = 0.8   # Figure 4's regime
COMPUTE_HEAVY_RATIO = 0.25  # Figure 5's regime


def run_schedules(ratio: float):
    program = synthetic_from_ratio(ratio, pairs=32)
    machine = i7_860()
    return {
        mtl: simulate(program, FixedMtlPolicy(mtl), machine)
        for mtl in (1, 2, 3, 4)
    }


@pytest.mark.benchmark(group="fig4-5")
def test_fig4_memory_heavy_prefers_mtl2(benchmark):
    results = run_once(benchmark, lambda: run_schedules(MEMORY_HEAVY_RATIO))
    art = "\n\n".join(render_gantt(results[mtl], width=68) for mtl in (4, 2, 1))
    save_artifact("fig4_memory_heavy_schedules", art)

    makespans = {mtl: r.makespan for mtl, r in results.items()}
    # Figure 4's ordering: MTL=2 best, MTL=1 worst (worse than MTL=4).
    assert makespans[2] < makespans[4]
    assert makespans[1] > makespans[4]

    # Over-throttling shows up as idle cores (the circled gaps).
    assert results[1].idle_time() > results[2].idle_time()


@pytest.mark.benchmark(group="fig4-5")
def test_fig5_compute_heavy_prefers_mtl1(benchmark):
    results = run_once(benchmark, lambda: run_schedules(COMPUTE_HEAVY_RATIO))
    art = "\n\n".join(render_gantt(results[mtl], width=68) for mtl in (4, 1))
    save_artifact("fig5_compute_heavy_schedules", art)

    makespans = {mtl: r.makespan for mtl, r in results.items()}
    # Figure 5's claim: full serialisation wins when compute dominates.
    assert makespans[1] == min(makespans.values())

    # And it wins without meaningful idle cost: utilisation at MTL=1
    # stays high because compute hides the memory serialisation.
    assert results[1].utilization() > 0.9
