"""Figure 16: per-function speedup and D-MTL inside SIFT.

The paper evaluates the main parallel functions of SIFT individually
and shows the dynamic mechanism selecting a different D-MTL per
function — MTL=2 for the memory-hungry ECONVOLVE (70.04%), MTL=1 for
the compute-dominated ECONVOLVE2 (7.83%) — with speedups close to
Offline Exhaustive Search (whose MTL choices coincide; the small gap
is the monitoring cost of the dynamic runs).
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.core import offline_exhaustive_search
from repro.runtime import compare_policies, paper_policy_suite
from repro.workloads import SIFT_FUNCTION_RATIOS, sift_function

#: The "main parallel functions" of Figure 16 — one per distinct
#: behaviour class (the ECONVOLVE3/4 variants repeat their class).
FUNCTIONS = [
    "COPYUP",
    "ECONVOLVE",
    "ECONVOLVE2",
    "ECONVOLVE3-0",
    "ECONVOLVE4-0",
    "DOG",
]


def regenerate_fig16():
    out = {}
    for function in FUNCTIONS:
        # Standalone functions get the pair count of repeated pyramid
        # invocations (each function runs once per octave per image in
        # SIFT proper), so monitoring amortises as it does in the paper.
        program = sift_function(function, pairs=512)
        offline = offline_exhaustive_search(program)
        comparison = compare_policies(
            program,
            {"Dynamic Throttling": paper_policy_suite()["Dynamic Throttling"]},
        )
        dynamic = comparison.outcome("Dynamic Throttling")
        out[function] = {
            "offline_mtl": offline.best_mtl,
            "offline_speedup": offline.speedup_over(4),
            "dynamic_mtl": dynamic.selected_mtl,
            "dynamic_speedup": dynamic.speedup,
        }
    return out


@pytest.mark.benchmark(group="fig16")
def test_fig16_sift_phases(benchmark):
    outcomes = run_once(benchmark, regenerate_fig16)

    rows = [
        [
            function,
            f"{SIFT_FUNCTION_RATIOS[function] * 100:.2f}%",
            f"{format_speedup(o['offline_speedup'])} ({o['offline_mtl']})",
            f"{format_speedup(o['dynamic_speedup'])} ({o['dynamic_mtl']})",
        ]
        for function, o in outcomes.items()
    ]
    save_artifact(
        "fig16_sift_phases",
        render_table(
            ["Function", "T_m1/T_c", "Offline (MTL)", "Dynamic (MTL)"], rows
        ),
    )

    # Section VI-D1's worked examples.
    assert outcomes["ECONVOLVE"]["dynamic_mtl"] == 2
    assert outcomes["ECONVOLVE2"]["dynamic_mtl"] == 1

    for function, o in outcomes.items():
        # "The MTL values are the same for both Offline Exhaustive
        # Search and the proposed dynamic approach."
        assert o["dynamic_mtl"] == o["offline_mtl"], function
        # "There are slight speedup differences" — monitoring cost.
        assert o["dynamic_speedup"] == pytest.approx(
            o["offline_speedup"], abs=0.04
        ), function
        assert o["dynamic_speedup"] > 1.0, function
