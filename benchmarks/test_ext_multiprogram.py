"""Extension: a global MTL gate over a multiprogram mix.

The paper throttles one application.  The MTL gate, however, is a
machine-wide resource limit, and the contention it fights is worst
when *independent* applications share the memory system (the scenario
the paper's related-work baselines target).  This bench co-schedules
two realistic workloads — memory-hungry streamcluster next to
compute-bound dft — under the conventional schedule and under a global
static throttle, and reports mix makespan plus per-program slowdowns
relative to solo runs.

Asserted (and worth knowing):

* the FIFO work queue is deeply unfair: the first-enqueued program
  (dft) runs at near-solo speed while streamcluster absorbs the whole
  contention penalty (>1.5x slowdown);
* a global MTL=2 improves the mix makespan over the conventional
  schedule (the single-program result carries over);
* the throttle also improves *fairness*: the most-slowed program's
  slowdown shrinks, and the favoured program loses nothing (it even
  gains — its memory requests stop queueing behind streamcluster's).
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.sim import Simulator, co_schedule, i7_860
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.workloads import dft, streamcluster


def regenerate():
    machine = i7_860()
    mix = [dft(), streamcluster()]
    solo = {
        program.name: Simulator(machine)
        .run(program, conventional_policy(4))
        .makespan
        for program in mix
    }

    out = {"solo": solo, "mixes": {}}
    for label, policy_factory in (
        ("conventional", lambda: conventional_policy(4)),
        ("global MTL=2", lambda: FixedMtlPolicy(2)),
    ):
        result = co_schedule([dft(), streamcluster()], policy_factory(), machine)
        out["mixes"][label] = {
            "makespan": result.combined.makespan,
            "slowdowns": {
                name: result.slowdown(name, solo[name]) for name in solo
            },
        }
    return out


@pytest.mark.benchmark(group="ext-multiprogram")
def test_ext_multiprogram(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = []
    for label, mix in outcomes["mixes"].items():
        for name, slowdown in mix["slowdowns"].items():
            rows.append(
                [label, name, f"{slowdown:.3f}x",
                 format_speedup(
                     outcomes["mixes"]["conventional"]["makespan"]
                     / mix["makespan"]
                 )]
            )
    save_artifact(
        "ext_multiprogram",
        render_table(
            ["Mix policy", "Program", "Slowdown vs solo", "Mix speedup"], rows
        ),
    )

    conventional = outcomes["mixes"]["conventional"]
    throttled = outcomes["mixes"]["global MTL=2"]

    # FIFO unfairness: streamcluster pays heavily, dft barely at all.
    assert conventional["slowdowns"]["SC_d128"] > 1.3
    assert conventional["slowdowns"]["dft"] == pytest.approx(1.0, abs=0.02)

    # The global throttle improves the mix...
    assert throttled["makespan"] < conventional["makespan"]

    # ...reduces the worst per-program slowdown...
    assert max(throttled["slowdowns"].values()) < max(
        conventional["slowdowns"].values()
    )

    # ...and costs the favoured program nothing.
    assert throttled["slowdowns"]["dft"] <= conventional["slowdowns"]["dft"]
