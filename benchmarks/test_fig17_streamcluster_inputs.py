"""Figure 17: MTL adaptation to program input sets.

Streamcluster's memory-to-compute ratio depends on the input array
dimensionality.  The paper runs six instances and shows the dynamic
mechanism selecting different MTLs per input: D-MTL=1 where all cores
are busy at MTL=1 (e.g. d32 at 24.59% <= 33%) and D-MTL=2 where
MTL=1 would idle cores (e.g. d36 at 54.13%), always tracking Offline
Exhaustive Search.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.core import offline_exhaustive_search
from repro.runtime import compare_policies, paper_policy_suite
from repro.workloads import STREAMCLUSTER_RATIOS, streamcluster

DIMENSIONS = sorted(STREAMCLUSTER_RATIOS, reverse=True)  # 128 .. 20


def regenerate_fig17():
    out = {}
    for dimension in DIMENSIONS:
        program = streamcluster(dimension)
        offline = offline_exhaustive_search(program)
        comparison = compare_policies(
            program,
            {"Dynamic Throttling": paper_policy_suite()["Dynamic Throttling"]},
        )
        dynamic = comparison.outcome("Dynamic Throttling")
        out[dimension] = {
            "ratio": STREAMCLUSTER_RATIOS[dimension],
            "offline_mtl": offline.best_mtl,
            "offline_speedup": offline.speedup_over(4),
            "dynamic_mtl": dynamic.selected_mtl,
            "dynamic_speedup": dynamic.speedup,
        }
    return out


@pytest.mark.benchmark(group="fig17")
def test_fig17_streamcluster_inputs(benchmark):
    outcomes = run_once(benchmark, regenerate_fig17)

    rows = [
        [
            f"SC_d{dim}",
            f"{o['ratio'] * 100:.2f}%",
            f"{format_speedup(o['offline_speedup'])} ({o['offline_mtl']})",
            f"{format_speedup(o['dynamic_speedup'])} ({o['dynamic_mtl']})",
        ]
        for dim, o in outcomes.items()
    ]
    save_artifact(
        "fig17_streamcluster_inputs",
        render_table(
            ["Instance", "T_m1/T_c", "Offline (MTL)", "Dynamic (MTL)"], rows
        ),
    )

    # Section VI-D2's worked examples: d32 -> D-MTL 1, d36 -> D-MTL 2.
    assert outcomes[32]["dynamic_mtl"] == 1
    assert outcomes[36]["dynamic_mtl"] == 2

    for dim, o in outcomes.items():
        # The IdleBound rule: ratio <= 1/3 selects MTL 1, above it the
        # selector moves to MTL 2 for every studied instance.
        expected = 1 if o["ratio"] <= 1 / 3 else 2
        assert o["dynamic_mtl"] == expected, dim
        # Dynamic tracks offline per instance.
        assert o["dynamic_speedup"] == pytest.approx(
            o["offline_speedup"], abs=0.03
        ), dim
        assert o["dynamic_speedup"] > 1.0, dim
