"""Ablation D: closed-form vs microarchitecturally sampled memory.

The headline experiments run on the calibrated closed-form law
``L(c) = T_ml + c*T_ql``.  This ablation swaps in the
:class:`~repro.memory.empirical.EmpiricalContentionModel`, whose
latency table is *sampled from the bank-level FR-FCFS DRAM simulator*
(no closed form anywhere), and re-runs the mechanism end to end.

Asserted: the decisions and the gains survive the swap — the dynamic
throttler picks the same D-MTL family and still beats the conventional
schedule — demonstrating that the reproduction's conclusions are not
an artifact of assuming the very law the paper's model is built on.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.core import DynamicThrottlingPolicy, conventional_policy
from repro.memory.empirical import EmpiricalContentionModel
from repro.sim import Simulator, i7_860
from repro.workloads import streamcluster, synthetic_from_ratio

RATIOS = [0.2, 0.5, 1.5]


def regenerate():
    empirical = EmpiricalContentionModel(
        max_concurrency=8, requests_per_stream=512, channels_measured=(1,)
    )
    machines = {
        "closed-form": i7_860(),
        "empirical (bank-level sampled)": i7_860(contention=empirical),
    }
    out = {}
    for label, machine in machines.items():
        out[label] = {}
        programs = [synthetic_from_ratio(r, pairs=96) for r in RATIOS]
        programs.append(streamcluster())
        for program in programs:
            conventional = Simulator(machine).run(
                program, conventional_policy(machine.context_count)
            )
            policy = DynamicThrottlingPolicy(
                context_count=machine.context_count
            )
            throttled = Simulator(machine).run(program, policy)
            out[label][program.name] = {
                "speedup": conventional.makespan / throttled.makespan,
                "mtl": throttled.dominant_mtl(),
            }
    return out


@pytest.mark.benchmark(group="ablation-empirical")
def test_ablation_empirical_memory(benchmark):
    outcomes = run_once(benchmark, regenerate)

    workloads = list(next(iter(outcomes.values())))
    rows = []
    for name in workloads:
        row = [name]
        for label in outcomes:
            o = outcomes[label][name]
            row.append(f"{format_speedup(o['speedup'])} ({o['mtl']})")
        rows.append(row)
    save_artifact(
        "ablation_empirical_memory",
        render_table(["Workload"] + list(outcomes), rows),
    )

    closed = outcomes["closed-form"]
    empirical = outcomes["empirical (bank-level sampled)"]
    for name in workloads:
        # The mechanism keeps working on sampled physics.
        assert empirical[name]["speedup"] > 1.0, name
        # And lands on the same throttle (exact D-MTL equality for the
        # synthetic points; SC sits near a region boundary, so allow
        # one step).
        assert abs(empirical[name]["mtl"] - closed[name]["mtl"]) <= 1, name
