"""Figure 14: realistic-workload speedups under the three policies.

The paper's headline evaluation: dft, streamcluster (native), and
SIFT on the 4-thread, 1-DIMM i7-860, comparing Offline Exhaustive
Search, the dynamic throttling mechanism, and Online Exhaustive
Search — all against the conventional schedule.  Published findings
asserted here:

* the dynamic mechanism improves every workload, with a geometric
  mean around 12% (shape target: solidly positive and the largest
  improvements on streamcluster);
* dynamic is close to (within a few percent of) offline exhaustive
  search despite needing no offline runs;
* dynamic beats online exhaustive search on average (paper: by ~5%);
* dynamic's monitoring overhead is far below online's (paper: 0.04%
  vs 4.87% on streamcluster);
* selected MTLs: D-MTL = 1 for dft (ratio 12.77% <= 33%), D-MTL = 2
  for streamcluster native (37.14% > 33%).
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import (
    format_comparison_grid,
    format_percent,
    geomean_improvement,
    render_table,
)
from repro.runtime import (
    compare_policies,
    offline_best_static_factory,
    paper_policy_suite,
)
from repro.workloads import build_workload, realistic_workloads

POLICY_ORDER = [
    "Offline Exhaustive Search",
    "Dynamic Throttling",
    "Online Exhaustive Search",
]


def regenerate_fig14():
    results = []
    for name in realistic_workloads():
        program = build_workload(name)
        policies = dict(paper_policy_suite())
        policies["Offline Exhaustive Search"] = offline_best_static_factory(
            program
        )
        results.append(compare_policies(program, policies))
    return results


@pytest.mark.benchmark(group="fig14")
def test_fig14_realistic_speedup(benchmark):
    results = run_once(benchmark, regenerate_fig14)
    by_name = {r.program_name: r for r in results}

    grid = format_comparison_grid(results, POLICY_ORDER)
    overhead_rows = [
        [
            r.program_name,
            format_percent(r.outcome("Dynamic Throttling").probe_fraction),
            format_percent(
                r.outcome("Online Exhaustive Search").probe_fraction
            ),
        ]
        for r in results
    ]
    overheads = render_table(
        ["Workload", "Dynamic monitoring share", "Online monitoring share"],
        overhead_rows,
    )
    dynamic_gain = geomean_improvement(results, "Dynamic Throttling")
    online_gain = geomean_improvement(results, "Online Exhaustive Search")
    offline_gain = geomean_improvement(results, "Offline Exhaustive Search")
    summary = (
        f"geomean improvement: offline {offline_gain:.1%}, "
        f"dynamic {dynamic_gain:.1%}, online {online_gain:.1%} "
        f"(paper: dynamic ~12%, ~5% above online)"
    )
    save_artifact(
        "fig14_realistic_speedup", grid + "\n\n" + overheads + "\n\n" + summary
    )

    # Everyone improves under dynamic throttling.
    for result in results:
        assert result.speedup("Dynamic Throttling") > 1.0, result.program_name

    # Streamcluster benefits the most (it is the most memory-bound of
    # the trio), and the geomean improvement is solidly positive.
    assert by_name["SC_d128"].speedup("Dynamic Throttling") == max(
        r.speedup("Dynamic Throttling") for r in results
    )
    assert dynamic_gain > 0.05

    # Dynamic ~ offline (within 3 points), and above online on average.
    for result in results:
        assert result.speedup("Dynamic Throttling") == pytest.approx(
            result.speedup("Offline Exhaustive Search"), abs=0.03
        ), result.program_name
    assert dynamic_gain > online_gain

    # Monitoring cost: dynamic far below online for the big workloads.
    for name in ("SC_d128", "SIFT"):
        dynamic_share = by_name[name].outcome("Dynamic Throttling").probe_fraction
        online_share = by_name[name].outcome(
            "Online Exhaustive Search"
        ).probe_fraction
        assert dynamic_share < online_share, name

    # Selected MTLs match Section VI-B's analysis.
    assert by_name["dft"].outcome("Dynamic Throttling").selected_mtl == 1
    assert by_name["SC_d128"].outcome("Dynamic Throttling").selected_mtl == 2
