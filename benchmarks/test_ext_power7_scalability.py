"""Extension: the POWER7 scalability study the paper announces.

The conclusion of the paper: "We are currently working on extending
the scalability study in this paper to an IBM POWER7 machine that has
substantially more hardware threads than the Intel i7-based systems."
That follow-up never appeared, so this benchmark runs it here:
streamcluster (the paper's most memory-bound realistic workload,
scaled so each parallel section keeps 32 threads busy for several
rounds) on a POWER7-class machine, sweeping SMT depth 1/2/4 on both a
fully populated (8-channel) and a bandwidth-constrained (2-channel)
memory system.

Findings this bench asserts, extrapolating Figure 18's reasoning:

* the mechanism's gain is governed by thread-to-channel pressure: on
  the 2-channel machine it grows monotonically with SMT depth and is
  large at SMT4 (32 threads onto 2 channels);
* on the fully populated 8-channel machine, low SMT depths leave the
  memory system over-provisioned and throttling has nothing to win —
  it can even lose slightly to barrier ramp effects the analytical
  model ignores (a negative result worth documenting); pressure, and
  with it the gain, returns at SMT4;
* every 2-channel configuration beats its 8-channel counterpart in
  *relative* gain, confirming the channel-dilution story at scale.
"""

import os

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.runtime.faults import FaultPlan
from repro.runtime.parallel import SweepExecutor, SweepPoint
from repro.sim.power7 import power7

SMT_DEPTHS = [1, 2, 4]
CHANNEL_CONFIGS = [8, 2]

#: Worker processes for the 12-point grid (6 configurations x
#: {conventional, dynamic}); 1 keeps the serial in-process path.
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Deterministic chaos injection (CI chaos job); mirrors
#: benchmarks/test_fig13_synthetic_sweep.py — the retry budget absorbs
#: every injected fault, so the artifact stays bit-identical.
FAULTS = os.environ.get("REPRO_BENCH_FAULTS")
RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "6"))


def bench_executor() -> SweepExecutor:
    return SweepExecutor(
        jobs=JOBS,
        retries=RETRIES,
        fault_plan=FaultPlan.parse(FAULTS) if FAULTS else None,
    )


def scaled_streamcluster_spec(threads: int):
    """Streamcluster with parallel sections sized for ``threads``.

    The i7 traces give each section 64 pairs for 4 threads (16 rounds);
    keeping ~16 rounds per section at higher thread counts preserves
    the compute structure while avoiding barrier-dominated sections.
    """
    return {
        "kind": "streamcluster",
        "rounds": 3,
        "pairs_per_round": 16 * threads,
    }


def regenerate():
    configs = []
    points = []
    for channels in CHANNEL_CONFIGS:
        for smt in SMT_DEPTHS:
            machine_spec = {"preset": "power7", "smt": smt, "channels": channels}
            n = power7(smt=smt, channels=channels).context_count
            workload = scaled_streamcluster_spec(n)
            configs.append((channels, smt, n))
            for policy in ({"kind": "conventional"}, {"kind": "dynamic"}):
                points.append(
                    SweepPoint(
                        workload=workload,
                        machine=machine_spec,
                        policy=policy,
                        label=f"power7/{channels}ch/smt{smt}/{policy['kind']}",
                    )
                )
    results = bench_executor().run(points)

    out = {}
    for index, (channels, smt, n) in enumerate(configs):
        conventional = results[2 * index]
        throttled = results[2 * index + 1]
        out.setdefault(channels, {})[smt] = {
            "speedup": conventional.makespan / throttled.makespan,
            "mtl": throttled.selected_mtl,
            "threads": n,
        }
    return out


@pytest.mark.benchmark(group="ext-power7")
def test_ext_power7_scalability(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = []
    for channels in CHANNEL_CONFIGS:
        for smt in SMT_DEPTHS:
            o = outcomes[channels][smt]
            rows.append(
                [
                    f"{channels}-channel / SMT{smt} ({o['threads']} threads)",
                    format_speedup(o["speedup"]),
                    str(o["mtl"]),
                ]
            )
    save_artifact(
        "ext_power7_scalability",
        render_table(
            ["Configuration", "Dynamic speedup (streamcluster)", "D-MTL"],
            rows,
        ),
    )

    constrained = outcomes[2]
    balanced = outcomes[8]

    # Bandwidth-constrained machine: monotone growth with SMT depth,
    # large gains at 32 threads.
    assert (
        constrained[1]["speedup"]
        < constrained[2]["speedup"]
        < constrained[4]["speedup"]
    )
    assert constrained[4]["speedup"] > 1.25

    # Fully populated machine: over-provisioned at low SMT (no gain,
    # possibly a small documented loss), pressure returns at SMT4.
    assert balanced[1]["speedup"] < 1.01
    assert balanced[1]["speedup"] > 0.93  # the loss stays bounded
    assert balanced[4]["speedup"] > 1.05
    assert balanced[4]["speedup"] > balanced[1]["speedup"]

    # Channel dilution at every depth: fewer channels, more to win.
    for smt in SMT_DEPTHS:
        assert constrained[smt]["speedup"] > balanced[smt]["speedup"], smt
