"""Figure 13: synthetic sweep — measured vs analytical speedup.

For each memory-task footprint (0.5 MB, 1 MB, 2 MB) the paper sweeps
synthetic workloads over ``T_m1/T_c`` in [0.01, 4.00], runs every
static MTL from 1 to n, and reports the best speedup (S-MTL) next to
the analytical model's prediction.  The published findings this bench
asserts:

* the measured and analytical curves match for cache-fitting
  footprints;
* speedup peaks at ~1.21x;
* S-MTL regions: 1 for ratios <= 0.33, then 2, then 3 — each region
  hill-shaped;
* the 2 MB footprint overflows the LLC share, compute tasks interfere
  with memory tasks, and the analytical model loses accuracy
  (Figure 13(c): no descending slope in the S-MTL=3 region).
"""

import os

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import Series, ascii_chart, render_table
from repro.core import predict_speedup_curve
from repro.memory.contention import nehalem_ddr3_contention
from repro.runtime.faults import FaultPlan
from repro.runtime.parallel import SweepExecutor, SweepPoint
from repro.units import mebibytes

#: Coarser than the paper's 0.01 grid to keep the harness quick; the
#: shape (regions, hills, boundaries) is fully resolved at 0.05.
RATIOS = [round(0.05 * i, 2) for i in range(1, 81)]

#: Enough pairs that start/end transients (the paper's own explanation
#: for its residual prediction error) stay small against steady state.
PAIRS = 96

#: Worker processes for the sweep; 1 keeps the serial in-process path
#: (results are identical either way — the golden regression tests in
#: tests/runtime/test_golden_figures.py prove it against this file's
#: own artifacts).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Deterministic chaos injection for the CI chaos job, e.g.
#: REPRO_BENCH_FAULTS="seed=11,crash=0.2,error=0.1".  The retry budget
#: absorbs every injected fault, so the regenerated artifact stays
#: bit-identical to the fault-free run — CI diffs it to prove that.
FAULTS = os.environ.get("REPRO_BENCH_FAULTS")
RETRIES = int(os.environ.get("REPRO_BENCH_RETRIES", "6"))

I7_LLC = {"capacity_bytes": mebibytes(8), "sharers": 4}


def bench_executor() -> SweepExecutor:
    """The sweep executor for this bench, chaos-enabled via env."""
    return SweepExecutor(
        jobs=JOBS,
        retries=RETRIES,
        fault_plan=FaultPlan.parse(FAULTS) if FAULTS else None,
    )


def sweep_points(footprint_mb: float, ratios=None):
    """The fig13 sweep grid: one offline-search point per ratio."""
    return [
        SweepPoint(
            workload={
                "kind": "synthetic",
                "ratio": ratio,
                "footprint_bytes": mebibytes(footprint_mb),
                "pairs": PAIRS,
                "llc": I7_LLC,
            },
            policy={"kind": "offline"},
            label=f"fig13/{footprint_mb:g}MB/r={ratio:.2f}",
        )
        for ratio in (RATIOS if ratios is None else ratios)
    ]


def sweep(footprint_mb: float):
    """Measured best-static speedup and S-MTL per ratio."""
    results = bench_executor().run(sweep_points(footprint_mb))
    return [
        (ratio, result.per_mtl_makespan[4] / result.makespan, result.selected_mtl)
        for ratio, result in zip(RATIOS, results)
    ]


def analytical():
    return {
        p.ratio: p
        for p in predict_speedup_curve(RATIOS, nehalem_ddr3_contention())
    }


def render(footprint_mb: float, measured, predictions) -> str:
    chart = ascii_chart(
        [
            Series(
                "analytical",
                tuple((r, predictions[r].speedup) for r, _, _ in measured),
                marker=".",
            ),
            Series(
                "measured (best static MTL)",
                tuple((r, s) for r, s, _ in measured),
                marker="*",
            ),
        ],
        title=(
            f"Figure 13 ({footprint_mb:g} MB footprint): speedup vs "
            "T_m1/T_c"
        ),
    )
    rows = [
        [f"{r:.2f}", f"{s:.3f}", str(mtl), f"{predictions[r].speedup:.3f}",
         str(predictions[r].best_mtl)]
        for r, s, mtl in measured[::8]
    ]
    table = render_table(
        ["ratio", "measured", "S-MTL", "analytical", "model MTL"], rows
    )
    return chart + "\n\nsampled rows:\n" + table


def mean_abs_error(measured, predictions) -> float:
    errors = [abs(s - predictions[r].speedup) for r, s, _ in measured]
    return sum(errors) / len(errors)


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("footprint_mb", [0.5, 1.0])
def test_fig13_fitting_footprints_match_model(benchmark, footprint_mb):
    measured = run_once(benchmark, lambda: sweep(footprint_mb))
    predictions = analytical()
    save_artifact(
        f"fig13_{footprint_mb:g}MB", render(footprint_mb, measured, predictions)
    )

    # Analytical and measured curves coincide (paper: "matches well";
    # the residual comes from non-steady scheduling at the start and
    # end of each program, exactly as Section VI-A explains).
    assert mean_abs_error(measured, predictions) < 0.025

    # Peak speedup ~1.21x.
    peak = max(s for _, s, _ in measured)
    assert peak == pytest.approx(1.21, abs=0.035)

    # S-MTL regions: 1 up to 0.33, and higher values beyond.
    for ratio, _, s_mtl in measured:
        if ratio <= 0.33:
            assert s_mtl == 1, f"ratio {ratio}"
    s_mtl_by_ratio = {r: m for r, _, m in measured}
    assert s_mtl_by_ratio[0.50] == 2
    assert s_mtl_by_ratio[2.00] == 3

    # Hill shape inside region 1: rising toward the boundary then a
    # drop after it.
    speedups = {r: s for r, s, _ in measured}
    assert speedups[0.10] < speedups[0.20] < speedups[0.30]
    assert speedups[0.45] < speedups[0.30] or speedups[0.45] < speedups[0.35]


@pytest.mark.benchmark(group="fig13")
def test_fig13c_capacity_misses_break_the_model(benchmark):
    measured = run_once(benchmark, lambda: sweep(2.0))
    predictions = analytical()
    save_artifact("fig13_2MB", render(2.0, measured, predictions))

    fitting_error = mean_abs_error(sweep(0.5), predictions)
    spilling_error = mean_abs_error(measured, predictions)
    # "These cases are not covered by the analytical model."
    assert spilling_error > 2 * fitting_error

    # Figure 13(c): the descending slope of the S-MTL=3 region
    # flattens out — the tail of the measured curve stays near its
    # level instead of decaying like the model predicts.
    tail = [s for r, s, _ in measured if r >= 3.0]
    predicted_tail = [predictions[r].speedup for r, _, _ in measured if r >= 3.0]
    measured_drop = max(tail) - min(tail)
    predicted_drop = max(predicted_tail) - min(predicted_tail)
    assert measured_drop < predicted_drop
