"""Ablation F: measurement-noise robustness of the two dynamic policies.

Section VI-B attributes the paper mechanism's edge over Online
Exhaustive Search to noise: online keys off wall-clock windows, which
"may not perfectly represent overall performance ... due to the
irregular scheduling overhead and the impact of load imbalance",
whereas the mechanism's per-task steady-state estimates are robust.

This ablation injects increasing task-duration noise into SIFT runs
and measures both policies with the paper's 20-run / middle-10
protocol.  Asserted:

* under every noise level the dynamic mechanism keeps a positive gain;
* the dynamic mechanism's advantage over online persists under noise;
* online triggers far more selections under noise than the
  IdleBound-gated mechanism (spurious wall-clock wobble).
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.core import DynamicThrottlingPolicy, OnlineExhaustivePolicy
from repro.runtime import measure_makespan
from repro.sim import GaussianNoise, Simulator, i7_860
from repro.sim.scheduler import conventional_policy
from repro.workloads import sift

SIGMAS = [0.0, 0.01, 0.03]
RUNS = 8


def regenerate():
    program = sift()
    machine = i7_860()

    def noise_factory(sigma):
        return lambda seed: GaussianNoise(
            seed=seed, sigma=sigma, spike_probability=0.01
        )

    out = {}
    for sigma in SIGMAS:
        factory = noise_factory(sigma)
        baseline = measure_makespan(
            program, lambda: conventional_policy(4), machine=machine,
            runs=RUNS, noise_factory=factory,
        ).value
        dynamic = measure_makespan(
            program, lambda: DynamicThrottlingPolicy(context_count=4),
            machine=machine, runs=RUNS, noise_factory=factory,
        ).value
        online = measure_makespan(
            program, lambda: OnlineExhaustivePolicy(context_count=4),
            machine=machine, runs=RUNS, noise_factory=factory,
        ).value

        # One instrumented noisy run per policy for trigger counts.
        dynamic_policy = DynamicThrottlingPolicy(context_count=4)
        Simulator(machine, noise=factory(991)).run(program, dynamic_policy)
        online_policy = OnlineExhaustivePolicy(context_count=4)
        Simulator(machine, noise=factory(991)).run(program, online_policy)

        out[sigma] = {
            "dynamic": baseline / dynamic,
            "online": baseline / online,
            "dynamic_selections": len(dynamic_policy.selections),
            "online_selections": len(online_policy.selections),
        }
    return out


@pytest.mark.benchmark(group="ablation-noise")
def test_ablation_noise_robustness(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = [
        [
            f"{sigma:.0%}",
            format_speedup(o["dynamic"]),
            format_speedup(o["online"]),
            str(o["dynamic_selections"]),
            str(o["online_selections"]),
        ]
        for sigma, o in outcomes.items()
    ]
    save_artifact(
        "ablation_noise_robustness",
        render_table(
            ["sigma", "Dynamic", "Online", "Dyn selections",
             "Online selections"],
            rows,
        ),
    )

    for sigma, o in outcomes.items():
        assert o["dynamic"] > 1.0, sigma
        assert o["dynamic"] >= o["online"] - 0.01, sigma

    # Under real noise the naive trigger fires more often than the
    # IdleBound gate.
    noisiest = outcomes[max(SIGMAS)]
    assert noisiest["online_selections"] >= noisiest["dynamic_selections"]
