"""Extension: self-sizing monitoring windows.

Figure 15 shows the best W differs per workload (8 for dft's 96
pairs, 16 for the larger programs) and the paper simply reports each
workload at its best setting.  The
:class:`~repro.core.adaptive.AdaptiveWindowThrottlingPolicy` extension
removes the hand-tuning: it bootstraps with a small window and grows
it as completed pairs accumulate, keeping monitoring under a fixed
budget.

Asserted: one untuned adaptive policy is at least as good as the fixed
W=16 paper configuration on *every* realistic workload — including
dft, where fixed W=16 visibly overpays (Figure 15) — and within one
point of each workload's best fixed W.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.core import (
    AdaptiveWindowThrottlingPolicy,
    DynamicThrottlingPolicy,
    conventional_policy,
)
from repro.sim import i7_860, simulate
from repro.workloads import build_workload, realistic_workloads

FIXED_W = [4, 8, 16, 24]


def regenerate():
    machine = i7_860()
    out = {}
    for name in realistic_workloads():
        program = build_workload(name)
        baseline = simulate(
            program, conventional_policy(machine.context_count), machine
        ).makespan
        fixed = {}
        for w in FIXED_W:
            policy = DynamicThrottlingPolicy(
                context_count=machine.context_count, window_pairs=w
            )
            fixed[w] = baseline / simulate(program, policy, machine).makespan
        adaptive_policy = AdaptiveWindowThrottlingPolicy(
            context_count=machine.context_count
        )
        adaptive = baseline / simulate(program, adaptive_policy, machine).makespan
        out[name] = {
            "fixed": fixed,
            "adaptive": adaptive,
            "final_window": adaptive_policy.window_pairs,
        }
    return out


@pytest.mark.benchmark(group="ext-adaptive-w")
def test_ext_adaptive_window(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = []
    for name, o in outcomes.items():
        rows.append(
            [name]
            + [format_speedup(o["fixed"][w]) for w in FIXED_W]
            + [format_speedup(o["adaptive"]), str(o["final_window"])]
        )
    save_artifact(
        "ext_adaptive_window",
        render_table(
            ["Workload"]
            + [f"W={w}" for w in FIXED_W]
            + ["adaptive", "final W"],
            rows,
        ),
    )

    for name, o in outcomes.items():
        # At least as good as the paper's W=16 everywhere.
        assert o["adaptive"] >= o["fixed"][16] - 1e-6, name
        # Within one point of the workload's best hand-tuned W.
        assert o["adaptive"] >= max(o["fixed"].values()) - 0.01, name

    # dft is the workload W=16 visibly overpays on; the adaptive
    # policy recovers the gap.
    dft = outcomes["dft"]
    assert dft["adaptive"] > dft["fixed"][16]
