"""Table II: workload characteristics (memory-to-compute ratios).

Regenerates the ``T_m1/T_c`` column for the dft kernel and the six
streamcluster instances by running each workload at MTL=1 on the
reference machine and dividing the measured mean task times — the
paper's own measurement procedure (Section V).
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_percent, render_table
from repro.runtime import measure_ratio
from repro.workloads import (
    DFT_RATIO,
    STREAMCLUSTER_RATIOS,
    dft,
    streamcluster,
)

PAPER_ROWS = [("dft", "dft", DFT_RATIO)] + [
    ("streamcluster", f"SC_d{dim}", ratio)
    for dim, ratio in sorted(STREAMCLUSTER_RATIOS.items(), reverse=True)
]


def regenerate_table2():
    measured = {"dft": measure_ratio(dft())}
    for dim in STREAMCLUSTER_RATIOS:
        measured[f"SC_d{dim}"] = measure_ratio(streamcluster(dim))
    return measured


@pytest.mark.benchmark(group="table2")
def test_table2_workload_ratios(benchmark):
    measured = run_once(benchmark, regenerate_table2)

    rows = []
    for suite, name, paper_value in PAPER_ROWS:
        rows.append(
            [
                suite,
                name,
                format_percent(paper_value),
                format_percent(measured[name]),
            ]
        )
    save_artifact(
        "table2_workload_ratios",
        render_table(["Benchmark", "Name", "paper T_m1/T_c", "measured"], rows),
    )

    # The trace calibration must land on the published column.
    for _, name, paper_value in PAPER_ROWS:
        assert measured[name] == pytest.approx(paper_value, rel=1e-3), name
