"""Shared utilities for the benchmark harness.

Every benchmark regenerates one table or figure of the paper: it runs
the experiment (timed through pytest-benchmark with a single round —
the interesting output is the experimental result, not the harness's
wall-clock), prints the regenerated rows/series, and saves them under
``benchmarks/results/`` so ``EXPERIMENTS.md`` can reference stable
artifacts.
"""

from __future__ import annotations

import pathlib
from typing import Callable

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def save_artifact(name: str, text: str) -> None:
    """Persist one regenerated table/figure and echo it to stdout.

    The echo goes to the *real* stdout (``sys.__stdout__``) so the
    regenerated tables land in ``bench_output.txt`` even under
    pytest's output capture.
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print(f"\n[{name}] saved to {path}\n{text}")


def run_once(benchmark, experiment: Callable):
    """Run ``experiment`` exactly once under pytest-benchmark timing.

    The experiments are deterministic simulations; repeating them only
    re-times identical work, so one round is both faster and honest.
    """
    return benchmark.pedantic(experiment, rounds=1, iterations=1)
