"""Figure 18: scalability — 2-DIMM system, with and without SMT.

The paper doubles the memory bandwidth (two DDR3 channels) and then
stresses it again by enabling 2-way SMT (8 threads).  Published
findings asserted here:

* with 4 threads on 2 DIMMs the dynamic mechanism still helps
  (3.0%-9.1% in the paper) but less than on 1 DIMM — channel
  parallelism dilutes the interference;
* with SMT on (8 threads), contention returns and the speedups grow
  again (streamcluster: 13.3% in the paper), even though the
  analytical model is knowingly approximate when T_c varies;
* dynamic stays close to Offline Exhaustive Search in every
  configuration.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.runtime import (
    compare_policies,
    offline_best_static_factory,
    paper_policy_suite,
)
from repro.sim import i7_860
from repro.workloads import build_workload, realistic_workloads

CONFIGS = [
    ("1-DIMM / 4 threads", dict(channels=1, smt=1)),
    ("2-DIMM / 4 threads", dict(channels=2, smt=1)),
    ("2-DIMM / 8 SMT threads", dict(channels=2, smt=2)),
]


def regenerate_fig18():
    out = {}
    for label, kwargs in CONFIGS:
        machine = i7_860(**kwargs)
        out[label] = {}
        for name in realistic_workloads():
            program = build_workload(name)
            policies = {
                "Dynamic Throttling": paper_policy_suite(machine)[
                    "Dynamic Throttling"
                ],
                "Offline Exhaustive Search": offline_best_static_factory(
                    program, machine
                ),
            }
            comparison = compare_policies(program, policies, machine=machine)
            out[label][name] = {
                "dynamic": comparison.speedup("Dynamic Throttling"),
                "offline": comparison.speedup("Offline Exhaustive Search"),
                "mtl": comparison.outcome("Dynamic Throttling").selected_mtl,
            }
    return out


@pytest.mark.benchmark(group="fig18")
def test_fig18_scalability(benchmark):
    outcomes = run_once(benchmark, regenerate_fig18)

    rows = []
    for label, per_workload in outcomes.items():
        for name, o in per_workload.items():
            rows.append(
                [
                    label,
                    name,
                    format_speedup(o["offline"]),
                    f"{format_speedup(o['dynamic'])} ({o['mtl']})",
                ]
            )
    save_artifact(
        "fig18_scalability",
        render_table(
            ["Configuration", "Workload", "Offline", "Dynamic (MTL)"], rows
        ),
    )

    single = outcomes["1-DIMM / 4 threads"]
    dual = outcomes["2-DIMM / 4 threads"]
    smt = outcomes["2-DIMM / 8 SMT threads"]

    for name in single:
        # The second channel reduces what throttling can recover.
        assert dual[name]["dynamic"] < single[name]["dynamic"], name
        # But throttling still helps on 2 DIMMs (paper: 3.0-9.1%).
        assert dual[name]["dynamic"] > 1.0, name
        # Dynamic tracks offline in every configuration; under SMT the
        # model is knowingly approximate (T_c varies with core
        # sharing), so the tracking is a little looser — exactly the
        # paper's caveat in Section VI-E.
        for config, tolerance in ((single, 0.04), (dual, 0.04), (smt, 0.055)):
            assert config[name]["dynamic"] == pytest.approx(
                config[name]["offline"], abs=tolerance
            ), name

    # SMT re-creates contention: streamcluster's gain grows vs the
    # 4-thread 2-DIMM run (paper: 13.3%).
    assert smt["SC_d128"]["dynamic"] > dual["SC_d128"]["dynamic"]
