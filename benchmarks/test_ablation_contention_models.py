"""Ablation B: does the mechanism depend on the exact contention law?

The machine model uses the paper's linear queueing law.  This ablation
re-runs the Figure 14 headline (streamcluster native, dynamic
throttling vs conventional) under three different contention models —
linear, super-linear power law (bank-conflict amplification), and pure
bandwidth partitioning — and checks that the *decision* the mechanism
makes is stable even when the latency physics change:

* under every model the throttler still improves streamcluster;
* the selected D-MTL stays in the small set {1, 2} the IdleBound
  analysis predicts for a 37% ratio workload;
* stronger contention (super-linear) yields a larger gain than
  weaker contention, i.e. the mechanism's benefit scales with the
  problem it is designed to remove.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.core import DynamicThrottlingPolicy, conventional_policy
from repro.memory.contention import (
    BandwidthShareModel,
    LinearContentionModel,
    PowerLawContentionModel,
)
from repro.sim import Simulator, i7_860
from repro.units import NANOSECONDS
from repro.workloads import streamcluster

MODELS = {
    "linear (paper)": LinearContentionModel(46.3 * NANOSECONDS, 18 * NANOSECONDS),
    "power-law a=1.4": PowerLawContentionModel(
        46.3 * NANOSECONDS, 18 * NANOSECONDS, alpha=1.4
    ),
    "bandwidth-share": BandwidthShareModel(
        unloaded_latency=64.3 * NANOSECONDS, peak_bandwidth=2.2e9
    ),
}


def regenerate():
    out = {}
    for label, contention in MODELS.items():
        machine = i7_860(contention=contention)
        program = streamcluster()
        conventional = Simulator(machine).run(
            program, conventional_policy(machine.context_count)
        )
        policy = DynamicThrottlingPolicy(context_count=machine.context_count)
        throttled = Simulator(machine).run(program, policy)
        out[label] = {
            "speedup": conventional.makespan / throttled.makespan,
            "mtl": throttled.dominant_mtl(),
        }
    return out


@pytest.mark.benchmark(group="ablation-contention")
def test_ablation_contention_models(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = [
        [label, format_speedup(o["speedup"]), str(o["mtl"])]
        for label, o in outcomes.items()
    ]
    save_artifact(
        "ablation_contention_models",
        render_table(["Contention model", "Dynamic speedup", "D-MTL"], rows),
    )

    for label, o in outcomes.items():
        assert o["speedup"] > 1.0, label
        assert o["mtl"] in (1, 2), label

    # More contention -> more to win back.
    assert (
        outcomes["power-law a=1.4"]["speedup"]
        > outcomes["linear (paper)"]["speedup"]
    )
