"""Ablation E: dispatch-order sensitivity.

The paper's runtime dequeues tasks from a shared work queue but does
not specify whether an idle thread should prefer a ready compute task
(consume the tile it just gathered while it is cache-hot) or a memory
task (keep the throttled memory pipeline full).  The simulator
defaults to compute-first with cache affinity; this ablation runs the
Figure 14 workloads both ways under the best static MTL and quantifies
the gap.

Asserted: the choice is second-order — both orders complete within a
few percent of each other on every workload — so the reproduction's
conclusions do not hinge on an unspecified implementation detail.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_speedup, render_table
from repro.core import offline_exhaustive_search
from repro.sim import Simulator, i7_860
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.workloads import build_workload, realistic_workloads

ORDERS = ["compute-first", "memory-first"]


def regenerate():
    out = {}
    for name in realistic_workloads():
        program = build_workload(name)
        best_mtl = offline_exhaustive_search(program).best_mtl
        out[name] = {}
        for order in ORDERS:
            simulator = Simulator(i7_860(), dispatch_preference=order)
            conventional = simulator.run(program, conventional_policy(4))
            throttled = simulator.run(program, FixedMtlPolicy(best_mtl))
            out[name][order] = conventional.makespan / throttled.makespan
    return out


@pytest.mark.benchmark(group="ablation-dispatch")
def test_ablation_dispatch_order(benchmark):
    outcomes = run_once(benchmark, regenerate)

    rows = [
        [name] + [format_speedup(outcomes[name][order]) for order in ORDERS]
        for name in outcomes
    ]
    save_artifact(
        "ablation_dispatch_order",
        render_table(["Workload"] + ORDERS, rows),
    )

    for name, per_order in outcomes.items():
        assert per_order["compute-first"] == pytest.approx(
            per_order["memory-first"], abs=0.02
        ), name
        for order in ORDERS:
            assert per_order[order] > 1.0, (name, order)
