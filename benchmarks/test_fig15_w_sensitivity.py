"""Figure 15: sensitivity of the dynamic mechanism to W.

W is the number of memory/compute task pairs monitored per estimation
window.  The paper sweeps W from 4 to 24 and finds:

* larger W estimates T_mk/T_c more accurately but costs more
  monitoring;
* dft — only 96 task pairs in total — degrades for W > 8, where the
  monitoring windows start to dominate the whole program ("the
  overhead of exhaustive search in dft is prohibitive");
* streamcluster and SIFT are accurately served by W = 16.
"""

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import render_table
from repro.core import DynamicThrottlingPolicy, conventional_policy
from repro.sim import i7_860, simulate
from repro.workloads import build_workload, realistic_workloads

W_VALUES = [4, 8, 12, 16, 20, 24]


def regenerate_fig15():
    machine = i7_860()
    speedups = {}
    for name in realistic_workloads():
        program = build_workload(name)
        baseline = simulate(
            program, conventional_policy(machine.context_count), machine
        ).makespan
        speedups[name] = {}
        for w in W_VALUES:
            policy = DynamicThrottlingPolicy(
                context_count=machine.context_count, window_pairs=w
            )
            result = simulate(program, policy, machine)
            speedups[name][w] = baseline / result.makespan
    return speedups


@pytest.mark.benchmark(group="fig15")
def test_fig15_w_sensitivity(benchmark):
    speedups = run_once(benchmark, regenerate_fig15)

    rows = [
        [name] + [f"{speedups[name][w]:.3f}x" for w in W_VALUES]
        for name in speedups
    ]
    save_artifact(
        "fig15_w_sensitivity",
        render_table(["Workload"] + [f"W={w}" for w in W_VALUES], rows),
    )

    # dft (96 pairs): small W wins; beyond W=8 the windows eat the
    # program and the speedup falls off.
    dft = speedups["dft"]
    best_w_dft = max(W_VALUES, key=lambda w: dft[w])
    assert best_w_dft <= 8
    assert dft[24] < dft[best_w_dft]

    # The larger workloads tolerate W=16 well (the paper's setting).
    for name in ("SC_d128", "SIFT"):
        series = speedups[name]
        assert series[16] > 1.0
        # W=16 within one point of that workload's best.
        assert series[16] >= max(series.values()) - 0.01, name
