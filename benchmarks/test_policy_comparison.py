"""Cross-policy comparison: every registered policy, one registry.

The plugin refactor's proof of life: the whole throttling-policy
registry — ported paper policies and the three extensions alike — runs
through one declarative grid on the paper's evaluation workloads (the
Figure 14 realistic trio plus one Figure 13 synthetic point per S-MTL
region), and every spec comes from
:func:`repro.runtime.experiment.all_policy_specs` rather than
hand-written imports.  The one tuned knob: ``activation-budget``'s
budget drops to 2 dispatches/window — its default (twice the fair
share) never binds on symmetric workloads, and an inert policy
demonstrates nothing.  Findings asserted:

* the grid runs clean — no degraded policies, all eight outcomes
  present for every workload;
* the registry's ``conventional`` entry reproduces the baseline
  bit-identically (speedup exactly 1.0 everywhere);
* ``dynamic`` improves every realistic workload (the Figure 14
  headline), ``adaptive-window`` tracks it there and wins on geomean
  (growing windows probe less);
* the extensions hold their design goals — ``mise`` and ``qos``
  improve every realistic workload, and the binding activation budget
  improves the most memory-bound one (streamcluster) by rationing
  who may issue memory work;
* no policy collapses: every speedup stays above 0.7 even on the
  adversarial ratio-3 synthetic point.
"""

import os

import pytest

from _helpers import run_once, save_artifact
from repro.analysis import format_comparison, geometric_mean, render_policy_matrix
from repro.core import policy_names
from repro.runtime import all_policy_specs, compare_policies_grid
from repro.runtime.parallel import SweepExecutor
from repro.units import mebibytes

#: Worker processes; CI's benchmark job sets 2 to exercise the pool
#: path (results are identical either way).
JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))

#: Shared monitoring window so every windowed policy sees the same W.
WINDOW_PAIRS = 16

#: Activation budget (memory dispatches per context per window); the
#: fair share here is WINDOW_PAIRS / 4 = 4, and 2 is the largest value
#: that actually blacklists on these symmetric workloads.
BUDGET = 2

I7_LLC = {"capacity_bytes": mebibytes(8), "sharers": 4}


def synthetic(ratio: float) -> dict:
    """One fig13 synthetic point: cache-fitting 1 MB footprint."""
    return {
        "kind": "synthetic",
        "ratio": ratio,
        "footprint_bytes": mebibytes(1),
        "pairs": 48,
        "llc": I7_LLC,
    }


#: Label -> workload spec: the fig14 realistic trio plus one fig13
#: synthetic ratio per S-MTL region (1, 2, and 3).
WORKLOADS = [
    ("dft", {"kind": "registry", "name": "dft"}),
    ("SC_d128", {"kind": "registry", "name": "SC_d128"}),
    ("SIFT", {"kind": "registry", "name": "SIFT"}),
    ("syn_r0.20", synthetic(0.2)),
    ("syn_r1.00", synthetic(1.0)),
    ("syn_r3.00", synthetic(3.0)),
]

REALISTIC = ("dft", "SC_d128", "SIFT")


def comparison_specs():
    """The registry-wide grid, with the activation budget made binding."""
    specs = dict(all_policy_specs(window_pairs=WINDOW_PAIRS))
    specs["activation-budget"] = {
        **specs["activation-budget"],
        "budget": BUDGET,
    }
    return specs


def regenerate_comparison():
    specs = comparison_specs()
    executor = SweepExecutor(jobs=JOBS)
    return {
        label: compare_policies_grid(workload, specs, executor=executor)
        for label, workload in WORKLOADS
    }


@pytest.mark.benchmark(group="policy_comparison")
def test_policy_comparison_matrix(benchmark):
    results = run_once(benchmark, regenerate_comparison)
    labels = [label for label, _ in WORKLOADS]
    policies = policy_names()
    speedups = {
        label: {name: results[label].speedup(name) for name in policies}
        for label in labels
    }

    matrix = render_policy_matrix(policies, labels, speedups)
    details = "\n\n".join(format_comparison(results[label]) for label in labels)
    save_artifact("policy_comparison", matrix + "\n\n" + details)

    # The grid ran clean: all eight registered policies produced an
    # outcome on every workload, straight from the registry.
    assert len(policies) == 8
    for label in labels:
        assert results[label].failures == ()
        assert {o.policy_name for o in results[label].outcomes} == set(policies)

    # The registry's conventional entry IS the baseline, bit-identical.
    for label in labels:
        assert speedups[label]["conventional"] == 1.0, label

    # Figure 14 headline through the plugin path: dynamic improves
    # every realistic workload and adaptive-window tracks it there.
    for label in REALISTIC:
        assert speedups[label]["dynamic"] > 1.0, label
        assert speedups[label]["adaptive-window"] == pytest.approx(
            speedups[label]["dynamic"], abs=0.03
        ), label

    # Growing windows probe less: adaptive-window wins overall.
    def geomean(name):
        return geometric_mean([speedups[label][name] for label in labels])

    assert geomean("adaptive-window") >= geomean("dynamic")

    # Extensions hold their design goals.
    for label in REALISTIC:
        assert speedups[label]["mise"] > 1.0, label
        assert speedups[label]["qos"] > 1.0, label
    assert speedups["SC_d128"]["activation-budget"] > 1.05

    # No policy collapses anywhere.
    for label in labels:
        for name in policies:
            assert speedups[label][name] > 0.7, (label, name)
