#!/usr/bin/env python
"""Microarchitectural validation: does throttling survive real physics?

The library models memory contention three ways, in increasing order
of fidelity:

1. the paper's closed-form law `L(c) = T_ml + c*T_ql` (calibrated);
2. a latency table *measured* from a bank-level FR-FCFS DRAM model;
3. full request-level co-simulation — every cache line is a DRAM
   event, and contention emerges from row buffers, bank conflicts,
   and bus serialisation.

This example runs one moderately memory-bound workload on all three
and prints the per-MTL makespans side by side.  If the abstraction
stack is sound, all three machines should agree on which MTL wins and
roughly how much it saves.

Run:  python examples/microarchitectural_validation.py
"""

from repro.analysis import render_table
from repro.memory.calibration import calibrate_linear_model
from repro.memory.empirical import EmpiricalContentionModel
from repro.sim import DetailedSimulator, Simulator, i7_860
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.stream.program import StreamProgram, build_phase
from repro.units import format_time, kibibytes

REQUESTS = kibibytes(64) // 64   # 1024 lines per tile
PAIRS = 24
COMPUTE_SECONDS = 30e-6          # ~ ratio 0.7 on the detailed machine


def main() -> None:
    program = StreamProgram(
        "validation", [build_phase("p", 0, PAIRS, REQUESTS, COMPUTE_SECONDS)]
    )

    print("building machines (samples the DRAM model twice)...")
    calibrated = calibrate_linear_model(requests_per_stream=512)
    machines = {
        "closed-form (fitted)": lambda policy: Simulator(
            i7_860(contention=calibrated.model)
        ).run(program, policy),
        "empirical table": lambda policy: Simulator(
            i7_860(contention=EmpiricalContentionModel(
                requests_per_stream=512, channels_measured=(1,)
            ))
        ).run(program, policy),
        "request-level": lambda policy: DetailedSimulator().run(
            program, policy
        ),
    }

    rows = []
    for label, run in machines.items():
        baseline = run(conventional_policy(4)).makespan
        cells = [label, format_time(baseline)]
        best_mtl, best_time = None, None
        for mtl in (1, 2, 3):
            makespan = run(FixedMtlPolicy(mtl)).makespan
            cells.append(f"{baseline / makespan:.3f}x")
            if best_time is None or makespan < best_time:
                best_mtl, best_time = mtl, makespan
        cells.append(str(best_mtl))
        rows.append(cells)

    print()
    print(render_table(
        ["machine", "conventional", "MTL=1", "MTL=2", "MTL=3", "best"],
        rows,
    ))
    print(
        "\nfitted law: "
        f"T_ml = {calibrated.model.contention_free_latency * 1e9:.1f} ns, "
        f"T_ql = {calibrated.model.queueing_latency * 1e9:.1f} ns "
        f"(R^2 = {calibrated.r_squared:.3f})"
    )
    print(
        "All three machines should crown the same MTL — the paper's "
        "closed-form assumption carries microarchitectural weight."
    )


if __name__ == "__main__":
    main()
