#!/usr/bin/env python
"""Capacity planning: should you buy a second DIMM or enable SMT?

A downstream use of the library beyond reproducing the paper: given a
workload mix, compare machine configurations and scheduling policies
to decide where the next performance increment comes from — more
memory channels, more hardware threads, or smarter scheduling.

This sweeps the paper's three machine configurations (1-DIMM, 2-DIMM,
2-DIMM + SMT) across the realistic workloads and reports, per cell,
the conventional runtime and the throttled runtime.

Run:  python examples/capacity_planning.py
"""

from repro import DynamicThrottlingPolicy, conventional_policy, i7_860, simulate
from repro.analysis import render_table
from repro.units import format_time
from repro.workloads import build_workload, realistic_workloads


def main() -> None:
    machines = [
        i7_860(channels=1),
        i7_860(channels=2),
        i7_860(channels=2, smt=2),
    ]

    rows = []
    for workload_name in realistic_workloads():
        for machine in machines:
            program = build_workload(workload_name)
            n = machine.context_count
            conventional = simulate(program, conventional_policy(n), machine)
            throttled = simulate(
                program, DynamicThrottlingPolicy(context_count=n), machine
            )
            rows.append(
                [
                    workload_name,
                    machine.name,
                    format_time(conventional.makespan),
                    format_time(throttled.makespan),
                    f"{conventional.makespan / throttled.makespan:.3f}x",
                ]
            )

    print(render_table(
        ["workload", "machine", "conventional", "throttled", "speedup"], rows
    ))

    print(
        "\nReading the table:\n"
        "  * a second DIMM cuts conventional runtimes by relieving\n"
        "    contention — and shrinks what throttling can add;\n"
        "  * SMT doubles the thread count, re-creating contention and\n"
        "    restoring the value of throttling (Figure 18 of the paper);\n"
        "  * scheduling is the cheapest lever: the throttled 1-DIMM\n"
        "    system recovers a useful fraction of the second DIMM's\n"
        "    benefit with no hardware change."
    )


if __name__ == "__main__":
    main()
