#!/usr/bin/env python
"""Stream semantics: the gather-compute-scatter model on real data.

The paper's Figure 2 introduces the programming model with a concrete
kernel: ``x = a + b; y = x * a`` rewritten as gathers, two compute
kernels keeping ``x`` local, and a scatter.  Figure 12's synthetic
benchmark is a second concrete kernel.

The library's timing simulator is trace-driven, but the programming
model itself is executable: this example runs both kernels with real
numpy arrays, verifies the streamed versions compute the same values
as the original loops for several tilings, and then runs the Figure 2
kernel's task graph through the FunctionalExecutor to show that the
dependency structure the simulator schedules is the same one the data
flows through.

Run:  python examples/stream_semantics.py
"""

import numpy as np

from repro.stream.graph import TaskGraph
from repro.stream.kernels import (
    FunctionalExecutor,
    figure2_original,
    figure2_streamed,
    figure12_original,
    figure12_streamed,
    gather,
    scatter,
)
from repro.stream.task import compute_task, memory_task


def check_figure2() -> None:
    rng = np.random.default_rng(42)
    a = rng.normal(size=10_000)
    b = rng.normal(size=10_000)
    reference = figure2_original(a, b)
    for tile in (64, 1000, 4096, 10_000):
        streamed = figure2_streamed(a, b, tile_elements=tile)
        assert np.allclose(streamed, reference)
        print(f"figure 2 kernel: tile={tile:>6} elements -> identical result")


def check_figure12() -> None:
    reference = figure12_original(length=8192, count=7)
    for tile in (128, 1024, 8192):
        streamed = figure12_streamed(8192, count=7, tile_elements=tile)
        assert np.allclose(streamed, reference)
        print(f"figure 12 kernel: tile={tile:>5} elements -> identical result")


def run_task_graph() -> None:
    """Figure 2's pair structure executed through the task graph."""
    n = 4096
    tile = 1024
    rng = np.random.default_rng(7)
    a = rng.normal(size=n)
    b = rng.normal(size=n)
    y = np.zeros(n)

    tasks = []
    actions = {}
    for i, start in enumerate(range(0, n, tile)):
        end = start + tile
        m_id, c_id = f"M{i}", f"C{i}"
        tasks.append(memory_task(m_id, requests=tile * 8 / 64, pair_index=i))
        tasks.append(
            compute_task(c_id, cpu_seconds=1e-4, pair_index=i, depends_on=(m_id,))
        )
        local = {}

        def gather_tile(local=local, start=start, end=end):
            local["as"] = gather(a, start, end)
            local["bs"] = gather(b, start, end)

        def compute_tile(local=local, start=start):
            xs = local["as"] + local["bs"]          # kernel k1
            ys = xs * local["as"]                   # kernel k2
            scatter(ys, y, start)

        actions[m_id] = gather_tile
        actions[c_id] = compute_tile

    graph = TaskGraph(tasks)
    executor = FunctionalExecutor(graph=graph)
    for task_id, action in actions.items():
        executor.bind(task_id, action)
    order = executor.run()
    assert np.allclose(y, figure2_original(a, b))
    print(f"task graph executed {len(order)} tasks; result matches the "
          "original loops")


def main() -> None:
    check_figure2()
    print()
    check_figure12()
    print()
    run_task_graph()


if __name__ == "__main__":
    main()
