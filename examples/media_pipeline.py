#!/usr/bin/env python
"""Media pipeline: periodic phases, adaptive windows, and timelines.

The paper motivates stream programming with media decoders but never
evaluates one.  This example runs the MPEG-2 decoder trace — whose
stage cycle (VLD -> IDCT -> MOTION-COMP -> DEBLOCK) repeats every
frame, flipping the IdleBound twice per frame — and shows:

* the throttler re-selecting MTL on the periodic phase pattern,
  visualised as an MTL/concurrency timeline;
* the adaptive-window extension matching the hand-tuned fixed-W
  configuration without tuning.

Run:  python examples/media_pipeline.py
"""

from repro import conventional_policy, i7_860, simulate
from repro.analysis import render_table, render_timeline
from repro.core import AdaptiveWindowThrottlingPolicy, DynamicThrottlingPolicy
from repro.units import format_time
from repro.workloads import MPEG_STAGE_RATIOS, mpeg2_decode


def main() -> None:
    program = mpeg2_decode(frames=4, pairs_per_stage=48)
    machine = i7_860()
    print(f"{program.name}: {len(program.phases)} phases, "
          f"{program.total_pairs} pairs")
    print("stage ratios:", ", ".join(
        f"{stage} {ratio:.0%}" for stage, ratio in MPEG_STAGE_RATIOS.items()
    ))

    baseline = simulate(program, conventional_policy(4), machine)

    rows = []
    timelines = {}
    for label, policy_factory in (
        ("dynamic W=16", lambda: DynamicThrottlingPolicy(
            context_count=4, window_pairs=16)),
        ("dynamic W=8", lambda: DynamicThrottlingPolicy(
            context_count=4, window_pairs=8)),
        ("adaptive window", lambda: AdaptiveWindowThrottlingPolicy(
            context_count=4)),
    ):
        policy = policy_factory()
        result = simulate(program, policy, machine)
        rows.append(
            [
                label,
                format_time(result.makespan),
                f"{baseline.makespan / result.makespan:.3f}x",
                str(len(policy.selections)),
            ]
        )
        timelines[label] = result

    print(f"\nconventional: {format_time(baseline.makespan)}")
    print(render_table(
        ["policy", "makespan", "speedup", "selections"], rows
    ))

    print("\nThe throttle tracking the frame cycle:")
    print(render_timeline(timelines["adaptive window"], width=70))


if __name__ == "__main__":
    main()
