#!/usr/bin/env python
"""Schedule gallery: reproduce the paper's scheduling illustrations.

Figures 1, 4, and 5 of the paper are hand-drawn gantt charts showing
why the Memory Task Limit matters:

* Figure 4 — a memory-heavy workload on a quad-core: MTL=2 beats both
  the conventional MTL=4 (contention) and MTL=1 (idle cores);
* Figure 5 — a compute-heavy workload: MTL=1 wins because there is
  enough compute to keep every core busy while memory tasks are fully
  serialised.

This example regenerates both situations from real simulations and
renders the actual schedules, including the idle gaps the paper marks
with circles.

Run:  python examples/schedule_gallery.py
"""

from repro import FixedMtlPolicy, i7_860, simulate
from repro.sim.gantt import render_gantt
from repro.units import format_time
from repro.workloads import synthetic_from_ratio


def show_workload(title: str, ratio: float, pairs: int = 12) -> None:
    program = synthetic_from_ratio(ratio, pairs=pairs)
    machine = i7_860()
    print("=" * 78)
    print(f"{title} — T_m1/T_c = {ratio}")
    print("=" * 78)
    makespans = {}
    for mtl in (4, 2, 1):
        result = simulate(program, FixedMtlPolicy(mtl), machine)
        makespans[mtl] = result.makespan
        print()
        print(render_gantt(result, width=70))
    best = min(makespans, key=lambda k: makespans[k])
    print()
    for mtl in (4, 2, 1):
        marker = "  <-- best" if mtl == best else ""
        print(f"  MTL={mtl}: {format_time(makespans[mtl])}{marker}")
    print()


def main() -> None:
    # Figure 4's regime: memory-heavy enough that MTL=1 starves cores
    # but MTL=2 removes most contention without idling anyone.
    show_workload("Figure 4 situation (memory-heavy)", ratio=0.8)

    # Figure 5's regime: compute-heavy; full serialisation (MTL=1) is
    # free because compute keeps every core busy.
    show_workload("Figure 5 situation (compute-heavy)", ratio=0.25)


if __name__ == "__main__":
    main()
