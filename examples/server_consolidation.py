#!/usr/bin/env python
"""Server consolidation: co-schedule two applications under one gate.

The paper throttles a single application, but the MTL gate is a
machine-wide limit — exactly what a consolidated server needs when a
memory-hungry analytics job (streamcluster) lands next to a
latency-sensitive compute kernel (dft).

This example co-schedules the two on one i7-860, with and without a
global throttle, and reports what each program experiences relative
to running alone: mix makespan, per-program slowdowns, and the gantt
of the shared machine.

Run:  python examples/server_consolidation.py
"""

from repro import FixedMtlPolicy, conventional_policy, i7_860, simulate
from repro.analysis import render_table
from repro.sim.gantt import render_gantt
from repro.sim.multiprogram import co_schedule
from repro.units import format_time
from repro.workloads import dft, streamcluster


def main() -> None:
    machine = i7_860()
    solo = {
        program.name: simulate(program, conventional_policy(4), machine).makespan
        for program in (dft(), streamcluster())
    }
    print("solo runtimes:")
    for name, makespan in solo.items():
        print(f"  {name}: {format_time(makespan)}")

    rows = []
    results = {}
    for label, policy in (
        ("conventional", conventional_policy(4)),
        ("global MTL=2", FixedMtlPolicy(2)),
    ):
        result = co_schedule([dft(), streamcluster()], policy, machine)
        results[label] = result
        for name in solo:
            rows.append(
                [
                    label,
                    name,
                    format_time(result.program_finish_time(name)),
                    f"{result.slowdown(name, solo[name]):.3f}x",
                ]
            )
        rows.append(
            [label, "(mix)", format_time(result.combined.makespan), "-"]
        )

    print()
    print(render_table(
        ["policy", "program", "finish time", "slowdown vs solo"], rows
    ))

    conventional_mix = results["conventional"].combined.makespan
    throttled_mix = results["global MTL=2"].combined.makespan
    print(
        f"\nglobal throttling speeds the mix up by "
        f"{conventional_mix / throttled_mix:.3f}x and narrows the worst "
        "per-program slowdown — interference control doubles as a "
        "fairness mechanism.\n"
    )
    print(render_gantt(results["global MTL=2"].combined, width=72))


if __name__ == "__main__":
    main()
