#!/usr/bin/env python
"""Phase adaptation: watch the throttler retune MTL through SIFT.

SIFT's pipeline alternates between memory-hungry convolutions
(ECONVOLVE at 70% memory-to-compute) and compute-dominated ones
(ECONVOLVE2 at 7.8%).  A static MTL is wrong for part of the program
whichever value is picked; the paper's mechanism detects each phase
change through the IdleBound criterion and re-selects (Section VI-D1).

This example runs the full 14-function SIFT trace and prints:

* the MTL timeline (when and why the throttler moved);
* per-function ratios next to the selected MTL;
* the end-to-end speedup against the conventional schedule and
  against the best *static* MTL, showing why dynamic beats static on
  phased programs.

Run:  python examples/adaptive_phases.py
"""

from repro import (
    DynamicThrottlingPolicy,
    conventional_policy,
    i7_860,
    offline_exhaustive_search,
    simulate,
)
from repro.analysis import render_table
from repro.units import format_time
from repro.workloads import SIFT_FUNCTION_RATIOS, sift


def main() -> None:
    program = sift()
    machine = i7_860()
    n = machine.context_count

    baseline = simulate(program, conventional_policy(n), machine)
    throttler = DynamicThrottlingPolicy(context_count=n)
    throttled = simulate(program, throttler, machine)
    offline = offline_exhaustive_search(program, machine)

    print(f"SIFT on {machine.name}: {program.total_pairs} pairs over "
          f"{len(program.phases)} parallel functions\n")

    print("MTL timeline (dynamic throttling):")
    rows = []
    for change in throttled.mtl_changes:
        rows.append(
            [format_time(change.time), str(change.old_mtl),
             str(change.new_mtl), change.reason]
        )
    print(render_table(["time", "from", "to", "reason"], rows))

    print("\nPer-function characteristics (Table III ratios):")
    ratio_rows = [
        [name, f"{ratio * 100:.2f}%"]
        for name, ratio in SIFT_FUNCTION_RATIOS.items()
    ]
    print(render_table(["function", "T_m1/T_c"], ratio_rows))

    conventional_time = baseline.makespan
    print(f"\nconventional:        {format_time(conventional_time)}")
    print(f"best static (MTL={offline.best_mtl}): "
          f"{format_time(offline.best.makespan)}  "
          f"({conventional_time / offline.best.makespan:.3f}x)")
    print(f"dynamic throttling:  {format_time(throttled.makespan)}  "
          f"({conventional_time / throttled.makespan:.3f}x)")
    print(f"selections made:     {len(throttler.selections)}")
    print(f"dominant D-MTL:      {throttled.dominant_mtl()}")
    if throttled.makespan < offline.best.makespan:
        print("\ndynamic beats every static MTL — the phased structure "
              "is exactly what run-time adaptation buys (Section VI-D1).")


if __name__ == "__main__":
    main()
