#!/usr/bin/env python
"""Quickstart: throttle a stream workload and measure the speedup.

This walks the full public API surface in five steps:

1. build a stream program (PARSEC streamcluster, the paper's native
   input, calibrated to its published memory-to-compute ratio);
2. simulate it on the paper's machine (Intel i7-860, 1 DIMM) under the
   conventional interference-oblivious schedule;
3. simulate it again under the dynamic memory-thread-throttling
   mechanism;
4. compare against the analytical model's prediction;
5. print the schedule as a gantt chart so the throttling is visible.

Run:  python examples/quickstart.py
"""

from repro import (
    AnalyticalModel,
    DynamicThrottlingPolicy,
    conventional_policy,
    i7_860,
    simulate,
)
from repro.sim.gantt import render_gantt
from repro.units import format_time
from repro.workloads import streamcluster


def main() -> None:
    # 1. A workload: streamcluster with the native 128-dimension input.
    program = streamcluster()
    machine = i7_860()
    print(f"workload: {program.name} ({program.total_pairs} task pairs)")
    print(f"machine:  {machine.name} ({machine.core_count} cores)\n")

    # 2. The interference-oblivious baseline (MTL = number of cores).
    baseline = simulate(program, conventional_policy(machine.context_count),
                        machine)
    print(f"conventional schedule: {format_time(baseline.makespan)}")

    # 3. The paper's run-time throttling mechanism.
    throttler = DynamicThrottlingPolicy(context_count=machine.context_count)
    throttled = simulate(program, throttler, machine)
    speedup = baseline.makespan / throttled.makespan
    print(f"dynamic throttling:    {format_time(throttled.makespan)}")
    print(f"speedup:               {speedup:.3f}x")
    print(f"selected MTL (D-MTL):  {throttled.dominant_mtl()}")
    print(f"MTL selections made:   {len(throttler.selections)}")
    print(f"monitoring share:      {throttled.probe_task_time_fraction():.2%}\n")

    # 4. What does the analytical model say?  Feed it the measured
    #    T_mk / T_c / T_mn and compare.
    model = AnalyticalModel(core_count=machine.core_count)
    d_mtl = throttled.dominant_mtl()
    t_mk = throttled.mean_memory_duration(mtl=d_mtl)
    t_c = throttled.mean_compute_duration()
    t_mn = baseline.mean_memory_duration()
    predicted = model.speedup(t_mk, t_c, d_mtl, t_mn)
    print(f"analytical prediction: {predicted:.3f}x "
          f"(measured {speedup:.3f}x)")

    # 5. Show the start of both schedules.
    print("\n--- conventional (first view) ---")
    print(render_gantt(baseline, width=72))
    print("\n--- throttled (first view) ---")
    print(render_gantt(throttled, width=72))


if __name__ == "__main__":
    main()
