"""Tests for machine-readable result export."""

import json

import pytest

from repro.analysis.export import result_to_dict, result_to_json, series_to_csv
from repro.analysis.figures import Series
from repro.errors import MeasurementError
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase


def small_result():
    program = StreamProgram("exported", [build_phase("p", 0, 4, 2048, 5e-4)])
    return simulate(program, FixedMtlPolicy(2))


class TestResultExport:
    def test_dict_contains_summary_and_records(self):
        result = small_result()
        data = result_to_dict(result)
        assert data["program"] == "exported"
        assert data["policy"] == "static-mtl-2"
        assert data["makespan"] == pytest.approx(result.makespan)
        assert len(data["records"]) == 8
        kinds = {r["kind"] for r in data["records"]}
        assert kinds == {"memory", "compute"}

    def test_json_round_trips(self):
        text = result_to_json(small_result())
        parsed = json.loads(text)
        assert parsed["context_count"] == 4
        assert parsed["mtl_changes"][0]["new_mtl"] == 2

    def test_records_reconstruct_makespan(self):
        data = result_to_dict(small_result())
        assert max(r["end"] for r in data["records"]) == pytest.approx(
            data["makespan"]
        )


class TestSeriesCsv:
    def test_shared_x_column(self):
        csv = series_to_csv(
            [
                Series("a", ((1.0, 10.0), (2.0, 20.0))),
                Series("b", ((1.0, 11.0), (3.0, 31.0))),
            ]
        )
        lines = csv.strip().splitlines()
        assert lines[0] == "x,a,b"
        assert lines[1] == "1.0,10.0,11.0"
        assert lines[2] == "2.0,20.0,"      # b has no point at x=2
        assert lines[3] == "3.0,,31.0"

    def test_quoting(self):
        csv = series_to_csv([Series('weird,"name"', ((0.0, 1.0),))])
        assert csv.splitlines()[0] == 'x,"weird,""name"""'

    def test_validation(self):
        with pytest.raises(MeasurementError):
            series_to_csv([])
        with pytest.raises(MeasurementError):
            series_to_csv([Series("a", ((0, 0),)), Series("a", ((1, 1),))])
