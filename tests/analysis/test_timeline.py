"""Tests for the MTL/concurrency timeline renderer."""

import pytest

from repro.analysis.timeline import render_timeline
from repro.core import DynamicThrottlingPolicy
from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import simulate
from repro.workloads import synthetic_from_ratio


class TestRenderTimeline:
    def test_rows_have_requested_width(self):
        result = simulate(synthetic_from_ratio(0.5, pairs=16), FixedMtlPolicy(2))
        text = render_timeline(result, width=40)
        lines = text.splitlines()
        assert lines[1].startswith("MTL  |")
        assert len(lines[1]) == len("MTL  |") + 40 + 1
        assert len(lines[2]) == len(lines[1])

    def test_static_policy_shows_constant_mtl(self):
        result = simulate(synthetic_from_ratio(0.5, pairs=16), FixedMtlPolicy(3))
        mtl_row = render_timeline(result, width=30).splitlines()[1]
        body = mtl_row.split("|")[1]
        assert set(body) == {"3"}

    def test_memory_row_never_exceeds_mtl_row(self):
        result = simulate(synthetic_from_ratio(1.0, pairs=24), FixedMtlPolicy(2))
        lines = render_timeline(result, width=50).splitlines()
        mtl_body = lines[1].split("|")[1]
        mem_body = lines[2].split("|")[1]
        for mtl_char, mem_char in zip(mtl_body, mem_body):
            mtl = int(mtl_char) if mtl_char != "." else 0
            mem = int(mem_char) if mem_char != "." else 0
            assert mem <= mtl

    def test_dynamic_policy_shows_the_switch(self):
        result = simulate(
            synthetic_from_ratio(0.25, pairs=120),
            DynamicThrottlingPolicy(context_count=4),
        )
        mtl_body = render_timeline(result, width=60).splitlines()[1].split("|")[1]
        assert "4" in mtl_body  # initial unthrottled monitoring
        assert "1" in mtl_body  # the selected D-MTL

    def test_empty_result(self):
        empty = SimulationResult(
            program_name="p", machine_name="m", policy_name="pol",
            context_count=1, records=(), mtl_changes=(),
        )
        assert "empty timeline" in render_timeline(empty)

    def test_rejects_tiny_width(self):
        result = simulate(synthetic_from_ratio(0.5, pairs=4), FixedMtlPolicy(1))
        with pytest.raises(ConfigurationError):
            render_timeline(result, width=4)
