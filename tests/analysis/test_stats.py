"""Tests for statistics helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.analysis.stats import (
    arithmetic_mean,
    geometric_mean,
    linear_fit,
    stdev,
)
from repro.errors import MeasurementError


class TestGeometricMean:
    def test_known_value(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_identity_on_constant(self):
        assert geometric_mean([1.12, 1.12, 1.12]) == pytest.approx(1.12)

    def test_rejects_empty_and_non_positive(self):
        with pytest.raises(MeasurementError):
            geometric_mean([])
        with pytest.raises(MeasurementError):
            geometric_mean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=1,
                    max_size=12))
    def test_property_bounded_by_extremes(self, values):
        gm = geometric_mean(values)
        assert min(values) - 1e-12 <= gm <= max(values) + 1e-12

    @given(st.lists(st.floats(min_value=0.5, max_value=2.0), min_size=2,
                    max_size=12))
    def test_property_never_exceeds_arithmetic_mean(self, values):
        assert geometric_mean(values) <= arithmetic_mean(values) + 1e-12


class TestBasicStats:
    def test_mean_and_stdev(self):
        assert arithmetic_mean([1.0, 3.0]) == 2.0
        assert stdev([2.0, 2.0, 2.0]) == 0.0
        assert stdev([1.0, 3.0]) == pytest.approx(1.0)

    def test_empty_samples_rejected(self):
        with pytest.raises(MeasurementError):
            arithmetic_mean([])
        with pytest.raises(MeasurementError):
            stdev([])


class TestLinearFit:
    def test_exact_line(self):
        fit = linear_fit([1, 2, 3, 4], [3, 5, 7, 9])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(10) == pytest.approx(21.0)

    def test_noisy_line_has_high_r_squared(self):
        xs = list(range(10))
        ys = [2.0 * x + 1.0 + (0.1 if x % 2 else -0.1) for x in xs]
        fit = linear_fit(xs, ys)
        assert fit.r_squared > 0.99

    def test_validation(self):
        with pytest.raises(MeasurementError):
            linear_fit([1], [2])
        with pytest.raises(MeasurementError):
            linear_fit([1, 2], [3])
        with pytest.raises(MeasurementError):
            linear_fit([2, 2], [1, 3])
