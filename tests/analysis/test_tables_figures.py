"""Tests for table rendering, figures, and report formatting."""

import pytest

from repro.analysis.figures import Series, ascii_chart
from repro.analysis.report import (
    format_comparison,
    format_comparison_grid,
    geomean_improvement,
)
from repro.analysis.tables import format_percent, format_speedup, render_table
from repro.errors import MeasurementError
from repro.runtime.experiment import ComparisonResult, PolicyOutcome


def comparison(name="wl", speedup=1.1, mtl=2, stats=None):
    outcome = PolicyOutcome(
        policy_name="dyn", makespan=1.0, speedup=speedup,
        selected_mtl=mtl, probe_fraction=0.01, stats=stats,
    )
    return ComparisonResult(
        program_name=name, machine_name="i7-860/1ch",
        baseline_makespan=speedup, outcomes=(outcome,),
    )


class TestRenderTable:
    def test_alignment(self):
        text = render_table(["A", "Benchmark"], [["x", "y"], ["long", "z"]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines[1:])
        assert "Benchmark" in lines[0]

    def test_rejects_ragged_rows(self):
        with pytest.raises(MeasurementError):
            render_table(["A", "B"], [["only-one"]])
        with pytest.raises(MeasurementError):
            render_table([], [])

    def test_formatters(self):
        assert format_percent(0.3714) == "37.14%"
        assert format_percent(0.0004, decimals=2) == "0.04%"
        assert format_speedup(1.2129) == "1.213x"


class TestSeriesAndChart:
    def test_series_accessors(self):
        series = Series("measured", ((0.1, 1.0), (0.2, 1.1)))
        assert series.xs == [0.1, 0.2]
        assert series.ys == [1.0, 1.1]

    def test_series_validation(self):
        with pytest.raises(MeasurementError):
            Series("", ((0, 0),))
        with pytest.raises(MeasurementError):
            Series("x", ((0, 0),), marker="ab")

    def test_chart_contains_markers_and_legend(self):
        chart = ascii_chart(
            [
                Series("analytical", ((0.0, 1.0), (1.0, 1.2)), marker="."),
                Series("measured", ((0.0, 1.0), (1.0, 1.19)), marker="*"),
            ],
            title="Figure 13",
        )
        assert "Figure 13" in chart
        assert "*" in chart and "." in chart
        assert "analytical" in chart and "measured" in chart

    def test_chart_validation(self):
        with pytest.raises(MeasurementError):
            ascii_chart([], title="empty")
        with pytest.raises(MeasurementError):
            ascii_chart([Series("s", ((0, 0),))], width=4)


class TestReportFormatting:
    def test_format_comparison_mentions_everything(self):
        text = format_comparison(comparison())
        assert "wl" in text
        assert "dyn" in text
        assert "1.100x" in text

    def test_stats_off_by_default_and_on_request(self):
        with_stats = comparison(
            stats=(("windows_closed", 3.0), ("probes", 12.0))
        )
        assert "policy stats" not in format_comparison(with_stats)
        text = format_comparison(with_stats, include_stats=True)
        assert "policy stats (instrumented run):" in text
        assert "dyn: windows_closed=3 probes=12" in text

    def test_stats_block_omitted_when_no_policy_has_counters(self):
        # stats=None (static policies) must not leave an empty block.
        text = format_comparison(comparison(), include_stats=True)
        assert "policy stats" not in text

    def test_grid_one_row_per_workload(self):
        text = format_comparison_grid(
            [comparison("a"), comparison("b")], ["dyn"]
        )
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, two rows

    def test_geomean_improvement(self):
        results = [comparison(speedup=1.1), comparison(speedup=1.1)]
        assert geomean_improvement(results, "dyn") == pytest.approx(0.1)
