"""Unit tests for the task dependency graph."""

import pytest

from repro.errors import TaskGraphError
from repro.stream.graph import TaskGraph
from repro.stream.task import Task, TaskKind, compute_task, memory_task


def chain(n: int):
    """M[0] <- C[0] <- M[1] <- C[1] ... a strict dependency chain."""
    tasks = []
    previous = None
    for i in range(n):
        mem_deps = (previous,) if previous else ()
        mem = memory_task(f"M{i}", requests=10, depends_on=mem_deps)
        comp = compute_task(f"C{i}", cpu_seconds=1e-3, depends_on=(f"M{i}",))
        tasks.extend([mem, comp])
        previous = f"C{i}"
    return tasks


class TestConstruction:
    def test_rejects_duplicate_ids(self):
        with pytest.raises(TaskGraphError):
            TaskGraph([memory_task("m", requests=1), memory_task("m", requests=2)])

    def test_rejects_unknown_dependency(self):
        with pytest.raises(TaskGraphError):
            TaskGraph([compute_task("c", cpu_seconds=1e-3, depends_on=("ghost",))])

    def test_rejects_self_dependency(self):
        with pytest.raises(TaskGraphError):
            TaskGraph([compute_task("c", cpu_seconds=1e-3, depends_on=("c",))])

    def test_rejects_cycle(self):
        a = Task(task_id="a", kind=TaskKind.COMPUTE, cpu_seconds=1e-3, depends_on=("b",))
        b = Task(task_id="b", kind=TaskKind.COMPUTE, cpu_seconds=1e-3, depends_on=("a",))
        with pytest.raises(TaskGraphError) as exc:
            TaskGraph([a, b])
        assert "cycle" in str(exc.value)

    def test_len_and_contains(self):
        graph = TaskGraph(chain(3))
        assert len(graph) == 6
        assert "M0" in graph
        assert "ghost" not in graph


class TestQueries:
    def test_task_lookup(self):
        graph = TaskGraph(chain(2))
        assert graph.task("M1").is_memory
        with pytest.raises(TaskGraphError):
            graph.task("ghost")

    def test_dependents(self):
        graph = TaskGraph(chain(2))
        assert [t.task_id for t in graph.dependents("M0")] == ["C0"]
        assert [t.task_id for t in graph.dependents("C0")] == ["M1"]
        assert graph.dependents("C1") == []
        with pytest.raises(TaskGraphError):
            graph.dependents("ghost")

    def test_ready_tasks_initially_only_roots(self):
        graph = TaskGraph(chain(3))
        assert [t.task_id for t in graph.ready_tasks(frozenset())] == ["M0"]

    def test_ready_tasks_after_completion(self):
        graph = TaskGraph(chain(2))
        ready = graph.ready_tasks(frozenset({"M0"}))
        assert [t.task_id for t in ready] == ["C0"]

    def test_ready_tasks_excludes_completed(self):
        graph = TaskGraph(chain(1))
        assert graph.ready_tasks(frozenset({"M0", "C0"})) == []

    def test_independent_pairs_all_memory_tasks_ready(self):
        tasks = []
        for i in range(4):
            tasks.append(memory_task(f"M{i}", requests=10))
            tasks.append(
                compute_task(f"C{i}", cpu_seconds=1e-3, depends_on=(f"M{i}",))
            )
        graph = TaskGraph(tasks)
        ready_ids = {t.task_id for t in graph.ready_tasks(frozenset())}
        assert ready_ids == {"M0", "M1", "M2", "M3"}


class TestOrdering:
    def test_topological_order_respects_dependencies(self):
        graph = TaskGraph(chain(4))
        order = [t.task_id for t in graph.topological_order()]
        position = {tid: i for i, tid in enumerate(order)}
        for task in graph:
            for dep in task.depends_on:
                assert position[dep] < position[task.task_id]

    def test_critical_path_of_chain_is_whole_chain(self):
        graph = TaskGraph(chain(3))
        assert graph.critical_path_ids() == ["M0", "C0", "M1", "C1", "M2", "C2"]

    def test_critical_path_of_parallel_pairs_is_one_pair(self):
        tasks = [
            memory_task("M0", requests=10),
            compute_task("C0", cpu_seconds=1e-3, depends_on=("M0",)),
            memory_task("M1", requests=10),
            compute_task("C1", cpu_seconds=1e-3, depends_on=("M1",)),
        ]
        path = TaskGraph(tasks).critical_path_ids()
        assert len(path) == 2

    def test_empty_graph(self):
        graph = TaskGraph([])
        assert len(graph) == 0
        assert graph.topological_order() == []
        assert graph.critical_path_ids() == []
