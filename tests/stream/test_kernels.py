"""Tests for the executable gather-compute-scatter kernels."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.errors import TaskGraphError, WorkloadError
from repro.stream.graph import TaskGraph
from repro.stream.kernels import (
    FunctionalExecutor,
    figure2_original,
    figure2_streamed,
    figure12_original,
    figure12_streamed,
    gather,
    scatter,
)
from repro.stream.task import compute_task, memory_task


class TestGatherScatter:
    def test_gather_copies(self):
        array = np.arange(10.0)
        stream = gather(array, 2, 5)
        stream[:] = -1
        assert array[2] == 2.0  # original untouched

    def test_scatter_writes_back(self):
        array = np.zeros(10)
        scatter(np.array([7.0, 8.0]), array, 4)
        assert array[4] == 7.0 and array[5] == 8.0

    def test_bounds_are_checked(self):
        array = np.zeros(4)
        with pytest.raises(WorkloadError):
            gather(array, 2, 6)
        with pytest.raises(WorkloadError):
            scatter(np.zeros(3), array, 2)


class TestFigure2:
    def test_streamed_matches_original(self):
        rng = np.random.default_rng(0)
        a = rng.normal(size=1000)
        b = rng.normal(size=1000)
        np.testing.assert_allclose(
            figure2_streamed(a, b, tile_elements=128), figure2_original(a, b)
        )

    @given(
        n=st.integers(min_value=1, max_value=300),
        tile=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=100),
    )
    def test_property_any_tiling_preserves_semantics(self, n, tile, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=n)
        b = rng.normal(size=n)
        np.testing.assert_allclose(
            figure2_streamed(a, b, tile), figure2_original(a, b)
        )

    def test_shape_mismatch_rejected(self):
        with pytest.raises(WorkloadError):
            figure2_original(np.zeros(3), np.zeros(4))
        with pytest.raises(WorkloadError):
            figure2_streamed(np.zeros(3), np.zeros(4), 2)


class TestFigure12:
    def test_streamed_matches_original(self):
        np.testing.assert_allclose(
            figure12_streamed(1000, count=5, tile_elements=64),
            figure12_original(1000, count=5),
        )

    def test_count_zero_is_pure_memory(self):
        result = figure12_streamed(100, count=0, tile_elements=32, const=3.0)
        np.testing.assert_allclose(result, np.full(100, 3.0))

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(WorkloadError):
            figure12_original(0, 1)
        with pytest.raises(WorkloadError):
            figure12_original(10, -1)
        with pytest.raises(WorkloadError):
            figure12_streamed(10, 1, 0)


class TestFunctionalExecutor:
    def make_graph(self):
        return TaskGraph(
            [
                memory_task("M0", requests=10),
                compute_task("C0", cpu_seconds=1e-3, depends_on=("M0",)),
                memory_task("M1", requests=10, depends_on=("C0",)),
                compute_task("C1", cpu_seconds=1e-3, depends_on=("M1",)),
            ]
        )

    def test_runs_in_dependency_order(self):
        executor = FunctionalExecutor(graph=self.make_graph())
        order = executor.run()
        assert order.index("M0") < order.index("C0") < order.index("M1")

    def test_bound_actions_execute_and_compose(self):
        data = {"value": 0}
        executor = FunctionalExecutor(graph=self.make_graph())
        executor.bind("M0", lambda: data.__setitem__("value", 1))
        executor.bind("C0", lambda: data.__setitem__("value", data["value"] * 10))
        executor.run()
        assert data["value"] == 10

    def test_bind_unknown_task_rejected(self):
        executor = FunctionalExecutor(graph=self.make_graph())
        with pytest.raises(TaskGraphError):
            executor.bind("ghost", lambda: None)

    def test_unbound_tasks_are_noops(self):
        executor = FunctionalExecutor(graph=self.make_graph())
        assert len(executor.run()) == 4
