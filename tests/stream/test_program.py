"""Unit tests for phased stream programs."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.stream.program import ProgramPhase, StreamProgram, build_phase


def two_phase_program() -> StreamProgram:
    first = build_phase(
        "gather-heavy",
        phase_index=0,
        pair_count=4,
        requests_per_memory_task=8192,
        compute_seconds_per_task=1e-3,
    )
    second = build_phase(
        "compute-heavy",
        phase_index=1,
        pair_count=3,
        requests_per_memory_task=1024,
        compute_seconds_per_task=5e-3,
    )
    return StreamProgram("two-phase", [first, second])


class TestBuildPhase:
    def test_builds_equally_sized_pairs(self):
        phase = build_phase(
            "p", phase_index=0, pair_count=5,
            requests_per_memory_task=100, compute_seconds_per_task=1e-4,
        )
        assert phase.pair_count == 5
        assert phase.mean_memory_requests() == pytest.approx(100)
        assert phase.mean_compute_seconds() == pytest.approx(1e-4)
        assert len({p.memory.memory_requests for p in phase.pairs}) == 1

    def test_ids_encode_phase_and_pair(self):
        phase = build_phase(
            "p", phase_index=2, pair_count=2,
            requests_per_memory_task=1, compute_seconds_per_task=1e-4,
        )
        assert phase.pairs[1].memory.task_id == "M[2.1]"
        assert phase.pairs[1].compute.task_id == "C[2.1]"

    def test_rejects_non_positive_pair_count(self):
        with pytest.raises(ConfigurationError):
            build_phase("p", 0, 0, 1, 1e-4)

    def test_spill_requests_propagate_to_compute_tasks(self):
        phase = build_phase(
            "p", phase_index=0, pair_count=2,
            requests_per_memory_task=100, compute_seconds_per_task=1e-4,
            compute_spill_requests=25.0,
        )
        assert all(p.compute.memory_requests == 25.0 for p in phase.pairs)


class TestProgramPhase:
    def test_rejects_empty_name_or_pairs(self):
        phase = build_phase("p", 0, 1, 1, 1e-4)
        with pytest.raises(ConfigurationError):
            ProgramPhase(name="", pairs=phase.pairs)
        with pytest.raises(ConfigurationError):
            ProgramPhase(name="p", pairs=())

    def test_memory_to_compute_ratio(self):
        phase = build_phase(
            "p", 0, 4, requests_per_memory_task=1000,
            compute_seconds_per_task=1e-3,
        )
        # T_m1 = 1000 * 100ns = 100us, T_c = 1ms -> ratio 0.1.
        assert phase.memory_to_compute_ratio(100e-9) == pytest.approx(0.1)

    def test_ratio_positive_for_any_valid_phase(self):
        # Task validation guarantees compute tasks carry work, so the
        # ratio is always defined and positive for constructible phases.
        phase = build_phase("p", 0, 1, requests_per_memory_task=10,
                            compute_seconds_per_task=1e-4)
        assert phase.memory_to_compute_ratio(1e-7) > 0


class TestStreamProgram:
    def test_rejects_empty_program(self):
        with pytest.raises(ConfigurationError):
            StreamProgram("empty", [])
        with pytest.raises(ConfigurationError):
            StreamProgram("", [build_phase("p", 0, 1, 1, 1e-4)])

    def test_total_pairs_sums_phases(self):
        assert two_phase_program().total_pairs == 7

    def test_all_pairs_flattens_in_phase_order(self):
        pairs = two_phase_program().all_pairs()
        assert len(pairs) == 7
        assert [p.phase_index for p in pairs] == [0, 0, 0, 0, 1, 1, 1]


class TestTaskGraphConversion:
    def test_graph_contains_every_task(self):
        graph = two_phase_program().to_task_graph()
        assert len(graph) == 14

    def test_phase_barrier_edges(self):
        graph = two_phase_program().to_task_graph()
        # Every phase-1 memory task depends on every phase-0 compute task.
        phase0_computes = {f"C[0.{i}]" for i in range(4)}
        for i in range(3):
            deps = set(graph.task(f"M[1.{i}]").depends_on)
            assert phase0_computes <= deps

    def test_first_phase_memory_tasks_are_roots(self):
        graph = two_phase_program().to_task_graph()
        ready = {t.task_id for t in graph.ready_tasks(frozenset())}
        assert ready == {f"M[0.{i}]" for i in range(4)}

    def test_graph_is_acyclic_and_orderable(self):
        order = two_phase_program().to_task_graph().topological_order()
        assert len(order) == 14
        # All phase-0 tasks come before any phase-1 task.
        boundary = [t.phase_index for t in order]
        assert boundary == sorted(boundary)
