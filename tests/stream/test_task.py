"""Unit and property tests for the stream task model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.stream.task import Task, TaskKind, TaskPair, compute_task, memory_task


class TestTaskValidation:
    def test_rejects_empty_id(self):
        with pytest.raises(ConfigurationError):
            memory_task("", requests=10)

    def test_rejects_negative_cpu_seconds(self):
        with pytest.raises(ConfigurationError):
            Task(task_id="t", kind=TaskKind.COMPUTE, cpu_seconds=-1.0)

    def test_rejects_negative_requests(self):
        with pytest.raises(ConfigurationError):
            Task(task_id="t", kind=TaskKind.MEMORY, memory_requests=-1.0)

    def test_rejects_negative_footprint(self):
        with pytest.raises(ConfigurationError):
            memory_task("t", requests=1, footprint_bytes=-1)

    def test_rejects_workless_task(self):
        with pytest.raises(ConfigurationError):
            Task(task_id="t", kind=TaskKind.COMPUTE)


class TestTaskFactories:
    def test_memory_task_is_pure_memory(self):
        task = memory_task("m", requests=8192, footprint_bytes=8192 * 64)
        assert task.is_memory and not task.is_compute
        assert task.cpu_seconds == 0.0
        assert task.memory_requests == 8192

    def test_compute_task_defaults_to_miss_free(self):
        task = compute_task("c", cpu_seconds=1e-3, depends_on=("m",))
        assert task.is_compute and not task.is_memory
        assert task.memory_requests == 0.0

    def test_compute_task_can_carry_spill_traffic(self):
        task = compute_task("c", cpu_seconds=1e-3, spilled_requests=512.0)
        assert task.memory_requests == 512.0


class TestDurationAndDemand:
    def test_memory_task_duration_scales_with_latency(self):
        task = memory_task("m", requests=1000)
        assert task.duration_at_latency(64e-9) == pytest.approx(64e-6)
        assert task.duration_at_latency(128e-9) == pytest.approx(128e-6)

    def test_compute_task_duration_is_latency_invariant_when_miss_free(self):
        task = compute_task("c", cpu_seconds=2e-3, depends_on=("m",))
        assert task.duration_at_latency(64e-9) == task.duration_at_latency(640e-9)

    def test_spilling_compute_task_duration_grows_with_latency(self):
        task = compute_task("c", cpu_seconds=2e-3, spilled_requests=1000.0)
        assert task.duration_at_latency(128e-9) > task.duration_at_latency(64e-9)

    def test_duration_rejects_negative_latency(self):
        with pytest.raises(ConfigurationError):
            memory_task("m", requests=1).duration_at_latency(-1.0)

    def test_memory_task_demand_is_pure(self):
        demand = memory_task("m", requests=100).demand()
        assert demand.cpu_seconds_per_unit == 0.0
        assert demand.requests_per_unit == pytest.approx(1.0)

    def test_compute_task_demand_is_pure_cpu(self):
        demand = compute_task("c", cpu_seconds=1e-3).demand()
        assert demand.requests_per_unit == 0.0
        assert demand.cpu_seconds_per_unit > 0.0

    @given(
        cpu=st.floats(min_value=1e-6, max_value=1.0),
        requests=st.floats(min_value=1.0, max_value=1e6),
        latency=st.floats(min_value=1e-9, max_value=1e-6),
    )
    def test_property_demand_reconstructs_duration(self, cpu, requests, latency):
        # work_units * per-unit cost must equal the closed-form duration.
        task = Task(
            task_id="t",
            kind=TaskKind.COMPUTE,
            cpu_seconds=cpu,
            memory_requests=requests,
        )
        demand = task.demand()
        per_unit = demand.cpu_seconds_per_unit + demand.requests_per_unit * latency
        assert task.work_units * per_unit == pytest.approx(
            task.duration_at_latency(latency), rel=1e-9
        )


class TestTaskPair:
    def test_valid_pair(self):
        mem = memory_task("m", requests=10, pair_index=3, phase_index=1)
        comp = compute_task("c", cpu_seconds=1e-3, depends_on=("m",))
        pair = TaskPair(memory=mem, compute=comp)
        assert pair.pair_index == 3
        assert pair.phase_index == 1

    def test_rejects_swapped_kinds(self):
        mem = memory_task("m", requests=10)
        comp = compute_task("c", cpu_seconds=1e-3, depends_on=("m",))
        with pytest.raises(ConfigurationError):
            TaskPair(memory=comp, compute=mem)

    def test_rejects_missing_dependency_edge(self):
        mem = memory_task("m", requests=10)
        orphan = compute_task("c", cpu_seconds=1e-3)
        with pytest.raises(ConfigurationError):
            TaskPair(memory=mem, compute=orphan)
