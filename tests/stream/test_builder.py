"""Unit tests for loop decomposition."""

import pytest

from repro.errors import ConfigurationError, WorkloadError
from repro.memory.cache import LastLevelCache
from repro.stream.builder import decompose_loop
from repro.units import CACHE_LINE_BYTES, mebibytes


def i7_llc() -> LastLevelCache:
    return LastLevelCache(capacity_bytes=mebibytes(8), sharers=4)


class TestDecomposeLoop:
    def test_equal_tiles(self):
        phase = decompose_loop(
            "loop", total_bytes=mebibytes(8), tile_bytes=mebibytes(1),
            compute_seconds_per_byte=1e-9,
        )
        assert phase.pair_count == 8
        lines = mebibytes(1) // CACHE_LINE_BYTES
        assert phase.mean_memory_requests() == pytest.approx(lines)

    def test_ragged_final_tile_rounds_up_pair_count(self):
        phase = decompose_loop(
            "loop", total_bytes=mebibytes(8) + 1, tile_bytes=mebibytes(1),
            compute_seconds_per_byte=1e-9,
        )
        assert phase.pair_count == 9

    def test_tile_larger_than_loop_shrinks_to_loop(self):
        phase = decompose_loop(
            "loop", total_bytes=mebibytes(1), tile_bytes=mebibytes(4),
            compute_seconds_per_byte=1e-9, cache=i7_llc(),
        )
        assert phase.pair_count == 1
        assert phase.pairs[0].memory.footprint_bytes == mebibytes(1)

    def test_compute_time_scales_with_tile(self):
        phase = decompose_loop(
            "loop", total_bytes=mebibytes(4), tile_bytes=mebibytes(0.5),
            compute_seconds_per_byte=2e-9,
        )
        assert phase.mean_compute_seconds() == pytest.approx(2e-9 * mebibytes(0.5))

    def test_cache_contract_enforced_by_default(self):
        with pytest.raises(WorkloadError):
            decompose_loop(
                "loop", total_bytes=mebibytes(16), tile_bytes=mebibytes(2),
                compute_seconds_per_byte=1e-9, cache=i7_llc(),
            )

    def test_spill_mode_attaches_misses_to_compute_tasks(self):
        phase = decompose_loop(
            "loop", total_bytes=mebibytes(16), tile_bytes=mebibytes(2),
            compute_seconds_per_byte=1e-9, cache=i7_llc(), allow_spill=True,
        )
        spill = phase.pairs[0].compute.memory_requests
        expected = 0.125 * (mebibytes(2) // CACHE_LINE_BYTES)
        assert spill == pytest.approx(expected)

    def test_fitting_tile_never_spills(self):
        phase = decompose_loop(
            "loop", total_bytes=mebibytes(16), tile_bytes=mebibytes(1),
            compute_seconds_per_byte=1e-9, cache=i7_llc(), allow_spill=True,
        )
        assert all(p.compute.memory_requests == 0.0 for p in phase.pairs)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(WorkloadError):
            decompose_loop("loop", total_bytes=0, tile_bytes=1,
                           compute_seconds_per_byte=1e-9)
        with pytest.raises(ConfigurationError):
            decompose_loop("loop", total_bytes=10, tile_bytes=0,
                           compute_seconds_per_byte=1e-9)
        with pytest.raises(ConfigurationError):
            decompose_loop("loop", total_bytes=10, tile_bytes=1,
                           compute_seconds_per_byte=-1.0)
        with pytest.raises(WorkloadError):
            decompose_loop("loop", total_bytes=10, tile_bytes=1,
                           compute_seconds_per_byte=0.0)
