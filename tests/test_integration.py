"""End-to-end integration scenarios across the whole library.

Each test walks a realistic user journey through multiple subsystems
— the kind of composition no unit test exercises.
"""

import json

import pytest

from repro.analysis import result_to_dict, series_to_csv
from repro.analysis.figures import Series
from repro.core import (
    AnalyticalModel,
    DynamicThrottlingPolicy,
    conventional_policy,
    offline_exhaustive_search,
    s_mtl_regions,
)
from repro.memory.calibration import calibrate_linear_model
from repro.runtime import characterize, compare_policies, run_suite
from repro.sim import Simulator, i7_860, simulate
from repro.sim.scheduler import FixedMtlPolicy
from repro.workloads import streamcluster, synthetic_from_ratio
from repro.workloads.spec import parse_workload_spec


class TestCharacterizeThenThrottle:
    """Profile a workload, trust the prediction, verify it holds."""

    def test_prediction_matches_execution(self):
        program = streamcluster()
        machine = i7_860()

        character = characterize(program, machine)
        predicted_mtl = character.phases[0].predicted_mtl
        predicted_speedup = character.phases[0].predicted_speedup

        baseline = simulate(program, conventional_policy(4), machine)
        throttled = simulate(
            program, DynamicThrottlingPolicy(context_count=4), machine
        )
        assert throttled.dominant_mtl() == predicted_mtl
        measured_speedup = baseline.makespan / throttled.makespan
        # Prediction is steady-state; execution includes monitoring.
        assert measured_speedup == pytest.approx(predicted_speedup, abs=0.05)


class TestCalibrateThenSimulate:
    """Re-derive the contention law from DRAM and run the machine on it."""

    def test_calibrated_machine_reproduces_throttling_gain(self):
        calibration = calibrate_linear_model(requests_per_stream=512)
        machine = i7_860(contention=calibration.model)
        # Ratios are machine-relative: re-anchor the workload to the
        # calibrated machine's own solo latency via characterisation.
        program = synthetic_from_ratio(0.5, pairs=96)
        outcome = offline_exhaustive_search(program, machine)
        assert outcome.speedup_over(machine.context_count) > 1.0


class TestRegionsPredictSweeps:
    """The exact region algebra agrees with simulated offline search."""

    @pytest.mark.parametrize("probe", [0.15, 0.6, 2.0])
    def test_region_mtl_matches_offline_search(self, probe):
        machine = i7_860()
        regions = s_mtl_regions(machine.memory.contention)
        region = next(r for r in regions if r.contains(probe))
        outcome = offline_exhaustive_search(
            synthetic_from_ratio(probe, pairs=96), machine
        )
        assert outcome.best_mtl == region.mtl


class TestSpecToExport:
    """JSON spec in, simulated, JSON results out."""

    def test_full_pipeline(self):
        document = {
            "name": "pipeline",
            "phases": [
                {"name": "hot", "pairs": 24, "ratio": 0.6},
                {"name": "cold", "pairs": 24, "ratio": 0.1},
            ],
        }
        program = parse_workload_spec(document)
        policy = DynamicThrottlingPolicy(context_count=4, window_pairs=8)
        result = simulate(program, policy)
        exported = result_to_dict(result)
        assert exported["program"] == "pipeline"
        assert len(exported["records"]) == 96
        # The export is valid JSON end to end.
        assert json.loads(json.dumps(exported))["policy"] == "dynamic-throttling"


class TestSuiteToCsv:
    """Grid run exported for external tooling."""

    def test_suite_rows_round_trip_through_csv(self):
        suite = run_suite(
            workloads={"w": lambda: synthetic_from_ratio(0.3, pairs=16)},
            machines=[i7_860()],
            policies={"static-1": lambda m: FixedMtlPolicy(1)},
        )
        csv = suite.to_csv()
        header, row = csv.strip().splitlines()
        cells = row.split(",")
        assert cells[0] == "w"
        assert float(cells[4]) == pytest.approx(suite.rows[0].speedup)


class TestModelAgainstSimulatorEverywhere:
    """The analytical model, fed measured times, predicts makespans."""

    @pytest.mark.parametrize("ratio,mtl", [(0.2, 1), (0.8, 2), (2.0, 3)])
    def test_execution_time_formula(self, ratio, mtl):
        pairs = 96
        program = synthetic_from_ratio(ratio, pairs=pairs)
        result = simulate(program, FixedMtlPolicy(mtl))
        model = AnalyticalModel(core_count=4)
        t_mk = result.mean_memory_duration(mtl=mtl)
        t_c = result.mean_compute_duration()
        predicted = model.execution_time(t_mk, t_c, mtl, pairs)
        assert result.makespan == pytest.approx(predicted, rel=0.06)
