"""Tests of the top-level public API surface.

These are the guarantees a downstream user relies on: the documented
names import from ``repro`` directly, the quickstart in the package
docstring actually runs, and the error hierarchy has a single root.
"""

import pytest

import repro
from repro import errors


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_docstring_quickstart_runs(self):
        from repro import DynamicThrottlingPolicy, conventional_policy, i7_860, simulate
        from repro.workloads import streamcluster

        program = streamcluster()
        machine = i7_860()
        base = simulate(program, conventional_policy(4), machine)
        fast = simulate(program, DynamicThrottlingPolicy(4), machine)
        assert base.makespan / fast.makespan > 1.0


class TestErrorHierarchy:
    def test_single_root(self):
        subclasses = [
            errors.ConfigurationError,
            errors.SchedulingError,
            errors.SimulationError,
            errors.TaskGraphError,
            errors.WorkloadError,
            errors.ModelError,
            errors.MeasurementError,
        ]
        for cls in subclasses:
            assert issubclass(cls, errors.ReproError)

    def test_library_errors_are_catchable_at_the_root(self):
        from repro import AnalyticalModel

        with pytest.raises(errors.ReproError):
            AnalyticalModel(core_count=0)


class TestSubpackageDocs:
    def test_every_public_module_has_a_docstring(self):
        import importlib
        import pkgutil

        packages = ["repro"]
        seen = []
        while packages:
            package_name = packages.pop()
            package = importlib.import_module(package_name)
            assert package.__doc__, package_name
            seen.append(package_name)
            if hasattr(package, "__path__"):
                for info in pkgutil.iter_modules(package.__path__):
                    packages.append(f"{package_name}.{info.name}")
        assert len(seen) > 30  # the whole tree was walked
