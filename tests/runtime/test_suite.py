"""Tests for the batch experiment suite runner."""

import pytest

from repro.core import DynamicThrottlingPolicy
from repro.errors import ConfigurationError, MeasurementError
from repro.runtime.suite import run_suite
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.workloads import synthetic_from_ratio


def small_suite():
    return run_suite(
        workloads={
            "compute-bound": lambda: synthetic_from_ratio(0.2, pairs=24),
            "memory-bound": lambda: synthetic_from_ratio(1.5, pairs=24),
        },
        machines=[i7_860(channels=1), i7_860(channels=2)],
        policies={
            "static-1": lambda machine: FixedMtlPolicy(1),
            "dynamic": lambda machine: DynamicThrottlingPolicy(
                context_count=machine.context_count
            ),
        },
    )


class TestRunSuite:
    def test_full_grid(self):
        suite = small_suite()
        assert len(suite.rows) == 2 * 2 * 2

    def test_cell_lookup(self):
        suite = small_suite()
        cell = suite.cell("compute-bound", "i7-860/1ch", "static-1")
        assert cell.speedup > 1.0
        assert cell.selected_mtl == 1

    def test_filter(self):
        suite = small_suite()
        assert len(suite.filter(policy="dynamic")) == 4
        assert len(suite.filter(machine="i7-860/2ch", policy="dynamic")) == 2

    def test_missing_cell_raises(self):
        with pytest.raises(MeasurementError):
            small_suite().cell("ghost", "i7-860/1ch", "static-1")

    def test_speedups_are_per_cell_baselines(self):
        suite = small_suite()
        # Over-throttling the memory-bound workload must lose.
        losing = suite.cell("memory-bound", "i7-860/1ch", "static-1")
        assert losing.speedup < 1.0
        winning = suite.cell("compute-bound", "i7-860/1ch", "static-1")
        assert winning.speedup > 1.0

    def test_csv_export(self):
        csv = small_suite().to_csv()
        lines = csv.strip().splitlines()
        assert lines[0].startswith("workload,machine,policy")
        assert len(lines) == 9

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            run_suite({}, [i7_860()], {"p": lambda m: FixedMtlPolicy(1)})
        with pytest.raises(ConfigurationError):
            run_suite(
                {"w": lambda: synthetic_from_ratio(0.2, pairs=4)},
                [i7_860(), i7_860()],  # duplicate names
                {"p": lambda m: FixedMtlPolicy(1)},
            )
