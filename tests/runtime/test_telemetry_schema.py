"""Telemetry schema conformance: emitted records, validator, and docs.

Three layers of the same contract:

1. every record the executor actually emits validates against
   :data:`~repro.runtime.telemetry.EVENT_SCHEMAS`;
2. :func:`~repro.runtime.telemetry.validate_record` rejects every
   malformation, naming the offending field;
3. the tables in ``docs/telemetry.md`` are parsed and compared field
   by field (names *and* types) against :data:`EVENT_SCHEMAS`, so the
   documentation cannot drift from the code without failing here.
"""

import io
import pathlib
import re

import pytest

from repro.errors import MeasurementError
from repro.runtime.cache import ResultCache
from repro.runtime.faults import FaultPlan
from repro.runtime.parallel import SweepExecutor, SweepPoint
from repro.runtime.telemetry import (
    EVENT_SCHEMAS,
    TELEMETRY_SCHEMA_VERSION,
    TelemetryWriter,
    cache_quarantine_event,
    equilibrium_warm_event,
    fault_event,
    point_event,
    point_failure_event,
    policy_selection_event,
    policy_stat_event,
    profile_event,
    read_telemetry,
    retry_event,
    snapshot_cache_event,
    sweep_event,
    validate_record,
)

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "telemetry.md"

POINTS = [
    SweepPoint(
        workload={"kind": "synthetic", "ratio": ratio, "pairs": 16},
        policy={"kind": "static", "mtl": 2},
        label=f"schema/r={ratio:g}",
    )
    for ratio in (0.2, 0.5, 1.0)
]


def emit_everything(tmp_path):
    """One run that produces every event kind."""
    sink = io.StringIO()
    # error_rate=1 with retries=1 fails the first point set; a second
    # healthy cached run adds point + cache_quarantine records.
    cache = ResultCache(tmp_path)
    SweepExecutor(
        jobs=1,
        retries=1,
        fault_plan=FaultPlan(seed=0, error_rate=1.0),
        telemetry=TelemetryWriter(sink),
    ).run(POINTS)
    chaos = SweepExecutor(
        jobs=1,
        cache=cache,
        retries=3,
        fault_plan=FaultPlan(seed=0, corrupt_rate=1.0),
        telemetry=TelemetryWriter(sink),
    )
    chaos.run(POINTS)  # stores, then corrupts, every entry
    chaos.run(POINTS)  # quarantines and re-runs
    # The perf events are emitted by perfbench, not the executor; feed
    # the same sink through the builders it uses.
    writer = TelemetryWriter(sink)
    writer.emit(
        snapshot_cache_event(
            cache="rate_snapshot", label="schema", hits=8, misses=2, entries=2
        )
    )
    writer.emit(
        equilibrium_warm_event(
            label="schema", warm_hits=3, cold_solves=1,
            iterations_saved=108, warm_entries=1,
        )
    )
    writer.emit(
        profile_event(
            label="schema", function="engine.py:1(snapshot)", rank=1,
            calls=10, cumulative_seconds=0.5, total_seconds=0.1,
        )
    )
    # Selection logs are emitted by callers holding the policy object
    # (the executor only sees worker-returned dicts); exercise the
    # builder the same way the perf events are exercised above.
    writer.emit(
        policy_selection_event(
            key="k", label="schema", policy="dynamic-throttling",
            time=0.5, selected_mtl=2,
        )
    )
    return read_telemetry(io.StringIO(sink.getvalue()))


class TestEmittedRecordsConform:
    def test_every_record_validates(self, tmp_path):
        records = emit_everything(tmp_path)
        kinds = {r["event"] for r in records}
        assert kinds == set(EVENT_SCHEMAS)  # every kind exercised
        for record in records:
            validate_record(record)

    def test_builders_match_schemas(self):
        built = {
            "point": point_event(
                key="k", workload="w", machine="m", policy="p", seed=None,
                cache_hit=False, wall_seconds=0.1, worker=1, jobs=1,
                makespan=1.0, sim_events=2,
            ),
            "point_failure": point_failure_event(
                key="k", label="l", attempts=3, reason="r", jobs=1
            ),
            "fault": fault_event(key="k", label="l", kind="crash", attempt=0, jobs=1),
            "retry": retry_event(
                key="k", label="l", attempt=0, backoff_seconds=0.0,
                reason="r", jobs=1,
            ),
            "policy_stat": policy_stat_event(
                key="k", label="l", policy="p", stat="windows_closed", value=3.0
            ),
            "policy_selection": policy_selection_event(
                key="k", label="l", policy="p", time=0.5, selected_mtl=2
            ),
            "cache_quarantine": cache_quarantine_event(key="k", path="p", reason="r"),
            "sweep": sweep_event(
                points=1, cache_hits=0, cache_misses=1, wall_seconds=0.1, jobs=1
            ),
            "snapshot_cache": snapshot_cache_event(
                cache="equilibrium", label="l", hits=3, misses=1, entries=1
            ),
            "equilibrium_warm": equilibrium_warm_event(
                label="l", warm_hits=3, cold_solves=1,
                iterations_saved=108, warm_entries=1,
            ),
            "profile": profile_event(
                label="l", function="f.py:2(g)", rank=1, calls=4,
                cumulative_seconds=0.2, total_seconds=0.1,
            ),
        }
        assert set(built) == set(EVENT_SCHEMAS)
        for kind, record in built.items():
            assert record["event"] == kind
            assert record["schema"] == TELEMETRY_SCHEMA_VERSION
            validate_record(record)


class TestValidateRecordRejections:
    GOOD = {
        "schema": 1,
        "event": "fault",
        "key": "k",
        "label": "l",
        "kind": "crash",
        "attempt": 0,
        "jobs": 1,
    }

    def test_non_dict_rejected(self):
        with pytest.raises(MeasurementError, match="object"):
            validate_record(["not", "a", "record"])

    def test_unknown_event_rejected(self):
        with pytest.raises(MeasurementError, match="'explosion'"):
            # repro: lint-ok RPR301 -- deliberately unregistered event for the rejection test
            validate_record({**self.GOOD, "event": "explosion"})

    def test_missing_field_named(self):
        record = {k: v for k, v in self.GOOD.items() if k != "attempt"}
        with pytest.raises(MeasurementError, match="attempt"):
            validate_record(record)

    def test_unexpected_field_named(self):
        with pytest.raises(MeasurementError, match="surprise"):
            validate_record({**self.GOOD, "surprise": 1})

    def test_wrong_type_named(self):
        with pytest.raises(MeasurementError, match="'attempt'"):
            validate_record({**self.GOOD, "attempt": "zero"})

    def test_bool_never_satisfies_numeric(self):
        # bool subclasses int in Python; the schema must not let
        # ``True`` pass as an attempt count.
        with pytest.raises(MeasurementError, match="'attempt'"):
            validate_record({**self.GOOD, "attempt": True})

    def test_float_field_accepts_int(self):
        # JSON does not distinguish 3 from 3.0.
        record = point_failure_event(key="k", label="l", attempts=3, reason="r", jobs=1)
        validate_record(record)
        sweep = sweep_event(
            points=1, cache_hits=0, cache_misses=1, wall_seconds=2, jobs=1
        )
        validate_record(sweep)

    def test_optional_int_accepts_null_not_str(self):
        good = point_event(
            key="k", workload="w", machine="m", policy="p", seed=None,
            cache_hit=True, wall_seconds=0.0, worker=1, jobs=1,
            makespan=1.0, sim_events=1,
        )
        validate_record(good)
        with pytest.raises(MeasurementError, match="'seed'"):
            validate_record({**good, "seed": "42"})


def parse_doc_tables():
    """Field name -> documented type, per event kind, from the docs.

    Parses every ``## `NAME` events`` section's markdown table plus the
    leading "every record carries" table (whose fields apply to all
    kinds).
    """
    text = DOCS.read_text()
    sections = re.split(r"^## ", text, flags=re.MULTILINE)
    common = {}
    for row in re.findall(r"^\| `(\w+)` \| ([\w ]+) \|", sections[0], re.MULTILINE):
        common[row[0]] = row[1].strip()
    tables = {}
    for section in sections[1:]:
        match = re.match(r"`(\w+)` events", section)
        if not match:
            continue
        fields = dict(common)
        for name, type_text in re.findall(
            r"^\| `(\w+)` \| ([\w ]+) \|", section, re.MULTILINE
        ):
            fields[name] = type_text.strip()
        tables[match.group(1)] = fields
    return tables


#: Documented type text -> the exact type tuple EVENT_SCHEMAS must use.
DOC_TYPES = {
    "string": (str,),
    "int": (int,),
    "float": (float, int),
    "bool": (bool,),
    "int or null": (int, type(None)),
}


class TestDocsCannotDrift:
    def test_docs_document_every_event_kind(self):
        assert set(parse_doc_tables()) == set(EVENT_SCHEMAS)

    @pytest.mark.parametrize("kind", sorted(EVENT_SCHEMAS))
    def test_fields_and_types_match(self, kind):
        documented = parse_doc_tables()[kind]
        schema = EVENT_SCHEMAS[kind]
        assert set(documented) == set(schema), (
            f"docs/telemetry.md and EVENT_SCHEMAS disagree on the "
            f"fields of {kind!r}"
        )
        for field, type_text in documented.items():
            assert type_text in DOC_TYPES, (
                f"docs/telemetry.md uses undeclared type {type_text!r} "
                f"for {kind}.{field}"
            )
            assert DOC_TYPES[type_text] == schema[field], (
                f"docs say {kind}.{field} is {type_text!r}; "
                f"EVENT_SCHEMAS says {schema[field]}"
            )
