"""Golden regression tests: the executor reproduces checked-in figures.

The benchmarks save their regenerated tables under
``benchmarks/results/``; these tests re-run a sampled slice of the
Figure 13 sweep through the :class:`SweepExecutor` at ``jobs=1`` and
``jobs=4`` and assert both match the checked-in artifact row-for-row —
the proof that neither process-pool parallelism nor the result cache
ever changes a number.  A warm-cache replay must then serve every
point from cache and still match.

The sweep-point construction mirrors
``benchmarks/test_fig13_synthetic_sweep.py`` exactly (96 pairs, 8 MB
LLC shared 4 ways, offline exhaustive search per ratio); the sampled
rows in the artifact are the benchmark's own ``measured[::8]`` slice,
so the expectations here are parsed from the artifact, not duplicated.
"""

import io
import pathlib
import re

import pytest

from repro.runtime.cache import ResultCache
from repro.runtime.parallel import PointResult, SweepExecutor, SweepPoint
from repro.runtime.telemetry import TelemetryWriter, read_telemetry
from repro.units import mebibytes

RESULTS_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "results"

#: Mirrors the benchmark's sweep construction — keep in sync with
#: benchmarks/test_fig13_synthetic_sweep.py.
PAIRS = 96
I7_LLC = {"capacity_bytes": mebibytes(8), "sharers": 4}

_ROW = re.compile(
    r"^(\d+\.\d{2})\s*\|\s*(\d+\.\d{3})\s*\|\s*(\d+)\s*\|"
)


def golden_rows(footprint_mb: float):
    """Parse (ratio, measured speedup text, S-MTL) from the artifact."""
    path = RESULTS_DIR / f"fig13_{footprint_mb:g}MB.txt"
    rows = []
    in_table = False
    for line in path.read_text().splitlines():
        if line.startswith("ratio"):
            in_table = True
            continue
        if not in_table:
            continue
        match = _ROW.match(line.strip())
        if match:
            rows.append(
                (float(match.group(1)), match.group(2), int(match.group(3)))
            )
    assert rows, f"no sampled rows parsed from {path}"
    return rows


def fig13_points(footprint_mb: float, ratios):
    return [
        SweepPoint(
            workload={
                "kind": "synthetic",
                "ratio": ratio,
                "footprint_bytes": mebibytes(footprint_mb),
                "pairs": PAIRS,
                "llc": I7_LLC,
            },
            policy={"kind": "offline"},
            label=f"fig13/{footprint_mb:g}MB/r={ratio:.2f}",
        )
        for ratio in ratios
    ]


def rows_from_results(ratios, results):
    out = []
    for ratio, result in zip(ratios, results):
        assert result.per_mtl_makespan is not None
        speedup = result.per_mtl_makespan[4] / result.makespan
        out.append((ratio, f"{speedup:.3f}", result.selected_mtl))
    return out


@pytest.mark.parametrize("footprint_mb", [0.5, 2.0])
def test_executor_matches_checked_in_fig13_rows(footprint_mb, tmp_path):
    golden = golden_rows(footprint_mb)
    ratios = [ratio for ratio, _, _ in golden]
    points = fig13_points(footprint_mb, ratios)

    serial = SweepExecutor(jobs=1).run(points)
    assert rows_from_results(ratios, serial) == golden

    cache = ResultCache(tmp_path / "cache")
    sink = io.StringIO()
    parallel = SweepExecutor(
        jobs=4, cache=cache, telemetry=TelemetryWriter(sink)
    ).run(points)
    assert rows_from_results(ratios, parallel) == golden

    # Parallelism changes nothing, bit for bit — not just at 3 decimal
    # places: every field of every point result is equal.
    assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    # Cold run: every point was a miss, executed, and telemetered.
    cold = read_telemetry(io.StringIO(sink.getvalue()), event="point")
    assert len(cold) == len(points)
    assert all(not record["cache_hit"] for record in cold)
    assert all(record["wall_seconds"] > 0 for record in cold)

    # Warm replay: 100% cache hits, identical rows.
    warm_sink = io.StringIO()
    warm = SweepExecutor(
        jobs=4, cache=cache, telemetry=TelemetryWriter(warm_sink)
    ).run(points)
    assert [r.to_dict() for r in warm] == [r.to_dict() for r in serial]
    warm_records = read_telemetry(io.StringIO(warm_sink.getvalue()), event="point")
    assert all(record["cache_hit"] for record in warm_records)
    (summary,) = read_telemetry(io.StringIO(warm_sink.getvalue()), event="sweep")
    assert summary["cache_hits"] == len(points)
    assert summary["cache_misses"] == 0


def test_cached_results_round_trip_every_field(tmp_path):
    """Cache hits return the full PointResult, not a lossy summary."""
    point = fig13_points(0.5, [0.45])[0]
    cache = ResultCache(tmp_path / "cache")
    (fresh,) = SweepExecutor(jobs=1, cache=cache).run([point])
    (cached,) = SweepExecutor(jobs=1, cache=cache).run([point])
    assert isinstance(cached, PointResult)
    assert cached == fresh
    assert cache.stats.hits == 1
