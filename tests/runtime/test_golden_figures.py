"""Golden regression tests: the executor reproduces checked-in figures.

The benchmarks save their regenerated tables under
``benchmarks/results/``; these tests re-run a sampled slice of the
Figure 13 sweep through the :class:`SweepExecutor` at ``jobs=1`` and
``jobs=4`` and assert both match the checked-in artifact row-for-row —
the proof that neither process-pool parallelism nor the result cache
ever changes a number.  A warm-cache replay must then serve every
point from cache and still match.

The sweep-point construction mirrors
``benchmarks/test_fig13_synthetic_sweep.py`` exactly (96 pairs, 8 MB
LLC shared 4 ways, offline exhaustive search per ratio); the sampled
rows in the artifact are the benchmark's own ``measured[::8]`` slice,
so the expectations here are parsed from the artifact, not duplicated.

``tests/runtime/snapshots/policy_parity.json`` holds full-precision
schedules (``repr`` makespans, per-record SHA-256, MTL-change and
selection traces) captured from the five pre-refactor policies on the
realistic trio.  The parity tests rebuild each policy **through the
registry** and assert bit-identity — the proof that the plugin
refactor changed nothing the simulator can observe.
"""

import hashlib
import io
import json
import pathlib
import re

import pytest

from repro.core.registry import build_policy
from repro.memory.cache import LastLevelCache
from repro.runtime.cache import ResultCache
from repro.runtime.parallel import PointResult, SweepExecutor, SweepPoint
from repro.runtime.telemetry import TelemetryWriter, read_telemetry
from repro.sim.machine import i7_860
from repro.sim.simulator import Simulator
from repro.units import mebibytes
from repro.workloads import build_workload
from repro.workloads.synthetic import SyntheticWorkload

RESULTS_DIR = pathlib.Path(__file__).parent.parent.parent / "benchmarks" / "results"

#: Mirrors the benchmark's sweep construction — keep in sync with
#: benchmarks/test_fig13_synthetic_sweep.py.
PAIRS = 96
I7_LLC = {"capacity_bytes": mebibytes(8), "sharers": 4}

_ROW = re.compile(
    r"^(\d+\.\d{2})\s*\|\s*(\d+\.\d{3})\s*\|\s*(\d+)\s*\|"
)


def golden_rows(footprint_mb: float):
    """Parse (ratio, measured speedup text, S-MTL) from the artifact."""
    path = RESULTS_DIR / f"fig13_{footprint_mb:g}MB.txt"
    rows = []
    in_table = False
    for line in path.read_text().splitlines():
        if line.startswith("ratio"):
            in_table = True
            continue
        if not in_table:
            continue
        match = _ROW.match(line.strip())
        if match:
            rows.append(
                (float(match.group(1)), match.group(2), int(match.group(3)))
            )
    assert rows, f"no sampled rows parsed from {path}"
    return rows


def fig13_points(footprint_mb: float, ratios):
    return [
        SweepPoint(
            workload={
                "kind": "synthetic",
                "ratio": ratio,
                "footprint_bytes": mebibytes(footprint_mb),
                "pairs": PAIRS,
                "llc": I7_LLC,
            },
            policy={"kind": "offline"},
            label=f"fig13/{footprint_mb:g}MB/r={ratio:.2f}",
        )
        for ratio in ratios
    ]


def rows_from_results(ratios, results):
    out = []
    for ratio, result in zip(ratios, results):
        assert result.per_mtl_makespan is not None
        speedup = result.per_mtl_makespan[4] / result.makespan
        out.append((ratio, f"{speedup:.3f}", result.selected_mtl))
    return out


@pytest.mark.parametrize("footprint_mb", [0.5, 2.0])
def test_executor_matches_checked_in_fig13_rows(footprint_mb, tmp_path):
    golden = golden_rows(footprint_mb)
    ratios = [ratio for ratio, _, _ in golden]
    points = fig13_points(footprint_mb, ratios)

    serial = SweepExecutor(jobs=1).run(points)
    assert rows_from_results(ratios, serial) == golden

    cache = ResultCache(tmp_path / "cache")
    sink = io.StringIO()
    parallel = SweepExecutor(
        jobs=4, cache=cache, telemetry=TelemetryWriter(sink)
    ).run(points)
    assert rows_from_results(ratios, parallel) == golden

    # Parallelism changes nothing, bit for bit — not just at 3 decimal
    # places: every field of every point result is equal.
    assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    # Cold run: every point was a miss, executed, and telemetered.
    cold = read_telemetry(io.StringIO(sink.getvalue()), event="point")
    assert len(cold) == len(points)
    assert all(not record["cache_hit"] for record in cold)
    assert all(record["wall_seconds"] > 0 for record in cold)

    # Warm replay: 100% cache hits, identical rows.
    warm_sink = io.StringIO()
    warm = SweepExecutor(
        jobs=4, cache=cache, telemetry=TelemetryWriter(warm_sink)
    ).run(points)
    assert [r.to_dict() for r in warm] == [r.to_dict() for r in serial]
    warm_records = read_telemetry(io.StringIO(warm_sink.getvalue()), event="point")
    assert all(record["cache_hit"] for record in warm_records)
    (summary,) = read_telemetry(io.StringIO(warm_sink.getvalue()), event="sweep")
    assert summary["cache_hits"] == len(points)
    assert summary["cache_misses"] == 0


def test_cached_results_round_trip_every_field(tmp_path):
    """Cache hits return the full PointResult, not a lossy summary."""
    point = fig13_points(0.5, [0.45])[0]
    cache = ResultCache(tmp_path / "cache")
    (fresh,) = SweepExecutor(jobs=1, cache=cache).run([point])
    (cached,) = SweepExecutor(jobs=1, cache=cache).run([point])
    assert isinstance(cached, PointResult)
    assert cached == fresh
    assert cache.stats.hits == 1


# ---------------------------------------------------------------------------
# Plugin-refactor parity: registry-built policies vs pre-refactor snapshots
# ---------------------------------------------------------------------------

SNAPSHOTS = pathlib.Path(__file__).parent / "snapshots" / "policy_parity.json"

#: The registry specs equivalent to the pre-refactor constructions the
#: snapshot was captured from (window_pairs=8 where the capture used 8).
PARITY_SPECS = {
    "conventional": {},
    "static": {"mtl": 2},
    "dynamic": {"window_pairs": 8},
    "online": {"window_pairs": 8},
    "adaptive-window": {},
}

PARITY_WORKLOADS = ("dft", "SC_d128", "SIFT")


def record_digest(result):
    """SHA-256 over every record's full repr — the snapshot's digest."""
    h = hashlib.sha256()
    for r in result.records:
        h.update(
            repr(
                (
                    r.task_id, r.kind.name, r.context_id, r.core_id,
                    r.start, r.end, r.mtl_at_dispatch, r.phase_index,
                    r.pair_index, r.probe,
                )
            ).encode()
        )
    return h.hexdigest()


def parity_snapshot():
    return json.loads(SNAPSHOTS.read_text())


@pytest.mark.parametrize("workload_name", PARITY_WORKLOADS)
@pytest.mark.parametrize("policy_name", sorted(PARITY_SPECS))
def test_registry_built_policy_bit_identical_to_snapshot(
    workload_name, policy_name
):
    golden = parity_snapshot()[f"{workload_name}/{policy_name}"]
    machine = i7_860()
    policy = build_policy(
        policy_name, machine.context_count, PARITY_SPECS[policy_name]
    )
    result = Simulator(machine).run(build_workload(workload_name), policy)

    # Full-precision equality: repr round-trips every bit of a float.
    assert repr(result.makespan) == golden["makespan"]
    assert result.task_count == golden["task_count"]
    assert result.final_mtl() == golden["final_mtl"]
    assert repr(result.probe_task_time_fraction()) == golden["probe_fraction"]
    assert [
        [repr(c.time), c.old_mtl, c.new_mtl, c.reason]
        for c in result.mtl_changes
    ] == golden["mtl_changes"]
    assert record_digest(result) == golden["records_sha256"]

    # Selection traces, where the snapshot recorded them.
    if policy_name == "online":
        assert [
            {
                "time": repr(e.time),
                "window_times": {
                    str(k): repr(v) for k, v in sorted(e.window_times.items())
                },
                "selected_mtl": e.selected_mtl,
            }
            for e in policy.selections
        ] == golden["selections"]
    if policy_name in ("dynamic", "adaptive-window"):
        assert [
            {
                "time": repr(e.time),
                "trigger_idle_bound": e.trigger_idle_bound,
                "selected_mtl": e.decision.selected_mtl,
                "mtl_no_idle": e.decision.mtl_no_idle,
                "probes_used": e.decision.probes_used,
            }
            for e in policy.selections
        ] == golden["selections"]


def test_parity_snapshot_covers_the_full_grid():
    keys = set(parity_snapshot())
    assert keys == {
        f"{w}/{p}" for w in PARITY_WORKLOADS for p in PARITY_SPECS
    }


def test_dynamic_plugin_matches_fig13_smtl_regions():
    """D-MTL through the registry vs the checked-in S-MTL artifact.

    The paper's claim (Section VI-A): the dynamic mechanism selects
    the offline-best static MTL except near region boundaries, where
    it may land one step off.  The sampled fig13 1 MB rows pin that —
    at most one boundary point may differ, and only by one MTL step.
    """
    golden = golden_rows(1.0)
    machine = i7_860()
    cache = LastLevelCache(capacity_bytes=mebibytes(8), sharers=4)
    mismatches = []
    for ratio, _, s_mtl in golden:
        program = SyntheticWorkload(
            ratio=ratio,
            footprint_bytes=mebibytes(1),
            pairs=PAIRS,
            cache=cache,
        ).build()
        policy = build_policy(
            "dynamic", machine.context_count, {"window_pairs": 8}
        )
        d_mtl = Simulator(machine).run(program, policy).dominant_mtl()
        if d_mtl != s_mtl:
            mismatches.append((ratio, s_mtl, d_mtl))
    for ratio, s_mtl, d_mtl in mismatches:
        assert abs(d_mtl - s_mtl) == 1, (ratio, s_mtl, d_mtl)
    assert len(mismatches) <= 1, mismatches
