"""Tests for the 20-run / middle-10 measurement protocol."""

import pytest

from repro.errors import MeasurementError
from repro.runtime.measurement import (
    RepeatedMeasurement,
    measure_makespan,
    middle_mean,
)
from repro.sim.noise import GaussianNoise
from repro.sim.scheduler import FixedMtlPolicy
from repro.stream.program import StreamProgram, build_phase


def small_program():
    return StreamProgram("tiny", [build_phase("p", 0, 8, 2048, 5e-4)])


class TestMiddleMean:
    def test_paper_protocol_drops_extremes(self):
        values = [float(v) for v in range(1, 21)]  # 1..20
        # Middle 10 of 1..20 is 6..15, mean 10.5.
        assert middle_mean(values, keep=10) == pytest.approx(10.5)

    def test_outliers_have_no_influence(self):
        clean = [10.0] * 20
        spiked = [10.0] * 18 + [1000.0, 0.001]
        assert middle_mean(spiked, keep=10) == middle_mean(clean, keep=10)

    def test_small_samples_degenerate_to_mean(self):
        assert middle_mean([2.0, 4.0], keep=10) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(MeasurementError):
            middle_mean([], keep=10)
        with pytest.raises(MeasurementError):
            middle_mean([1.0], keep=0)


class TestMeasureMakespan:
    def test_runs_the_requested_count(self):
        measurement = measure_makespan(
            small_program(), lambda: FixedMtlPolicy(2), runs=6, keep=4
        )
        assert measurement.runs == 6
        assert measurement.value > 0

    def test_deterministic_given_base_seed(self):
        first = measure_makespan(
            small_program(), lambda: FixedMtlPolicy(2), runs=4, base_seed=7
        )
        second = measure_makespan(
            small_program(), lambda: FixedMtlPolicy(2), runs=4, base_seed=7
        )
        assert first.makespans == second.makespans

    def test_runs_differ_across_seeds(self):
        measurement = measure_makespan(
            small_program(), lambda: FixedMtlPolicy(2), runs=5
        )
        assert len(set(measurement.makespans)) > 1

    def test_spread_reports_relative_range(self):
        measurement = RepeatedMeasurement(makespans=(9.0, 10.0, 11.0), value=10.0)
        assert measurement.spread == pytest.approx(0.2)

    def test_custom_noise_factory(self):
        measurement = measure_makespan(
            small_program(),
            lambda: FixedMtlPolicy(2),
            runs=3,
            noise_factory=lambda seed: GaussianNoise(seed=seed, sigma=0.0,
                                                     spike_probability=0.0,
                                                     overhead_seconds=0.0),
        )
        # Zero-variance noise: all runs identical.
        assert len(set(measurement.makespans)) == 1

    def test_rejects_zero_runs(self):
        with pytest.raises(MeasurementError):
            measure_makespan(small_program(), lambda: FixedMtlPolicy(2), runs=0)
