"""Tests for the parallel sweep executor, result cache, and telemetry."""

import io
import json

import pytest

from repro.core import offline_exhaustive_search
from repro.errors import ConfigurationError, MeasurementError
from repro.runtime.cache import CacheStats, ResultCache, stable_hash
from repro.runtime.experiment import compare_policies, compare_policies_grid
from repro.runtime.parallel import (
    PointResult,
    SweepExecutor,
    SweepPoint,
    build_machine_from_spec,
    build_policy_from_spec,
    build_workload_from_spec,
    point_key,
    run_point,
)
from repro.runtime.suite import run_suite, run_suite_grid
from repro.runtime.telemetry import TelemetryWriter, read_telemetry
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.workloads import build_workload, synthetic_from_ratio

SYNTH = {"kind": "synthetic", "ratio": 0.5, "pairs": 24}


class TestStableHash:
    def test_key_order_does_not_matter(self):
        a = {"x": 1, "y": {"b": 2.5, "a": [1, 2]}}
        b = {"y": {"a": [1, 2], "b": 2.5}, "x": 1}
        assert stable_hash(a) == stable_hash(b)

    def test_value_changes_change_the_hash(self):
        base = {"ratio": 0.5}
        assert stable_hash(base) != stable_hash({"ratio": 0.25})
        assert stable_hash(base) != stable_hash({"ratio": "0.5"})

    def test_float_precision_is_exact(self):
        assert stable_hash({"r": 0.1 + 0.2}) != stable_hash({"r": 0.3})

    def test_non_json_values_are_rejected(self):
        with pytest.raises(ConfigurationError):
            stable_hash({"bad": object()})


class TestResultCache:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash({"p": 1})
        assert cache.get(key) is None
        cache.put(key, {"makespan": 1.5}, point={"p": 1})
        assert cache.get(key) == {"makespan": 1.5}
        assert cache.stats == CacheStats(hits=1, misses=1, stores=1)

    def test_corrupt_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash({"p": 2})
        cache.put(key, {"makespan": 2.0})
        path = tmp_path / key[:2] / f"{key}.json"
        path.write_text("{torn write")
        assert cache.get(key) is None
        assert not path.exists()

    @pytest.mark.parametrize(
        "content, reason",
        [
            pytest.param('{"schema": 1, "resu', "not valid JSON", id="truncated"),
            pytest.param("not json at all", "not valid JSON", id="bad-json"),
            pytest.param('["a", "list"]', "not a result object", id="not-object"),
            pytest.param(
                '{"schema": 1, "key": "x"}', "not a result object", id="no-result"
            ),
            pytest.param(
                '{"schema": 999, "result": {"makespan": 1.0}}',
                "schema version 999",
                id="wrong-schema-version",
            ),
            pytest.param(
                '{"result": {"makespan": 1.0}}',
                "schema version None",
                id="missing-schema-version",
            ),
        ],
    )
    def test_corrupt_entry_is_quarantined(self, tmp_path, content, reason):
        sink = io.StringIO()
        cache = ResultCache(tmp_path, telemetry=TelemetryWriter(sink))
        key = stable_hash({"p": 3})
        cache.put(key, {"makespan": 3.0})
        path = cache.path_for(key)
        path.write_text(content)

        assert cache.get(key) is None
        # Evidence preserved, slot freed, counted, telemetered.
        corrupt = path.with_name(path.name + ".corrupt")
        assert not path.exists()
        assert corrupt.read_text() == content
        assert cache.stats.quarantined == 1
        (record,) = read_telemetry(io.StringIO(sink.getvalue()))
        assert record["event"] == "cache_quarantine"
        assert record["key"] == key
        assert record["path"] == str(corrupt)
        assert reason in record["reason"]

        # The slot re-verifies: a fresh store round-trips again and the
        # quarantined evidence is untouched.
        cache.put(key, {"makespan": 3.0})
        assert cache.get(key) == {"makespan": 3.0}
        assert corrupt.exists()

    def test_healthy_entries_never_quarantine(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = stable_hash({"p": 4})
        cache.put(key, {"makespan": 4.0})
        for _ in range(3):
            assert cache.get(key) == {"makespan": 4.0}
        assert cache.stats.quarantined == 0

    def test_malformed_key_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            ResultCache(tmp_path).get("../../etc/passwd")

    def test_clear_removes_quarantined_entries_too(self, tmp_path):
        cache = ResultCache(tmp_path)
        for n in range(3):
            cache.put(stable_hash({"p": n}), {"n": n})
        bad = cache.path_for(stable_hash({"p": 0}))
        bad.write_text("{torn")
        assert cache.get(stable_hash({"p": 0})) is None  # quarantines
        assert cache.clear() == 3  # 2 healthy + 1 .corrupt
        assert cache.get(stable_hash({"p": 1})) is None


class TestSpecBuilders:
    def test_registry_workload(self):
        program = build_workload_from_spec({"kind": "registry", "name": "dft"})
        assert program.name == build_workload("dft").name

    def test_unknown_kinds_are_named(self):
        with pytest.raises(ConfigurationError, match="workload kind"):
            build_workload_from_spec({"kind": "nope"})
        with pytest.raises(ConfigurationError, match="machine preset"):
            build_machine_from_spec({"preset": "cray"})
        with pytest.raises(ConfigurationError, match="policy kind"):
            build_policy_from_spec({"kind": "nope"}, i7_860())

    def test_missing_keys_are_named(self):
        with pytest.raises(ConfigurationError, match="'kind'"):
            build_workload_from_spec({})
        with pytest.raises(ConfigurationError, match="'mtl'"):
            build_policy_from_spec({"kind": "static"}, i7_860())

    def test_machine_presets(self):
        assert build_machine_from_spec({"preset": "i7_860"}).context_count == 4
        power7 = build_machine_from_spec(
            {"preset": "power7", "smt": 4, "channels": 2}
        )
        assert power7.context_count == 32


class TestSweepPoint:
    def test_label_excluded_from_key(self):
        a = SweepPoint(workload=SYNTH, label="a")
        b = SweepPoint(workload=SYNTH, label="b")
        assert point_key(a) == point_key(b)

    def test_seed_included_in_key(self):
        assert point_key(SweepPoint(workload=SYNTH, seed=1)) != point_key(
            SweepPoint(workload=SYNTH, seed=2)
        )
        assert point_key(SweepPoint(workload=SYNTH, seed=None)) != point_key(
            SweepPoint(workload=SYNTH, seed=0)
        )

    def test_spec_mutation_after_construction_is_isolated(self):
        spec = {"kind": "synthetic", "ratio": 0.5, "pairs": 24}
        point = SweepPoint(workload=spec)
        key = point_key(point)
        spec["ratio"] = 4.0
        assert point_key(point) == key

    def test_result_round_trips_through_json(self):
        result = run_point(SweepPoint(workload=SYNTH, policy={"kind": "offline"}))
        payload = json.loads(json.dumps(result.to_dict()))
        assert PointResult.from_dict(payload) == result


class TestRunPoint:
    def test_matches_direct_simulation(self):
        point = SweepPoint(workload=SYNTH, policy={"kind": "static", "mtl": 2})
        direct = Simulator(i7_860()).run(
            synthetic_from_ratio(0.5, pairs=24), FixedMtlPolicy(2)
        )
        result = run_point(point)
        assert result.makespan == direct.makespan
        assert result.task_count == direct.task_count
        assert result.selected_mtl == 2

    def test_offline_matches_offline_search(self):
        point = SweepPoint(workload=SYNTH, policy={"kind": "offline"})
        outcome = offline_exhaustive_search(synthetic_from_ratio(0.5, pairs=24))
        result = run_point(point)
        assert result.selected_mtl == outcome.best_mtl
        assert result.makespan == outcome.best.makespan
        assert result.per_mtl_makespan == {
            mtl: r.makespan for mtl, r in outcome.by_mtl.items()
        }

    def test_seeded_runs_are_deterministic(self):
        point = SweepPoint(workload=SYNTH, seed=42)
        assert run_point(point).makespan == run_point(point).makespan
        unseeded = run_point(SweepPoint(workload=SYNTH))
        assert run_point(point).makespan != unseeded.makespan


class TestSweepExecutor:
    POINTS = [
        SweepPoint(workload={"kind": "synthetic", "ratio": r, "pairs": 16},
                   policy={"kind": "static", "mtl": mtl})
        for r in (0.2, 1.0)
        for mtl in (1, 2, 4)
    ]

    def test_serial_and_parallel_results_are_identical(self):
        serial = SweepExecutor(jobs=1).run(self.POINTS)
        parallel = SweepExecutor(jobs=3).run(self.POINTS)
        assert [r.to_dict() for r in parallel] == [r.to_dict() for r in serial]

    def test_results_come_back_in_input_order(self):
        results = SweepExecutor(jobs=3).run(self.POINTS)
        assert [r.selected_mtl for r in results] == [1, 2, 4, 1, 2, 4]

    def test_warm_cache_serves_every_point(self, tmp_path):
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache)
        cold = executor.run(self.POINTS)
        warm = executor.run(self.POINTS)
        assert [r.to_dict() for r in warm] == [r.to_dict() for r in cold]
        assert cache.stats.hits == len(self.POINTS)
        assert cache.stats.stores == len(self.POINTS)

    def test_cache_is_shared_between_serial_and_parallel(self, tmp_path):
        cache = ResultCache(tmp_path)
        SweepExecutor(jobs=3, cache=cache).run(self.POINTS)
        sink = io.StringIO()
        SweepExecutor(
            jobs=1, cache=cache, telemetry=TelemetryWriter(sink)
        ).run(self.POINTS)
        records = read_telemetry(io.StringIO(sink.getvalue()), event="point")
        assert all(record["cache_hit"] for record in records)

    def test_telemetry_schema(self):
        sink = io.StringIO()
        SweepExecutor(jobs=1, telemetry=TelemetryWriter(sink)).run(self.POINTS[:2])
        points = read_telemetry(io.StringIO(sink.getvalue()), event="point")
        assert len(points) == 2
        for record in points:
            for field in ("key", "workload", "machine", "policy", "seed",
                          "cache_hit", "wall_seconds", "worker", "jobs",
                          "makespan", "sim_events", "label"):
                assert field in record, field
        (summary,) = read_telemetry(io.StringIO(sink.getvalue()), event="sweep")
        assert summary["points"] == 2

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=0)


class TestTelemetryIO:
    def test_file_sink_appends(self, tmp_path):
        path = tmp_path / "t" / "log.jsonl"
        writer = TelemetryWriter(path)
        writer.emit({"event": "point", "n": 1})
        writer.emit({"event": "sweep", "n": 2})
        assert len(read_telemetry(path)) == 2
        assert [r["n"] for r in read_telemetry(path, event="sweep")] == [2]

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(MeasurementError, match="line 2"):
            read_telemetry(path)


class TestGridHarnesses:
    def test_run_suite_grid_matches_run_suite(self):
        legacy = run_suite(
            workloads={"w": lambda: synthetic_from_ratio(0.5, pairs=16)},
            machines=[i7_860(channels=1), i7_860(channels=2)],
            policies={"static-1": lambda machine: FixedMtlPolicy(1)},
        )
        grid = run_suite_grid(
            workloads={"w": {"kind": "synthetic", "ratio": 0.5, "pairs": 16}},
            machines=[
                {"preset": "i7_860", "channels": 1},
                {"preset": "i7_860", "channels": 2},
            ],
            policies={"static-1": {"kind": "static", "mtl": 1}},
        )
        assert grid.rows == legacy.rows

    def test_run_suite_grid_validation(self):
        with pytest.raises(ConfigurationError):
            run_suite_grid({}, [{"preset": "i7_860"}], {"p": {"kind": "static", "mtl": 1}})
        with pytest.raises(ConfigurationError, match="duplicate"):
            run_suite_grid(
                {"w": SYNTH},
                [{"preset": "i7_860"}, {"preset": "i7_860"}],
                {"p": {"kind": "static", "mtl": 1}},
            )

    def test_compare_grid_matches_compare_policies_noise_free(self):
        program = synthetic_from_ratio(0.5, pairs=16)
        legacy = compare_policies(
            program, {"static-2": lambda: FixedMtlPolicy(2)}
        )
        grid = compare_policies_grid(
            {"kind": "synthetic", "ratio": 0.5, "pairs": 16},
            {"static-2": {"kind": "static", "mtl": 2}},
        )
        assert grid.baseline_makespan == legacy.baseline_makespan
        assert grid.speedup("static-2") == legacy.speedup("static-2")
        assert (
            grid.outcome("static-2").selected_mtl
            == legacy.outcome("static-2").selected_mtl
        )

    def test_compare_grid_repeated_runs_protocol(self):
        grid = compare_policies_grid(
            {"kind": "synthetic", "ratio": 0.5, "pairs": 16},
            {"static-2": {"kind": "static", "mtl": 2}},
            repeated_runs=4,
            executor=SweepExecutor(jobs=2),
        )
        outcome = grid.outcome("static-2")
        assert outcome.makespan > 0
        assert outcome.selected_mtl == 2
        # The repeated-run protocol is deterministic given the seeds.
        again = compare_policies_grid(
            {"kind": "synthetic", "ratio": 0.5, "pairs": 16},
            {"static-2": {"kind": "static", "mtl": 2}},
            repeated_runs=4,
        )
        assert again.outcome("static-2").makespan == outcome.makespan
