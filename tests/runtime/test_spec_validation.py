"""Error-path tests for the declarative spec vocabulary.

Every invalid workload/machine/policy spec shape must raise
:class:`~repro.errors.ConfigurationError` whose message **names the
offending key** — a sweep misconfiguration found three hours into a
grid run is a bug in the harness, not the user.  The happy paths live
in ``tests/runtime/test_parallel.py``; this file owns the rejections.
"""

import pytest

from repro.errors import ConfigurationError
from repro.runtime.parallel import (
    build_machine_from_spec,
    build_policy_from_spec,
    build_workload_from_spec,
)
from repro.sim.machine import i7_860

WORKLOAD_CASES = [
    pytest.param({"kind": "registry", "name": 3}, "'name'", id="registry-name-int"),
    pytest.param(
        {"kind": "synthetic", "ratio": "0.5"}, "'ratio'", id="synthetic-ratio-str"
    ),
    pytest.param(
        {"kind": "synthetic", "ratio": True}, "'ratio'", id="synthetic-ratio-bool"
    ),
    pytest.param(
        {"kind": "synthetic", "ratio": 0.5, "pairs": 1.5},
        "'pairs'",
        id="synthetic-pairs-float",
    ),
    pytest.param(
        {"kind": "synthetic", "ratio": 0.5, "pairs": True},
        "'pairs'",
        id="synthetic-pairs-bool",
    ),
    pytest.param(
        {"kind": "synthetic", "ratio": 0.5, "footprint_bytes": "1MB"},
        "'footprint_bytes'",
        id="synthetic-footprint-str",
    ),
    pytest.param(
        {"kind": "synthetic", "ratio": 0.5, "llc": 8},
        "'llc'",
        id="synthetic-llc-not-object",
    ),
    pytest.param(
        {"kind": "synthetic", "ratio": 0.5, "llc": {"sharers": 4}},
        "'capacity_bytes'",
        id="synthetic-llc-missing-capacity",
    ),
    pytest.param(
        {
            "kind": "synthetic",
            "ratio": 0.5,
            "llc": {"capacity_bytes": 1.5e6, "sharers": 4},
        },
        "'capacity_bytes'",
        id="synthetic-llc-capacity-float",
    ),
    pytest.param(
        {"kind": "streamcluster", "rounds": "3"},
        "'rounds'",
        id="streamcluster-rounds-str",
    ),
    pytest.param(
        {"kind": "streamcluster", "pairs_per_round": 2.5},
        "'pairs_per_round'",
        id="streamcluster-pairs-float",
    ),
    pytest.param(
        {"kind": "spec", "document": "not a document"},
        "'document'",
        id="spec-document-str",
    ),
]

MACHINE_CASES = [
    pytest.param({"preset": "i7_860", "channels": "1"}, "'channels'", id="channels-str"),
    pytest.param({"preset": "i7_860", "smt": 2.5}, "'smt'", id="smt-float"),
    pytest.param(
        {"preset": "i7_860", "llc_capacity_bytes": True},
        "'llc_capacity_bytes'",
        id="llc-capacity-bool",
    ),
    pytest.param({"preset": "power7", "smt": "4"}, "'smt'", id="power7-smt-str"),
    pytest.param(
        {"preset": "power7", "channels": 2.0}, "'channels'", id="power7-channels-float"
    ),
]

POLICY_CASES = [
    pytest.param({"kind": "static", "mtl": "2"}, "'mtl'", id="static-mtl-str"),
    pytest.param({"kind": "static", "mtl": 2.0}, "'mtl'", id="static-mtl-float"),
    pytest.param({"kind": "static", "mtl": True}, "'mtl'", id="static-mtl-bool"),
    pytest.param(
        {"kind": "dynamic", "window_pairs": "16"},
        "'window_pairs'",
        id="dynamic-window-str",
    ),
    pytest.param(
        {"kind": "online", "window_pairs": 1.5},
        "'window_pairs'",
        id="online-window-float",
    ),
]


class TestWorkloadSpecRejections:
    @pytest.mark.parametrize("spec, named_key", WORKLOAD_CASES)
    def test_offending_key_is_named(self, spec, named_key):
        with pytest.raises(ConfigurationError, match=named_key):
            build_workload_from_spec(spec)

    def test_missing_kind_is_named(self):
        with pytest.raises(ConfigurationError, match="'kind'"):
            build_workload_from_spec({"ratio": 0.5})


class TestMachineSpecRejections:
    @pytest.mark.parametrize("spec, named_key", MACHINE_CASES)
    def test_offending_key_is_named(self, spec, named_key):
        with pytest.raises(ConfigurationError, match=named_key):
            build_machine_from_spec(spec)


class TestPolicySpecRejections:
    @pytest.mark.parametrize("spec, named_key", POLICY_CASES)
    def test_offending_key_is_named(self, spec, named_key):
        with pytest.raises(ConfigurationError, match=named_key):
            build_policy_from_spec(spec, i7_860())


class TestValidSpecsStillBuild:
    """Strict validation must not reject the documented vocabulary."""

    def test_synthetic_with_llc(self):
        program = build_workload_from_spec(
            {
                "kind": "synthetic",
                "ratio": 0.5,
                "pairs": 16,
                "footprint_bytes": 524288,
                "llc": {"capacity_bytes": 8388608, "sharers": 4},
            }
        )
        assert program.name.startswith("synthetic")

    def test_int_valued_ratio_is_a_number(self):
        # floats accept ints (JSON does not distinguish 1 from 1.0).
        program = build_workload_from_spec(
            {"kind": "synthetic", "ratio": 1, "pairs": 16}
        )
        assert program.name.startswith("synthetic")

    def test_policy_window_pairs(self):
        policy = build_policy_from_spec(
            {"kind": "dynamic", "window_pairs": 8}, i7_860()
        )
        assert policy.name
