"""Tests for pair-sample extraction and ratio measurement."""

import pytest

from repro.runtime.monitor import measure_phase_ratios, measure_ratio, pair_samples
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase
from repro.workloads.base import REFERENCE_SOLO_LATENCY


def program(pairs=8, requests=4096, t_c=1e-3, phases=1):
    return StreamProgram(
        "monitored",
        [
            build_phase(f"p{i}", i, pairs, requests, t_c)
            for i in range(phases)
        ],
    )


class TestPairSamples:
    def test_one_sample_per_pair(self):
        result = simulate(program(pairs=6), FixedMtlPolicy(2))
        samples = pair_samples(result)
        assert len(samples) == 6

    def test_phase_filter(self):
        result = simulate(program(pairs=4, phases=3), FixedMtlPolicy(2))
        assert len(pair_samples(result, phase_index=1)) == 4
        assert len(pair_samples(result)) == 12

    def test_sample_times_are_task_durations(self):
        result = simulate(program(pairs=4, t_c=2e-3), FixedMtlPolicy(1))
        for sample in pair_samples(result):
            assert sample.t_c == pytest.approx(2e-3, rel=1e-6)
            assert sample.t_m > 0


class TestMeasureRatio:
    def test_matches_construction(self):
        t_m1 = 4096 * REFERENCE_SOLO_LATENCY
        target_ratio = 0.5
        prog = program(requests=4096, t_c=t_m1 / target_ratio)
        assert measure_ratio(prog) == pytest.approx(target_ratio, rel=1e-6)

    def test_machine_changes_the_ratio(self):
        prog = program(requests=4096, t_c=1e-3)
        single = measure_ratio(prog, machine=i7_860(channels=1))
        dual = measure_ratio(prog, machine=i7_860(channels=2))
        # Two channels shorten T_m1, so the ratio drops.
        assert dual < single

    def test_phase_ratios_keyed_by_name(self):
        prog = StreamProgram(
            "two",
            [
                build_phase("hot", 0, 4, 8192, 1e-3),
                build_phase("cold", 1, 4, 1024, 1e-3),
            ],
        )
        ratios = measure_phase_ratios(prog)
        assert set(ratios) == {"hot", "cold"}
        assert ratios["hot"] > ratios["cold"]
