"""Tests for the policy-comparison harness."""

import pytest

from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import MeasurementError
from repro.runtime.experiment import (
    compare_policies,
    offline_best_static_factory,
    paper_policy_suite,
)
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.stream.program import StreamProgram, build_phase
from repro.workloads.base import REFERENCE_SOLO_LATENCY


def synthetic(ratio: float, pairs: int = 80) -> StreamProgram:
    t_m1 = 8192 * REFERENCE_SOLO_LATENCY
    return StreamProgram(
        f"synthetic-{ratio}", [build_phase("p", 0, pairs, 8192, t_m1 / ratio)]
    )


class TestComparePolicies:
    def test_speedups_are_relative_to_conventional(self):
        result = compare_policies(
            synthetic(0.25),
            {"static-1": lambda: FixedMtlPolicy(1)},
        )
        outcome = result.outcome("static-1")
        assert outcome.speedup == pytest.approx(
            result.baseline_makespan / outcome.makespan
        )
        assert outcome.speedup > 1.0

    def test_reports_selected_mtl(self):
        result = compare_policies(
            synthetic(0.25),
            {"dynamic": lambda: DynamicThrottlingPolicy(context_count=4)},
        )
        assert result.outcome("dynamic").selected_mtl == 1

    def test_plugin_stats_ride_on_the_outcome(self):
        result = compare_policies(
            synthetic(0.25),
            {
                "dynamic": lambda: DynamicThrottlingPolicy(context_count=4),
                "static-1": lambda: FixedMtlPolicy(1),
            },
        )
        stats = dict(result.outcome("dynamic").stats)
        assert stats["windows_closed"] >= 1.0
        # Every plugin carries the base counters; a static policy's
        # simply never move.
        static_stats = dict(result.outcome("static-1").stats)
        assert static_stats["windows_closed"] == 0.0

    def test_unknown_policy_lookup_raises(self):
        result = compare_policies(
            synthetic(0.25), {"static-1": lambda: FixedMtlPolicy(1)}
        )
        with pytest.raises(MeasurementError):
            result.outcome("ghost")

    def test_repeated_runs_protocol(self):
        result = compare_policies(
            synthetic(0.25, pairs=24),
            {"static-1": lambda: FixedMtlPolicy(1)},
            repeated_runs=4,
        )
        assert result.outcome("static-1").speedup > 1.0

    def test_machine_name_recorded(self):
        machine = i7_860(channels=2)
        result = compare_policies(
            synthetic(0.25, pairs=24),
            {"static-1": lambda: FixedMtlPolicy(1)},
            machine=machine,
        )
        assert result.machine_name == "i7-860/2ch"


class TestPolicySuites:
    def test_paper_suite_has_both_dynamic_policies(self):
        suite = paper_policy_suite()
        assert set(suite) == {"Dynamic Throttling", "Online Exhaustive Search"}
        # Factories produce fresh instances.
        assert suite["Dynamic Throttling"]() is not suite["Dynamic Throttling"]()

    def test_offline_factory_finds_best_static(self):
        factory = offline_best_static_factory(synthetic(0.25, pairs=40))
        policy = factory()
        assert policy.current_mtl() == 1
        assert policy.name == "offline-exhaustive"
