"""Tests for workload characterisation reports."""

import pytest

from repro.runtime.characterize import characterize
from repro.sim.machine import i7_860
from repro.workloads import (
    SIFT_FUNCTION_RATIOS,
    dft,
    sift,
    streamcluster,
    synthetic_from_ratio,
)


class TestPhaseCharacters:
    def test_dft_character(self):
        character = characterize(dft())
        assert len(character.phases) == 1
        phase = character.phases[0]
        assert phase.ratio == pytest.approx(0.1277, rel=1e-3)
        assert phase.idle_bound == 1
        assert phase.predicted_mtl == 1
        assert phase.predicted_speedup > 1.0
        assert not character.is_phase_diverse

    def test_sift_is_phase_diverse(self):
        character = characterize(sift())
        assert character.is_phase_diverse
        by_name = {p.name: p for p in character.phases}
        assert by_name["ECONVOLVE"].predicted_mtl == 2
        assert by_name["ECONVOLVE2"].predicted_mtl == 1

    def test_ratios_match_table3(self):
        character = characterize(sift())
        for phase in character.phases:
            assert phase.ratio == pytest.approx(
                SIFT_FUNCTION_RATIOS[phase.name], rel=1e-3
            )

    def test_overall_ratio_is_pair_weighted(self):
        character = characterize(streamcluster())
        assert character.overall_ratio() == pytest.approx(0.3714, rel=1e-3)

    def test_machine_shifts_the_character(self):
        ratio = 0.5
        single = characterize(synthetic_from_ratio(ratio, pairs=8))
        dual = characterize(
            synthetic_from_ratio(ratio, pairs=8), machine=i7_860(channels=2)
        )
        assert dual.phases[0].ratio < single.phases[0].ratio
        assert dual.phases[0].predicted_speedup < single.phases[0].predicted_speedup


class TestProgramSpeedupPrediction:
    def test_prediction_is_a_ceiling_on_measured_speedup(self):
        from repro.core import DynamicThrottlingPolicy, conventional_policy
        from repro.sim.simulator import simulate

        for program in (dft(), streamcluster(), sift()):
            character = characterize(program)
            predicted = character.predicted_program_speedup()
            baseline = simulate(program, conventional_policy(4)).makespan
            dynamic = simulate(
                program, DynamicThrottlingPolicy(context_count=4)
            ).makespan
            measured = baseline / dynamic
            # The prediction excludes monitoring and transients, so it
            # upper-bounds the measurement but stays within ~6 points.
            assert measured <= predicted + 0.01, program.name
            assert measured >= predicted - 0.06, program.name

    def test_single_phase_prediction_equals_phase_prediction(self):
        character = characterize(streamcluster())
        # All streamcluster phases share one ratio, so the program
        # composition degenerates to the per-phase value.
        assert character.predicted_program_speedup() == pytest.approx(
            character.phases[0].predicted_speedup, rel=1e-6
        )


class TestRender:
    def test_render_mentions_phases_and_verdict(self):
        text = characterize(sift()).render()
        assert "ECONVOLVE" in text
        assert "phase-diverse" in text
        assert "IdleBound" in text

    def test_uniform_verdict(self):
        text = characterize(dft()).render()
        assert "static MTL suffices" in text
