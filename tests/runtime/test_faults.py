"""Failure-mode tests: chaos injection, retries, graceful degradation.

The contract under test is the headline of the fault-injection
subsystem: a sweep under injected worker crashes, hangs, transient
errors, and cache corruption converges to rows **bit-identical** to
the fault-free run — and when the retry budget is genuinely exhausted,
the sweep degrades into structured :class:`PointFailure` slots instead
of aborting.

All chaos here is deterministic (:mod:`repro.runtime.faults` hashes
``(seed, key, attempt)`` — no wall clock, no global RNG), so these
tests replay exactly, including their fault telemetry.
"""

import io
import time

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.runtime.cache import ResultCache
from repro.runtime.experiment import compare_policies_grid
from repro.runtime.faults import (
    FAULT_CRASH,
    FAULT_ERROR,
    FAULT_HANG,
    FaultPlan,
    PointFailure,
    backoff_schedule,
)
from repro.runtime.parallel import (
    PointResult,
    SweepExecutor,
    SweepPoint,
    point_key,
)
from repro.runtime.suite import run_suite_grid
from repro.runtime.telemetry import TelemetryWriter, read_telemetry, validate_record

POINTS = [
    SweepPoint(
        workload={"kind": "synthetic", "ratio": ratio, "pairs": 16},
        policy={"kind": "static", "mtl": mtl},
        label=f"chaos/r={ratio:g}/mtl={mtl}",
    )
    for ratio in (0.2, 1.0)
    for mtl in (1, 2, 4)
]
KEYS = [point_key(p) for p in POINTS]

#: Verified against the plan below: first attempts include at least one
#: crash and one transient error, and no point needs more than one
#: retry (see the fixture guards in TestChaosConvergence).
CRASH_ERROR_PLAN = FaultPlan(seed=1, crash_rate=0.2, error_rate=0.1)

#: At least two of the six points hang on their first attempt; the
#: deepest fault streak is two attempts.
HANG_PLAN = FaultPlan(seed=0, hang_rate=0.5, hang_seconds=5.0)

#: Hang-heavy: four of the six points hang on their first attempt and
#: the deepest streak is four attempts, so a timed-out pool is rebuilt
#: several times with innocent points in flight each round (see the
#: fixture guard in the stale-deadline regression test).
REPEATED_HANG_PLAN = FaultPlan(seed=0, hang_rate=0.7, hang_seconds=5.0)


def rows(results):
    return [r.to_dict() for r in results]


class TestBackoffSchedule:
    def test_doubles_and_caps(self):
        assert backoff_schedule(0, 0.5) == 0.5
        assert backoff_schedule(1, 0.5) == 1.0
        assert backoff_schedule(2, 0.5) == 2.0
        assert backoff_schedule(10, 0.5, cap=3.0) == 3.0

    def test_zero_base_disables_backoff(self):
        assert backoff_schedule(5, 0.0) == 0.0

    def test_negative_attempt_rejected(self):
        with pytest.raises(ConfigurationError):
            backoff_schedule(-1, 0.5)


class TestFaultPlan:
    def test_decisions_are_deterministic(self):
        plan = FaultPlan(seed=7, crash_rate=0.3, hang_rate=0.2, error_rate=0.1)
        for key in KEYS:
            for attempt in range(4):
                assert plan.decide(key, attempt) == plan.decide(key, attempt)

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=0, crash_rate=0.5)
        b = FaultPlan(seed=1, crash_rate=0.5)
        decisions_a = [a.decide(k, 0) for k in KEYS]
        decisions_b = [b.decide(k, 0) for k in KEYS]
        assert decisions_a != decisions_b

    def test_rates_partition_one_draw(self):
        # crash takes the low end of the draw, so widening crash_rate
        # can only convert non-crash outcomes into crashes — a fault
        # kind never flips to a *different* fault kind.
        narrow = FaultPlan(seed=3, crash_rate=0.1, error_rate=0.1)
        wide = FaultPlan(seed=3, crash_rate=0.5, error_rate=0.1)
        for key in KEYS:
            if narrow.decide(key, 0) == FAULT_CRASH:
                assert wide.decide(key, 0) == FAULT_CRASH

    def test_zero_rates_inject_nothing(self):
        plan = FaultPlan(seed=9)
        assert all(plan.decide(k, a) is None for k in KEYS for a in range(3))
        assert not any(plan.corrupts(k) for k in KEYS)

    def test_corrupts_is_per_key_not_per_attempt(self):
        plan = FaultPlan(seed=2, corrupt_rate=0.5)
        decisions = [plan.corrupts(k) for k in KEYS]
        assert decisions == [plan.corrupts(k) for k in KEYS]
        assert any(decisions) and not all(decisions)

    def test_rates_validated(self):
        with pytest.raises(ConfigurationError, match="crash_rate"):
            FaultPlan(crash_rate=1.5)
        with pytest.raises(ConfigurationError, match="error_rate"):
            FaultPlan(error_rate=-0.1)
        with pytest.raises(ConfigurationError, match="<= 1"):
            FaultPlan(crash_rate=0.5, hang_rate=0.4, error_rate=0.2)
        with pytest.raises(ConfigurationError, match="hang_seconds"):
            FaultPlan(hang_seconds=0.0)
        with pytest.raises(ConfigurationError, match="seed"):
            FaultPlan(seed=True)

    def test_parse_round_trips(self):
        plan = FaultPlan.parse(
            "seed=7, crash=0.2, hang=0.1, error=0.05, corrupt=0.5,"
            " hang_seconds=3.5"
        )
        assert plan == FaultPlan(
            seed=7,
            crash_rate=0.2,
            hang_rate=0.1,
            error_rate=0.05,
            corrupt_rate=0.5,
            hang_seconds=3.5,
        )
        assert FaultPlan.parse("") == FaultPlan()

    def test_parse_names_bad_keys(self):
        with pytest.raises(ConfigurationError, match="'boom'"):
            FaultPlan.parse("boom=1")
        with pytest.raises(ConfigurationError, match="key=value"):
            FaultPlan.parse("crash")
        with pytest.raises(ConfigurationError, match="'crash'"):
            FaultPlan.parse("crash=lots")
        with pytest.raises(ConfigurationError, match="'seed'"):
            FaultPlan.parse("seed=1.5")


class TestChaosConvergence:
    """The acceptance criterion: faults never change a number."""

    @pytest.fixture(scope="class")
    def fault_free(self):
        return rows(SweepExecutor(jobs=1).run(POINTS))

    def test_fixture_plans_actually_inject(self):
        # Guard against a silent no-op: the pinned seeds must inject at
        # least one crash, one transient error, and two hangs on first
        # attempts, or the convergence tests below prove nothing.
        first = [CRASH_ERROR_PLAN.decide(k, 0) for k in KEYS]
        assert FAULT_CRASH in first and FAULT_ERROR in first
        assert [HANG_PLAN.decide(k, 0) for k in KEYS].count(FAULT_HANG) >= 2

    def test_serial_chaos_rows_bit_identical(self, fault_free):
        sink = io.StringIO()
        chaos = SweepExecutor(
            jobs=1,
            retries=5,
            fault_plan=CRASH_ERROR_PLAN,
            telemetry=TelemetryWriter(sink),
        ).run(POINTS)
        assert rows(chaos) == fault_free
        faults = read_telemetry(io.StringIO(sink.getvalue()), event="fault")
        retries = read_telemetry(io.StringIO(sink.getvalue()), event="retry")
        assert faults and len(retries) == len(faults)
        (summary,) = read_telemetry(io.StringIO(sink.getvalue()), event="sweep")
        assert summary["faults"] == len(faults)
        assert summary["retries"] == len(retries)
        assert summary["failures"] == 0

    def test_pool_chaos_rows_bit_identical(self, fault_free):
        # Real crashes: workers die via os._exit, the pool breaks, the
        # executor respawns it and retries the culprit.
        chaos = SweepExecutor(
            jobs=3, retries=5, fault_plan=CRASH_ERROR_PLAN
        ).run(POINTS)
        assert rows(chaos) == fault_free

    def test_pool_hang_with_timeout_rows_bit_identical(self, fault_free):
        # Hanging workers sleep 5 s; the 0.3 s per-point timeout
        # abandons them and the retry produces the same bits.  The
        # wall-time bound proves workers were abandoned, not waited out.
        start = time.monotonic()
        chaos = SweepExecutor(
            jobs=3, retries=4, timeout=0.3, fault_plan=HANG_PLAN
        ).run(POINTS)
        elapsed = time.monotonic() - start
        assert rows(chaos) == fault_free
        assert elapsed < HANG_PLAN.hang_seconds

    def test_serial_hang_becomes_timeout_without_sleeping(self, fault_free):
        # In-process hangs cannot be preempted, so serial mode converts
        # a hang the timeout would catch (hang_seconds >= timeout)
        # straight into a timeout-equivalent fault — no sleep.
        sink = io.StringIO()
        start = time.monotonic()
        chaos = SweepExecutor(
            jobs=1, retries=4, timeout=0.3, fault_plan=HANG_PLAN,
            telemetry=TelemetryWriter(sink),
        ).run(POINTS)
        assert time.monotonic() - start < HANG_PLAN.hang_seconds
        assert rows(chaos) == fault_free
        retries = read_telemetry(io.StringIO(sink.getvalue()), event="retry")
        assert any("timeout (injected hang)" in r["reason"] for r in retries)

    def test_hang_without_timeout_recovers_without_retry(self, fault_free):
        # With no timeout a hanging worker is slow, not dead: pool mode
        # waits it out, serial mode runs the point directly (without
        # sleeping), and neither consumes a retry — so retries=0 must
        # still succeed in both modes with identical rows.
        plan = FaultPlan(seed=1, hang_rate=0.5, hang_seconds=0.05)
        sink = io.StringIO()
        serial = SweepExecutor(
            jobs=1, retries=0, fault_plan=plan, telemetry=TelemetryWriter(sink)
        ).run(POINTS)
        assert rows(serial) == fault_free
        faults = read_telemetry(io.StringIO(sink.getvalue()), event="fault")
        assert any(f["kind"] == FAULT_HANG for f in faults)
        assert not read_telemetry(io.StringIO(sink.getvalue()), event="retry")
        pool = SweepExecutor(jobs=3, retries=0, fault_plan=plan).run(POINTS)
        assert rows(pool) == fault_free

    def test_repeated_timeouts_with_innocent_inflight_never_abort(
        self, fault_free
    ):
        # Several consecutive timeout rounds, each abandoning a pool
        # with innocent points still in flight: the abandoned futures'
        # deadlines must die with the pool, or a stale deadline
        # expiring in a later round looks like an overdue future that
        # is no longer in flight and aborts the sweep.
        streaks = []
        for key in KEYS:
            streak = 0
            while REPEATED_HANG_PLAN.decide(key, streak) == FAULT_HANG:
                streak += 1
            streaks.append(streak)
        # Fixture guard: most points hang on their first attempt (so
        # every timeout round has innocent co-in-flight points) and the
        # deepest streak spans several rounds.
        assert sum(1 for s in streaks if s >= 1) >= 3
        assert 3 <= max(streaks) <= 6
        chaos = SweepExecutor(
            jobs=3, retries=6, timeout=0.25, fault_plan=REPEATED_HANG_PLAN
        ).run(POINTS)
        assert rows(chaos) == fault_free

    def test_pool_backoff_chaos_rows_bit_identical(self, fault_free):
        # Backing-off points must not block eligible points queued
        # behind them: the scheduler submits the first *eligible*
        # point, and the sweep still converges to identical rows.
        chaos = SweepExecutor(
            jobs=3, retries=5, backoff_base=0.05, fault_plan=CRASH_ERROR_PLAN
        ).run(POINTS)
        assert rows(chaos) == fault_free

    def test_serial_chaos_telemetry_replays_identically(self):
        def chaos_log():
            sink = io.StringIO()
            SweepExecutor(
                jobs=1,
                retries=5,
                fault_plan=CRASH_ERROR_PLAN,
                telemetry=TelemetryWriter(sink),
            ).run(POINTS)
            return [
                (r["key"], r["kind"], r["attempt"])
                for r in read_telemetry(io.StringIO(sink.getvalue()), event="fault")
            ]

        assert chaos_log() == chaos_log()

    def test_faults_match_parent_side_predictions(self):
        # Telemetry reports exactly the faults the plan predicts — the
        # executor computes injections parent-side, so the record of a
        # crash exists even though the worker died before reporting.
        sink = io.StringIO()
        SweepExecutor(
            jobs=1,
            retries=5,
            fault_plan=CRASH_ERROR_PLAN,
            telemetry=TelemetryWriter(sink),
        ).run(POINTS)
        logged = {
            (r["key"], r["attempt"]): r["kind"]
            for r in read_telemetry(io.StringIO(sink.getvalue()), event="fault")
        }
        predicted = {
            (key, attempt): CRASH_ERROR_PLAN.decide(key, attempt)
            for key in KEYS
            for attempt in range(6)
            if CRASH_ERROR_PLAN.decide(key, attempt) is not None
            and all(
                CRASH_ERROR_PLAN.decide(key, a) is not None
                for a in range(attempt)
            )
        }
        assert logged == predicted

    def test_backoff_delays_serial_retries(self):
        start = time.monotonic()
        chaos = SweepExecutor(
            jobs=1, retries=5, backoff_base=0.05, fault_plan=CRASH_ERROR_PLAN
        ).run(POINTS)
        assert all(isinstance(r, PointResult) for r in chaos)
        # At least one retry happened (fixture guard), each sleeping
        # >= backoff_base.
        assert time.monotonic() - start >= 0.05


class TestCorruptionChaos:
    def test_corrupt_entries_quarantine_and_reverify(self, tmp_path):
        plan = FaultPlan(seed=5, corrupt_rate=1.0)
        cache = ResultCache(tmp_path)
        sink = io.StringIO()
        executor = SweepExecutor(
            jobs=1, cache=cache, fault_plan=plan,
            telemetry=TelemetryWriter(sink),
        )
        cold = executor.run(POINTS)
        # Every stored entry was truncated after the store ...
        assert len(list(tmp_path.glob("*/*.json"))) == len(POINTS)
        warm = executor.run(POINTS)
        # ... so the warm run quarantines them all, re-runs, and still
        # produces identical rows.
        assert rows(warm) == rows(cold)
        assert cache.stats.quarantined == len(POINTS)
        assert len(list(tmp_path.glob("*/*.json.corrupt"))) == len(POINTS)
        quarantines = read_telemetry(
            io.StringIO(sink.getvalue()), event="cache_quarantine"
        )
        assert len(quarantines) == len(POINTS)
        for record in quarantines:
            validate_record(record)

    def test_run_leaves_caller_owned_cache_unmutated(self, tmp_path):
        # The executor routes quarantine events into its own telemetry
        # sink for the duration of a run only: a shared ResultCache
        # must come back exactly as it went in, not left wired to a
        # discarded executor's sink — and a cache that brought its own
        # sink keeps it.
        cache = ResultCache(tmp_path / "borrowed")
        SweepExecutor(
            jobs=1, cache=cache, telemetry=TelemetryWriter(io.StringIO())
        ).run(POINTS)
        assert cache.telemetry is None
        own = TelemetryWriter(io.StringIO())
        owned = ResultCache(tmp_path / "owned", telemetry=own)
        SweepExecutor(
            jobs=1, cache=owned, telemetry=TelemetryWriter(io.StringIO())
        ).run(POINTS)
        assert owned.telemetry is own

    def test_healthy_keys_stay_cached_under_partial_corruption(self, tmp_path):
        plan = FaultPlan(seed=2, corrupt_rate=0.5)
        corrupted = sum(plan.corrupts(k) for k in KEYS)
        assert 0 < corrupted < len(KEYS)  # fixture guard
        cache = ResultCache(tmp_path)
        executor = SweepExecutor(jobs=1, cache=cache, fault_plan=plan)
        cold = executor.run(POINTS)
        warm = executor.run(POINTS)
        assert rows(warm) == rows(cold)
        assert cache.stats.quarantined == corrupted
        assert cache.stats.hits == len(KEYS) - corrupted


class TestGracefulDegradation:
    ALWAYS_FAIL = FaultPlan(seed=0, error_rate=1.0)

    def test_exhausted_retries_degrade_in_order(self):
        sink = io.StringIO()
        results = SweepExecutor(
            jobs=1,
            retries=1,
            fault_plan=self.ALWAYS_FAIL,
            telemetry=TelemetryWriter(sink),
        ).run(POINTS)
        assert [r.key for r in results] == KEYS
        for result, point in zip(results, POINTS):
            assert isinstance(result, PointFailure)
            assert result.label == point.label
            assert result.attempts == 2  # first try + one retry
            assert "injected transient error" in result.reason
        failures = read_telemetry(
            io.StringIO(sink.getvalue()), event="point_failure"
        )
        assert [f["key"] for f in failures] == KEYS
        (summary,) = read_telemetry(io.StringIO(sink.getvalue()), event="sweep")
        assert summary["failures"] == len(POINTS)

    def test_pool_degradation_matches_serial(self):
        serial = SweepExecutor(
            jobs=1, retries=1, fault_plan=self.ALWAYS_FAIL
        ).run(POINTS)
        pool = SweepExecutor(
            jobs=3, retries=1, fault_plan=self.ALWAYS_FAIL
        ).run(POINTS)
        assert [r.to_dict() for r in pool] == [r.to_dict() for r in serial]

    def test_partial_failure_keeps_healthy_rows_identical(self, tmp_path):
        # retries=0 with the crash+error plan: the points faulted on
        # attempt 0 fail, the rest must stay bit-identical.
        doomed = {
            k for k in KEYS if CRASH_ERROR_PLAN.decide(k, 0) is not None
        }
        assert doomed and len(doomed) < len(KEYS)  # fixture guard
        fault_free = SweepExecutor(jobs=1).run(POINTS)
        degraded = SweepExecutor(
            jobs=1, retries=0, fault_plan=CRASH_ERROR_PLAN
        ).run(POINTS)
        for key, healthy, result in zip(KEYS, fault_free, degraded):
            if key in doomed:
                assert isinstance(result, PointFailure)
            else:
                assert result.to_dict() == healthy.to_dict()

    def test_suite_grid_skips_failed_cells(self):
        workloads = {"w": {"kind": "synthetic", "ratio": 0.5, "pairs": 16}}
        machines = [{"preset": "i7_860"}]
        policies = {"static-2": {"kind": "static", "mtl": 2}}
        healthy = run_suite_grid(workloads, machines, policies)
        degraded = run_suite_grid(
            workloads,
            machines,
            policies,
            executor=SweepExecutor(
                jobs=1, retries=0, fault_plan=self.ALWAYS_FAIL
            ),
        )
        assert healthy.rows and not healthy.failures
        assert not degraded.rows
        assert len(degraded.failures) == 2  # baseline + policy point

    def test_compare_grid_failed_baseline_raises(self):
        with pytest.raises(MeasurementError, match="conventional baseline"):
            compare_policies_grid(
                {"kind": "synthetic", "ratio": 0.5, "pairs": 16},
                {"static-2": {"kind": "static", "mtl": 2}},
                executor=SweepExecutor(
                    jobs=1, retries=0, fault_plan=self.ALWAYS_FAIL
                ),
            )

    def test_compare_grid_skips_failed_policy(self):
        # Fail exactly the static-4 measurement point; the baseline and
        # static-2 numbers must stay bit-identical to a healthy run.
        workload = {"kind": "synthetic", "ratio": 0.5, "pairs": 16}
        policies = {
            "static-2": {"kind": "static", "mtl": 2},
            "static-4": {"kind": "static", "mtl": 4},
        }
        doomed_key = point_key(SweepPoint(workload=workload, policy=policies["static-4"]))

        healthy = compare_policies_grid(workload, policies)
        for seed in range(200):
            plan = FaultPlan(seed=seed, error_rate=0.35)
            if plan.decide(doomed_key, 0) == FAULT_ERROR and all(
                plan.decide(point_key(SweepPoint(workload=workload, policy=spec)), 0)
                is None
                for name, spec in [("conventional", {"kind": "conventional"})]
                + list(policies.items())
                if name != "static-4"
            ):
                break
        else:
            pytest.fail("no seed fails only static-4")

        degraded = compare_policies_grid(
            workload,
            policies,
            executor=SweepExecutor(jobs=1, retries=0, fault_plan=plan),
        )
        assert degraded.baseline_makespan == healthy.baseline_makespan
        assert [o.policy_name for o in degraded.outcomes] == ["static-2"]
        assert degraded.outcome("static-2") == healthy.outcome("static-2")
        assert [f.label for f in degraded.failures] == ["static-4/measure"]

    def test_real_persistent_errors_degrade_without_a_plan(self):
        # A workload whose spec fails at build time raises
        # ConfigurationError, not MeasurementError — that is a caller
        # bug and must abort loudly, not degrade.
        with pytest.raises(ConfigurationError):
            SweepExecutor(jobs=1, retries=1).run(
                [SweepPoint(workload={"kind": "nope"})]
            )


class TestExecutorValidation:
    def test_invalid_resilience_options_rejected(self):
        with pytest.raises(ConfigurationError, match="timeout"):
            SweepExecutor(timeout=0.0)
        with pytest.raises(ConfigurationError, match="retries"):
            SweepExecutor(retries=-1)
        with pytest.raises(ConfigurationError, match="backoff_base"):
            SweepExecutor(backoff_base=-0.5)
