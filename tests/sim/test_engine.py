"""Tests for the processor-sharing rate calculator."""

import pytest

from repro.memory.contention import nehalem_ddr3_contention
from repro.memory.system import MemorySystem
from repro.sim.cores import Processor
from repro.sim.engine import RateCalculator, RunningTask
from repro.stream.task import compute_task, memory_task


def make_calculator(smt: int = 1) -> RateCalculator:
    return RateCalculator(
        Processor(core_count=4, smt_ways=smt),
        MemorySystem(contention=nehalem_ddr3_contention()),
    )


def run_memory(context_id: int, core_id: int, requests: float = 1000):
    task = memory_task(f"m{context_id}", requests=requests)
    return RunningTask(
        task=task, context_id=context_id, core_id=core_id, start=0.0,
        remaining_units=task.work_units, overhead_remaining=0.0,
        mtl_at_dispatch=4,
    )


def run_compute(context_id: int, core_id: int, cpu_seconds: float = 1e-3):
    task = compute_task(f"c{context_id}", cpu_seconds=cpu_seconds)
    return RunningTask(
        task=task, context_id=context_id, core_id=core_id, start=0.0,
        remaining_units=task.work_units, overhead_remaining=0.0,
        mtl_at_dispatch=4,
    )


class TestMemoryRates:
    @pytest.mark.parametrize("k", [1, 2, 3, 4])
    def test_k_pure_memory_tasks_see_latency_of_k(self, k):
        calc = make_calculator()
        population = [run_memory(i, i) for i in range(k)]
        snap = calc.snapshot(population)
        expected = nehalem_ddr3_contention().request_latency(k)
        assert snap.request_latency == pytest.approx(expected)
        assert snap.memory_concurrency == pytest.approx(k)

    def test_memory_task_speed_is_one_request_per_latency(self):
        calc = make_calculator()
        snap = calc.snapshot([run_memory(0, 0)])
        latency = nehalem_ddr3_contention().request_latency(1)
        assert snap.speeds[0] == pytest.approx(1.0 / latency)

    def test_compute_tasks_do_not_raise_memory_latency(self):
        calc = make_calculator()
        snap = calc.snapshot(
            [run_memory(0, 0), run_compute(1, 1), run_compute(2, 2)]
        )
        assert snap.memory_concurrency == pytest.approx(1.0)


class TestComputeRates:
    def test_compute_duration_invariant_to_memory_neighbours(self):
        calc = make_calculator()
        alone = calc.snapshot([run_compute(0, 0)])
        crowded = calc.snapshot(
            [run_compute(0, 0)] + [run_memory(i, i) for i in range(1, 4)]
        )
        assert alone.speeds[0] == pytest.approx(crowded.speeds[0])

    def test_smt_sharing_slows_co_scheduled_compute(self):
        calc = make_calculator(smt=2)
        # Contexts 0 and 1 share core 0.
        both = calc.snapshot([run_compute(0, 0), run_compute(1, 0)])
        alone = calc.snapshot([run_compute(0, 0)])
        assert both.speeds[0] < alone.speeds[0]
        assert both.speeds[0] == pytest.approx(alone.speeds[0] * 0.625)

    def test_memory_sibling_does_not_slow_compute(self):
        calc = make_calculator(smt=2)
        snap = calc.snapshot([run_compute(0, 0), run_memory(1, 0)])
        assert snap.cpu_rates[0] == 1.0


class TestOverheadPhase:
    def test_overhead_phase_has_zero_speed_and_full_cpu_demand(self):
        calc = make_calculator()
        rt = run_memory(0, 0)
        rt.overhead_remaining = 1e-6
        snap = calc.snapshot([rt])
        assert snap.speeds[0] == 0.0
        # During overhead the memory system sees no demand from it.
        assert snap.memory_concurrency == 0.0

    def test_overhead_phase_contends_for_the_core(self):
        calc = make_calculator(smt=2)
        busy = run_compute(0, 0)
        dispatching = run_memory(1, 0)
        dispatching.overhead_remaining = 1e-6
        snap = calc.snapshot([busy, dispatching])
        assert snap.cpu_rates[0] == pytest.approx(0.625)
