"""Tests for the noise models."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.noise import GaussianNoise, NoiseModel, ZeroNoise


class TestZeroNoise:
    def test_identity_factor_and_zero_overhead(self):
        noise = ZeroNoise()
        assert noise.duration_factor() == 1.0
        assert noise.dispatch_overhead() == 0.0

    def test_satisfies_protocol(self):
        assert isinstance(ZeroNoise(), NoiseModel)
        assert isinstance(GaussianNoise(), NoiseModel)


class TestGaussianNoise:
    def test_deterministic_given_seed(self):
        a = GaussianNoise(seed=7)
        b = GaussianNoise(seed=7)
        assert [a.duration_factor() for _ in range(20)] == [
            b.duration_factor() for _ in range(20)
        ]

    def test_different_seeds_differ(self):
        a = GaussianNoise(seed=1)
        b = GaussianNoise(seed=2)
        assert [a.duration_factor() for _ in range(10)] != [
            b.duration_factor() for _ in range(10)
        ]

    def test_factors_positive_and_near_one(self):
        noise = GaussianNoise(seed=0, sigma=0.02, spike_probability=0.0)
        factors = [noise.duration_factor() for _ in range(500)]
        assert all(f > 0 for f in factors)
        mean = sum(factors) / len(factors)
        assert mean == pytest.approx(1.0, abs=0.01)

    def test_spikes_inflate(self):
        calm = GaussianNoise(seed=0, sigma=0.0, spike_probability=0.0)
        spiky = GaussianNoise(seed=0, sigma=0.0, spike_probability=1.0,
                              spike_magnitude=0.25)
        assert calm.duration_factor() == pytest.approx(1.0)
        assert spiky.duration_factor() == pytest.approx(1.25)

    def test_overhead_non_negative(self):
        noise = GaussianNoise(seed=3)
        assert all(noise.dispatch_overhead() >= 0 for _ in range(100))

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            GaussianNoise(sigma=-0.1)
        with pytest.raises(ConfigurationError):
            GaussianNoise(spike_probability=1.5)
        with pytest.raises(ConfigurationError):
            GaussianNoise(spike_magnitude=-1.0)
        with pytest.raises(ConfigurationError):
            GaussianNoise(overhead_seconds=-1.0)
