"""Property tests for the rate-snapshot memoization.

The memo must be invisible: for any population — mixed demands,
overhead-phase tasks, populations revisited after MTL changes — the
memoized :meth:`RateCalculator.snapshot` must return exactly what the
always-cold :meth:`RateCalculator.compute_snapshot` computes, float for
float.  ``RateSnapshot`` is a frozen dataclass, so ``==`` compares every
field (including the per-context dicts) exactly.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import SimulationError
from repro.memory.contention import nehalem_ddr3_contention
from repro.memory.system import MemorySystem
from repro.sim.cores import Processor
from repro.sim.engine import RateCalculator, RunningTask
from repro.stream.task import compute_task, memory_task


def make_calculator(max_entries: int = 65536) -> RateCalculator:
    return RateCalculator(
        Processor(core_count=4, smt_ways=2),
        MemorySystem(contention=nehalem_ddr3_contention()),
        max_entries=max_entries,
    )


def running(task, context_id: int, overhead: float = 0.0) -> RunningTask:
    return RunningTask(
        task=task,
        context_id=context_id,
        core_id=context_id % 4,
        start=0.0,
        remaining_units=task.work_units,
        overhead_remaining=overhead,
        mtl_at_dispatch=4,
    )


#: One running task: kind, demand magnitude, and overhead phase drawn
#: independently so populations mix all three signature dimensions.
task_specs = st.lists(
    st.tuples(
        st.booleans(),                                  # memory task?
        st.integers(min_value=1, max_value=4),          # demand scale
        st.booleans(),                                  # in overhead phase?
    ),
    min_size=1,
    max_size=8,
)


def build_population(specs):
    population = []
    for context_id, (is_memory, scale, in_overhead) in enumerate(specs):
        if is_memory:
            task = memory_task(f"m{context_id}", requests=250.0 * scale)
        else:
            task = compute_task(f"c{context_id}", cpu_seconds=1e-4 * scale)
        population.append(
            running(task, context_id, overhead=1e-6 if in_overhead else 0.0)
        )
    return population


class TestMemoizedSnapshotExactness:
    @settings(max_examples=80)
    @given(specs=task_specs)
    def test_property_hit_equals_cold_recomputation(self, specs):
        calc = make_calculator()
        population = build_population(specs)
        first = calc.snapshot(population)       # miss: fills the memo
        hit = calc.snapshot(population)         # hit: served from memo
        cold = calc.compute_snapshot(population)
        assert hit is first
        assert hit == cold
        assert calc.hits >= 1

    @settings(max_examples=40)
    @given(specs=task_specs)
    def test_property_overhead_transition_selects_fresh_result(self, specs):
        """Finishing the overhead phase must change the memo key: the
        post-transition snapshot must match a cold recomputation, not
        the pre-transition cached one."""
        calc = make_calculator()
        population = build_population(specs)
        population[0].overhead_remaining = 1e-6
        before = calc.snapshot(population)
        population[0].overhead_remaining = 0.0  # work phase begins
        after = calc.snapshot(population)
        assert after == calc.compute_snapshot(population)
        # The transitioned task now has a real speed, so the snapshots
        # genuinely differ (its overhead-phase speed was pinned to 0).
        assert before.speeds[0] == 0.0
        assert after.speeds[0] > 0.0

    def test_revisited_population_after_mtl_style_swap_hits(self):
        """Alternating between two populations (what an offline search
        does across MTL runs) keeps both memo entries live."""
        calc = make_calculator()
        low = build_population([(True, 1, False)])
        high = build_population([(True, 1, False), (True, 2, False)])
        results = [calc.snapshot(p) for p in (low, high, low, high, low)]
        assert calc.misses == 2
        assert calc.hits == 3
        assert results[0] is results[2] is results[4]
        assert results[1] is results[3]
        assert results[0] == calc.compute_snapshot(low)
        assert results[1] == calc.compute_snapshot(high)

    def test_cold_path_never_touches_the_memo(self):
        calc = make_calculator()
        population = build_population([(True, 1, False)])
        calc.compute_snapshot(population)
        assert calc.cache_info() == {"hits": 0, "misses": 0, "entries": 0}


class TestMemoBounds:
    def test_overflow_clears_and_keeps_serving_exact_results(self):
        calc = make_calculator(max_entries=2)
        populations = [
            build_population([(True, scale, False)]) for scale in (1, 2, 3, 4)
        ]
        for population in populations:
            snap = calc.snapshot(population)
            assert snap == calc.compute_snapshot(population)
            assert calc.cache_info()["entries"] <= 2

    def test_rejects_non_positive_max_entries(self):
        with pytest.raises(SimulationError):
            make_calculator(max_entries=0)
