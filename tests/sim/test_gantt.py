"""Tests for the ASCII gantt renderer."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.gantt import render_gantt
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase


def small_run(mtl=2):
    program = StreamProgram(
        "gantt-demo", [build_phase("p", 0, 8, 4096, 3e-4)]
    )
    return simulate(program, FixedMtlPolicy(mtl))


class TestRenderGantt:
    def test_has_one_row_per_context_plus_header_and_legend(self):
        output = render_gantt(small_run())
        lines = output.splitlines()
        assert len(lines) == 1 + 4 + 1
        assert lines[1].startswith("P0 |")
        assert lines[4].startswith("P3 |")

    def test_rows_have_requested_width(self):
        output = render_gantt(small_run(), width=60)
        for line in output.splitlines()[1:5]:
            body = line.split("|")[1]
            assert len(body) == 60

    def test_contains_both_task_kinds(self):
        output = render_gantt(small_run())
        assert "M" in output
        assert "C" in output

    def test_throttled_schedule_shows_idle_gaps(self):
        # Heavily memory-bound at MTL=1: three cores idle most of the time.
        program = StreamProgram("idle", [build_phase("p", 0, 8, 8192, 1e-5)])
        output = render_gantt(simulate(program, FixedMtlPolicy(1)), width=60)
        body_rows = [l.split("|")[1] for l in output.splitlines()[1:5]]
        idle_cells = sum(row.count(" ") for row in body_rows)
        assert idle_cells > 60  # plenty of blank (idle) space

    def test_header_mentions_names(self):
        output = render_gantt(small_run())
        assert "gantt-demo" in output
        assert "static-mtl-2" in output

    def test_rejects_tiny_width(self):
        with pytest.raises(ConfigurationError):
            render_gantt(small_run(), width=5)
