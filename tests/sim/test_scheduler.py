"""Tests for the work queue, MTL gate, and fixed policies."""

import pytest

from repro.errors import ConfigurationError, SchedulingError
from repro.sim.scheduler import (
    FixedMtlPolicy,
    MtlGate,
    SchedulingPolicy,
    WorkQueue,
    conventional_policy,
)
from repro.stream.program import StreamProgram, build_phase


def one_phase_graph(pairs: int = 4):
    program = StreamProgram(
        "wq",
        [build_phase("p", 0, pairs, requests_per_memory_task=100,
                     compute_seconds_per_task=1e-4)],
    )
    return program.to_task_graph()


class TestMtlGate:
    def test_acquire_up_to_limit(self):
        gate = MtlGate(limit=2)
        assert gate.try_acquire()
        assert gate.try_acquire()
        assert not gate.try_acquire()
        assert gate.in_use == 2

    def test_release_frees_token(self):
        gate = MtlGate(limit=1)
        assert gate.try_acquire()
        gate.release()
        assert gate.try_acquire()

    def test_release_without_acquire_is_a_bug(self):
        with pytest.raises(SchedulingError):
            MtlGate(limit=1).release()

    def test_lowering_limit_does_not_preempt(self):
        gate = MtlGate(limit=3)
        for _ in range(3):
            assert gate.try_acquire()
        gate.set_limit(1)
        assert gate.in_use == 3          # running tasks keep their tokens
        assert not gate.try_acquire()    # but nothing new gets in
        gate.release()
        gate.release()
        assert not gate.try_acquire()    # still 1 in use at limit 1
        gate.release()
        assert gate.try_acquire()

    def test_rejects_bad_limits(self):
        with pytest.raises(ConfigurationError):
            MtlGate(limit=0)
        with pytest.raises(ConfigurationError):
            MtlGate(limit=2).set_limit(0)


class TestFixedPolicies:
    def test_fixed_policy_reports_constant_mtl(self):
        policy = FixedMtlPolicy(mtl=2)
        assert policy.current_mtl() == 2
        assert policy.name == "static-mtl-2"
        assert not policy.is_probing()

    def test_conventional_policy_equals_context_count(self):
        policy = conventional_policy(context_count=4)
        assert policy.current_mtl() == 4
        assert policy.name == "conventional"

    def test_policies_satisfy_protocol(self):
        assert isinstance(FixedMtlPolicy(1), SchedulingPolicy)

    def test_rejects_mtl_below_one(self):
        with pytest.raises(ConfigurationError):
            FixedMtlPolicy(mtl=0)


class TestWorkQueue:
    def test_initially_only_memory_tasks_ready(self):
        queue = WorkQueue(one_phase_graph(4))
        assert queue.pending_memory == 4
        assert queue.pending_compute == 0

    def test_completing_memory_readies_its_compute(self):
        queue = WorkQueue(one_phase_graph(2))
        task = queue.pop_memory()
        newly = queue.mark_complete(task)
        assert [t.task_id for t in newly] == [task.task_id.replace("M", "C")]
        assert queue.pending_compute == 1

    def test_fifo_memory_order(self):
        queue = WorkQueue(one_phase_graph(3))
        ids = [queue.pop_memory().task_id for _ in range(3)]
        assert ids == ["M[0.0]", "M[0.1]", "M[0.2]"]

    def test_affinity_preference(self):
        queue = WorkQueue(one_phase_graph(3))
        m0 = queue.pop_memory()
        m1 = queue.pop_memory()
        queue.note_memory_ran_on(m0, context_id=0)
        queue.note_memory_ran_on(m1, context_id=1)
        queue.mark_complete(m0)
        queue.mark_complete(m1)
        # Context 1 prefers the compute task whose data it gathered,
        # even though context 0's pair was enqueued first.
        task = queue.pop_compute(context_id=1)
        assert task.task_id == "C[0.1]"

    def test_compute_falls_back_to_fifo_without_affinity(self):
        queue = WorkQueue(one_phase_graph(2))
        m0 = queue.pop_memory()
        m1 = queue.pop_memory()
        queue.mark_complete(m0)
        queue.mark_complete(m1)
        assert queue.pop_compute(context_id=9).task_id == "C[0.0]"

    def test_pop_from_empty_returns_none(self):
        queue = WorkQueue(one_phase_graph(1))
        assert queue.pop_compute(0) is None
        queue.pop_memory()
        assert queue.pop_memory() is None

    def test_exhausted_after_all_complete(self):
        queue = WorkQueue(one_phase_graph(2))
        while not queue.exhausted():
            task = queue.pop_memory() or queue.pop_compute(0)
            queue.mark_complete(task)
        assert not queue.has_ready_work()
        assert queue.completed_count == 4

    def test_double_completion_is_a_bug(self):
        queue = WorkQueue(one_phase_graph(1))
        task = queue.pop_memory()
        queue.mark_complete(task)
        with pytest.raises(SchedulingError):
            queue.mark_complete(task)

    def test_completing_undispatched_task_is_a_bug(self):
        queue = WorkQueue(one_phase_graph(2))
        task = queue.pop_memory()
        other = queue.pop_memory()
        queue.mark_complete(task)
        ready_compute = queue.pop_compute(0)
        queue.mark_complete(ready_compute)
        # A task never handed out by the queue must not complete.
        graph = one_phase_graph(2)
        foreign = graph.task("M[0.1]")
        fresh_queue = WorkQueue(graph)
        with pytest.raises(SchedulingError):
            fresh_queue.mark_complete(foreign)
