"""Tests for SimulationResult statistics."""

import pytest

from repro.errors import MeasurementError, SimulationError
from repro.sim.events import MtlChange, TaskRecord
from repro.sim.results import SimulationResult
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase
from repro.stream.task import TaskKind


def record(task_id, kind, context, start, end, mtl=4, probe=False, phase=0):
    return TaskRecord(
        task_id=task_id, kind=kind, context_id=context, core_id=context,
        start=start, end=end, mtl_at_dispatch=mtl, phase_index=phase,
        pair_index=0, probe=probe,
    )


def manual_result(records, changes=None, contexts=2):
    return SimulationResult(
        program_name="p", machine_name="m", policy_name="pol",
        context_count=contexts, records=tuple(records),
        mtl_changes=tuple(changes or [MtlChange(0.0, 2, 2, "initial")]),
    )


class TestTaskRecord:
    def test_duration(self):
        r = record("a", TaskKind.MEMORY, 0, 1.0, 3.0)
        assert r.duration == 2.0
        assert r.is_memory

    def test_rejects_negative_duration(self):
        with pytest.raises(SimulationError):
            record("a", TaskKind.MEMORY, 0, 3.0, 1.0)


class TestAggregates:
    def test_makespan_is_last_end(self):
        result = manual_result([
            record("m", TaskKind.MEMORY, 0, 0.0, 1.0),
            record("c", TaskKind.COMPUTE, 1, 1.0, 4.0),
        ])
        assert result.makespan == 4.0

    def test_empty_result(self):
        result = manual_result([])
        assert result.makespan == 0.0
        assert result.utilization() == 0.0
        assert result.probe_task_time_fraction() == 0.0

    def test_mean_durations_grouped_by_mtl(self):
        result = manual_result([
            record("m1", TaskKind.MEMORY, 0, 0.0, 1.0, mtl=1),
            record("m2", TaskKind.MEMORY, 0, 1.0, 4.0, mtl=2),
            record("c1", TaskKind.COMPUTE, 1, 0.0, 2.0),
        ])
        assert result.mean_memory_duration(mtl=1) == 1.0
        assert result.mean_memory_duration(mtl=2) == 3.0
        assert result.mean_memory_duration() == 2.0
        assert result.mean_compute_duration() == 2.0

    def test_missing_samples_raise(self):
        result = manual_result([record("m", TaskKind.MEMORY, 0, 0.0, 1.0)])
        with pytest.raises(MeasurementError):
            result.mean_memory_duration(mtl=3)
        with pytest.raises(MeasurementError):
            result.mean_compute_duration()

    def test_utilization_and_idle(self):
        result = manual_result([
            record("m", TaskKind.MEMORY, 0, 0.0, 2.0),
            record("c", TaskKind.COMPUTE, 1, 0.0, 1.0),
        ])
        # busy 3 over 2 contexts * span 2 = 4.
        assert result.utilization() == pytest.approx(0.75)
        assert result.idle_time() == pytest.approx(1.0)

    def test_probe_fraction(self):
        result = manual_result([
            record("m", TaskKind.MEMORY, 0, 0.0, 1.0, probe=True),
            record("c", TaskKind.COMPUTE, 1, 0.0, 3.0),
        ])
        assert result.probe_task_time_fraction() == pytest.approx(0.25)


class TestMtlTimeline:
    def test_residency_splits_by_change_points(self):
        changes = [
            MtlChange(0.0, 4, 4, "initial"),
            MtlChange(2.0, 4, 1, "select"),
        ]
        result = manual_result(
            [record("m", TaskKind.MEMORY, 0, 0.0, 10.0)], changes=changes
        )
        residency = result.mtl_residency()
        assert residency[4] == pytest.approx(2.0)
        assert residency[1] == pytest.approx(8.0)
        assert result.dominant_mtl() == 1
        assert result.final_mtl() == 1

    def test_dominant_mtl_requires_timeline(self):
        result = SimulationResult(
            program_name="p", machine_name="m", policy_name="pol",
            context_count=1, records=(), mtl_changes=(),
        )
        with pytest.raises(MeasurementError):
            result.dominant_mtl()


class TestConsistencyChecks:
    def test_detects_duplicate_records(self):
        result = manual_result([
            record("m", TaskKind.MEMORY, 0, 0.0, 1.0),
            record("m", TaskKind.MEMORY, 1, 0.0, 1.0),
        ])
        with pytest.raises(MeasurementError):
            result.verify_consistency()

    def test_detects_context_overlap(self):
        result = manual_result([
            record("a", TaskKind.MEMORY, 0, 0.0, 2.0),
            record("b", TaskKind.COMPUTE, 0, 1.0, 3.0),
        ])
        with pytest.raises(MeasurementError):
            result.verify_consistency()

    def test_real_simulation_is_consistent(self):
        program = StreamProgram(
            "p", [build_phase("p", 0, 12, 2048, 1e-4)]
        )
        simulate(program, FixedMtlPolicy(2)).verify_consistency()
