"""Tests for multiprogram co-scheduling."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.machine import i7_860
from repro.sim.multiprogram import co_schedule, merge_programs
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase
from repro.workloads.base import REFERENCE_SOLO_LATENCY


def program(name: str, ratio: float, pairs: int = 24, phases: int = 2):
    t_m1 = 8192 * REFERENCE_SOLO_LATENCY
    return StreamProgram(
        name,
        [
            build_phase(f"p{i}", i, pairs, 8192, t_m1 / ratio)
            for i in range(phases)
        ],
    )


class TestMergePrograms:
    def test_namespaced_ids_and_phase_ranges(self):
        a = program("alpha", 0.2)
        b = program("beta", 0.5)
        graph, ranges = merge_programs([a, b])
        assert len(graph) == len(a.to_task_graph()) + len(b.to_task_graph())
        assert "alpha::M[0.0]" in graph
        assert "beta::M[0.0]" in graph
        assert ranges == {"alpha": (0, 2), "beta": (2, 4)}

    def test_phase_indices_are_disjoint(self):
        graph, _ = merge_programs([program("a", 0.2), program("b", 0.5)])
        a_phases = {t.phase_index for t in graph if t.task_id.startswith("a::")}
        b_phases = {t.phase_index for t in graph if t.task_id.startswith("b::")}
        assert a_phases.isdisjoint(b_phases)

    def test_no_cross_program_dependencies(self):
        graph, _ = merge_programs([program("a", 0.2), program("b", 0.5)])
        for task in graph:
            prefix = task.task_id.split("::")[0]
            for dep in task.depends_on:
                assert dep.startswith(prefix + "::")

    def test_rejects_empty_and_duplicate_mixes(self):
        with pytest.raises(ConfigurationError):
            merge_programs([])
        with pytest.raises(ConfigurationError):
            merge_programs([program("same", 0.2), program("same", 0.5)])


class TestCoSchedule:
    def test_programs_overlap_in_time(self):
        # Without cross-program barriers, both programs start at t=0.
        result = co_schedule(
            [program("a", 0.2), program("b", 0.5)],
            conventional_policy(4),
        )
        a_start = min(r.start for r in result.program_records("a"))
        b_start = min(r.start for r in result.program_records("b"))
        assert a_start == pytest.approx(0.0)
        assert b_start < result.program_finish_time("a")

    def test_per_program_finish_times(self):
        result = co_schedule(
            [program("short", 0.2, pairs=8, phases=1),
             program("long", 0.2, pairs=48, phases=2)],
            conventional_policy(4),
        )
        assert result.program_finish_time("short") < result.program_finish_time(
            "long"
        )
        assert result.program_finish_time("long") == pytest.approx(
            result.combined.makespan
        )

    def test_unknown_program_rejected(self):
        result = co_schedule([program("a", 0.2)], conventional_policy(4))
        with pytest.raises(ConfigurationError):
            result.program_finish_time("ghost")

    def test_slowdown_vs_solo(self):
        a = program("a", 0.5)
        b = program("b", 0.5)
        solo = simulate(a, conventional_policy(4)).makespan
        result = co_schedule([a, b], conventional_policy(4))
        slowdown = result.slowdown("a", solo)
        assert slowdown > 1.0  # sharing the machine costs something

    def test_slowdown_validates_solo_time(self):
        result = co_schedule([program("a", 0.2)], conventional_policy(4))
        with pytest.raises(ConfigurationError):
            result.slowdown("a", 0.0)

    def test_global_mtl_gate_spans_programs(self):
        # Two memory-hungry programs under a global MTL=1: never more
        # than one memory task in flight across the whole mix.
        result = co_schedule(
            [program("a", 2.0, pairs=8, phases=1),
             program("b", 2.0, pairs=8, phases=1)],
            FixedMtlPolicy(1),
            machine=i7_860(),
        )
        memory = [r for r in result.combined.records if r.is_memory]
        boundaries = sorted({r.start for r in memory} | {r.end for r in memory})
        for begin, end in zip(boundaries, boundaries[1:]):
            midpoint = (begin + end) / 2
            live = sum(1 for r in memory if r.start <= midpoint < r.end)
            assert live <= 1

    def test_combined_result_is_consistent(self):
        result = co_schedule(
            [program("a", 0.3), program("b", 0.7)], FixedMtlPolicy(2)
        )
        result.combined.verify_consistency()
