"""Edge-case and degenerate-input tests for the simulator stack."""

import pytest

from repro.core import DynamicThrottlingPolicy
from repro.memory.cache import LastLevelCache
from repro.sim.cores import Processor
from repro.sim.machine import Machine, i7_860
from repro.sim.results import SimulationResult
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.sim.simulator import Simulator, simulate
from repro.stream.program import StreamProgram, build_phase
from repro.units import mebibytes
from repro.workloads import synthetic_from_ratio


def single_core_machine() -> Machine:
    base = i7_860()
    return Machine(
        name="uni", processor=Processor(core_count=1), memory=base.memory
    )


class TestDegenerateShapes:
    def test_single_pair_program(self):
        program = StreamProgram("one", [build_phase("p", 0, 1, 1024, 1e-4)])
        result = simulate(program, FixedMtlPolicy(1))
        assert result.task_count == 2
        # Fully serial: memory then compute on one context.
        memory, compute = sorted(result.records, key=lambda r: r.start)
        assert memory.is_memory and not compute.is_memory
        assert compute.start >= memory.end - 1e-15

    def test_fewer_pairs_than_cores(self):
        program = StreamProgram("two", [build_phase("p", 0, 2, 1024, 1e-4)])
        result = simulate(program, conventional_policy(4))
        used = {r.context_id for r in result.records}
        assert len(used) <= 2
        result.verify_consistency()

    def test_single_core_machine_serialises_everything(self):
        machine = single_core_machine()
        program = StreamProgram("uni", [build_phase("p", 0, 4, 1024, 1e-4)])
        result = Simulator(machine).run(program, FixedMtlPolicy(1))
        timeline = result.context_timeline(0)
        assert len(timeline) == 8
        assert result.utilization() == pytest.approx(1.0, abs=1e-6)

    def test_many_tiny_pairs(self):
        program = StreamProgram("tiny", [build_phase("p", 0, 200, 1, 1e-7)])
        result = simulate(program, FixedMtlPolicy(2))
        assert result.task_count == 400
        result.verify_consistency()

    def test_extreme_ratio_values(self):
        for ratio in (0.001, 100.0):
            result = simulate(
                synthetic_from_ratio(ratio, pairs=6), FixedMtlPolicy(2)
            )
            assert result.task_count == 12

    def test_spilling_compute_tasks_simulate(self):
        cache = LastLevelCache(capacity_bytes=mebibytes(8), sharers=4)
        program = synthetic_from_ratio(
            1.0, footprint_bytes=mebibytes(2), pairs=8, cache=cache
        )
        result = simulate(program, FixedMtlPolicy(4))
        # Compute tasks now carry off-chip traffic: they take longer
        # than the LLC-resident equivalent.
        resident = simulate(
            synthetic_from_ratio(1.0, footprint_bytes=mebibytes(2), pairs=8),
            FixedMtlPolicy(4),
        )
        assert result.mean_compute_duration() > resident.mean_compute_duration()


class TestPolicyEdgeCases:
    def test_dynamic_policy_on_single_context_machine(self):
        machine = single_core_machine()
        program = StreamProgram("uni", [build_phase("p", 0, 40, 1024, 1e-4)])
        policy = DynamicThrottlingPolicy(context_count=1)
        result = Simulator(machine).run(program, policy)
        assert result.final_mtl() == 1

    def test_program_shorter_than_one_window(self):
        # Never completes a monitoring window: stays at the initial MTL.
        program = StreamProgram("short", [build_phase("p", 0, 6, 1024, 1e-4)])
        policy = DynamicThrottlingPolicy(context_count=4, window_pairs=16)
        result = simulate(program, policy)
        assert result.final_mtl() == 4
        assert policy.selections == []

    def test_selection_interrupted_by_program_end(self):
        # The program ends mid-binary-search; the run must still
        # complete and report whatever MTL was in force.
        program = synthetic_from_ratio(0.5, pairs=40)
        policy = DynamicThrottlingPolicy(context_count=4, window_pairs=16)
        result = simulate(program, policy)
        assert result.task_count == 80
        assert 1 <= result.final_mtl() <= 4

    def test_initial_mtl_one_still_converges_upward(self):
        # Memory-bound workload started over-throttled: the mechanism
        # must detect the idle cores and raise the MTL.
        program = synthetic_from_ratio(2.5, pairs=240)
        policy = DynamicThrottlingPolicy(context_count=4, initial_mtl=1)
        result = simulate(program, policy)
        assert result.dominant_mtl() >= 3


class TestResultEdgeCases:
    def test_empty_profile_without_memory_tasks(self):
        result = SimulationResult(
            program_name="p", machine_name="m", policy_name="pol",
            context_count=2, records=(), mtl_changes=(),
        )
        assert result.memory_concurrency_profile() == []
        assert result.peak_memory_concurrency() == 0

    def test_profile_covers_memory_activity(self):
        result = simulate(
            synthetic_from_ratio(1.0, pairs=8), FixedMtlPolicy(3)
        )
        profile = result.memory_concurrency_profile()
        assert profile[0][0] == pytest.approx(0.0)
        assert all(0 <= live <= 3 for _, _, live in profile)
        assert result.peak_memory_concurrency() <= 3
