"""Tests for the POWER7-class machine preset (the paper's future work)."""

import pytest

from repro.sim.machine import i7_860
from repro.sim.power7 import power7
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram, build_phase


def synthetic(pairs=64, requests=8192, t_c=4e-4):
    return StreamProgram("p7", [build_phase("p", 0, pairs, requests, t_c)])


class TestPreset:
    def test_smt4_exposes_32_contexts(self):
        machine = power7()
        assert machine.core_count == 8
        assert machine.context_count == 32
        assert machine.name == "power7/8ch/smt4"

    def test_smt_off_variant(self):
        machine = power7(smt=1, channels=4)
        assert machine.context_count == 8
        assert machine.name == "power7/4ch/smt1"

    def test_eight_channels_dilute_contention(self):
        p7 = power7()
        i7 = i7_860()
        assert p7.memory.request_latency(8) < i7.memory.request_latency(8)

    def test_larger_llc_share(self):
        assert power7().memory.cache.per_core_share_bytes > (
            i7_860().memory.cache.per_core_share_bytes
        )


class TestExecution:
    def test_conventional_run_uses_all_contexts(self):
        machine = power7()
        result = Simulator(machine).run(
            synthetic(pairs=128), conventional_policy(32)
        )
        assert {r.context_id for r in result.records} == set(range(32))
        result.verify_consistency()

    def test_throttling_still_constrains_memory(self):
        machine = power7()
        result = Simulator(machine).run(synthetic(pairs=64), FixedMtlPolicy(4))
        memory = [r for r in result.records if r.is_memory]
        boundaries = sorted({r.start for r in memory} | {r.end for r in memory})
        for begin, end in zip(boundaries, boundaries[1:]):
            midpoint = (begin + end) / 2
            concurrent = sum(1 for r in memory if r.start <= midpoint < r.end)
            assert concurrent <= 4
