"""Tests for the request-level detailed simulator."""

import pytest

from repro.core import DynamicThrottlingPolicy
from repro.errors import ConfigurationError
from repro.sim.detailed import DetailedSimulator
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.stream.program import StreamProgram, build_phase
from repro.stream.task import TaskKind
from repro.units import kibibytes

REQUESTS = kibibytes(32) // 64  # 512 requests per memory task


def program(pairs=8, t_c=15e-6, phases=1):
    return StreamProgram(
        "detailed",
        [
            build_phase(f"p{i}", i, pairs, REQUESTS, t_c)
            for i in range(phases)
        ],
    )


class TestValidation:
    def test_rejects_bad_core_count(self):
        with pytest.raises(ConfigurationError):
            DetailedSimulator(core_count=0)

    def test_rejects_spilling_compute_tasks(self):
        spilling = StreamProgram(
            "spill",
            [build_phase("p", 0, 2, REQUESTS, 1e-5,
                         compute_spill_requests=16.0)],
        )
        with pytest.raises(ConfigurationError):
            DetailedSimulator().run(spilling, FixedMtlPolicy(1))

    def test_rejects_oversized_programs(self):
        huge = StreamProgram(
            "huge", [build_phase("p", 0, 700, 8192, 1e-3)]
        )
        with pytest.raises(ConfigurationError):
            DetailedSimulator().run(huge, FixedMtlPolicy(1))

    def test_rejects_out_of_range_mtl(self):
        with pytest.raises(ConfigurationError):
            DetailedSimulator(core_count=4).run(program(), FixedMtlPolicy(5))


class TestExecution:
    def test_all_tasks_complete_consistently(self):
        result = DetailedSimulator().run(program(pairs=6), FixedMtlPolicy(2))
        assert result.task_count == 12
        result.verify_consistency()

    def test_mtl_gate_respected(self):
        result = DetailedSimulator().run(program(pairs=8), FixedMtlPolicy(2))
        assert result.peak_memory_concurrency() <= 2

    def test_phase_barriers_respected(self):
        result = DetailedSimulator().run(
            program(pairs=4, phases=2), FixedMtlPolicy(2)
        )
        phase0_end = max(r.end for r in result.records if r.phase_index == 0)
        phase1_start = min(r.start for r in result.records if r.phase_index == 1)
        assert phase1_start >= phase0_end - 1e-12

    def test_deterministic(self):
        a = DetailedSimulator().run(program(), FixedMtlPolicy(2))
        b = DetailedSimulator().run(program(), FixedMtlPolicy(2))
        assert a.makespan == b.makespan


class TestEmergentContention:
    def test_throttling_shortens_memory_tasks(self):
        # No contention law anywhere: serialised memory tasks must
        # still come out faster per task than fully concurrent ones,
        # purely from bus/bank physics.
        throttled = DetailedSimulator().run(program(pairs=8), FixedMtlPolicy(1))
        unthrottled = DetailedSimulator().run(
            program(pairs=8), conventional_policy(4)
        )
        assert (
            throttled.mean_memory_duration()
            < unthrottled.mean_memory_duration()
        )

    def test_memory_latency_grows_with_mtl(self):
        means = []
        for mtl in (1, 2, 4):
            result = DetailedSimulator().run(program(pairs=12), FixedMtlPolicy(mtl))
            means.append(result.mean_memory_duration(mtl=mtl))
        assert means[0] < means[1] < means[2]

    def test_throttling_beats_conventional_at_moderate_ratio(self):
        # T_m1 ~ 512 * ~20 ns ~ 10 us; t_c = 15 us puts the ratio near
        # 0.7 where MTL=2 wins on a quad core.
        base = DetailedSimulator().run(program(pairs=24), conventional_policy(4))
        throttled = DetailedSimulator().run(program(pairs=24), FixedMtlPolicy(2))
        assert base.makespan / throttled.makespan > 1.02

    def test_second_channel_relieves_contention(self):
        single = DetailedSimulator(channels=1).run(
            program(pairs=12), conventional_policy(4)
        )
        dual = DetailedSimulator(channels=2).run(
            program(pairs=12), conventional_policy(4)
        )
        assert dual.mean_memory_duration() < single.mean_memory_duration()


class TestPolicies:
    def test_dynamic_throttler_runs_unchanged(self):
        policy = DynamicThrottlingPolicy(context_count=4, window_pairs=8)
        result = DetailedSimulator().run(program(pairs=64), policy)
        assert result.task_count == 128
        assert len(policy.selections) >= 1
        assert 1 <= result.dominant_mtl() <= 4

    def test_records_expose_kinds_for_monitoring(self):
        result = DetailedSimulator().run(program(pairs=4), FixedMtlPolicy(2))
        kinds = {r.kind for r in result.records}
        assert kinds == {TaskKind.MEMORY, TaskKind.COMPUTE}
