"""Equivalence tests for the cohort-batched event loop.

The simulator's default loop groups same-rate tasks into cohorts and
advances them in bulk (``cohort_batching=True``); the seed's per-task
loop survives as the reference (``cohort_batching=False``).  The
optimization's contract is *bit-identity*: every record field, every
MTL change, float for float, on every workload/policy/noise/dispatch
combination — these tests pin it.  SMT machines matter here: on the
plain i7-860 every context owns a core, so every cohort is a
singleton and the loop takes its per-task fast path; with SMT the
sibling contexts of a core genuinely share cohorts and the bulk
advancement path runs.
"""

import pytest

from repro.core.budget import ActivationBudgetPolicy
from repro.core.policies import OnlineExhaustivePolicy
from repro.core.throttle import DynamicThrottlingPolicy
from repro.memory.contention import nehalem_ddr3_contention
from repro.memory.system import MemorySystem
from repro.sim.cores import Processor
from repro.sim.engine import CohortTable, RateCalculator
from repro.sim.machine import i7_860
from repro.sim.noise import noise_for_seed
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.sim.engine import RunningTask
from repro.stream.program import StreamProgram, build_phase
from repro.stream.task import compute_task, memory_task
from repro.workloads.base import REFERENCE_SOLO_LATENCY


def run_memory(context_id, core_id, requests=1000):
    task = memory_task(f"m{context_id}", requests=requests)
    return RunningTask(
        task=task, context_id=context_id, core_id=core_id, start=0.0,
        remaining_units=task.work_units, overhead_remaining=0.0,
        mtl_at_dispatch=4,
    )


def run_compute(context_id, core_id, cpu_seconds=1e-3):
    task = compute_task(f"c{context_id}", cpu_seconds=cpu_seconds)
    return RunningTask(
        task=task, context_id=context_id, core_id=core_id, start=0.0,
        remaining_units=task.work_units, overhead_remaining=0.0,
        mtl_at_dispatch=4,
    )


def synthetic(ratio: float, pairs: int = 12) -> StreamProgram:
    t_m1 = 4096 * REFERENCE_SOLO_LATENCY
    return StreamProgram(
        f"synthetic-{ratio}",
        [build_phase("p", 0, pairs, 4096, t_m1 / ratio)],
    )


def two_phase(pairs: int = 8) -> StreamProgram:
    """Mixed ratios across phases: cohorts form, drain, and re-form."""
    t_m1 = 4096 * REFERENCE_SOLO_LATENCY
    return StreamProgram(
        "two-phase",
        [
            build_phase("memory-bound", 0, pairs, 4096, t_m1 / 3.0),
            build_phase("compute-bound", 1, pairs, 4096, t_m1 / 0.25),
        ],
    )


POLICIES = {
    "static-2": lambda n: FixedMtlPolicy(2),
    "dynamic": lambda n: DynamicThrottlingPolicy(
        context_count=n, window_pairs=4
    ),
    "online": lambda n: OnlineExhaustivePolicy(context_count=n, window_pairs=4),
    # blocks_context veto: forces the batched loop off its fused
    # memory-dispatch fast path onto the plugin-visible sequence.
    "activation-budget": lambda n: ActivationBudgetPolicy(
        context_count=n, window_pairs=4, budget=1
    ),
}


def run_both(machine_factory, program, policy_name, seed, preference):
    results = []
    for batching in (True, False):
        machine = machine_factory()
        simulator = Simulator(
            machine,
            noise=noise_for_seed(seed) if seed is not None else None,
            dispatch_preference=preference,
            cohort_batching=batching,
        )
        policy = POLICIES[policy_name](machine.context_count)
        results.append(simulator.run(program, policy))
    return results


def assert_bit_identical(batched, reference):
    assert len(batched.records) == len(reference.records)
    for ours, theirs in zip(batched.records, reference.records):
        assert ours == theirs  # frozen dataclasses: every field, exact
    assert batched.mtl_changes == reference.mtl_changes
    assert batched.makespan == reference.makespan


class TestBatchedMatchesReference:
    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("seed", [None, 7])
    @pytest.mark.parametrize("ratio", [0.25, 1.0, 3.0])
    def test_synthetic_singleton_cohorts(self, policy_name, seed, ratio):
        batched, reference = run_both(
            i7_860, synthetic(ratio), policy_name, seed, "compute-first"
        )
        assert_bit_identical(batched, reference)

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("seed", [None, 7])
    def test_smt_shared_cohorts(self, policy_name, seed):
        batched, reference = run_both(
            lambda: i7_860(smt=2), two_phase(), policy_name, seed,
            "compute-first",
        )
        assert_bit_identical(batched, reference)

    @pytest.mark.parametrize("policy_name", sorted(POLICIES))
    @pytest.mark.parametrize("preference", ["compute-first", "memory-first"])
    def test_dispatch_preference_order(self, policy_name, preference):
        batched, reference = run_both(
            i7_860, two_phase(), policy_name, 11, preference
        )
        assert_bit_identical(batched, reference)

    def test_multi_channel_smt_noisy(self):
        batched, reference = run_both(
            lambda: i7_860(channels=2, smt=2), synthetic(1.0), "dynamic",
            23, "memory-first",
        )
        assert_bit_identical(batched, reference)


class TestCohortSpeedInvariant:
    """The property batching rests on: cohort-mates share one rate."""

    def make_calculator(self, smt=2):
        return RateCalculator(
            Processor(core_count=4, smt_ways=smt),
            MemorySystem(contention=nehalem_ddr3_contention()),
        )

    @pytest.mark.parametrize("population_builder", [
        # SMT siblings (contexts 0,1 on core 0) running equal work.
        lambda: [run_memory(0, 0), run_memory(1, 0), run_compute(2, 1)],
        lambda: [run_compute(0, 0), run_compute(1, 0), run_memory(2, 1)],
        lambda: [
            run_memory(0, 0), run_memory(1, 0),
            run_compute(2, 1), run_compute(3, 1),
            run_memory(4, 2),
        ],
    ])
    def test_cohort_members_have_bitwise_equal_speeds(
        self, population_builder
    ):
        population = population_builder()
        table = CohortTable()
        for rt in population:
            table.add(rt)
        calculator = self.make_calculator()
        snapshot = calculator.snapshot(population)
        for members in table.cohorts.values():
            speeds = {snapshot.speeds[rt.context_id] for rt in members}
            cpu_rates = {snapshot.cpu_rates[rt.context_id] for rt in members}
            assert len(speeds) == 1  # bitwise: set of floats collapses
            assert len(cpu_rates) == 1

    def test_cohorts_group_only_same_core_same_signature(self):
        # Same demand on different cores must NOT share a cohort: SMT
        # sharing makes the rate a per-core quantity.
        population = [run_memory(0, 0), run_memory(2, 1)]
        table = CohortTable()
        for rt in population:
            table.add(rt)
        assert len(table.cohorts) == 2
