"""Tests for the raw task-graph entry point of the simulator."""

import pytest

from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.stream.graph import TaskGraph
from repro.stream.program import StreamProgram, build_phase
from repro.stream.task import compute_task, memory_task


class TestRunGraph:
    def test_equivalent_to_run_for_single_programs(self):
        program = StreamProgram("g", [build_phase("p", 0, 8, 2048, 5e-4)])
        simulator = Simulator(i7_860())
        via_program = simulator.run(program, FixedMtlPolicy(2))
        via_graph = simulator.run_graph(
            program.to_task_graph(), FixedMtlPolicy(2), "g"
        )
        assert via_graph.makespan == via_program.makespan
        assert via_graph.program_name == "g"

    def test_accepts_hand_built_graphs(self):
        # A diamond: two independent pairs feeding a final reduction
        # pair — a shape StreamProgram's phase model cannot express.
        tasks = [
            memory_task("Ma", requests=1024),
            compute_task("Ca", cpu_seconds=1e-4, depends_on=("Ma",)),
            memory_task("Mb", requests=1024),
            compute_task("Cb", cpu_seconds=1e-4, depends_on=("Mb",)),
            memory_task("Mr", requests=512, depends_on=("Ca", "Cb")),
            compute_task("Cr", cpu_seconds=2e-4, depends_on=("Mr",)),
        ]
        result = Simulator(i7_860()).run_graph(
            TaskGraph(tasks), FixedMtlPolicy(2), "diamond"
        )
        assert result.task_count == 6
        ends = {r.task_id: r.end for r in result.records}
        starts = {r.task_id: r.start for r in result.records}
        assert starts["Mr"] >= max(ends["Ca"], ends["Cb"]) - 1e-12
        result.verify_consistency()
