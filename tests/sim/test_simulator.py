"""End-to-end tests of the simulation loop against the paper's
steady-state formulas (Section IV-A)."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.machine import i7_860
from repro.sim.noise import GaussianNoise
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy
from repro.sim.simulator import Simulator, simulate
from repro.stream.program import StreamProgram, build_phase
from repro.stream.task import TaskKind

REQUESTS = 8192  # one 0.5 MB footprint of 64 B lines


def latency(k: int) -> float:
    return i7_860().memory.request_latency(float(k))


def synthetic(ratio: float, pairs: int = 40, phases: int = 1) -> StreamProgram:
    """Single-ratio synthetic program: T_m1 / T_c = ratio."""
    t_m1 = REQUESTS * latency(1)
    t_c = t_m1 / ratio
    phase_list = [
        build_phase(f"p{i}", i, pairs, REQUESTS, t_c) for i in range(phases)
    ]
    return StreamProgram(f"synthetic-{ratio}", phase_list)


class TestSteadyState:
    def test_all_busy_regime_matches_formula(self):
        # ratio 0.1 <= 1/3: all cores busy at MTL=1; execution time is
        # (T_m1 + T_c) * t / n.
        program = synthetic(0.1)
        result = simulate(program, FixedMtlPolicy(1))
        t_m1 = REQUESTS * latency(1)
        t_c = t_m1 / 0.1
        expected = (t_m1 + t_c) * 40 / 4
        assert result.makespan == pytest.approx(expected, rel=0.05)

    def test_idle_regime_matches_formula(self):
        # ratio 2.0 > 1/3: memory is the bottleneck at MTL=1; execution
        # time is T_m1 * t / 1.
        program = synthetic(2.0)
        result = simulate(program, FixedMtlPolicy(1))
        expected = REQUESTS * latency(1) * 40
        assert result.makespan == pytest.approx(expected, rel=0.05)

    def test_measured_t_mk_matches_contention_model(self):
        # Memory-bound program at MTL=2 keeps 2 memory tasks in flight,
        # so the mean memory-task time is requests * L(2).
        program = synthetic(4.0)
        result = simulate(program, FixedMtlPolicy(2))
        assert result.mean_memory_duration(mtl=2) == pytest.approx(
            REQUESTS * latency(2), rel=0.05
        )

    def test_compute_time_is_mtl_invariant(self):
        program = synthetic(0.5)
        t_c_at_1 = simulate(program, FixedMtlPolicy(1)).mean_compute_duration()
        t_c_at_4 = simulate(program, FixedMtlPolicy(4)).mean_compute_duration()
        assert t_c_at_1 == pytest.approx(t_c_at_4, rel=1e-6)

    def test_throttling_beats_conventional_in_its_sweet_spot(self):
        # ratio 0.25 (< 1/3): MTL=1 keeps all cores busy while cutting
        # the memory latency — the Figure 5 situation.
        program = synthetic(0.25)
        conventional = simulate(program, conventional_policy(4))
        throttled = simulate(program, FixedMtlPolicy(1))
        speedup = conventional.makespan / throttled.makespan
        assert speedup > 1.05

    def test_over_throttling_hurts_memory_bound_workloads(self):
        # ratio 3.0: at MTL=1 cores sit idle; MTL=4 wins (Figure 4's
        # cautionary tale inverted).
        program = synthetic(3.0)
        conventional = simulate(program, conventional_policy(4))
        throttled = simulate(program, FixedMtlPolicy(1))
        assert throttled.makespan > conventional.makespan


class TestSchedulingInvariants:
    def test_all_tasks_complete_exactly_once(self):
        result = simulate(synthetic(0.5, pairs=16), FixedMtlPolicy(2))
        assert result.task_count == 32
        result.verify_consistency()

    @pytest.mark.parametrize("mtl", [1, 2, 3, 4])
    def test_memory_concurrency_never_exceeds_mtl(self, mtl):
        result = simulate(synthetic(1.0, pairs=16), FixedMtlPolicy(mtl))
        memory_records = [r for r in result.records if r.kind is TaskKind.MEMORY]
        boundaries = sorted(
            {r.start for r in memory_records} | {r.end for r in memory_records}
        )
        for begin, end in zip(boundaries, boundaries[1:]):
            midpoint = (begin + end) / 2
            concurrent = sum(
                1 for r in memory_records if r.start <= midpoint < r.end
            )
            assert concurrent <= mtl

    def test_phase_barrier_is_respected(self):
        result = simulate(synthetic(0.5, pairs=8, phases=2), FixedMtlPolicy(2))
        phase0_end = max(r.end for r in result.records if r.phase_index == 0)
        phase1_start = min(r.start for r in result.records if r.phase_index == 1)
        assert phase1_start >= phase0_end - 1e-12

    def test_contexts_never_run_two_tasks_at_once(self):
        result = simulate(synthetic(0.7, pairs=24), FixedMtlPolicy(3))
        result.verify_consistency()

    def test_compute_follows_its_memory_task(self):
        result = simulate(synthetic(0.5, pairs=8), FixedMtlPolicy(2))
        ends = {r.task_id: r.end for r in result.records}
        starts = {r.task_id: r.start for r in result.records}
        for i in range(8):
            assert starts[f"C[0.{i}]"] >= ends[f"M[0.{i}]"] - 1e-12


class TestMachineVariants:
    def test_smt_machine_uses_eight_contexts(self):
        machine = i7_860(channels=2, smt=2)
        result = Simulator(machine).run(
            synthetic(0.5, pairs=32), conventional_policy(8)
        )
        used = {r.context_id for r in result.records}
        assert used == set(range(8))

    def test_dual_channel_shrinks_memory_latency(self):
        program = synthetic(2.0, pairs=16)
        single = Simulator(i7_860(channels=1)).run(program, FixedMtlPolicy(4))
        dual = Simulator(i7_860(channels=2)).run(program, FixedMtlPolicy(4))
        assert dual.mean_memory_duration() < single.mean_memory_duration()

    def test_policy_mtl_must_fit_machine(self):
        with pytest.raises(ConfigurationError):
            simulate(synthetic(0.5, pairs=4), FixedMtlPolicy(5))


class TestNoise:
    def test_same_seed_is_deterministic(self):
        program = synthetic(0.5, pairs=16)
        first = simulate(program, FixedMtlPolicy(2), noise=GaussianNoise(seed=11))
        second = simulate(program, FixedMtlPolicy(2), noise=GaussianNoise(seed=11))
        assert first.makespan == second.makespan

    def test_noise_perturbs_but_does_not_distort(self):
        program = synthetic(0.5, pairs=16)
        clean = simulate(program, FixedMtlPolicy(2))
        noisy = simulate(program, FixedMtlPolicy(2), noise=GaussianNoise(seed=5))
        assert noisy.makespan != clean.makespan
        assert noisy.makespan == pytest.approx(clean.makespan, rel=0.1)
