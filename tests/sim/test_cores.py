"""Tests for cores and SMT contexts."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.cores import Processor


class TestProcessorValidation:
    def test_rejects_bad_core_count(self):
        with pytest.raises(ConfigurationError):
            Processor(core_count=0)

    def test_rejects_bad_smt_ways(self):
        with pytest.raises(ConfigurationError):
            Processor(smt_ways=0)

    def test_rejects_sub_unity_aggregate(self):
        with pytest.raises(ConfigurationError):
            Processor(smt_aggregate_throughput=0.9)


class TestContexts:
    def test_smt_off_one_context_per_core(self):
        cpu = Processor(core_count=4, smt_ways=1)
        assert cpu.context_count == 4
        assert [c.core_id for c in cpu.contexts()] == [0, 1, 2, 3]

    def test_smt_on_two_contexts_per_core(self):
        cpu = Processor(core_count=4, smt_ways=2)
        assert cpu.context_count == 8
        assert [c.core_id for c in cpu.contexts()] == [0, 0, 1, 1, 2, 2, 3, 3]

    def test_context_ids_unique_and_dense(self):
        cpu = Processor(core_count=4, smt_ways=2)
        ids = [c.context_id for c in cpu.contexts()]
        assert ids == list(range(8))

    def test_core_of(self):
        cpu = Processor(core_count=4, smt_ways=2)
        assert cpu.core_of(0) == 0
        assert cpu.core_of(5) == 2
        with pytest.raises(ConfigurationError):
            cpu.core_of(8)
        with pytest.raises(ConfigurationError):
            cpu.core_of(-1)


class TestCpuRate:
    def test_unshared_core_runs_at_full_rate(self):
        cpu = Processor(core_count=4, smt_ways=2)
        assert cpu.cpu_rate(0) == 1.0
        assert cpu.cpu_rate(1) == 1.0

    def test_shared_core_splits_aggregate(self):
        cpu = Processor(core_count=4, smt_ways=2, smt_aggregate_throughput=1.25)
        assert cpu.cpu_rate(2) == pytest.approx(0.625)

    def test_sharing_slows_each_but_speeds_total(self):
        cpu = Processor(core_count=4, smt_ways=2, smt_aggregate_throughput=1.25)
        shared = cpu.cpu_rate(2)
        assert shared < 1.0           # T_c is no longer constant under SMT
        assert 2 * shared > 1.0       # but the core does more in total

    def test_rejects_negative_active_count(self):
        with pytest.raises(ConfigurationError):
            Processor().cpu_rate(-1)
