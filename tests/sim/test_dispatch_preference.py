"""Tests for the dispatch-preference scheduling knob."""

import pytest

from repro.errors import ConfigurationError
from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram, build_phase
from repro.stream.task import TaskKind


def program(pairs=16, requests=8192, t_c=1e-3):
    return StreamProgram("dp", [build_phase("p", 0, pairs, requests, t_c)])


class TestKnob:
    def test_rejects_unknown_preference(self):
        with pytest.raises(ConfigurationError):
            Simulator(i7_860(), dispatch_preference="random")

    def test_default_is_compute_first(self):
        assert Simulator(i7_860()).dispatch_preference == "compute-first"

    def test_both_orders_complete_all_work(self):
        for preference in ("compute-first", "memory-first"):
            sim = Simulator(i7_860(), dispatch_preference=preference)
            result = sim.run(program(), FixedMtlPolicy(2))
            assert result.task_count == 32
            result.verify_consistency()

    def test_memory_first_starts_memory_earlier_after_a_pair(self):
        # With one context eligible for both a ready compute task and a
        # memory task, the orders differ: memory-first keeps the memory
        # pipeline full, compute-first drains cached data first.
        compute_first = Simulator(
            i7_860(), dispatch_preference="compute-first"
        ).run(program(), FixedMtlPolicy(1))
        memory_first = Simulator(
            i7_860(), dispatch_preference="memory-first"
        ).run(program(), FixedMtlPolicy(1))
        # Schedules genuinely differ: under compute-first the context
        # that gathered a tile computes on it; under memory-first it
        # grabs the next memory task and another context computes.
        cf_placement = {r.task_id: r.context_id for r in compute_first.records}
        mf_placement = {r.task_id: r.context_id for r in memory_first.records}
        assert cf_placement != mf_placement
        # ...but both respect the MTL gate.
        for result in (compute_first, memory_first):
            memory = [r for r in result.records if r.kind is TaskKind.MEMORY]
            points = sorted({r.start for r in memory} | {r.end for r in memory})
            for begin, end in zip(points, points[1:]):
                mid = (begin + end) / 2
                assert sum(1 for r in memory if r.start <= mid < r.end) <= 1

    def test_makespans_are_close_either_way(self):
        # The ablation benchmark quantifies the gap; here we only pin
        # that neither order is catastrophically wrong.
        cf = Simulator(i7_860(), dispatch_preference="compute-first").run(
            program(pairs=48), FixedMtlPolicy(2)
        )
        mf = Simulator(i7_860(), dispatch_preference="memory-first").run(
            program(pairs=48), FixedMtlPolicy(2)
        )
        assert cf.makespan == pytest.approx(mf.makespan, rel=0.1)
