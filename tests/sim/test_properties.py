"""Property-based tests of the simulation loop.

Hypothesis generates random (but valid) stream programs, machines,
and static MTLs; every run must satisfy the scheduler's structural
invariants and the physics' bounds, regardless of the parameters.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.sim.machine import i7_860
from repro.sim.scheduler import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram, build_phase
from repro.stream.task import TaskKind


@st.composite
def programs(draw):
    """Random multi-phase stream programs with bounded size."""
    phase_count = draw(st.integers(min_value=1, max_value=3))
    phases = []
    for index in range(phase_count):
        pairs = draw(st.integers(min_value=1, max_value=12))
        requests = draw(st.integers(min_value=64, max_value=16384))
        t_c = draw(st.floats(min_value=1e-5, max_value=5e-3))
        phases.append(build_phase(f"p{index}", index, pairs, requests, t_c))
    return StreamProgram("random", phases)


@st.composite
def machine_and_mtl(draw):
    channels = draw(st.integers(min_value=1, max_value=2))
    smt = draw(st.integers(min_value=1, max_value=2))
    machine = i7_860(channels=channels, smt=smt)
    mtl = draw(st.integers(min_value=1, max_value=machine.context_count))
    return machine, mtl


@settings(max_examples=40, deadline=None)
@given(program=programs(), setup=machine_and_mtl())
def test_property_every_run_is_structurally_consistent(program, setup):
    machine, mtl = setup
    result = Simulator(machine).run(program, FixedMtlPolicy(mtl))
    # Every task completes exactly once; no context overlaps.
    assert result.task_count == 2 * program.total_pairs
    result.verify_consistency()


@settings(max_examples=40, deadline=None)
@given(program=programs(), setup=machine_and_mtl())
def test_property_mtl_gate_never_violated(program, setup):
    machine, mtl = setup
    result = Simulator(machine).run(program, FixedMtlPolicy(mtl))
    assert result.peak_memory_concurrency() <= mtl


@settings(max_examples=40, deadline=None)
@given(program=programs(), setup=machine_and_mtl())
def test_property_makespan_respects_work_bounds(program, setup):
    machine, mtl = setup
    result = Simulator(machine).run(program, FixedMtlPolicy(mtl))

    # Lower bound 1: total compute work cannot be parallelised beyond
    # the context count (memory time only adds).
    compute_work = sum(
        pair.compute.cpu_seconds for pair in program.all_pairs()
    )
    assert result.makespan >= compute_work / machine.context_count - 1e-12

    # Lower bound 2: one pair's memory + compute at best-case latency
    # must fit in the critical path of each phase.
    solo_latency = machine.memory.request_latency(1.0)
    critical = sum(
        phase.pairs[0].memory.memory_requests * solo_latency
        + phase.pairs[0].compute.cpu_seconds
        for phase in program.phases
    )
    assert result.makespan >= critical * (1 - 1e-9)

    # Upper bound: fully serial execution at worst-case latency.
    worst_latency = machine.memory.request_latency(
        float(machine.context_count)
    )
    serial = sum(
        pair.memory.memory_requests * worst_latency + pair.compute.cpu_seconds
        for pair in program.all_pairs()
    )
    assert result.makespan <= serial * (1 + 1e-9)


@settings(max_examples=30, deadline=None)
@given(program=programs(), setup=machine_and_mtl())
def test_property_phase_barriers_hold(program, setup):
    machine, mtl = setup
    result = Simulator(machine).run(program, FixedMtlPolicy(mtl))
    for phase_index in range(1, len(program.phases)):
        previous_end = max(
            r.end for r in result.records if r.phase_index == phase_index - 1
        )
        this_start = min(
            r.start for r in result.records if r.phase_index == phase_index
        )
        assert this_start >= previous_end - 1e-12


@settings(max_examples=30, deadline=None)
@given(program=programs())
def test_property_tighter_throttle_never_speeds_memory_tasks_up(program):
    """Mean memory-task time is non-decreasing in the MTL."""
    machine = i7_860()
    means = []
    for mtl in (1, 4):
        result = Simulator(machine).run(program, FixedMtlPolicy(mtl))
        means.append(result.mean_memory_duration())
    assert means[0] <= means[1] + 1e-12
