"""Graph-builder edge cases: the resolver must degrade, never guess.

The contract under test: syntax-error files, relative imports,
``TYPE_CHECKING``-only imports, star-imports, and dynamic dispatch all
either resolve correctly or degrade to an *unknown callee* — the
builder never crashes and never fabricates an edge it cannot justify.
"""

import ast
import json
import pathlib
import textwrap

import pytest

from repro.lint import LintEngine, build_rules
from repro.lint.graph import ArgRef, ProjectGraph, extract_summary


def summarize(display_path, source, layer="root"):
    tree = ast.parse(textwrap.dedent(source))
    return extract_summary(tree, display_path, layer)


def build(*summaries):
    return ProjectGraph(list(summaries))


class TestResolution:
    def test_multi_hop_call_chain_resolves(self):
        graph = build(
            summarize(
                "src/repro/sim/engine.py",
                """
                from repro.flowutil import step

                def tick(now):
                    return step(now)
                """,
                layer="sim",
            ),
            summarize(
                "src/repro/flowutil.py",
                """
                from repro.clockutil import stamp

                def step(now):
                    return stamp() + now
                """,
            ),
            summarize(
                "src/repro/clockutil.py",
                """
                def stamp():
                    return 0.0
                """,
            ),
        )
        paths = graph.reachable_from(["repro.sim.engine::tick"])
        assert paths["repro.clockutil::stamp"] == (
            "repro.sim.engine::tick",
            "repro.flowutil::step",
            "repro.clockutil::stamp",
        )
        assert graph.render_path(paths["repro.clockutil::stamp"]) == (
            "repro.sim.engine.tick -> repro.flowutil.step"
            " -> repro.clockutil.stamp"
        )

    def test_relative_import_resolves_within_package(self):
        graph = build(
            summarize(
                "src/repro/sim/engine.py",
                """
                from .flow import step

                def tick(now):
                    return step(now)
                """,
                layer="sim",
            ),
            summarize(
                "src/repro/sim/flow.py",
                """
                def step(now):
                    return now
                """,
                layer="sim",
            ),
        )
        node = graph.node("repro.sim.engine::tick")
        assert [e.to for e in node.edges] == ["repro.sim.flow::step"]
        assert not node.unknown_callees

    def test_constructor_call_edges_into_init(self):
        graph = build(
            summarize(
                "src/repro/core/model.py",
                """
                class Model:
                    def __init__(self):
                        self.state = 0

                def make():
                    return Model()
                """,
                layer="core",
            )
        )
        node = graph.node("repro.core.model::make")
        assert [e.to for e in node.edges] == [
            "repro.core.model::Model.__init__"
        ]

    def test_method_resolution_walks_base_classes(self):
        graph = build(
            summarize(
                "src/repro/core/base.py",
                """
                class Base:
                    def run(self):
                        return 1

                class Child(Base):
                    def go(self):
                        return self.run()
                """,
                layer="core",
            )
        )
        node = graph.node("repro.core.base::Child.go")
        assert [e.to for e in node.edges] == ["repro.core.base::Base.run"]


class TestDegradation:
    def test_type_checking_only_imports_produce_no_edges(self):
        graph = build(
            summarize(
                "src/repro/core/typed.py",
                """
                from typing import TYPE_CHECKING

                if TYPE_CHECKING:
                    from repro.sim.engine import Simulator

                def describe(sim):
                    return sim
                """,
                layer="core",
            ),
            summarize(
                "src/repro/sim/engine.py",
                """
                class Simulator:
                    def __init__(self):
                        self.t = 0
                """,
                layer="sim",
            ),
        )
        for node in graph:
            assert not node.edges

    def test_unique_star_import_resolves(self):
        graph = build(
            summarize(
                "src/repro/core/user.py",
                """
                from repro.helpers import *

                def use():
                    return helper()
                """,
                layer="core",
            ),
            summarize(
                "src/repro/helpers.py",
                """
                def helper():
                    return 1
                """,
            ),
        )
        node = graph.node("repro.core.user::use")
        assert [e.to for e in node.edges] == ["repro.helpers::helper"]

    def test_ambiguous_star_import_degrades_to_no_edge(self):
        graph = build(
            summarize(
                "src/repro/core/user.py",
                """
                from repro.helpers import *
                from repro.others import *

                def use():
                    return helper()
                """,
                layer="core",
            ),
            summarize(
                "src/repro/helpers.py",
                """
                def helper():
                    return 1
                """,
            ),
            summarize(
                "src/repro/others.py",
                """
                def helper():
                    return 2
                """,
            ),
        )
        node = graph.node("repro.core.user::use")
        # Two candidate targets: refusing to pick is the contract —
        # an arbitrary choice would over-report downstream rules.
        assert not node.edges

    def test_dynamic_dispatch_degrades_to_unknown_callee(self):
        graph = build(
            summarize(
                "src/repro/core/dispatch.py",
                """
                def run(registry, name):
                    target = getattr(registry, name)
                    return target()
                """,
                layer="core",
            )
        )
        node = graph.node("repro.core.dispatch::run")
        assert not node.edges
        assert "target" in node.unknown_callees

    def test_unresolvable_import_is_not_an_unknown_callee(self):
        # A resolved-but-external canonical (stdlib, third-party) is
        # neither an edge nor an unknown callee: the name is known,
        # the code just lives outside the project.
        graph = build(
            summarize(
                "src/repro/core/ext.py",
                """
                import math

                def area(r):
                    return math.pi * r * r
                """,
                layer="core",
            )
        )
        node = graph.node("repro.core.ext::area")
        assert not node.edges
        assert node.unknown_callees == []


class TestPoolBoundary:
    POOL_MODULE = """
        from concurrent.futures import ProcessPoolExecutor

        POOL_BOUNDARY = ("annotated_entry",)

        def annotated_entry(p):
            return p

        def submitted_entry(p):
            return p

        def run(points):
            with ProcessPoolExecutor() as pool:
                futures = [pool.submit(submitted_entry, p) for p in points]
                hidden = [pool.submit(lambda p: p, p) for p in points]
            return futures, hidden
        """

    def test_worker_entries_union_submits_and_annotation(self):
        graph = build(
            summarize("src/repro/runtime/pool.py", self.POOL_MODULE, "runtime")
        )
        assert graph.worker_entry_keys() == [
            "repro.runtime.pool::annotated_entry",
            "repro.runtime.pool::submitted_entry",
        ]

    def test_lambda_submission_is_unresolvable(self):
        graph = build(
            summarize("src/repro/runtime/pool.py", self.POOL_MODULE, "runtime")
        )
        sites = graph.pool_call_sites()
        assert len(sites) == 2
        lambda_args = [
            s.call.args[0] for s in sites if s.call.args[0].kind == "lambda"
        ]
        assert len(lambda_args) == 1
        assert (
            graph.resolve_argument(sites[0].node_key, lambda_args[0]) is None
        )

    def test_resolve_argument_on_name(self):
        graph = build(
            summarize("src/repro/runtime/pool.py", self.POOL_MODULE, "runtime")
        )
        resolved = graph.resolve_argument(
            "repro.runtime.pool::run",
            ArgRef(kind="name", dotted="submitted_entry", canonical=None),
        )
        assert resolved is not None
        assert resolved.key == "repro.runtime.pool::submitted_entry"


class TestSerializationAndEngine:
    def test_to_json_shape(self):
        graph = build(
            summarize(
                "src/repro/core/a.py",
                """
                def f():
                    return g()

                def g():
                    return 1
                """,
                layer="core",
            )
        )
        document = json.loads(graph.to_json())
        assert document["version"] == 1
        assert document["files"] == 1
        assert document["functions"] == 3  # f, g, <module>
        assert document["edges"] == 1
        assert document["worker_entries"] == []
        keys = [node["key"] for node in document["nodes"]]
        assert keys == sorted(keys)

    def test_syntax_error_file_is_skipped_not_fatal(self, tmp_path):
        spine = tmp_path / "repro" / "sim"
        spine.mkdir(parents=True)
        (spine / "broken.py").write_text("def oops(:\n")
        (spine / "ok.py").write_text(
            '"""Fine."""\n\n__all__ = ["f"]\n\n\ndef f():\n    return 1\n'
        )
        engine = LintEngine(
            rules=build_rules(), root=tmp_path, want_graph=True
        )
        report = engine.run([tmp_path])
        assert engine.graph is not None
        # The broken file contributes nothing to the graph; the intact
        # one is still summarized.
        assert engine.graph.files_summarized == 1
        assert report.files_scanned == 2

    def test_duplicate_function_names_keep_first(self):
        # Pathological but must not crash: conditional double-def.
        graph = build(
            summarize(
                "src/repro/core/dup.py",
                """
                def f():
                    return 1

                def f():
                    return 2
                """,
                layer="core",
            )
        )
        node = graph.node("repro.core.dup::f")
        assert node is not None
        assert node.summary.lineno == 2
