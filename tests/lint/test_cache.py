"""The ``--cache-dir`` scan cache: identity, invalidation, resilience."""

import json

import repro.lint.cache as cache_module
from repro.lint import LintEngine, build_rules, render_json
from repro.lint.cache import ScanCache, cache_token


def make_corpus(tmp_path):
    corpus = tmp_path / "corpus"
    corpus.mkdir()
    (corpus / "clean.py").write_text("__all__ = []\n")
    (corpus / "dirty.py").write_text("def f(x=[]):\n    return x\n")
    return corpus


def run_cached(corpus, cache_dir, jobs=1):
    engine = LintEngine(
        rules=build_rules(), root=corpus.parent, jobs=jobs, cache_dir=cache_dir
    )
    return engine.run([corpus])


def comparable(report):
    document = json.loads(render_json(report))
    document.pop("wall_seconds")
    document.pop("cache_hits")
    return document


class TestWarmRuns:
    def test_warm_run_is_byte_identical_and_all_hits(self, tmp_path):
        corpus = make_corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        cold = run_cached(corpus, cache_dir)
        warm = run_cached(corpus, cache_dir)
        assert cold.cache_hits == 0
        assert warm.cache_hits == 2
        assert comparable(cold) == comparable(warm)

    def test_editing_one_file_invalidates_only_it(self, tmp_path):
        corpus = make_corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        run_cached(corpus, cache_dir)
        (corpus / "clean.py").write_text("__all__ = ['x']\n\nx = 1\n")
        warm = run_cached(corpus, cache_dir)
        assert warm.cache_hits == 1

    def test_cache_composes_with_jobs_fanout(self, tmp_path):
        corpus = make_corpus(tmp_path)
        for index in range(4):
            (corpus / f"extra{index}.py").write_text("__all__ = []\n")
        cache_dir = tmp_path / "cache"
        cold = run_cached(corpus, cache_dir, jobs=3)
        warm = run_cached(corpus, cache_dir, jobs=3)
        assert warm.cache_hits == 6
        assert comparable(cold) == comparable(warm)

    def test_uncached_run_reports_zero_hits(self, tmp_path):
        corpus = make_corpus(tmp_path)
        report = run_cached(corpus, cache_dir=None)
        assert report.cache_hits == 0


class TestInvalidation:
    def test_rule_set_change_invalidates(self, tmp_path):
        corpus = make_corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        run_cached(corpus, cache_dir)
        engine = LintEngine(
            rules=build_rules(only=["RPR402"]),
            enabled={"RPR402"},
            root=tmp_path,
            cache_dir=cache_dir,
        )
        report = engine.run([corpus])
        assert report.cache_hits == 0  # different rule set, different keys

    def test_cache_version_bump_invalidates(self, tmp_path, monkeypatch):
        corpus = make_corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        run_cached(corpus, cache_dir)
        monkeypatch.setattr(cache_module, "LINT_CACHE_VERSION", 999)
        warm = run_cached(corpus, cache_dir)
        assert warm.cache_hits == 0

    def test_token_folds_version_rules_and_summary_flag(self):
        rules = build_rules(only=["RPR402"])
        base = cache_token(rules, {"RPR402"}, need_summary=True)
        assert cache_token(rules, {"RPR402"}, need_summary=False) != base
        assert cache_token(rules, {"RPR402", "RPR401"}, True) != base
        assert f"v{cache_module.LINT_CACHE_VERSION}" in base


class TestResilience:
    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        corpus = make_corpus(tmp_path)
        cache_dir = tmp_path / "cache"
        run_cached(corpus, cache_dir)
        for entry in cache_dir.glob("*.scan"):
            entry.write_bytes(b"not a pickle")
        warm = run_cached(corpus, cache_dir)
        assert warm.cache_hits == 0
        assert comparable(warm) == comparable(run_cached(corpus, None))

    def test_non_filescan_payload_is_a_miss(self, tmp_path):
        cache = ScanCache(tmp_path / "cache", token="t")
        key = cache.key("m.py", b"content")
        (tmp_path / "cache" / f"{key}.scan").write_bytes(
            __import__("pickle").dumps({"not": "a FileScan"})
        )
        assert cache.load(key) is None
        assert cache.hits == 0
