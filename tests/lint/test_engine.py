"""Engine mechanics: walking, suppressions, baselines, report shape."""

import json
import pathlib

import pytest

from repro.errors import ConfigurationError, ReproError
from repro.lint import (
    LintEngine,
    build_rules,
    layer_for_path,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)

P = pathlib.Path


def run(paths, only=None, baseline=None):
    engine = LintEngine(
        rules=build_rules(only=only),
        enabled=set(only) if only else None,
        baseline=baseline or set(),
    )
    return engine.run(paths)


class TestLayerDetection:
    @pytest.mark.parametrize(
        "path, layer",
        [
            (P("src/repro/sim/engine.py"), "sim"),
            (P("src/repro/memory/system.py"), "memory"),
            (P("src/repro/units.py"), "root"),
            (P("tests/sim/test_engine.py"), "tests"),
            (P("tests/lint/fixtures/RPR101/bad/repro/sim/x.py"), "sim"),
            (P("somewhere/else.py"), "unknown"),
        ],
    )
    def test_layers(self, path, layer):
        assert layer_for_path(path) == layer


class TestWalking:
    def test_excluded_directories_are_skipped(self, tmp_path):
        (tmp_path / "pkg").mkdir()
        (tmp_path / "pkg" / "ok.py").write_text("__all__ = []\n")
        bad_dir = tmp_path / "pkg" / "fixtures"
        bad_dir.mkdir()
        (bad_dir / "broken.py").write_text("def x(:\n")
        report = run([tmp_path])
        assert report.files_scanned == 1
        assert not report.findings

    def test_explicit_file_bypasses_exclusion(self, tmp_path):
        bad_dir = tmp_path / "fixtures"
        bad_dir.mkdir()
        target = bad_dir / "broken.py"
        target.write_text("def x(:\n")
        report = run([target])
        assert [f.rule for f in report.findings] == ["RPR001"]

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ReproError, match="does not exist"):
            run([tmp_path / "nope"])

    def test_output_is_sorted_and_deterministic(self, tmp_path):
        for name in ("b.py", "a.py"):
            (tmp_path / name).write_text(
                "def f(x=[], y={}):\n    return x, y\n"
            )
        first = run([tmp_path])
        second = run([tmp_path])
        keys = [f.sort_key() for f in first.findings]
        assert keys == sorted(keys)
        assert keys == [f.sort_key() for f in second.findings]
        assert {f.rule for f in first.findings} == {"RPR402"}


class TestSuppressions:
    def test_same_line_suppression(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "def f(x=[]):  # repro: lint-ok RPR402 -- fixture exercising shared default\n"
            "    return x\n"
        )
        report = run([target])
        assert not report.findings
        assert report.suppressed == 1

    def test_preceding_comment_line_suppression(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "# repro: lint-ok RPR402 -- shared scratch list, reset by caller\n"
            "def f(x=[]):\n"
            "    return x\n"
        )
        report = run([target])
        assert not report.findings
        assert report.suppressed == 1

    def test_suppression_without_reason_is_a_finding(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(x=[]):  # repro: lint-ok RPR402\n    return x\n")
        report = run([target])
        rules = sorted(f.rule for f in report.findings)
        assert rules == ["RPR002", "RPR402"]  # suppresses nothing

    def test_unknown_rule_id_is_a_finding(self, tmp_path):
        target = tmp_path / "m.py"
        # Concatenation keeps this source file from containing a
        # scannable (and malformed) directive itself.
        target.write_text("X = 1  # repro: lint-ok RPR" "777 -- whatever\n")
        report = run([target])
        assert [f.rule for f in report.findings] == ["RPR002"]
        assert "RPR777" in report.findings[0].message

    def test_suppression_only_covers_its_rule(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "def f(x=[]):  # repro: lint-ok RPR403 -- wrong rule id on purpose\n"
            "    return x\n"
        )
        report = run([target])
        assert [f.rule for f in report.findings] == ["RPR402"]


class TestRuleSelection:
    def test_only_restricts_rules(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "def f(x=[]):\n"
            "    try:\n"
            "        return x\n"
            "    except Exception:\n"
            "        return None\n"
        )
        report = run([target], only=["RPR401"])
        assert {f.rule for f in report.findings} == {"RPR401"}

    def test_unknown_rule_id_rejected(self):
        with pytest.raises(ConfigurationError, match="RPR999"):
            build_rules(only=["RPR999"])


class TestBaseline:
    def test_roundtrip_filters_known_findings(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(x=[]):\n    return x\n")
        first = run([target])
        assert len(first.findings) == 1
        baseline_path = tmp_path / "baseline.json"
        write_baseline(first, baseline_path)
        fingerprints = load_baseline(baseline_path)
        second = run([target], baseline=fingerprints)
        assert not second.findings
        assert second.baselined == 1

    def test_baseline_survives_line_shifts(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(x=[]):\n    return x\n")
        fingerprints = {f.fingerprint() for f in run([target]).findings}
        target.write_text(
            "import os\n\n\ndef f(x=[]):\n    return x\n"
        )
        report = run([target], baseline=fingerprints)
        assert not report.findings

    def test_new_findings_still_fail(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(x=[]):\n    return x\n")
        fingerprints = {f.fingerprint() for f in run([target]).findings}
        target.write_text(
            "def f(x=[]):\n    return x\n\n\ndef g(y={}):\n    return y\n"
        )
        report = run([target], baseline=fingerprints)
        assert len(report.findings) == 1
        assert "g()" in report.findings[0].message

    def test_malformed_baseline_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text("{\"fingerprints\": \"not-a-list\"}")
        with pytest.raises(ReproError, match="fingerprints"):
            load_baseline(bad)

    def test_baseline_survives_reformatting(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(a,     b=[]):\n    return b\n")
        fingerprints = {f.fingerprint() for f in run([target]).findings}
        # Collapse the alignment padding: same statement, new spacing.
        target.write_text("def f(a, b=[]):\n    return b\n")
        report = run([target], baseline=fingerprints)
        assert not report.findings

    def test_pre_normalization_baseline_migrates_on_load(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(a, b=[]):\n    return b\n")
        (finding,) = run([target]).findings
        rule, path_part, context = finding.fingerprint().split(":", 2)
        stale = f"{rule}:{path_part}:{context.replace(' ', '   ')}"
        baseline_path = tmp_path / "baseline.json"
        baseline_path.write_text(
            json.dumps({"version": 2, "fingerprints": [stale]})
        )
        report = run([target], baseline=load_baseline(baseline_path))
        assert not report.findings
        assert report.baselined == 1


class TestReporters:
    def make_report(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text("def f(x=[]):\n    return x\n")
        return run([target])

    def test_text_report_names_location_and_rule(self, tmp_path):
        text = render_text(self.make_report(tmp_path))
        assert "RPR402" in text
        assert "1 finding(s)" in text

    def test_json_report_is_machine_readable(self, tmp_path):
        document = json.loads(render_json(self.make_report(tmp_path)))
        assert document["version"] == 3
        assert document["summary"]["errors"] == 1
        assert document["summary"]["by_rule"] == {"RPR402": 1}
        (finding,) = document["findings"]
        assert finding["rule"] == "RPR402"
        assert finding["fingerprint"].startswith("RPR402:")

    def test_json_report_carries_wall_time_and_jobs(self, tmp_path):
        document = json.loads(render_json(self.make_report(tmp_path)))
        assert document["jobs"] == 1
        assert isinstance(document["wall_seconds"], float)
        assert document["wall_seconds"] >= 0.0


class TestParallelScan:
    def corpus(self, tmp_path):
        for index in range(6):
            (tmp_path / f"m{index}.py").write_text(
                f"def f{index}(x=[], y={{}}):\n    return x, y\n"
            )
        return tmp_path

    def run_jobs(self, paths, jobs):
        engine = LintEngine(rules=build_rules(), jobs=jobs)
        return engine.run(paths)

    def test_parallel_findings_match_serial_exactly(self, tmp_path):
        corpus = self.corpus(tmp_path)
        serial = self.run_jobs([corpus], jobs=1)
        fanned = self.run_jobs([corpus], jobs=3)
        serial_doc = json.loads(render_json(serial))
        fanned_doc = json.loads(render_json(fanned))
        for document in (serial_doc, fanned_doc):
            document.pop("wall_seconds")
            document.pop("jobs")
        assert serial_doc == fanned_doc  # only wall_seconds/jobs may differ
        assert serial.files_scanned == fanned.files_scanned == 6
        assert fanned.jobs == 3

    def test_parallel_suppressions_still_counted(self, tmp_path):
        target = tmp_path / "m.py"
        target.write_text(
            "def f(x=[]):  # repro: lint-ok RPR402 -- exercised in parallel\n"
            "    return x\n"
        )
        (tmp_path / "n.py").write_text("__all__ = []\n")
        report = self.run_jobs([tmp_path], jobs=2)
        assert not report.findings
        assert report.suppressed == 1

    def test_zero_jobs_rejected(self, tmp_path):
        with pytest.raises(ReproError, match="jobs"):
            self.run_jobs([self.corpus(tmp_path)], jobs=0)

    def test_graph_rules_run_in_parent_after_fanout(self, tmp_path):
        spine = tmp_path / "repro" / "sim"
        spine.mkdir(parents=True)
        (spine / "engine.py").write_text(
            '"""Det layer."""\n\nfrom repro.clockutil import stamp\n\n'
            '__all__ = ["tick"]\n\n\ndef tick():\n    return stamp()\n'
        )
        (tmp_path / "repro" / "clockutil.py").write_text(
            '"""Clock."""\n\nimport time\n\n__all__ = ["stamp"]\n\n\n'
            "def stamp():\n    return time.time()\n"
        )
        serial = self.run_jobs([tmp_path], jobs=1)
        fanned = self.run_jobs([tmp_path], jobs=2)
        assert [f.rule for f in serial.findings] == ["RPR601"]
        assert [f.sort_key() for f in serial.findings] == [
            f.sort_key() for f in fanned.findings
        ]
