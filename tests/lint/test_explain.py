"""``--explain``: every rule id renders metadata plus its doc section."""

import pytest

from repro.errors import ConfigurationError
from repro.lint import all_rule_ids, explain_rule, rule_catalogue
from repro.lint.explain import doc_section_for


@pytest.mark.parametrize("rule_id", all_rule_ids())
class TestEveryRuleExplains:
    def test_explanation_is_nonempty_and_titled(self, rule_id):
        text = explain_rule(rule_id)
        assert text.startswith(f"{rule_id}: ")
        assert "family: " in text
        assert "severity: " in text

    def test_doc_section_is_found(self, rule_id):
        section = doc_section_for(rule_id)
        assert section.startswith("### "), (
            f"{rule_id} has no docs/static_analysis.md section — "
            "add it to a '### ... (RPR###–RPR###)' heading"
        )
        assert len(section.splitlines()) > 3


class TestExplainDetails:
    def test_unknown_id_rejected_like_rule_flag(self):
        with pytest.raises(ConfigurationError, match="unknown lint rule id"):
            explain_rule("RPR999")

    def test_explanation_embeds_the_catalogue_title(self):
        titles = {e["id"]: e["title"] for e in rule_catalogue()}
        text = explain_rule("RPR906")
        assert titles["RPR906"] in text

    def test_range_headings_cover_interior_ids(self):
        # RPR102 is named by no heading directly — only the range
        # RPR101–RPR104 covers it.
        section = doc_section_for("RPR102")
        assert "Determinism" in section.splitlines()[0]

    def test_missing_section_degrades_not_fails(self):
        assert doc_section_for("RPR901", docs_text="# no sections here\n") == ""
