"""SARIF 2.1.0 rendering: document shape, rule metadata, fingerprints."""

import json
import pathlib

from repro.lint import LintEngine, build_rules, render_sarif, rule_catalogue


def sarif_document(tmp_path):
    target = tmp_path / "m.py"
    target.write_text("def f(x=[]):\n    return x\n")
    engine = LintEngine(rules=build_rules(), root=tmp_path)
    report = engine.run([target])
    assert report.findings
    return report, json.loads(render_sarif(report))


class TestSarifShape:
    def test_document_is_sarif_2_1_0(self, tmp_path):
        _, document = sarif_document(tmp_path)
        assert document["version"] == "2.1.0"
        assert "sarif-2.1.0" in document["$schema"]
        (run,) = document["runs"]
        assert run["tool"]["driver"]["name"] == "repro-lint"

    def test_driver_carries_the_full_rule_catalogue(self, tmp_path):
        _, document = sarif_document(tmp_path)
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert {r["id"] for r in rules} == {
            str(e["id"]) for e in rule_catalogue()
        }
        by_id = {r["id"]: r for r in rules}
        assert by_id["RPR901"]["properties"]["family"] == "plugin-contract"
        assert by_id["RPR402"]["defaultConfiguration"]["level"] == "error"

    def test_results_carry_location_and_baseline_fingerprint(self, tmp_path):
        report, document = sarif_document(tmp_path)
        (result,) = document["runs"][0]["results"]
        assert result["ruleId"] == "RPR402"
        assert result["level"] == "error"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"].endswith("m.py")
        assert location["region"]["startLine"] == 1
        (finding,) = report.findings
        assert (
            result["partialFingerprints"]["reproLint/v1"]
            == finding.fingerprint()
        )

    def test_corpus_findings_clamp_line_zero_to_one(self, tmp_path):
        # RPR302 (orphan schema) anchors at line 0; SARIF requires >= 1.
        fixtures = (
            pathlib.Path(__file__).resolve().parent / "fixtures" / "RPR302"
        )
        engine = LintEngine(
            rules=build_rules(
                only=["RPR302"], telemetry_schemas={"alpha", "beta"}
            ),
            enabled={"RPR302"},
            root=fixtures,
        )
        report = engine.run([fixtures / "bad"])
        assert any(f.line == 0 for f in report.findings)
        document = json.loads(render_sarif(report))
        for result in document["runs"][0]["results"]:
            start = result["locations"][0]["physicalLocation"]["region"]
            assert start["startLine"] >= 1
