"""Fixture-corpus sweep: every rule catches its bad and passes its good.

Each rule id has a directory under ``tests/lint/fixtures/<ID>/`` with a
``bad/`` corpus (must produce at least one finding *of that rule*) and
a ``good/`` corpus (must produce none).  Layer-scoped rules embed a
``repro/<layer>/`` spine in their fixture paths, which is exactly how
:func:`repro.lint.engine.layer_for_path` resolves layers.  The test is
parametrized over the registry, so adding a rule without fixtures
fails here — the corpus can never lag the rule set.
"""

import json
import pathlib

import pytest

from repro.lint import LintEngine, all_rule_ids, build_rules

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"


def run_rule(rule_id, corpus, schemas=None):
    rules = build_rules(only=[rule_id], telemetry_schemas=schemas)
    engine = LintEngine(rules=rules, enabled={rule_id}, root=FIXTURES)
    return engine.run([corpus])


def injected_schemas(rule_id):
    config = FIXTURES / rule_id / "config.json"
    if config.exists():
        return set(json.loads(config.read_text())["schemas"])
    return None


@pytest.mark.parametrize("rule_id", all_rule_ids())
class TestEveryRuleHasFixtures:
    def test_fixture_directories_exist(self, rule_id):
        assert (FIXTURES / rule_id / "bad").is_dir(), (
            f"{rule_id} ships without a known-bad fixture corpus"
        )
        assert (FIXTURES / rule_id / "good").is_dir(), (
            f"{rule_id} ships without a known-good fixture corpus"
        )

    def test_bad_corpus_fails(self, rule_id):
        report = run_rule(
            rule_id, FIXTURES / rule_id / "bad", injected_schemas(rule_id)
        )
        assert report.findings, f"{rule_id} missed its known-bad fixture"
        assert all(f.rule == rule_id for f in report.findings)

    def test_good_corpus_passes(self, rule_id):
        report = run_rule(
            rule_id, FIXTURES / rule_id / "good", injected_schemas(rule_id)
        )
        assert not report.findings, (
            f"{rule_id} false-positives on its known-good fixture: "
            f"{[f.message for f in report.findings]}"
        )


class TestFixtureFindingDetails:
    def test_wallclock_names_the_call(self):
        report = run_rule("RPR101", FIXTURES / "RPR101" / "bad")
        messages = " ".join(f.message for f in report.findings)
        assert "time.time()" in messages
        assert "datetime.datetime.now()" in messages
        assert "time.perf_counter()" in messages  # aliased import resolved

    def test_layer_scoping_allows_runtime_wallclock(self):
        # The good corpus contains a time.perf_counter() under
        # repro/runtime/ — scoping, not luck, is what passes it.
        good = FIXTURES / "RPR101" / "good" / "repro" / "runtime" / "measured.py"
        assert "perf_counter" in good.read_text()

    def test_suppression_with_reason_is_counted(self):
        report = run_rule("RPR401", FIXTURES / "RPR401" / "good")
        assert report.suppressed == 1

    def test_orphan_schema_names_the_missing_event(self):
        report = run_rule(
            "RPR302", FIXTURES / "RPR302" / "bad", schemas={"alpha", "beta"}
        )
        (finding,) = report.findings
        assert "'beta'" in finding.message
