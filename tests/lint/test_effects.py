"""Effect-signature layer: extraction, fixpoint, witnesses, pickling.

The rule-facing behaviour (RPR901–RPR907) is pinned by the fixture
corpora and acceptance tests; this file pins the *analysis* contract
those rules stand on — what the per-file extractor records, how the
SCC fixpoint folds callee effects into callers, and that everything
crossing the ``--jobs`` pool boundary pickles.
"""

import ast
import pathlib
import pickle

from repro.lint import ProjectGraph, extract_summary, layer_for_path
from repro.lint.effects.fixpoint import EffectAnalysis


def analyze(files):
    """Build an EffectAnalysis over {display_path: source} sources."""
    summaries = [
        extract_summary(
            ast.parse(source), path, layer_for_path(pathlib.Path(path))
        )
        for path, source in files.items()
    ]
    graph = ProjectGraph(summaries)
    return EffectAnalysis(graph, summaries)


def key_of(analysis, qualname):
    """The unique analysis key ending in ``::qualname``."""
    matches = [k for k in analysis.keys() if k.endswith(f"::{qualname}")]
    assert len(matches) == 1, (qualname, analysis.keys())
    return matches[0]


class TestLocalExtraction:
    def test_alias_mutation_records_param_field_and_chain(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def f(task):\n"
                    "    t = task\n"
                    "    t.demand = 1\n"
                )
            }
        )
        fx = analysis.function_effects(key_of(analysis, "f"))
        (mutation,) = [m for m in fx.mutations if m.param == "task"]
        assert mutation.field == "demand"
        assert mutation.via == ("task", "t")
        assert mutation.chain() == "task -> t"

    def test_rebinding_an_alias_ends_the_alias(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def f(task):\n"
                    "    t = task\n"
                    "    t = object()\n"
                    "    t.demand = 1\n"
                )
            }
        )
        fx = analysis.function_effects(key_of(analysis, "f"))
        assert not [m for m in fx.mutations if m.param == "task"]

    def test_immutable_annotations_are_recorded(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def f(ctx: int, name: 'str', data):\n"
                    "    return ctx\n"
                )
            }
        )
        fx = analysis.function_effects(key_of(analysis, "f"))
        assert set(fx.immutable_params) == {"ctx", "name"}

    def test_capture_into_self_is_recorded(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "class P:\n"
                    "    def hook(self, task):\n"
                    "        self._last = task\n"
                )
            }
        )
        fx = analysis.function_effects(key_of(analysis, "P.hook"))
        (capture,) = [c for c in fx.captures if c.param == "task"]
        assert capture.dest == "self._last"

    def test_attribute_read_is_not_a_capture(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "class P:\n"
                    "    def hook(self, task):\n"
                    "        self._demand = task.demand\n"
                )
            }
        )
        fx = analysis.function_effects(key_of(analysis, "P.hook"))
        assert not [c for c in fx.captures if c.param == "task"]

    def test_post_capture_mutation_is_flow_sensitive(self):
        source = (
            "class T:\n"
            "    def __init__(self, parts):\n"
            "        parts.append('early')\n"      # before capture: fine
            "        self._sig_parts = parts\n"
            "        parts.append('late')\n"       # after capture: recorded
        )
        analysis = analyze({"repro/core/m.py": source})
        fx = analysis.function_effects(key_of(analysis, "T.__init__"))
        (cm,) = fx.capture_mutations
        assert cm.attr == "_sig_parts"
        assert cm.lineno == 5

    def test_effects_pickle_for_the_pool_boundary(self):
        summary = extract_summary(
            ast.parse(
                "def f(task):\n"
                "    t = task\n"
                "    t.demand = 1\n"
                "    raise ValueError('x')\n"
            ),
            "repro/core/m.py",
            "core",
        )
        clone = pickle.loads(pickle.dumps(summary))
        assert clone.effects == summary.effects


class TestFixpoint:
    def test_uncaught_raise_escapes_caught_raise_does_not(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def loud(x):\n"
                    "    raise ValueError('x')\n"
                    "def quiet(x):\n"
                    "    try:\n"
                    "        raise ValueError('x')\n"
                    "    except ValueError:\n"
                    "        return 0\n"
                )
            }
        )
        assert "ValueError" in analysis.signature(key_of(analysis, "loud")).raises
        assert not analysis.signature(key_of(analysis, "quiet")).raises

    def test_subclass_catch_uses_the_builtin_hierarchy(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def f(x):\n"
                    "    try:\n"
                    "        raise FileNotFoundError(x)\n"
                    "    except OSError:\n"
                    "        return 0\n"
                )
            }
        )
        assert not analysis.signature(key_of(analysis, "f")).raises

    def test_mutation_propagates_through_argument_aliasing(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def outer(task):\n"
                    "    helper(task)\n"
                    "def helper(item):\n"
                    "    item.demand = 1\n"
                )
            }
        )
        sig = analysis.signature(key_of(analysis, "outer"))
        assert ("task", "demand") in sig.mutates
        path, site_key, mutation = analysis.mutation_witness(
            key_of(analysis, "outer"), "task"
        )
        assert site_key.endswith("::helper")
        assert mutation.field == "demand"

    def test_raises_propagate_minus_what_call_sites_catch(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def outer(x):\n"
                    "    try:\n"
                    "        return helper(x)\n"
                    "    except ValueError:\n"
                    "        return 0\n"
                    "def helper(x):\n"
                    "    if x < 0:\n"
                    "        raise ValueError('neg')\n"
                    "    if x > 9:\n"
                    "        raise KeyError('big')\n"
                    "    return x\n"
                )
            }
        )
        sig = analysis.signature(key_of(analysis, "outer"))
        assert "KeyError" in sig.raises
        assert "ValueError" not in sig.raises

    def test_unknown_callee_degrades_to_top_not_facts(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def f(task, registry):\n"
                    "    registry['k'](task)\n"
                )
            }
        )
        sig = analysis.signature(key_of(analysis, "f"))
        assert sig.mutates_top
        assert not sig.mutates  # flags, never invented facts

    def test_recursive_cycle_reaches_a_stable_signature(self):
        analysis = analyze(
            {
                "repro/core/m.py": (
                    "def ping(x):\n"
                    "    if x > 0:\n"
                    "        return pong(x - 1)\n"
                    "    raise ValueError('done')\n"
                    "def pong(x):\n"
                    "    return ping(x)\n"
                )
            }
        )
        assert "ValueError" in analysis.signature(key_of(analysis, "ping")).raises
        assert "ValueError" in analysis.signature(key_of(analysis, "pong")).raises

    def test_unanalyzed_key_is_honest_top(self):
        analysis = analyze({"repro/core/m.py": "def f(x):\n    return x\n"})
        missing = analysis.signature("nowhere::ghost")
        assert missing.mutates_top and missing.captures_top and missing.raises_top

    def test_repro_error_taxonomy_is_recognized(self):
        assert analysis_is_repro_error("repro.errors.SimulationError")
        assert not analysis_is_repro_error("ValueError")


def analysis_is_repro_error(exc):
    analysis = analyze({"repro/core/m.py": "def f(x):\n    return x\n"})
    return analysis.is_repro_error(exc)
