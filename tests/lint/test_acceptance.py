"""Acceptance corpora: the two seeded-defect scenarios from the issue.

Unlike the per-rule sweep in ``test_fixtures.py`` (one rule at a time),
these corpora run under the FULL rule set and must produce *exactly
one* finding each — proving both that the seeded defect is caught and
that no other rule false-positives on otherwise-clean code:

* ``acceptance/wallclock_two_hops`` — a ``time.time()`` call two hops
  below ``sim/engine.py`` (engine -> flow helper -> clock helper, the
  last two in the root layer where the per-file RPR101 does not look);
* ``acceptance/teardown_broadened`` — the ``runtime/parallel.py``
  pool-teardown kill loop with its ``except (OSError, ValueError)``
  narrowing deleted in favour of ``except Exception``.
"""

import pathlib

from repro.lint import LintEngine, build_rules

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
ACCEPTANCE = FIXTURES / "acceptance"


def run_full(corpus):
    engine = LintEngine(rules=build_rules(), root=FIXTURES)
    return engine.run([corpus])


class TestWallClockTwoHopsBelowEngine:
    def test_exactly_one_finding(self):
        report = run_full(ACCEPTANCE / "wallclock_two_hops")
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_is_transitive_and_prints_the_full_path(self):
        (finding,) = run_full(ACCEPTANCE / "wallclock_two_hops").findings
        assert finding.rule == "RPR601"
        assert (
            "repro.sim.engine.tick -> repro.flowutil.step"
            " -> repro.clockutil.stamp" in finding.message
        )

    def test_finding_lands_on_the_sink_file(self):
        (finding,) = run_full(ACCEPTANCE / "wallclock_two_hops").findings
        assert finding.path.endswith("clockutil.py")


class TestTeardownNarrowingDeleted:
    def test_exactly_one_finding(self):
        report = run_full(ACCEPTANCE / "teardown_broadened")
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_is_the_broad_except(self):
        (finding,) = run_full(ACCEPTANCE / "teardown_broadened").findings
        assert finding.rule == "RPR401"
        assert "Exception" in finding.message
