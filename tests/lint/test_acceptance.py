"""Acceptance corpora: the seeded-defect scenarios from the issues.

Unlike the per-rule sweep in ``test_fixtures.py`` (one rule at a time),
these corpora run under the FULL rule set and must produce *exactly
one* finding each — proving both that the seeded defect is caught and
that no other rule false-positives on otherwise-clean code:

* ``acceptance/wallclock_two_hops`` — a ``time.time()`` call two hops
  below ``sim/engine.py`` (engine -> flow helper -> clock helper, the
  last two in the root layer where the per-file RPR101 does not look);
* ``acceptance/teardown_broadened`` — the ``runtime/parallel.py``
  pool-teardown kill loop with its ``except (OSError, ValueError)``
  narrowing deleted in favour of ``except Exception``;
* ``acceptance/policy_alias_mutation`` — a policy hook writing
  ``task.demand`` through a local alias (``t = task``), caught by the
  effect analysis with the alias chain in the message;
* ``acceptance/sig_capture_mutation`` — a list mutated *after* being
  captured into a ``_sig_*`` slot, inside ``__init__`` where the
  direct-assignment rule (RPR202) cannot see it;
* ``acceptance/worker_bare_valueerror`` — a ``POOL_BOUNDARY`` worker
  entry raising a builtin ``ValueError`` that would cross the process
  pool raw.
"""

import pathlib

from repro.lint import LintEngine, build_rules

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
ACCEPTANCE = FIXTURES / "acceptance"


def run_full(corpus):
    engine = LintEngine(rules=build_rules(), root=FIXTURES)
    return engine.run([corpus])


class TestWallClockTwoHopsBelowEngine:
    def test_exactly_one_finding(self):
        report = run_full(ACCEPTANCE / "wallclock_two_hops")
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_is_transitive_and_prints_the_full_path(self):
        (finding,) = run_full(ACCEPTANCE / "wallclock_two_hops").findings
        assert finding.rule == "RPR601"
        assert (
            "repro.sim.engine.tick -> repro.flowutil.step"
            " -> repro.clockutil.stamp" in finding.message
        )

    def test_finding_lands_on_the_sink_file(self):
        (finding,) = run_full(ACCEPTANCE / "wallclock_two_hops").findings
        assert finding.path.endswith("clockutil.py")


class TestTeardownNarrowingDeleted:
    def test_exactly_one_finding(self):
        report = run_full(ACCEPTANCE / "teardown_broadened")
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_is_the_broad_except(self):
        (finding,) = run_full(ACCEPTANCE / "teardown_broadened").findings
        assert finding.rule == "RPR401"
        assert "Exception" in finding.message


class TestPolicyHookAliasMutation:
    def test_exactly_one_finding(self):
        report = run_full(ACCEPTANCE / "policy_alias_mutation")
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_prints_the_alias_chain(self):
        (finding,) = run_full(ACCEPTANCE / "policy_alias_mutation").findings
        assert finding.rule == "RPR901"
        assert "alias chain: task -> t" in finding.message
        assert "GreedyBoostPolicy.on_task_dispatch" in finding.message
        assert "'task'" in finding.message

    def test_finding_lands_on_the_mutation_site(self):
        (finding,) = run_full(ACCEPTANCE / "policy_alias_mutation").findings
        assert finding.path.endswith("greedy.py")
        assert finding.line > 0


class TestPostCaptureSignatureMutation:
    def test_exactly_one_finding(self):
        report = run_full(ACCEPTANCE / "sig_capture_mutation")
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_is_rpr904_with_capture_context(self):
        (finding,) = run_full(ACCEPTANCE / "sig_capture_mutation").findings
        assert finding.rule == "RPR904"
        assert "_sig_parts" in finding.message
        assert "captured 'parts'" in finding.message
        assert "call:append" in finding.message

    def test_finding_lands_on_the_mutation_not_the_capture(self):
        (finding,) = run_full(ACCEPTANCE / "sig_capture_mutation").findings
        assert finding.line == 12  # parts.append("late"), not the capture


class TestWorkerBareValueError:
    def test_exactly_one_finding(self):
        report = run_full(ACCEPTANCE / "worker_bare_valueerror")
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_is_rpr906_with_the_raise_path(self):
        (finding,) = run_full(ACCEPTANCE / "worker_bare_valueerror").findings
        assert finding.rule == "RPR906"
        assert "ValueError" in finding.message
        assert "repro.runtime.points.run_point" in finding.message

    def test_full_rule_set_is_byte_stable_across_jobs(self):
        # The three effect corpora together, serial vs fanned out.
        corpora = [
            ACCEPTANCE / "policy_alias_mutation",
            ACCEPTANCE / "sig_capture_mutation",
            ACCEPTANCE / "worker_bare_valueerror",
        ]
        serial = LintEngine(rules=build_rules(), root=FIXTURES, jobs=1)
        fanned = LintEngine(rules=build_rules(), root=FIXTURES, jobs=4)
        serial_report = serial.run(corpora)
        fanned_report = fanned.run(corpora)
        assert [f.fingerprint() for f in serial_report.findings] == [
            f.fingerprint() for f in fanned_report.findings
        ]
        assert len(serial_report.findings) == 3
