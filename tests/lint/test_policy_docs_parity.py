"""docs/policies.md cannot drift from the policy registry.

Same pattern as the telemetry and static-analysis docs-parity tests:
parse the markdown tables and compare them field by field against
:func:`repro.core.registry.policy_catalogue`.  Registering, renaming,
re-summarising, or re-parameterising a policy without updating the
catalog fails here.
"""

import pathlib
import re

from repro.core.registry import policy_catalogue

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "policies.md"

_REGISTRY_ROW = re.compile(
    r"^\| `(?P<name>[\w-]+)` \| (?P<summary>[^|]+) \| (?P<source>[^|]+) \|$",
    re.MULTILINE,
)
_PARAM_SECTION = re.compile(
    r"^### `(?P<name>[\w-]+)` parameters\n(?P<body>.*?)(?=^#|\Z)",
    re.MULTILINE | re.DOTALL,
)
_PARAM_ROW = re.compile(
    r"^\| `(?P<param>\w+)` \| (?P<kind>\w+) \| (?P<default>[^|]+) "
    r"\| (?P<doc>[^|]+) \|$",
    re.MULTILINE,
)


def parse_registry_table():
    rows = {}
    for match in _REGISTRY_ROW.finditer(DOCS.read_text()):
        if match.group("name") == "name":  # header row
            continue
        rows[match.group("name")] = {
            "summary": match.group("summary").strip(),
            "source": match.group("source").strip(),
        }
    return rows


def parse_param_sections():
    sections = {}
    for section in _PARAM_SECTION.finditer(DOCS.read_text()):
        params = [
            {
                "name": row.group("param"),
                "kind": row.group("kind"),
                "default": row.group("default").strip(),
                "doc": row.group("doc").strip(),
            }
            for row in _PARAM_ROW.finditer(section.group("body"))
            if row.group("param") != "param"  # header row
        ]
        sections[section.group("name")] = params
    return sections


class TestPolicyDocsParity:
    def test_docs_list_exactly_the_registered_policies(self):
        documented = parse_registry_table()
        registered = {entry["name"] for entry in policy_catalogue()}
        assert set(documented) == registered, (
            "docs/policies.md registry table and policy_catalogue() "
            "disagree on which policies exist"
        )

    def test_summary_and_source_match(self):
        documented = parse_registry_table()
        for entry in policy_catalogue():
            doc = documented[entry["name"]]
            assert doc["summary"] == entry["summary"], entry["name"]
            assert doc["source"] == entry["source"], entry["name"]

    def test_param_sections_cover_every_policy(self):
        assert set(parse_param_sections()) == {
            entry["name"] for entry in policy_catalogue()
        }

    def test_params_match_in_order(self):
        sections = parse_param_sections()
        for entry in policy_catalogue():
            documented = sections[entry["name"]]
            assert documented == entry["params"], (
                f"docs/policies.md and the registry disagree on the "
                f"parameters of {entry['name']!r}"
            )

    def test_parameterless_policies_say_none(self):
        sections = _PARAM_SECTION.finditer(DOCS.read_text())
        for section in sections:
            entry = next(
                e for e in policy_catalogue()
                if e["name"] == section.group("name")
            )
            if not entry["params"]:
                assert "(none)" in section.group("body"), entry["name"]

    def test_offline_escape_hatch_documented(self):
        # `offline` is outside the registry on purpose; the catalog
        # must say so rather than silently omitting it.
        assert "`offline`" in DOCS.read_text()
