"""The dimflow family end to end: algebra, fixpoint, manifest, parity.

The acceptance corpus seeds exactly one cross-module defect — a byte
count flowing two hops (origin -> relay -> schedule) into a parameter
declared seconds — and the FULL rule set must report exactly that one
RPR810 with the whole propagation path, byte-identically between the
serial and fanned-out engines.  The ``--units-output`` manifest over
the same corpus is pinned against a golden document.
"""

import json
import pathlib

from repro.lint import LintEngine, build_rules, render_text
from repro.lint.dimflow import (
    SCALAR,
    UnitAnalysis,
    div_units,
    mul_units,
    parse_unit,
    pow_unit,
    render_unit,
    unit_of_name,
)

FIXTURES = pathlib.Path(__file__).resolve().parent / "fixtures"
CORPUS = FIXTURES / "acceptance" / "units_bytes_two_hops"


def run_full(jobs=1, want_units=False):
    engine = LintEngine(
        rules=build_rules(), root=FIXTURES, jobs=jobs, want_units=want_units
    )
    report = engine.run([CORPUS])
    return engine, report


class TestAlgebra:
    def test_parse_render_roundtrip(self):
        for unit in ("seconds", "bytes/seconds", "seconds^2", "bytes", ""):
            assert render_unit(parse_unit(unit)) == unit

    def test_scalar_is_identity(self):
        assert mul_units(SCALAR, "bytes") == "bytes"
        assert div_units("bytes", SCALAR) == "bytes"

    def test_rates_compose_and_cancel(self):
        rate = div_units("bytes", "seconds")
        assert rate == "bytes/seconds"
        assert mul_units(rate, "seconds") == "bytes"
        assert div_units("seconds", "seconds") == SCALAR

    def test_pure_reciprocal_placeholder_is_not_a_dimension(self):
        # render_unit writes "1/seconds" for a pure denominator; the
        # "1" must parse back as the placeholder, not a base dimension.
        reciprocal = pow_unit("seconds", -1)
        assert reciprocal == "1/seconds"
        assert mul_units("bytes", reciprocal) == "bytes/seconds"
        assert parse_unit(reciprocal) == {"seconds": -1}

    def test_powers(self):
        assert mul_units("seconds", "seconds") == "seconds^2"
        assert pow_unit("seconds", 2) == "seconds^2"
        assert div_units("seconds^2", "seconds") == "seconds"

    def test_suffix_convention(self):
        assert unit_of_name("elapsed_seconds") == "seconds"
        assert unit_of_name("seconds") == "seconds"
        assert unit_of_name("drain_bytes_per_second") == "bytes/seconds"
        assert unit_of_name("secondsish") is None
        assert unit_of_name("budget") is None


class TestAcceptanceCorpus:
    def test_exactly_one_finding_under_the_full_rule_set(self):
        _, report = run_full()
        assert len(report.findings) == 1, [
            f"{f.rule}: {f.message}" for f in report.findings
        ]

    def test_finding_is_rpr810_with_the_full_propagation_path(self):
        _, report = run_full()
        (finding,) = report.findings
        assert finding.rule == "RPR810"
        assert "parameter 'delay_seconds'" in finding.message
        assert "declared seconds but receives bytes" in finding.message
        assert (
            "repro.sim.origin.start -> repro.sim.mid.relay"
            " -> repro.sim.sink.schedule" in finding.message
        )

    def test_finding_lands_on_the_call_site_that_breaks_the_contract(self):
        _, report = run_full()
        (finding,) = report.findings
        assert finding.path.endswith("mid.py")

    def test_serial_and_fanned_reports_are_byte_identical(self):
        _, serial = run_full(jobs=1)
        _, fanned = run_full(jobs=4)
        assert render_text(serial) == render_text(fanned)
        assert [f.fingerprint() for f in serial.findings] == [
            f.fingerprint() for f in fanned.findings
        ]


class TestUnitsManifest:
    def test_manifest_is_deterministic_across_runs(self):
        first_engine, _ = run_full(want_units=True)
        second_engine, _ = run_full(jobs=4, want_units=True)
        assert first_engine.units is not None
        assert first_engine.units.to_json() == second_engine.units.to_json()

    def test_manifest_contents_pin_the_inference(self):
        engine, _ = run_full(want_units=True)
        document = json.loads(engine.units.to_json())
        assert document["version"] == 1
        functions = document["functions"]
        # The middle hop's parameter was *inferred* bytes from its one
        # call site; the sink's parameter is *declared* seconds.
        relay = functions["repro.sim.mid::relay"]
        assert relay["params"] == {"value": "bytes"}
        assert "declared" not in relay
        schedule = functions["repro.sim.sink::schedule"]
        assert schedule["params"] == {"delay_seconds": "seconds"}
        assert schedule["declared"] == ["delay_seconds"]
        assert schedule["returns"] == "seconds"

    def test_manifest_is_sorted_and_newline_terminated(self):
        engine, _ = run_full(want_units=True)
        text = engine.units.to_json()
        assert text.endswith("\n")
        assert text == json.dumps(
            json.loads(text), indent=2, sort_keys=True
        ) + "\n"


class TestSignatureQueries:
    def test_signatures_are_queryable_after_the_run(self):
        engine, _ = run_full(want_units=True)
        analysis = engine.units
        assert isinstance(analysis, UnitAnalysis)
        key = "repro.sim.sink::schedule"
        signature = analysis.signature(key)
        assert signature.param_unit("delay_seconds") == "seconds"
        assert not signature.polymorphic

    def test_unknown_key_yields_an_empty_signature(self):
        engine, _ = run_full(want_units=True)
        signature = engine.units.signature("nowhere::nothing")
        assert signature.params == ()
        assert signature.returns is None


class TestScanCacheCarriesUnitFacts:
    def test_warm_run_reproduces_the_interprocedural_finding(self, tmp_path):
        cache_dir = tmp_path / "cache"

        def run(jobs=1):
            engine = LintEngine(
                rules=build_rules(),
                root=FIXTURES,
                jobs=jobs,
                cache_dir=cache_dir,
                want_units=True,
            )
            report = engine.run([CORPUS])
            return engine, report

        cold_engine, cold = run()
        warm_engine, warm = run(jobs=4)
        assert cold.cache_hits == 0
        assert warm.cache_hits == len(
            list(CORPUS.rglob("*.py"))
        )  # every file served from cache
        assert render_text(cold) == render_text(warm)
        assert cold_engine.units.to_json() == warm_engine.units.to_json()
