"""docs/static_analysis.md cannot drift from the rule registry.

Same pattern as the telemetry docs-parity test: parse the markdown
tables and compare them field by field against
:func:`repro.lint.rules.rule_catalogue` and :data:`RULE_FAMILIES`.
Adding, removing, retitling, or reclassifying a rule without updating
the catalogue fails here.
"""

import pathlib
import re

from repro.lint import RULE_FAMILIES, rule_catalogue

DOCS = pathlib.Path(__file__).resolve().parents[2] / "docs" / "static_analysis.md"

_CATALOGUE_ROW = re.compile(
    r"^\| `(?P<id>RPR\d{3})` \| (?P<family>[\w-]+) \| (?P<severity>\w+) "
    r"\| (?P<autofix>yes|no) \| (?P<title>[^|]+) \|$",
    re.MULTILINE,
)
_FAMILY_ROW = re.compile(r"^\| (?P<family>[\w-]+) \| (?P<desc>[^|]+) \|$", re.MULTILINE)


def parse_catalogue():
    rows = {}
    for match in _CATALOGUE_ROW.finditer(DOCS.read_text()):
        rows[match.group("id")] = {
            "family": match.group("family"),
            "severity": match.group("severity"),
            "autofixable": match.group("autofix") == "yes",
            "title": match.group("title").strip(),
        }
    return rows


class TestCatalogueParity:
    def test_docs_list_exactly_the_registered_rules(self):
        documented = parse_catalogue()
        registered = {str(row["id"]) for row in rule_catalogue()}
        assert set(documented) == registered, (
            "docs/static_analysis.md catalogue and the rule registry "
            "disagree on which rule ids exist"
        )

    def test_every_field_matches(self):
        documented = parse_catalogue()
        for row in rule_catalogue():
            doc = documented[str(row["id"])]
            for field in ("family", "severity", "autofixable", "title"):
                assert doc[field] == row[field], (
                    f"docs say {row['id']}.{field} = {doc[field]!r}; "
                    f"the registry says {row[field]!r}"
                )

    def test_family_table_matches_registry(self):
        text = DOCS.read_text()
        documented = {
            m.group("family"): m.group("desc").strip()
            for m in _FAMILY_ROW.finditer(text)
            if m.group("family") != "family"  # header row
        }
        assert documented == RULE_FAMILIES

    def test_every_rule_has_a_fixture_pointer(self):
        # The prose promises per-rule fixtures; the sweep test enforces
        # their existence — here we only pin the promise itself.
        assert "tests/lint/fixtures" in DOCS.read_text()
