"""Known-good: hooks read arguments and mutate only the policy itself."""

__all__ = ["ThrottlePolicyPlugin", "CountingPolicy"]

POLICY_HOOKS = ("setup", "on_task_dispatch")


class ThrottlePolicyPlugin:
    def setup(self, simulator):
        pass

    def on_task_dispatch(self, simulator, task, context_id):
        pass


class CountingPolicy(ThrottlePolicyPlugin):
    def __init__(self):
        self._seen = 0
        self._last_demand = 0.0

    def on_task_dispatch(self, simulator, task, context_id):
        self._seen += 1
        self._last_demand = task.demand
