"""Known-bad: a policy hook mutates its task argument via an alias."""

__all__ = ["ThrottlePolicyPlugin", "EagerPolicy"]

POLICY_HOOKS = ("setup", "on_task_dispatch")


class ThrottlePolicyPlugin:
    def setup(self, simulator):
        pass

    def on_task_dispatch(self, simulator, task, context_id):
        pass


class EagerPolicy(ThrottlePolicyPlugin):
    def on_task_dispatch(self, simulator, task, context_id):
        t = task
        t.demand = t.demand * 2
