"""Known-bad: the field name promises seconds, the value is bytes."""

__all__ = ["emit_phase"]


def emit_phase(tracer, footprint_bytes):
    tracer.emit({"event": "phase_done", "elapsed_seconds": footprint_bytes})
