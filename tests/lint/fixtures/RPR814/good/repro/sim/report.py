"""Known-good: every unit-suffixed field carries the unit it names."""

__all__ = ["emit_phase"]


def emit_phase(tracer, duration_seconds, footprint_bytes):
    tracer.emit(
        {
            "event": "phase_done",
            "elapsed_seconds": duration_seconds,
            "resident_bytes": footprint_bytes,
            "retries": 3,
        }
    )
