"""Known-good: hooks copy values and store only immutable arguments."""

__all__ = ["ThrottlePolicyPlugin", "BlacklistPolicy"]

POLICY_HOOKS = ("setup", "on_task_dispatch")


class ThrottlePolicyPlugin:
    def setup(self, simulator):
        pass

    def on_task_dispatch(self, simulator, task, context_id):
        pass


class BlacklistPolicy(ThrottlePolicyPlugin):
    def __init__(self):
        self._blocked = set()
        self._last_demand = 0.0

    def on_task_dispatch(self, simulator, task, context_id: int):
        # An int is a value: storing it retains no mutable state.
        self._blocked.add(context_id)
        self._last_demand = task.demand
