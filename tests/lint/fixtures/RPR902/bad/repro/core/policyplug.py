"""Known-bad: a policy hook retains a reference to a mutable argument."""

__all__ = ["ThrottlePolicyPlugin", "HoardingPolicy"]

POLICY_HOOKS = ("setup", "on_task_dispatch")


class ThrottlePolicyPlugin:
    def setup(self, simulator):
        pass

    def on_task_dispatch(self, simulator, task, context_id):
        pass


class HoardingPolicy(ThrottlePolicyPlugin):
    def on_task_dispatch(self, simulator, task, context_id):
        self._last_task = task
