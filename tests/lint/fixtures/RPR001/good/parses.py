"""Known-good: a perfectly ordinary module."""
VALUE = 1
