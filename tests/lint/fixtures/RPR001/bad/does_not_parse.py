"""Known-bad: this file is not valid Python."""
def broken(:
