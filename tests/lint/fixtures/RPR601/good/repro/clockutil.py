"""Root-layer module that only echoes the time it is given."""

__all__ = ["stamp"]


def stamp(now_seconds):
    return now_seconds
