"""Root-layer helper; no clock anywhere below it."""
from repro.clockutil import stamp

__all__ = ["step"]


def step(now_seconds):
    return stamp(now_seconds)
