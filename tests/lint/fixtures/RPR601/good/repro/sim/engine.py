"""Known-good: simulated time is threaded through explicitly."""
from repro.flowutil import step

__all__ = ["tick"]


def tick(now_seconds):
    return step(now_seconds)
