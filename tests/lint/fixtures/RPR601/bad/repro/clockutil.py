"""Root-layer module that reads the wall clock."""
import time

__all__ = ["stamp"]


def stamp():
    return time.time()
