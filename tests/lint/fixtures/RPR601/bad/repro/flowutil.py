"""Root-layer helper between the model and the clock."""
from repro.clockutil import stamp

__all__ = ["step"]


def step(now_seconds):
    return stamp() + now_seconds
