"""Known-bad: the tick path reaches time.time() two hops away."""
from repro.flowutil import step

__all__ = ["tick"]


def tick(now_seconds):
    return step(now_seconds)
