"""Known-bad: one branch returns a duration, the other a byte count."""

__all__ = ["window_extent"]


def window_extent(use_time, elapsed_seconds, footprint_bytes):
    if use_time:
        return elapsed_seconds
    return footprint_bytes
