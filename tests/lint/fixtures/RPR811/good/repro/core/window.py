"""Known-good: every branch agrees on the result's unit."""

__all__ = ["window_extent", "clamp"]


def window_extent(use_time, elapsed_seconds, fallback_seconds):
    if use_time:
        return elapsed_seconds
    return fallback_seconds


def clamp(elapsed_seconds):
    # A dimensionless early-out is additively neutral, not a conflict.
    if elapsed_seconds < 0:
        return 0
    return elapsed_seconds
