"""Hop two: the wall-clock read two hops below the engine."""
import time

__all__ = ["stamp"]


def stamp():
    return time.time()
