"""Acceptance corpus: the engine entry point, clean in itself."""
from repro.flowutil import step

__all__ = ["tick"]


def tick(now_seconds):
    return step(now_seconds)
