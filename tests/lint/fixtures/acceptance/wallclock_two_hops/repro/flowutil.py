"""Hop one: a root-layer flow helper the engine calls."""
from repro.clockutil import stamp

__all__ = ["step"]


def step(now_seconds):
    return stamp() + now_seconds
