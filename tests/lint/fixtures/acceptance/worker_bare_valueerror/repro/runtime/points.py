"""Acceptance corpus: a pool worker raising a bare builtin exception."""

__all__ = ["run_point"]

POOL_BOUNDARY = ("run_point",)


def run_point(point):
    if point < 0:
        raise ValueError("point must be >= 0")
    return point * 2
