"""Acceptance corpus: the pool-teardown kill loop with its exception
narrowing deleted (``except Exception`` instead of
``except (OSError, ValueError)``)."""

__all__ = ["kill_pool"]


def kill_pool(pool):
    pool.shutdown(wait=False, cancel_futures=True)
    for process in list((getattr(pool, "_processes", None) or {}).values()):
        try:
            process.kill()
        except Exception:
            pass
