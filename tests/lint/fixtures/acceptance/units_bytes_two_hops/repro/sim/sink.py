"""Leaf: ``delay_seconds`` is the declared contract the flow violates."""

__all__ = ["schedule"]


def schedule(delay_seconds):
    return 2.0 * delay_seconds
