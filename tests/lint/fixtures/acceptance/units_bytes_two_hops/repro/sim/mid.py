"""Middle hop: ``value`` carries no suffix; only the interprocedural
inference knows it is bytes by the time it reaches ``schedule``."""
from repro.sim.sink import schedule

__all__ = ["relay"]


def relay(value):
    return schedule(delay_seconds=value)
