"""Origin: a byte count enters the pipeline two hops above the sink."""
from repro.sim.mid import relay

__all__ = ["start"]


def start():
    footprint_bytes = 4096
    return relay(footprint_bytes)
