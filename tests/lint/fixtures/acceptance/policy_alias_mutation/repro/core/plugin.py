"""Acceptance corpus: the plugin surface, clean in itself."""

__all__ = ["POLICY_HOOKS", "ThrottlePolicyPlugin"]

POLICY_HOOKS = ("setup", "on_task_dispatch")


class ThrottlePolicyPlugin:
    def setup(self, simulator):
        pass

    def on_task_dispatch(self, simulator, task, context_id):
        pass
