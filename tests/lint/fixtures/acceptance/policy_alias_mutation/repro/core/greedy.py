"""Acceptance corpus: a hook editing simulator state through an alias."""

from repro.core.plugin import ThrottlePolicyPlugin

__all__ = ["GreedyBoostPolicy"]


class GreedyBoostPolicy(ThrottlePolicyPlugin):
    def on_task_dispatch(self, simulator, task, context_id):
        t = task
        t.demand = t.demand * 2
