"""Acceptance corpus: a list mutated after capture into a memo key."""

__all__ = ["CohortKey"]


class CohortKey:
    __slots__ = ("_sig_parts", "count")

    def __init__(self, parts):
        self._sig_parts = parts
        self.count = len(parts)
        parts.append("late")
