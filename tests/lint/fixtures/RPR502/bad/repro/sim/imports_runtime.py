"""Known-bad: a sim module depending on the orchestration layer."""
from repro.runtime.parallel import SweepExecutor

__all__ = []


def run(points):
    return SweepExecutor(jobs=1).run(points)
