"""Known-good: upper-layer types may be imported for annotations only."""
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.runtime.parallel import SweepExecutor

__all__ = []


def describe(executor: "SweepExecutor") -> str:
    return repr(executor)
