"""Known-good: imports flow upward — runtime may use sim."""
from repro.sim.engine import RateCalculator

__all__ = ["RateCalculator"]
