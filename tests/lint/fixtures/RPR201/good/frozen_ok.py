"""Known-good: frozen dataclass writes only during construction."""
from dataclasses import dataclass

__all__ = []


@dataclass(frozen=True)
class Snapshot:
    value: float

    def __post_init__(self):
        object.__setattr__(self, "value", float(self.value))
