"""Known-bad: frozen dataclass mutated after construction."""
from dataclasses import dataclass

__all__ = []


@dataclass(frozen=True)
class Snapshot:
    value: float

    def bump(self):
        object.__setattr__(self, "value", self.value + 1)
