"""Known-bad: a deterministic layer raises bare Exception."""

__all__ = ["advance"]


def advance(state):
    if state is None:
        raise Exception("no state to advance")
    return state + 1
