"""Known-good: deterministic layers raise typed repro.errors classes."""

from repro.errors import SimulationError

__all__ = ["advance"]


def advance(state):
    if state is None:
        raise SimulationError("no state to advance")
    return state + 1
