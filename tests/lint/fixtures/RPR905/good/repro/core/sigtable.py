"""Known-good: widening replaces the object instead of mutating it."""

__all__ = ["SignatureBook"]


class SignatureBook:
    __slots__ = ("_sig_entries",)

    def __init__(self, entries):
        self._sig_entries = tuple(entries)

    def widened(self, entry):
        return SignatureBook(list(self._sig_entries) + [entry])
