"""Known-bad: a signature slot mutated in place outside construction."""

__all__ = ["SignatureBook"]


class SignatureBook:
    __slots__ = ("_sig_entries",)

    def __init__(self, entries):
        self._sig_entries = list(entries)

    def widen(self, entry):
        self._sig_entries.append(entry)
