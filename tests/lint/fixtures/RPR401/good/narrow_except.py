"""Known-good: concrete exceptions, or an annotated firewall."""
__all__ = []


def careful(run):
    try:
        run()
    except (OSError, ValueError):
        return None
    try:
        run()
    except Exception:  # repro: lint-ok RPR401 -- outermost CLI firewall, result is re-reported
        return None
