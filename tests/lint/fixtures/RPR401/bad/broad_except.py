"""Known-bad: bare and blanket excepts."""
__all__ = []


def swallow(run):
    try:
        run()
    except Exception:
        return None
    try:
        run()
    except:
        return None
