"""Known-bad: a policy hook writes a module global (via a helper)."""

__all__ = ["ThrottlePolicyPlugin", "TallyPolicy"]

POLICY_HOOKS = ("setup", "on_task_dispatch")

_DISPATCHES = 0


def _bump():
    global _DISPATCHES
    _DISPATCHES += 1


class ThrottlePolicyPlugin:
    def setup(self, simulator):
        pass

    def on_task_dispatch(self, simulator, task, context_id):
        pass


class TallyPolicy(ThrottlePolicyPlugin):
    def on_task_dispatch(self, simulator, task, context_id):
        _bump()
