"""Known-good: counting happens on the policy instance, not globals."""

__all__ = ["ThrottlePolicyPlugin", "InstanceTallyPolicy"]

POLICY_HOOKS = ("setup", "on_task_dispatch")


class ThrottlePolicyPlugin:
    def setup(self, simulator):
        pass

    def on_task_dispatch(self, simulator, task, context_id):
        pass


class InstanceTallyPolicy(ThrottlePolicyPlugin):
    def __init__(self):
        self._dispatches = 0

    def on_task_dispatch(self, simulator, task, context_id):
        self._dispatches += 1
