"""Known-bad: emits and filters on unregistered event names."""
__all__ = []


def emit(writer, read_telemetry, path):
    writer.emit({"event": "bogus_event", "schema": 1})
    return read_telemetry(path, event="also_bogus")
