"""Known-good: every referenced event is registered."""
__all__ = []


def emit(writer, read_telemetry, path):
    writer.emit({"event": "point", "schema": 1})
    return read_telemetry(path, event="sweep")
