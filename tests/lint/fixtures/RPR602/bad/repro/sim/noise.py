"""Known-bad: noise seeding reaches os.urandom through a helper."""
from repro.entropy import fresh_seed

__all__ = ["noise_for_point"]


def noise_for_point(index):
    return fresh_seed() + index
