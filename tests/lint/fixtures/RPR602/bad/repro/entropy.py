"""Root-layer helper drawing OS entropy."""
import os

__all__ = ["fresh_seed"]


def fresh_seed():
    return int.from_bytes(os.urandom(8), "big")
