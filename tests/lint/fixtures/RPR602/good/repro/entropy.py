"""Root-layer helper deriving seeds deterministically."""

__all__ = ["derived_seed"]


def derived_seed(index):
    return (index * 2654435761) % (2 ** 32)
