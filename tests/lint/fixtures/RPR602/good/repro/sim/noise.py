"""Known-good: seeds are derived, never drawn from the OS."""
from repro.entropy import derived_seed

__all__ = ["noise_for_point"]


def noise_for_point(index):
    return derived_seed(index)
