"""Known-bad (half 2): the same attribute is overwritten with a
duration from another module."""
from repro.core.state import Window

__all__ = ["reschedule"]


def reschedule(elapsed_seconds):
    win = Window(4096)
    win.budget = elapsed_seconds
    return win
