"""Known-bad (half 1): ``Window.budget`` is written as bytes here."""

__all__ = ["Window"]


class Window:
    def __init__(self, limit_bytes):
        self.budget = limit_bytes
