"""Known-good: the cross-module write keeps the attribute's unit."""
from repro.core.state import Window

__all__ = ["resize"]


def resize(headroom_bytes):
    win = Window(4096)
    win.budget = headroom_bytes
    return win
