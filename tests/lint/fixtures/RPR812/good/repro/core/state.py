"""Known-good: every writer agrees ``Window.budget`` is bytes."""

__all__ = ["Window"]


class Window:
    def __init__(self, limit_bytes):
        self.budget = limit_bytes
