"""Known-bad: task keying reaches built-in hash() via a helper."""
from repro.hashutil import key_of

__all__ = ["task_key"]


def task_key(name):
    return key_of(name)
