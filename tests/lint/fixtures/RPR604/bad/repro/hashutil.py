"""Root-layer helper using the salted built-in hash."""

__all__ = ["key_of"]


def key_of(name):
    return hash(name) % 1024
