"""Root-layer helper with a process-stable key."""

__all__ = ["key_of"]


def key_of(name):
    return sum(ord(ch) for ch in name) % 1024
