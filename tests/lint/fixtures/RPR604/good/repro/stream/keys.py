"""Known-good: keys come from stable string identity."""
from repro.hashutil import key_of

__all__ = ["task_key"]


def task_key(name):
    return key_of(name)
