"""Known-good: workers return data; the parent emits telemetry."""
from concurrent.futures import ProcessPoolExecutor

from repro.runtime.telemetry import TelemetryWriter

__all__ = ["run", "worker_entry"]


def worker_entry(point):
    return point * 2


def run(points):
    with ProcessPoolExecutor() as pool:
        results = [pool.submit(worker_entry, p).result() for p in points]
    writer = TelemetryWriter()
    writer.emit({"event": "batch_done", "count": len(results)})
    return results
