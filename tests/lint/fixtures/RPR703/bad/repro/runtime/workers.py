"""Known-bad: a worker emits telemetry outside the sanctioned channel."""
from concurrent.futures import ProcessPoolExecutor

from repro.runtime.telemetry import TelemetryWriter

__all__ = ["run", "worker_entry"]


def _log(point):
    writer = TelemetryWriter()
    writer.emit({"event": "point_done", "point": point})


def worker_entry(point):
    _log(point)
    return point * 2


def run(points):
    with ProcessPoolExecutor() as pool:
        return [pool.submit(worker_entry, p).result() for p in points]
