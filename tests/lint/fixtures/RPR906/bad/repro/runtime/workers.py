"""Known-bad: a ValueError escapes a pool-worker entry two hops down."""

__all__ = ["run_point"]

POOL_BOUNDARY = ("run_point",)


def run_point(point):
    return _evaluate(point)


def _evaluate(point):
    if point < 0:
        raise ValueError("negative point")
    return point * 2
