"""Known-good: only repro.errors types (or caught builtins) in workers."""

from repro.errors import SimulationError

__all__ = ["run_point"]

POOL_BOUNDARY = ("run_point",)


def run_point(point):
    if point < 0:
        raise SimulationError("negative point")
    try:
        return _parse(point)
    except ValueError:
        return 0


def _parse(point):
    if point != point:
        raise ValueError("NaN point")  # provably caught at the call site
    return point * 2
