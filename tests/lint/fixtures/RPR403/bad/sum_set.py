"""Known-bad: float sums over unordered sets."""
__all__ = []


def totals(values):
    return sum({v * 0.1 for v in values}) + sum(set(values)) + sum(frozenset(values))
