"""Known-good: summation order is pinned."""
__all__ = []


def totals(values):
    return sum(sorted(set(values)))
