"""Known-bad: model configuration reaches os.environ via a helper."""
from repro.envutil import lookup

__all__ = ["channel_count"]


def channel_count():
    return lookup("REPRO_CHANNELS", 1)
