"""Root-layer helper reading the process environment."""
import os

__all__ = ["lookup"]


def lookup(name, default):
    return int(os.environ.get(name, default))
