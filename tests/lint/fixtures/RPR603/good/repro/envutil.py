"""Root-layer helper with no environment access."""

__all__ = ["clamp"]


def clamp(value, low, high):
    return max(low, min(high, value))
