"""Known-good: configuration arrives through parameters."""
from repro.envutil import clamp

__all__ = ["channel_count"]


def channel_count(requested):
    return clamp(requested, 1, 2)
