"""Known-good: defaults built per call."""
__all__ = []


def collect(item, bucket=None):
    if bucket is None:
        bucket = []
    bucket.append(item)
    return bucket
