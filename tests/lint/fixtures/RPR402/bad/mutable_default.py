"""Known-bad: mutable defaults shared across calls."""
__all__ = []


def collect(item, bucket=[], index={}, seen=set()):
    bucket.append(item)
    return bucket, index, seen
