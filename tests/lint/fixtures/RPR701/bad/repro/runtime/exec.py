"""Known-bad: lambdas and bound methods cross the pool boundary."""
from concurrent.futures import ProcessPoolExecutor

__all__ = ["Runner", "run_points"]


def run_points(points):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(lambda p: p * 2, point) for point in points]
    return [future.result() for future in futures]


class Runner:
    def _work(self, point):
        return point * 2

    def run(self, points):
        with ProcessPoolExecutor() as pool:
            return [pool.submit(self._work, p).result() for p in points]
