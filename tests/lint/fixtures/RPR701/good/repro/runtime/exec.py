"""Known-good: only top-level callables are submitted.

The dynamic dispatch below is unresolvable on purpose — the rule must
degrade to "unknown callee" rather than over-report.
"""
from concurrent.futures import ProcessPoolExecutor

__all__ = ["run_dynamic", "run_points", "work"]


def work(point):
    return point * 2


def run_points(points):
    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(work, point) for point in points]
    return [future.result() for future in futures]


def run_dynamic(points, strategy):
    import repro.runtime.exec as this_module

    target = getattr(this_module, strategy)
    with ProcessPoolExecutor() as pool:
        return [pool.submit(target, p).result() for p in points]
