"""Known-good corpus: every registered schema has an emit site."""
__all__ = []


def emit(writer):
    writer.emit({"event": "alpha", "schema": 1})
    writer.emit({"event": "beta", "schema": 1})
