"""Known-bad corpus: schema 'beta' is registered but never emitted."""
__all__ = []


def emit(writer):
    writer.emit({"event": "alpha", "schema": 1})
