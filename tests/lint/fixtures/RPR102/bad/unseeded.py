"""Known-bad: global-state and unseeded randomness."""
import random

import numpy as np

__all__ = []


def jitter():
    rng = random.Random()
    return random.random() + np.random.rand() + np.random.default_rng().normal() + rng.random()
