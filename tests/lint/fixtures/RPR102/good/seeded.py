"""Known-good: every RNG is explicitly seeded."""
import random

import numpy as np

__all__ = []


def jitter(seed):
    rng = random.Random(seed)
    npr = np.random.default_rng(seed)
    return rng.random() + npr.normal()
