"""Known-bad: suppressions without a reason, and with an unknown id."""
try:
    pass
except ValueError:  # repro: lint-ok RPR401
    pass
X = 1  # repro: lint-ok RPR999 -- no such rule
