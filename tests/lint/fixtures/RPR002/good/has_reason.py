"""Known-good: a well-formed suppression with a reason string."""
try:
    pass
except Exception:  # repro: lint-ok RPR401 -- top-level firewall, logged and re-raised by caller
    pass
