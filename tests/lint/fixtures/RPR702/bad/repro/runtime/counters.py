"""Known-bad: a worker-reachable helper mutates a module global."""

__all__ = ["worker_entry"]

POOL_BOUNDARY = ("worker_entry",)

_CALLS = 0


def _bump():
    global _CALLS
    _CALLS += 1
    return _CALLS


def worker_entry(point):
    _bump()
    return point * 2
