"""Known-good: the worker is pure; the parent keeps the counter."""

__all__ = ["parent_loop", "worker_entry"]

POOL_BOUNDARY = ("worker_entry",)

_CALLS = 0


def worker_entry(point):
    return point * 2


def parent_loop(points):
    global _CALLS
    results = []
    for point in points:
        _CALLS += 1
        results.append(worker_entry(point))
    return results
