"""Known-good: the signature slot freezes its input at the boundary."""

__all__ = ["CohortTable"]


class CohortTable:
    __slots__ = ("_sig_parts", "count")

    def __init__(self, parts):
        staged = list(parts)
        staged.append("normalized")
        self._sig_parts = tuple(staged)
        self.count = len(staged)
