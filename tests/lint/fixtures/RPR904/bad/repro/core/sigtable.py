"""Known-bad: a list is mutated after capture into a signature slot."""

__all__ = ["CohortTable"]


class CohortTable:
    __slots__ = ("_sig_parts", "count")

    def __init__(self, parts):
        self._sig_parts = parts
        self.count = len(parts)
        parts.append("late")
