"""Known-good: arithmetic stays within one unit (or forms a rate)."""
from repro.units import NANOSECONDS

__all__ = ["bandwidth", "slack_seconds", "total_bytes"]


def slack_seconds(deadline_seconds, latency_seconds):
    return deadline_seconds - latency_seconds + 45.0 * NANOSECONDS


def total_bytes(footprint_bytes, overhead_bytes):
    return footprint_bytes + 2 * overhead_bytes


def bandwidth(moved_bytes, window_seconds):
    return moved_bytes / window_seconds


def headroom_bytes_per_second(moved_bytes, window_seconds):
    # Two quotients of the same shape share the derived bytes/seconds
    # dimension, so adding them is fine under the algebra.
    burst = moved_bytes / window_seconds
    return burst + 2 * moved_bytes / window_seconds


def variance_seconds(window_seconds, gap_seconds):
    # seconds^2 is legitimate when both sides carry it.
    return window_seconds * window_seconds - gap_seconds * gap_seconds
