"""Known-good: arithmetic stays within one unit (or forms a rate)."""
from repro.units import NANOSECONDS

__all__ = ["bandwidth", "slack_seconds", "total_bytes"]


def slack_seconds(deadline_seconds, latency_seconds):
    return deadline_seconds - latency_seconds + 45.0 * NANOSECONDS


def total_bytes(footprint_bytes, overhead_bytes):
    return footprint_bytes + 2 * overhead_bytes


def bandwidth(moved_bytes, window_seconds):
    return moved_bytes / window_seconds
