"""Known-bad: seconds and bytes are added as if commensurable."""
from repro.units import MIB

__all__ = ["broken_budget", "broken_total"]


def broken_budget(latency_seconds, footprint_bytes):
    return latency_seconds + footprint_bytes


def broken_total(deadline_seconds):
    return deadline_seconds - 4 * MIB
