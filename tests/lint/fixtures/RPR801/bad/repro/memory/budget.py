"""Known-bad: seconds and bytes are added as if commensurable."""
from repro.units import MIB

__all__ = ["broken_budget", "broken_jitter", "broken_rate", "broken_total"]


def broken_budget(latency_seconds, footprint_bytes):
    return latency_seconds + footprint_bytes


def broken_total(deadline_seconds):
    return deadline_seconds - 4 * MIB


def broken_jitter(window_seconds, gap_seconds, slack_seconds):
    # seconds * seconds is the derived seconds^2, not seconds — the
    # pre-algebra inference collapsed any product to unknown and let
    # this through.
    return window_seconds * gap_seconds + slack_seconds


def broken_rate(moved_bytes, window_seconds, budget_bytes):
    # bytes/seconds is a rate; adding a plain byte count to it is as
    # wrong as adding seconds to bytes.
    return moved_bytes / window_seconds + budget_bytes
