"""Known-bad: wall-clock reads inside a deterministic layer."""
import time
from datetime import datetime
from time import perf_counter as tick

__all__ = []


def stamp():
    return time.time(), datetime.now(), tick()
