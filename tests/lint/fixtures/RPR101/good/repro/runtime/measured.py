"""Known-good: wall-clock time is the runtime layer's whole job."""
import time

__all__ = []


def wall_seconds(start):
    return time.perf_counter() - start
