"""Known-good: simulated time comes from the event loop."""
__all__ = []


def advance(now, delta):
    return now + delta
