"""Middle hop: ``value`` has no suffix, so its unit is inferred from
call sites — the mismatch is only visible interprocedurally."""
from repro.sim.sink import schedule

__all__ = ["relay"]


def relay(value):
    return schedule(delay_seconds=value)
