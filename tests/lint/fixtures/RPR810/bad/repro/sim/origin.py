"""Known-bad: a byte count flows two hops into a seconds parameter,
and a byte count reaches a ``UNIT_PARAMS``-declared helper directly."""
from repro.sim.mid import relay
from repro.units import format_time

__all__ = ["start", "describe"]


def start():
    footprint_bytes = 4096
    return relay(footprint_bytes)


def describe(footprint_bytes):
    # format_time's parameter is declared seconds in UNIT_PARAMS; the
    # callee is outside this corpus, so the table path catches it.
    return format_time(footprint_bytes)
