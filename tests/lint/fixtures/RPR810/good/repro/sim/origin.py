"""Known-good: the value flowing both hops really is a duration, and
the declared-table helper receives the unit it asks for."""
from repro.sim.mid import relay
from repro.units import format_time

__all__ = ["start", "describe"]


def start():
    interval_seconds = 0.25
    return relay(interval_seconds)


def describe(elapsed_seconds):
    return format_time(elapsed_seconds)
