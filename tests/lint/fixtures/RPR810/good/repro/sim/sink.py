"""Leaf: the parameter's suffix declares the contract."""

__all__ = ["schedule"]


def schedule(delay_seconds):
    return 2.0 * delay_seconds
