"""Middle hop: ``value`` is inferred from call sites."""
from repro.sim.sink import schedule

__all__ = ["relay"]


def relay(value):
    return schedule(delay_seconds=value)
