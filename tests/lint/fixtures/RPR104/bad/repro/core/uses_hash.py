"""Known-bad: PYTHONHASHSEED-dependent hash() in a deterministic layer."""
__all__ = []


def order_key(name):
    return hash(name) % 7
