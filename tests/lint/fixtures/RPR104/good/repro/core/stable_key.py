"""Known-good: ordering derived from the value itself."""
__all__ = []


def order_key(name):
    return (len(name), name)
