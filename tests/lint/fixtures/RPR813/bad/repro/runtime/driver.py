"""Known-bad (half 2): the caller supplies a plain byte count where the
comparison needs a rate."""
from repro.runtime.meter import over_budget

__all__ = ["tick"]


def tick(moved_bytes, window_seconds):
    limit_bytes = 4096
    return over_budget(moved_bytes, window_seconds, limit_bytes)
