"""Known-bad (half 1): ``budget`` carries no suffix, so the comparison
against a rate is locally undecidable — the unit arrives from the
caller."""

__all__ = ["over_budget"]


def over_budget(moved_bytes, window_seconds, budget):
    rate = moved_bytes / window_seconds
    return rate > budget
