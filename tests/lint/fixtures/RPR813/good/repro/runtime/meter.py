"""Known-good: the inferred unit agrees with the rate."""

__all__ = ["over_budget"]


def over_budget(moved_bytes, window_seconds, budget):
    rate = moved_bytes / window_seconds
    return rate > budget
