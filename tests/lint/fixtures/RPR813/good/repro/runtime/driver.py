"""Known-good: the caller supplies a rate, so the comparison is
dimensionally sound once the unit flows through."""
from repro.runtime.meter import over_budget

__all__ = ["tick"]


def tick(moved_bytes, window_seconds):
    limit_bytes_per_second = 4096
    return over_budget(moved_bytes, window_seconds, limit_bytes_per_second)
