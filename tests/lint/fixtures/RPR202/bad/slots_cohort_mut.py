"""Known-bad: cohort-key slot reassigned after construction."""
__all__ = []


class Running:
    __slots__ = ("remaining", "_sig_work", "_cohort_work")

    def __init__(self, core_id, demand):
        self.remaining = 1.0
        self._sig_work = (0, core_id, demand)
        self._cohort_work = (core_id, demand)

    def migrate(self, core_id):
        # Moving cores must mean removing from the cohort table and
        # constructing a fresh task; rekeying in place strands the
        # entry under its old cohort.
        self._cohort_work = (core_id, self._cohort_work[1])
