"""Known-good: cohort-key slots are write-once at construction."""
__all__ = []


class Running:
    __slots__ = ("remaining", "_sig_work", "_cohort_work")

    def __init__(self, core_id, demand):
        self.remaining = 1.0
        self._sig_work = (0, core_id, demand)
        self._cohort_work = (core_id, demand)

    def advance(self, units):
        self.remaining -= units

    def cohort_key(self):
        return self._cohort_work
