"""Known-good: signature slots are write-once; live state may change."""
__all__ = []


class Running:
    __slots__ = ("remaining", "demand", "_sig_work")

    def __init__(self, demand):
        self.remaining = 1.0
        self.demand = demand
        self._sig_work = (demand,)

    def advance(self, units):
        self.remaining -= units
