"""Known-good: comparisons stay within one unit; membership is fine."""

__all__ = ["fits", "overran", "seen_before"]


def overran(elapsed_seconds, deadline_seconds):
    return elapsed_seconds > deadline_seconds


def fits(footprint_bytes, budget_bytes):
    return footprint_bytes <= budget_bytes


def seen_before(chunk_bytes, seen_bytes):
    return chunk_bytes in seen_bytes
