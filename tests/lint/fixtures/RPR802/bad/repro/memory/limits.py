"""Known-bad: quantities in different units are ordered."""
from repro.units import cache_lines

__all__ = ["misfit", "overrun"]


def overrun(elapsed_seconds, footprint_bytes):
    return elapsed_seconds > footprint_bytes


def misfit(window_seconds, lines):
    return cache_lines(lines) >= window_seconds
