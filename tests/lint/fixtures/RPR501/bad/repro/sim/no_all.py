"""Known-bad: public module without __all__."""


def helper():
    return 1
