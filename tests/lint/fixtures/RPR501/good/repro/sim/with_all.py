"""Known-good: exports declared."""
__all__ = ["helper"]


def helper():
    return 1
