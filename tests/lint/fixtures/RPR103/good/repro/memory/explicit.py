"""Known-good: configuration arrives through parameters."""
__all__ = []


def channels(config):
    return config.channels
