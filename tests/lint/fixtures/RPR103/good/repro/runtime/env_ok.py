"""Known-good: the runtime layer may read the environment."""
import os

__all__ = []


def cache_dir():
    return os.environ.get("REPRO_CACHE_DIR")
