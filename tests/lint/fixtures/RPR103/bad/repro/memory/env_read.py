"""Known-bad: environment reads inside a deterministic layer."""
import os

__all__ = []


def channels():
    return int(os.environ["REPRO_CHANNELS"]) + int(os.getenv("REPRO_SMT", "1"))
