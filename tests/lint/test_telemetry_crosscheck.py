"""Satellite 3: lint vs EVENT_SCHEMAS, statically, in both directions.

Direction one: a source file that *emits* an event name no schema
registers must be reported (RPR301).  Direction two: a schema with no
emitter anywhere in the corpus must be reported as an orphan (RPR302).
Both are exercised against the live registry where possible, and
against injected schemas where the live registry would make the test
depend on unrelated executor code.
"""

import textwrap

from repro.lint import LintEngine, build_rules
from repro.lint.rules.telemetry import registered_events
from repro.runtime.telemetry import EVENT_SCHEMAS


def lint(tmp_path, source, rule_id, schemas):
    target = tmp_path / "emitter.py"
    target.write_text(textwrap.dedent(source))
    rules = build_rules(only=[rule_id], telemetry_schemas=schemas)
    engine = LintEngine(rules=rules, enabled={rule_id}, root=tmp_path)
    return engine.run([target])


class TestUnregisteredEmitReported:
    def test_fake_emit_site_with_unregistered_event(self, tmp_path):
        report = lint(
            tmp_path,
            """\
            def bogus_event():
                return {"schema": 1, "event": "warp_core_breach", "jobs": 1}
            """,
            "RPR301",
            schemas=set(EVENT_SCHEMAS),
        )
        (finding,) = report.findings
        assert finding.rule == "RPR301"
        assert "'warp_core_breach'" in finding.message

    def test_registered_emit_site_passes(self, tmp_path):
        report = lint(
            tmp_path,
            """\
            def fault_record():
                return {"schema": 1, "event": "fault", "jobs": 1}
            """,
            "RPR301",
            schemas=set(EVENT_SCHEMAS),
        )
        assert not report.findings

    def test_unregistered_read_filter_reported(self, tmp_path):
        # The consumer side: filtering telemetry by an event kind that
        # no schema registers is the same drift, caught at the same rule.
        report = lint(
            tmp_path,
            """\
            from repro.runtime.telemetry import read_telemetry

            def load(stream):
                return read_telemetry(stream, event="warp_core_breach")
            """,
            "RPR301",
            schemas=set(EVENT_SCHEMAS),
        )
        (finding,) = report.findings
        assert "'warp_core_breach'" in finding.message


class TestOrphanSchemaFires:
    def test_schema_without_emitter_is_reported(self, tmp_path):
        # Simulate "someone removed the fault emitter": the corpus
        # emits every registered event except one.
        emitted = sorted(set(EVENT_SCHEMAS) - {"fault"})
        lines = [
            f'R{i} = {{"schema": 1, "event": "{name}"}}'
            for i, name in enumerate(emitted)
        ]
        report = lint(
            tmp_path, "\n".join(lines) + "\n", "RPR302", schemas=set(EVENT_SCHEMAS)
        )
        (finding,) = report.findings
        assert finding.rule == "RPR302"
        assert "'fault'" in finding.message

    def test_full_coverage_passes(self, tmp_path):
        lines = [
            f'R{i} = {{"schema": 1, "event": "{name}"}}'
            for i, name in enumerate(sorted(EVENT_SCHEMAS))
        ]
        report = lint(
            tmp_path, "\n".join(lines) + "\n", "RPR302", schemas=set(EVENT_SCHEMAS)
        )
        assert not report.findings


class TestLiveRegistry:
    def test_rules_default_to_live_schemas(self):
        assert registered_events() == set(EVENT_SCHEMAS)

    def test_repo_sources_cover_every_schema(self):
        # The real src/ + tests/ corpus must emit (or filter on) every
        # registered event — otherwise RPR302 would fail `repro lint`.
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        rules = build_rules(only=["RPR301", "RPR302"])
        engine = LintEngine(
            rules=rules, enabled={"RPR301", "RPR302"}, root=root
        )
        report = engine.run([root / "src", root / "tests"])
        assert not report.findings, [f.message for f in report.findings]
