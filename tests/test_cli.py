"""Tests for the command-line interface."""

import json
import pathlib

import pytest

from repro.cli import main


class TestListWorkloads:
    def test_lists_all_registered(self, capsys):
        assert main(["list-workloads"]) == 0
        out = capsys.readouterr().out
        for name in ("dft", "SC_d128", "SIFT"):
            assert name in out


class TestRatio:
    def test_measures_table2_value(self, capsys):
        assert main(["ratio", "dft"]) == 0
        assert "12.77%" in capsys.readouterr().out

    def test_missing_workload_errors(self, capsys):
        assert main(["ratio"]) == 2
        assert "workload name" in capsys.readouterr().err


class TestRun:
    def test_dynamic_run_reports_speedup_and_mtl(self, capsys):
        assert main(["run", "SC_d128", "--policy", "dynamic"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs conventional" in out
        assert "dominant MTL: 2" in out

    def test_static_policy_spelling(self, capsys):
        assert main(["run", "dft", "--policy", "static:1"]) == 0
        assert "static-mtl-1" in capsys.readouterr().out

    def test_offline_policy(self, capsys):
        assert main(["run", "dft", "--policy", "offline"]) == 0
        assert "offline-exhaustive" in capsys.readouterr().out

    def test_gantt_flag(self, capsys):
        assert main(["run", "dft", "--policy", "conventional", "--gantt"]) == 0
        assert "P0 |" in capsys.readouterr().out

    def test_unknown_policy_errors(self, capsys):
        assert main(["run", "dft", "--policy", "magic"]) == 2
        assert "unknown policy" in capsys.readouterr().err

    def test_unknown_workload_errors(self, capsys):
        assert main(["run", "ghost"]) == 2
        assert "unknown workload" in capsys.readouterr().err

    def test_spec_workload(self, capsys, tmp_path):
        spec = tmp_path / "w.json"
        spec.write_text(json.dumps(
            {"name": "from-spec",
             "phases": [{"pairs": 8, "ratio": 0.3}]}
        ))
        assert main(["run", "--spec", str(spec), "--policy", "static:1"]) == 0
        assert "from-spec" in capsys.readouterr().out

    def test_machine_options(self, capsys):
        assert main(
            ["run", "dft", "--channels", "2", "--smt", "2",
             "--policy", "conventional"]
        ) == 0
        assert "i7-860/2ch/smt2" in capsys.readouterr().out


class TestCompare:
    def test_three_policy_table(self, capsys):
        assert main(["compare", "dft"]) == 0
        out = capsys.readouterr().out
        assert "Dynamic Throttling" in out
        assert "Online Exhaustive Search" in out
        assert "Offline Exhaustive Search" in out


class TestCharacterize:
    def test_characterize_report(self, capsys):
        assert main(["characterize", "SIFT"]) == 0
        out = capsys.readouterr().out
        assert "IdleBound" in out
        assert "phase-diverse" in out

    def test_characterize_uniform_workload(self, capsys):
        assert main(["characterize", "dft"]) == 0
        assert "static MTL suffices" in capsys.readouterr().out


class TestSuite:
    def test_suite_csv(self, capsys):
        assert main(["suite", "--workloads", "dft"]) == 0
        out = capsys.readouterr().out
        lines = out.strip().splitlines()
        assert lines[0].startswith("workload,machine,policy")
        # 1 workload x 2 machines x 3 policies.
        assert len(lines) == 7


class TestSweep:
    def test_small_sweep(self, capsys):
        assert main(["sweep", "--start", "0.2", "--stop", "0.4",
                     "--step", "0.2"]) == 0
        out = capsys.readouterr().out
        assert "S-MTL" in out
        assert "0.20" in out and "0.40" in out

    def test_invalid_sweep_errors(self, capsys):
        assert main(["sweep", "--start", "2.0", "--stop", "1.0"]) == 2


class TestChaosOptions:
    SWEEP = ["sweep", "--start", "0.2", "--stop", "0.4", "--step", "0.2"]

    def test_chaos_sweep_output_is_bit_identical(self, capsys):
        assert main(self.SWEEP) == 0
        clean = capsys.readouterr().out
        assert main(self.SWEEP + [
            "--retries", "6",
            "--inject-faults", "seed=1,crash=0.25,error=0.15",
        ]) == 0
        assert capsys.readouterr().out == clean

    def test_exhausted_retries_render_failed_rows_and_exit_3(self, capsys):
        assert main(self.SWEEP + [
            "--retries", "0", "--inject-faults", "seed=0,error=1.0",
        ]) == 3
        captured = capsys.readouterr()
        assert "failed" in captured.out
        assert "degraded" in captured.err

    def test_bad_fault_spec_errors(self, capsys):
        assert main(self.SWEEP + ["--inject-faults", "boom=1"]) == 2
        assert "boom" in capsys.readouterr().err

    def test_compare_with_failed_policy_warns_and_exits_3(self, capsys):
        assert main(["compare", "dft"]) == 0
        clean_rows = [
            line for line in capsys.readouterr().out.splitlines()
            if "Dynamic" in line
        ]
        # seed=14/error=0.35 fails the Offline Exhaustive Search point
        # of this comparison but neither the baseline nor the dynamic
        # policy's (verified below: dynamic row unchanged, exit 3).
        code = main(["compare", "dft", "--retries", "0",
                     "--inject-faults", "seed=14,error=0.35"])
        captured = capsys.readouterr()
        assert code == 3
        assert "degraded" in captured.err
        degraded_rows = [
            line for line in captured.out.splitlines() if "Dynamic" in line
        ]
        # Column padding shifts when the failed policy's row vanishes;
        # the numbers themselves must be identical.
        assert [r.split() for r in degraded_rows] == [
            r.split() for r in clean_rows
        ]
        assert "Offline" not in captured.out


class TestLint:
    REPO = pathlib.Path(__file__).resolve().parents[1]
    BAD = '"""Fixture."""\n\ndef f(x=[]):\n    return x\n'

    def test_repo_is_clean(self, capsys):
        # The merge acceptance criterion: `repro lint src tests` exits 0.
        code = main([
            "lint", str(self.REPO / "src"), str(self.REPO / "tests"),
        ])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "0 finding(s)" in out

    def test_findings_exit_1_and_name_the_rule(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RPR402" in out
        assert "bad.py:3" in out

    def test_json_format_writes_artifact(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        artifact = tmp_path / "lint_report.json"
        assert main([
            "lint", str(bad), "--format", "json", "--output", str(artifact),
        ]) == 1
        stdout_doc = json.loads(capsys.readouterr().out)
        file_doc = json.loads(artifact.read_text())
        assert stdout_doc == file_doc
        assert file_doc["summary"]["by_rule"] == {"RPR402": 1}

    def test_rule_filter(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(
            '"""Fixture."""\n\n'
            "def f(x=[]):\n"
            "    try:\n"
            "        return x\n"
            "    except Exception:\n"
            "        return None\n"
        )
        assert main(["lint", str(bad), "--rule", "RPR401"]) == 1
        out = capsys.readouterr().out
        assert "RPR401" in out
        assert "RPR402" not in out

    def test_list_rules_prints_catalogue(self, capsys):
        from repro.lint import all_rule_ids

        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in all_rule_ids():
            assert rule_id in out

    def test_write_baseline_requires_baseline_path(self, capsys):
        assert main(["lint", "--write-baseline"]) == 2
        assert "--baseline" in capsys.readouterr().err

    def test_baseline_workflow(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        baseline = tmp_path / "lint_baseline.json"
        assert main([
            "lint", str(bad), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert "1 fingerprint(s)" in capsys.readouterr().out
        assert main(["lint", str(bad), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_missing_path_errors(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "ghost")]) == 2
        assert "do not exist" in capsys.readouterr().err

    def test_output_dash_streams_json_to_stdout(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        assert main(["lint", str(bad), "--output", "-"]) == 1
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["by_rule"] == {"RPR402": 1}
        assert document["jobs"] == 1

    def test_jobs_output_matches_serial(self, capsys, tmp_path):
        for index in range(4):
            (tmp_path / f"bad{index}.py").write_text(self.BAD)
        assert main(["lint", str(tmp_path), "--output", "-"]) == 1
        serial = json.loads(capsys.readouterr().out)
        assert main(
            ["lint", str(tmp_path), "--output", "-", "--jobs", "2"]
        ) == 1
        fanned = json.loads(capsys.readouterr().out)
        for document in (serial, fanned):
            document.pop("wall_seconds")
            document.pop("jobs")
        assert serial == fanned

    def test_jobs_must_be_positive(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path), "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err

    def test_graph_output_writes_call_graph_artifact(self, capsys, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text(self.BAD)
        artifact = tmp_path / "callgraph.json"
        assert main(
            ["lint", str(bad), "--graph-output", str(artifact)]
        ) == 1
        capsys.readouterr()
        document = json.loads(artifact.read_text())
        assert document["version"] == 1
        assert document["files"] == 1
        assert {"key", "edges", "unknown_callees"} <= set(
            document["nodes"][0]
        )

    def test_help_documents_exit_codes(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", "--help"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert "exit codes:" in out
        assert "0 no findings" in out


class TestPerfbench:
    def test_quick_report_with_profile_telemetry_and_check(
        self, capsys, tmp_path
    ):
        baseline = tmp_path / "baseline.json"
        # An always-passing gate: any machine beats these floors.
        baseline.write_text(json.dumps({
            "schema": 2,
            "seed": {"fig13_wall_seconds_per_point": 0.02,
                     "engine_events_per_sec": 10000.0,
                     "equilibrium_mixed_solves_per_sec": 3601.0,
                     "fig14_point_wall_seconds": 0.006},
            "current": {"engine_events_per_sec": 1.0},
            "floors": {"engine_events_per_sec": 1.0,
                       "equilibrium_mixed_solves_per_sec": 1.0,
                       "warm_start_hit_rate": 0.5},
        }))
        output = tmp_path / "bench.json"
        telemetry = tmp_path / "telemetry.jsonl"
        assert main([
            "perfbench", "--quick", "--profile", "--check",
            "--output", str(output),
            "--baseline", str(baseline),
            "--telemetry", str(telemetry),
        ]) == 0
        out = capsys.readouterr().out
        assert "perf check passed" in out
        assert "profile (top by cumulative time):" in out

        report = json.loads(output.read_text())
        assert report["schema"] == 2
        assert report["quick"] is True
        for section in ("equilibrium", "engine", "fig13", "fig14"):
            assert section in report
            spread = report[section]["spread"]
            for stats in spread.values():
                assert stats["min"] <= stats["median"] <= stats["max"]
        assert report["engine"]["events_per_sec"] > 0
        assert report["equilibrium"]["pure_memoized_speedup"] > 1.0
        # The schema-2 headline metrics --check enforces floors on.
        assert report["equilibrium"]["mixed_solves_per_sec"] > 0
        assert report["equilibrium"]["warm_start_hit_rate"] > 0.5
        assert report["fig13"]["points"] == 16
        assert "fig13_wall_vs_seed" in report["speedups"]
        assert "equilibrium_mixed_vs_seed" in report["speedups"]
        assert report["profile"]

        kinds = [json.loads(line)["event"]
                 for line in telemetry.read_text().splitlines()]
        assert kinds.count("snapshot_cache") == 2
        assert kinds.count("equilibrium_warm") == 2
        assert "profile" in kinds

    def test_check_failure_exits_4(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        # An impossible gate: no machine reaches 1e12 events/sec.
        baseline.write_text(json.dumps(
            {"schema": 1, "current": {"engine_events_per_sec": 1e12}}
        ))
        assert main([
            "perfbench", "--quick", "--output", "-",
            "--baseline", str(baseline), "--check",
        ]) == 4
        captured = capsys.readouterr()
        assert "regressed" in captured.err
        json.loads(captured.out)  # "-" streams the raw report JSON

    def test_floor_failure_exits_4(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        # Passing current gate, impossible floor: isolates the
        # schema-2 floors check.
        baseline.write_text(json.dumps({
            "schema": 2,
            "current": {"engine_events_per_sec": 1.0},
            "floors": {"equilibrium_mixed_solves_per_sec": 1e12},
        }))
        assert main([
            "perfbench", "--quick", "--output", str(tmp_path / "b.json"),
            "--baseline", str(baseline), "--check",
        ]) == 4
        assert "below floor" in capsys.readouterr().err

    def test_unknown_floor_metric_fails(self, capsys, tmp_path):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "schema": 2,
            "current": {"engine_events_per_sec": 1.0},
            "floors": {"no_such_metric": 1.0},
        }))
        assert main([
            "perfbench", "--quick", "--output", str(tmp_path / "b.json"),
            "--baseline", str(baseline), "--check",
        ]) == 4
        assert "unknown metric" in capsys.readouterr().err

    def test_missing_baseline_check_fails(self, capsys, tmp_path):
        assert main([
            "perfbench", "--quick", "--output", str(tmp_path / "b.json"),
            "--baseline", str(tmp_path / "absent.json"), "--check",
        ]) == 4
        assert "no baseline" in capsys.readouterr().err
