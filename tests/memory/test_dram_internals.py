"""Tests of the DRAM controller's internal mechanisms."""

import pytest

from repro.memory.dram import AddressMapper, DramSimulator
from repro.memory.timing import DDR3_1066


class TestBankHashing:
    def test_power_of_two_regions_spread_across_banks(self):
        # Distinct stream buffers start at power-of-two offsets; a
        # plain modulo mapping would pin them all to bank 0.  The
        # hashed mapping must spread them.
        simulator = DramSimulator()
        mapper = simulator.mapper
        region_lines = simulator.stream_region_bytes // 64
        banks = {
            mapper.decode(s * region_lines * 64).bank for s in range(8)
        }
        assert len(banks) >= 4

    def test_hashing_preserves_row_runs(self):
        # Within one row's worth of lines the bank must not change
        # (otherwise sequential streams would lose row locality).
        mapper = AddressMapper(timing=DDR3_1066, channels=1)
        lines_per_row = DDR3_1066.row_bytes // 64
        banks = {mapper.decode(i * 64).bank for i in range(lines_per_row)}
        assert len(banks) == 1


class TestFrFcfs:
    def test_row_hits_dominate_for_sequential_streams(self):
        stats = DramSimulator().run(streams=4, requests_per_stream=512)
        assert stats.row_hit_rate > 0.9

    def test_age_cap_prevents_starvation(self):
        # Under pure hit-first scheduling one stream could monopolise
        # its open row for an entire row's worth of requests; the age
        # cap bounds every request's sojourn.
        stats = DramSimulator().run(streams=8, requests_per_stream=512)
        threshold = 32 * DDR3_1066.row_conflict_latency
        # Max latency stays within the cap plus one full service round
        # of the 8 competing streams.
        bound = threshold + 8 * DDR3_1066.row_conflict_latency
        assert stats.max_latency < bound

    def test_more_streams_do_not_reduce_total_bandwidth(self):
        one = DramSimulator().run(streams=1, requests_per_stream=512)
        eight = DramSimulator().run(streams=8, requests_per_stream=512)
        assert (
            eight.bandwidth_bytes_per_second
            >= one.bandwidth_bytes_per_second * 0.9
        )

    def test_deterministic(self):
        a = DramSimulator().run(streams=3, requests_per_stream=128)
        b = DramSimulator().run(streams=3, requests_per_stream=128)
        assert a.mean_latency == b.mean_latency
        assert a.total_time == b.total_time
