"""Unit and property tests for the LLC capacity model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.memory.cache import LastLevelCache
from repro.units import mebibytes


def i7_llc() -> LastLevelCache:
    """The paper's 8 MB LLC shared by four cores."""
    return LastLevelCache(capacity_bytes=mebibytes(8), sharers=4)


class TestValidation:
    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigurationError):
            LastLevelCache(capacity_bytes=0, sharers=4)

    def test_rejects_non_positive_sharers(self):
        with pytest.raises(ConfigurationError):
            LastLevelCache(capacity_bytes=mebibytes(8), sharers=0)

    def test_rejects_negative_overhead(self):
        with pytest.raises(ConfigurationError):
            LastLevelCache(capacity_bytes=mebibytes(8), sharers=4, overhead_bytes=-1)

    def test_rejects_negative_footprint_queries(self):
        cache = i7_llc()
        with pytest.raises(ConfigurationError):
            cache.fits(-1)
        with pytest.raises(ConfigurationError):
            cache.miss_fraction(-1)


class TestPaperFootprints:
    """The three footprints of Figure 13: 0.5 and 1 MB fit, 2 MB spills."""

    def test_half_megabyte_fits(self):
        assert i7_llc().fits(mebibytes(0.5))
        assert i7_llc().miss_fraction(mebibytes(0.5)) == 0.0

    def test_one_megabyte_fits(self):
        assert i7_llc().fits(mebibytes(1))
        assert i7_llc().miss_fraction(mebibytes(1)) == 0.0

    def test_two_megabytes_spill(self):
        # 8 MB / 4 cores - 0.25 MB overhead = 1.75 MB share < 2 MB.
        cache = i7_llc()
        assert not cache.fits(mebibytes(2))
        fraction = cache.miss_fraction(mebibytes(2))
        assert fraction == pytest.approx(0.125)

    def test_per_core_share(self):
        assert i7_llc().per_core_share_bytes == mebibytes(1.75)


class TestMissFractionShape:
    def test_zero_footprint_never_misses(self):
        assert i7_llc().miss_fraction(0) == 0.0

    def test_share_floor_at_zero_when_overhead_dominates(self):
        cache = LastLevelCache(
            capacity_bytes=mebibytes(1), sharers=8, overhead_bytes=mebibytes(1)
        )
        assert cache.per_core_share_bytes == 0
        assert cache.miss_fraction(mebibytes(1)) == 1.0

    @given(footprint=st.integers(min_value=0, max_value=mebibytes(64)))
    def test_property_fraction_bounded(self, footprint):
        fraction = i7_llc().miss_fraction(footprint)
        assert 0.0 <= fraction <= 1.0

    @given(
        f1=st.integers(min_value=0, max_value=mebibytes(64)),
        f2=st.integers(min_value=0, max_value=mebibytes(64)),
    )
    def test_property_fraction_monotone_in_footprint(self, f1, f2):
        cache = i7_llc()
        low, high = min(f1, f2), max(f1, f2)
        assert cache.miss_fraction(low) <= cache.miss_fraction(high)

    @given(footprint=st.integers(min_value=1, max_value=mebibytes(64)))
    def test_property_fits_iff_zero_miss_fraction(self, footprint):
        cache = i7_llc()
        assert cache.fits(footprint) == (cache.miss_fraction(footprint) == 0.0)
