"""Tests for the bank-level DRAM simulator."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.dram import (
    AddressMapper,
    DramSimulator,
    measure_latency_curve,
)
from repro.memory.timing import DDR3_1066
from repro.units import CACHE_LINE_BYTES


class TestAddressMapper:
    def test_sequential_lines_share_a_row(self):
        mapper = AddressMapper(timing=DDR3_1066, channels=1)
        first = mapper.decode(0)
        second = mapper.decode(CACHE_LINE_BYTES)
        assert (first.bank, first.row) == (second.bank, second.row)

    def test_row_crossing_changes_bank(self):
        mapper = AddressMapper(timing=DDR3_1066, channels=1)
        lines_per_row = DDR3_1066.row_bytes // CACHE_LINE_BYTES
        last_in_row = mapper.decode((lines_per_row - 1) * CACHE_LINE_BYTES)
        first_of_next = mapper.decode(lines_per_row * CACHE_LINE_BYTES)
        assert first_of_next.bank != last_in_row.bank

    def test_channel_interleave_at_line_granularity(self):
        mapper = AddressMapper(timing=DDR3_1066, channels=2)
        assert mapper.decode(0).channel == 0
        assert mapper.decode(CACHE_LINE_BYTES).channel == 1
        assert mapper.decode(2 * CACHE_LINE_BYTES).channel == 0

    def test_rejects_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            AddressMapper(timing=DDR3_1066, channels=0)
        mapper = AddressMapper(timing=DDR3_1066, channels=1)
        with pytest.raises(ConfigurationError):
            mapper.decode(-1)


class TestDramSimulator:
    def test_rejects_invalid_construction(self):
        with pytest.raises(ConfigurationError):
            DramSimulator(channels=0)
        with pytest.raises(ConfigurationError):
            DramSimulator(stream_region_bytes=8)

    def test_rejects_invalid_run_parameters(self):
        simulator = DramSimulator()
        with pytest.raises(ConfigurationError):
            simulator.run(streams=0, requests_per_stream=16)
        with pytest.raises(ConfigurationError):
            simulator.run(streams=1, requests_per_stream=0)

    def test_single_stream_latency_is_near_row_hit_time(self):
        stats = DramSimulator().run(streams=1, requests_per_stream=512)
        # A lone sequential stream is almost all row hits.
        assert stats.row_hit_rate > 0.95
        assert stats.mean_latency < 2 * DDR3_1066.row_conflict_latency

    def test_latency_grows_with_concurrency(self):
        curve = measure_latency_curve([1, 2, 4, 8], requests_per_stream=256)
        latencies = [curve[c].mean_latency for c in (1, 2, 4, 8)]
        assert latencies == sorted(latencies)
        assert latencies[-1] > latencies[0]

    def test_latency_growth_is_roughly_linear(self):
        """The paper's core assumption: queueing delay ~ concurrency.

        Fit L(c) = a + b*c over c in 1..8 and require the residuals to
        be small relative to the latency spread.
        """
        concurrencies = [1, 2, 3, 4, 5, 6, 7, 8]
        curve = measure_latency_curve(concurrencies, requests_per_stream=512)
        xs = concurrencies
        ys = [curve[c].mean_latency for c in xs]
        n = len(xs)
        mean_x = sum(xs) / n
        mean_y = sum(ys) / n
        slope = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys)) / sum(
            (x - mean_x) ** 2 for x in xs
        )
        intercept = mean_y - slope * mean_x
        residual = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
        total = sum((y - mean_y) ** 2 for y in ys)
        r_squared = 1 - residual / total
        assert slope > 0
        assert r_squared > 0.95

    def test_second_channel_relieves_contention(self):
        single = DramSimulator(channels=1).run(streams=4, requests_per_stream=256)
        dual = DramSimulator(channels=2).run(streams=4, requests_per_stream=256)
        assert dual.mean_latency < single.mean_latency

    def test_bandwidth_bounded_by_pin_bandwidth(self):
        stats = DramSimulator().run(streams=8, requests_per_stream=256)
        # One 64 B burst per t_burst cycles is the channel's ceiling.
        peak = CACHE_LINE_BYTES / DDR3_1066.cycles(DDR3_1066.t_burst)
        assert 0 < stats.bandwidth_bytes_per_second <= peak * 1.001

    def test_all_requests_complete(self):
        stats = DramSimulator().run(streams=3, requests_per_stream=100)
        assert stats.requests == 300
        assert stats.total_time > 0
        assert stats.max_latency >= stats.mean_latency
