"""Tests for the effective-concurrency fixed-point solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.memory.contention import LinearContentionModel
from repro.memory.equilibrium import MemoryDemand, effective_concurrency
from repro.units import NANOSECONDS


def pure_memory() -> MemoryDemand:
    return MemoryDemand(cpu_seconds_per_unit=0.0, requests_per_unit=1.0)


def pure_compute() -> MemoryDemand:
    return MemoryDemand(cpu_seconds_per_unit=1e-9, requests_per_unit=0.0)


def linear_latency(c: float) -> float:
    return LinearContentionModel(46.3 * NANOSECONDS, 18 * NANOSECONDS).request_latency(c)


class TestMemoryDemand:
    def test_rejects_negative_parameters(self):
        with pytest.raises(ModelError):
            MemoryDemand(cpu_seconds_per_unit=-1.0, requests_per_unit=0.0)
        with pytest.raises(ModelError):
            MemoryDemand(cpu_seconds_per_unit=0.0, requests_per_unit=-1.0)

    def test_pure_memory_weight_is_one(self):
        assert pure_memory().memory_weight(64e-9) == 1.0

    def test_pure_compute_weight_is_zero(self):
        assert pure_compute().memory_weight(64e-9) == 0.0

    def test_degenerate_zero_demand_weight_is_zero(self):
        demand = MemoryDemand(cpu_seconds_per_unit=0.0, requests_per_unit=0.0)
        assert demand.memory_weight(64e-9) == 0.0

    def test_mixed_weight_is_waiting_fraction(self):
        demand = MemoryDemand(cpu_seconds_per_unit=64e-9, requests_per_unit=1.0)
        assert demand.memory_weight(64e-9) == pytest.approx(0.5)


class TestEffectiveConcurrency:
    def test_no_tasks_gives_zero(self):
        assert effective_concurrency([], linear_latency) == 0.0

    def test_compute_only_population_gives_zero(self):
        demands = [pure_compute() for _ in range(8)]
        assert effective_concurrency(demands, linear_latency) == 0.0

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
    def test_pure_memory_population_recovers_paper_model(self, k):
        # k pure memory tasks must yield exactly concurrency k, which
        # makes T_mk = requests * L(k) — the paper's assumption.
        demands = [pure_memory() for _ in range(k)]
        assert effective_concurrency(demands, linear_latency) == pytest.approx(k)

    def test_compute_tasks_do_not_perturb_memory_tasks(self):
        demands = [pure_memory(), pure_memory(), pure_compute(), pure_compute()]
        assert effective_concurrency(demands, linear_latency) == pytest.approx(2.0)

    def test_partial_miss_tasks_contribute_fractionally(self):
        # One pure memory task plus one compute task that waits on
        # memory about half the time: concurrency strictly in (1, 2).
        latency_at_2 = linear_latency(2.0)
        mixed = MemoryDemand(
            cpu_seconds_per_unit=latency_at_2, requests_per_unit=1.0
        )
        c = effective_concurrency([pure_memory(), mixed], linear_latency)
        assert 1.0 < c < 2.0

    def test_fixed_point_is_self_consistent(self):
        demands = [
            pure_memory(),
            MemoryDemand(cpu_seconds_per_unit=30e-9, requests_per_unit=0.5),
            MemoryDemand(cpu_seconds_per_unit=100e-9, requests_per_unit=0.1),
        ]
        c = effective_concurrency(demands, linear_latency)
        latency = linear_latency(c)
        reconstructed = sum(d.memory_weight(latency) for d in demands)
        assert reconstructed == pytest.approx(c, abs=1e-6)

    def test_raises_on_non_positive_latency(self):
        with pytest.raises(ModelError):
            effective_concurrency([pure_memory()], lambda c: 0.0)

    @settings(max_examples=60)
    @given(
        cpu=st.lists(
            st.floats(min_value=0.0, max_value=1e-6), min_size=1, max_size=12
        ),
        requests=st.lists(
            st.floats(min_value=0.0, max_value=4.0), min_size=1, max_size=12
        ),
    )
    def test_property_result_bounded_by_population(self, cpu, requests):
        demands = [
            MemoryDemand(cpu_seconds_per_unit=a, requests_per_unit=m)
            for a, m in zip(cpu, requests)
        ]
        c = effective_concurrency(demands, linear_latency)
        memory_tasks = sum(1 for d in demands if d.requests_per_unit > 0)
        assert 0.0 <= c <= memory_tasks + 1e-9

    @settings(max_examples=60)
    @given(
        extra=st.integers(min_value=0, max_value=6),
        base=st.integers(min_value=1, max_value=6),
    )
    def test_property_adding_memory_tasks_never_reduces_concurrency(
        self, extra, base
    ):
        small = [pure_memory() for _ in range(base)]
        large = small + [pure_memory() for _ in range(extra)]
        c_small = effective_concurrency(small, linear_latency)
        c_large = effective_concurrency(large, linear_latency)
        assert c_large >= c_small - 1e-9
