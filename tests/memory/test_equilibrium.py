"""Tests for the effective-concurrency fixed-point solver."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ModelError
from repro.memory.contention import LinearContentionModel
from repro.memory.equilibrium import (
    EquilibriumSolver,
    MemoryDemand,
    demand_signature,
    effective_concurrency,
)
from repro.units import NANOSECONDS


def pure_memory() -> MemoryDemand:
    return MemoryDemand(cpu_seconds_per_unit=0.0, requests_per_unit=1.0)


def pure_compute() -> MemoryDemand:
    return MemoryDemand(cpu_seconds_per_unit=1e-9, requests_per_unit=0.0)


def linear_latency(c: float) -> float:
    return LinearContentionModel(46.3 * NANOSECONDS, 18 * NANOSECONDS).request_latency(c)


class TestMemoryDemand:
    def test_rejects_negative_parameters(self):
        with pytest.raises(ModelError):
            MemoryDemand(cpu_seconds_per_unit=-1.0, requests_per_unit=0.0)
        with pytest.raises(ModelError):
            MemoryDemand(cpu_seconds_per_unit=0.0, requests_per_unit=-1.0)

    def test_pure_memory_weight_is_one(self):
        assert pure_memory().memory_weight(64e-9) == 1.0

    def test_pure_compute_weight_is_zero(self):
        assert pure_compute().memory_weight(64e-9) == 0.0

    def test_degenerate_zero_demand_weight_is_zero(self):
        demand = MemoryDemand(cpu_seconds_per_unit=0.0, requests_per_unit=0.0)
        assert demand.memory_weight(64e-9) == 0.0

    def test_mixed_weight_is_waiting_fraction(self):
        demand = MemoryDemand(cpu_seconds_per_unit=64e-9, requests_per_unit=1.0)
        assert demand.memory_weight(64e-9) == pytest.approx(0.5)


class TestEffectiveConcurrency:
    def test_no_tasks_gives_zero(self):
        assert effective_concurrency([], linear_latency) == 0.0

    def test_compute_only_population_gives_zero(self):
        demands = [pure_compute() for _ in range(8)]
        assert effective_concurrency(demands, linear_latency) == 0.0

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 8])
    def test_pure_memory_population_recovers_paper_model(self, k):
        # k pure memory tasks must yield exactly concurrency k, which
        # makes T_mk = requests * L(k) — the paper's assumption.
        demands = [pure_memory() for _ in range(k)]
        assert effective_concurrency(demands, linear_latency) == pytest.approx(k)

    def test_compute_tasks_do_not_perturb_memory_tasks(self):
        demands = [pure_memory(), pure_memory(), pure_compute(), pure_compute()]
        assert effective_concurrency(demands, linear_latency) == pytest.approx(2.0)

    def test_partial_miss_tasks_contribute_fractionally(self):
        # One pure memory task plus one compute task that waits on
        # memory about half the time: concurrency strictly in (1, 2).
        latency_at_2 = linear_latency(2.0)
        mixed = MemoryDemand(
            cpu_seconds_per_unit=latency_at_2, requests_per_unit=1.0
        )
        c = effective_concurrency([pure_memory(), mixed], linear_latency)
        assert 1.0 < c < 2.0

    def test_fixed_point_is_self_consistent(self):
        demands = [
            pure_memory(),
            MemoryDemand(cpu_seconds_per_unit=30e-9, requests_per_unit=0.5),
            MemoryDemand(cpu_seconds_per_unit=100e-9, requests_per_unit=0.1),
        ]
        c = effective_concurrency(demands, linear_latency)
        latency = linear_latency(c)
        reconstructed = sum(d.memory_weight(latency) for d in demands)
        assert reconstructed == pytest.approx(c, abs=1e-6)

    def test_raises_on_non_positive_latency(self):
        with pytest.raises(ModelError):
            effective_concurrency([pure_memory()], lambda c: 0.0)

    @settings(max_examples=60)
    @given(
        cpu=st.lists(
            st.floats(min_value=0.0, max_value=1e-6), min_size=1, max_size=12
        ),
        requests=st.lists(
            st.floats(min_value=0.0, max_value=4.0), min_size=1, max_size=12
        ),
    )
    def test_property_result_bounded_by_population(self, cpu, requests):
        demands = [
            MemoryDemand(cpu_seconds_per_unit=a, requests_per_unit=m)
            for a, m in zip(cpu, requests)
        ]
        c = effective_concurrency(demands, linear_latency)
        memory_tasks = sum(1 for d in demands if d.requests_per_unit > 0)
        assert 0.0 <= c <= memory_tasks + 1e-9

    @settings(max_examples=60)
    @given(
        extra=st.integers(min_value=0, max_value=6),
        base=st.integers(min_value=1, max_value=6),
    )
    def test_property_adding_memory_tasks_never_reduces_concurrency(
        self, extra, base
    ):
        small = [pure_memory() for _ in range(base)]
        large = small + [pure_memory() for _ in range(extra)]
        c_small = effective_concurrency(small, linear_latency)
        c_large = effective_concurrency(large, linear_latency)
        assert c_large >= c_small - 1e-9


demand_lists = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e-6),
        st.floats(min_value=0.0, max_value=4.0),
    ).map(lambda t: MemoryDemand(cpu_seconds_per_unit=t[0], requests_per_unit=t[1])),
    max_size=12,
)


class TestFastPath:
    """The pure-population closed form must be indistinguishable from
    the damped iteration — exact equality, not approx."""

    @pytest.mark.parametrize("k", [0, 1, 2, 3, 4, 8, 64])
    def test_pure_population_exactly_matches_iterative(self, k):
        demands = [pure_memory() for _ in range(k)]
        fast = effective_concurrency(demands, linear_latency)
        slow = effective_concurrency(demands, linear_latency, fast_path=False)
        assert fast == slow  # bit-identical, both float(k)

    def test_pure_population_with_compute_exactly_matches_iterative(self):
        demands = [pure_memory(), pure_compute(), pure_memory(), pure_compute()]
        fast = effective_concurrency(demands, linear_latency)
        slow = effective_concurrency(demands, linear_latency, fast_path=False)
        assert fast == slow == 2.0

    @settings(max_examples=80)
    @given(demands=demand_lists)
    def test_property_fast_path_never_changes_the_result(self, demands):
        fast = effective_concurrency(demands, linear_latency)
        slow = effective_concurrency(demands, linear_latency, fast_path=False)
        assert fast == slow

    def test_denormal_demand_matches_iterative(self):
        # Regression: ``requests_per_unit`` so small that ``m * L``
        # underflows to 0.0 makes the iteration see w_i = 0, so the
        # "every w_i is 1" closed form does not apply; the fast path
        # must detect the underflow and fall through (found by the
        # property test above at ``5e-324``).
        demands = [MemoryDemand(0.0, 5e-324), pure_memory()]
        fast = effective_concurrency(demands, linear_latency)
        slow = effective_concurrency(demands, linear_latency, fast_path=False)
        assert fast == slow

    def test_fast_path_still_validates_latency(self):
        # The closed form must preserve the iterative path's error
        # behaviour: a non-positive latency raises even when the answer
        # would not need the latency at all.
        with pytest.raises(ModelError):
            effective_concurrency([pure_memory()], lambda c: 0.0)


class TestDemandSignature:
    def test_equal_sequences_share_a_signature(self):
        a = [pure_memory(), pure_compute()]
        b = [pure_memory(), pure_compute()]
        assert demand_signature(a) == demand_signature(b)

    def test_signature_preserves_order(self):
        # Float summation is not associative, so permutations of one
        # multiset must land in different memo slots.
        ab = [pure_memory(), pure_compute()]
        ba = [pure_compute(), pure_memory()]
        assert demand_signature(ab) != demand_signature(ba)

    def test_distinct_demands_never_collide(self):
        base = [MemoryDemand(cpu_seconds_per_unit=1e-9, requests_per_unit=1.0)]
        tweaked = [MemoryDemand(cpu_seconds_per_unit=1e-9, requests_per_unit=1.0 + 1e-15)]
        assert demand_signature(base) != demand_signature(tweaked)

    def test_empty_population_has_empty_signature(self):
        assert demand_signature([]) == b""


class TestEquilibriumSolver:
    def test_hit_returns_exactly_the_cold_solution(self):
        solver = EquilibriumSolver(linear_latency)
        demands = [
            pure_memory(),
            MemoryDemand(cpu_seconds_per_unit=30e-9, requests_per_unit=0.5),
        ]
        cold_c = effective_concurrency(demands, linear_latency)
        cold_latency = linear_latency(cold_c if cold_c > 1.0 else 1.0)
        first = solver.solve(demands)
        hit = solver.solve(demands)
        assert first == hit == (cold_c, cold_latency)
        assert (solver.hits, solver.misses) == (1, 1)

    def test_empty_population_charges_unloaded_latency(self):
        solver = EquilibriumSolver(linear_latency)
        assert solver.solve([]) == (0.0, linear_latency(1.0))

    def test_precomputed_key_matches_derived_key(self):
        solver = EquilibriumSolver(linear_latency)
        demands = [pure_memory(), pure_memory()]
        derived = solver.solve(demands)
        keyed = solver.solve(demands, key=demand_signature(demands))
        assert keyed == derived
        assert solver.hits == 1

    def test_overflow_clears_but_results_stay_exact(self):
        solver = EquilibriumSolver(linear_latency, max_entries=2)
        for k in (1, 2, 3, 4):
            demands = [pure_memory() for _ in range(k)]
            c, latency = solver.solve(demands)
            assert c == effective_concurrency(demands, linear_latency)
            assert latency == linear_latency(max(c, 1.0))
            assert len(solver) <= 2

    def test_rejects_non_positive_max_entries(self):
        with pytest.raises(ModelError):
            EquilibriumSolver(linear_latency, max_entries=0)


class TestWarmStart:
    """Warm-started solves: exact canonical-projection reuse."""

    def population(self, cpu: float):
        """Mixed population: fixed memory half, variable pure-CPU half.

        Every ``cpu`` value yields a distinct full memo key; the
        memory-demand projection — all that the fixed point depends
        on — is identical across them.
        """
        return [
            pure_memory(),
            MemoryDemand(cpu_seconds_per_unit=30e-9, requests_per_unit=0.5),
            MemoryDemand(cpu_seconds_per_unit=cpu, requests_per_unit=0.0),
        ]

    def test_warm_solve_is_float_for_float_identical_to_cold(self):
        warm_solver = EquilibriumSolver(linear_latency)
        warm_solver.solve(self.population(1e-9))  # cold; fills canonical
        warmed = warm_solver.solve(self.population(2e-9))  # warm start

        cold_solver = EquilibriumSolver(linear_latency)
        cold = cold_solver.solve(self.population(2e-9))

        # Bit-identity, not approx: a warm hit is a zero-distance
        # reuse, the only distance at which reuse cannot perturb the
        # engine's golden artifacts.
        assert warmed == cold
        assert warm_solver.warm_hits == 1
        assert cold_solver.warm_hits == 0

    def test_counters_and_cache_info(self):
        solver = EquilibriumSolver(linear_latency)
        stream = [self.population(cpu * 1e-9) for cpu in (1, 2, 3, 4)]
        for demands in stream:
            solver.solve(demands)
        info = solver.cache_info()
        assert info["misses"] == 4
        assert info["cold_solves"] == 1
        assert info["warm_hits"] == 3
        assert info["warm_entries"] == 1
        assert info["entries"] == 4
        # Each canonical entry remembers its cold solve's iteration
        # count; three warm hits saved exactly three times that.
        assert info["iterations_saved"] % 3 == 0
        assert info["iterations_saved"] > 0
        # Re-solving a seen population is a plain memo hit, never a
        # second warm start.
        solver.solve(stream[0])
        assert solver.cache_info()["warm_hits"] == 3
        assert solver.cache_info()["hits"] == 1

    def test_different_memory_projection_solves_cold(self):
        solver = EquilibriumSolver(linear_latency)
        solver.solve(self.population(1e-9))
        solver.solve([pure_memory(), pure_memory()])  # different projection
        info = solver.cache_info()
        assert info["cold_solves"] == 2
        assert info["warm_hits"] == 0
        assert info["warm_entries"] == 2
