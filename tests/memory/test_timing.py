"""Unit tests for DRAM timing presets and validation."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.timing import DDR3_1066, DDR3_1333, DramTiming
from repro.units import NANOSECONDS


class TestDramTimingValidation:
    def test_rejects_non_positive_clock(self):
        with pytest.raises(ConfigurationError):
            DramTiming(clock_period=0.0, t_cl=7, t_rcd=7, t_rp=7, t_ras=20, t_burst=4)

    @pytest.mark.parametrize("field", ["t_cl", "t_rcd", "t_rp", "t_ras", "t_burst"])
    def test_rejects_non_positive_cycle_counts(self, field):
        kwargs = dict(
            clock_period=1e-9, t_cl=7, t_rcd=7, t_rp=7, t_ras=20, t_burst=4
        )
        kwargs[field] = 0
        with pytest.raises(ConfigurationError):
            DramTiming(**kwargs)

    def test_rejects_non_positive_bank_counts(self):
        with pytest.raises(ConfigurationError):
            DramTiming(
                clock_period=1e-9,
                t_cl=7,
                t_rcd=7,
                t_rp=7,
                t_ras=20,
                t_burst=4,
                banks_per_rank=0,
            )

    def test_rejects_non_positive_row_bytes(self):
        with pytest.raises(ConfigurationError):
            DramTiming(
                clock_period=1e-9,
                t_cl=7,
                t_rcd=7,
                t_rp=7,
                t_ras=20,
                t_burst=4,
                row_bytes=0,
            )


class TestDerivedLatencies:
    def test_latency_ordering_hit_below_miss_below_conflict(self):
        for timing in (DDR3_1066, DDR3_1333):
            assert timing.row_hit_latency < timing.row_miss_latency
            assert timing.row_miss_latency < timing.row_conflict_latency

    def test_cycles_converts_through_clock_period(self):
        assert DDR3_1066.cycles(4) == pytest.approx(4 * 1.875 * NANOSECONDS)

    def test_ddr3_1066_row_hit_latency_matches_datasheet(self):
        # CL7 + 4-cycle burst at 1.875 ns/cycle.
        assert DDR3_1066.row_hit_latency == pytest.approx(11 * 1.875 * NANOSECONDS)

    def test_banks_per_channel_folds_ranks(self):
        assert DDR3_1066.banks_per_channel == 16

    def test_presets_are_frozen(self):
        with pytest.raises(AttributeError):
            DDR3_1066.t_cl = 9  # type: ignore[misc]
