"""Tests for the empirical (DRAM-sampled) contention model."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.contention import ContentionModel
from repro.memory.empirical import EmpiricalContentionModel


@pytest.fixture(scope="module")
def model():
    # Module-scoped: building the table runs the detailed DRAM
    # simulator once per concurrency and channel configuration.
    return EmpiricalContentionModel(
        max_concurrency=6, requests_per_stream=256, channels_measured=(1, 2)
    )


class TestConstruction:
    def test_satisfies_contention_protocol(self, model):
        assert isinstance(model, ContentionModel)

    def test_tables_are_monotone(self, model):
        for channels in model.measured_channels():
            table = model.table(channels)
            assert list(table) == sorted(table)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EmpiricalContentionModel(max_concurrency=1)
        with pytest.raises(ConfigurationError):
            EmpiricalContentionModel(channels_measured=())


class TestQueries:
    def test_integer_queries_hit_the_table(self, model):
        table = model.table(1)
        for c in range(1, 7):
            assert model.request_latency(float(c)) == pytest.approx(table[c - 1])

    def test_fractional_queries_interpolate(self, model):
        low = model.request_latency(2.0)
        high = model.request_latency(3.0)
        mid = model.request_latency(2.5)
        assert min(low, high) <= mid <= max(low, high)

    def test_below_one_clamps(self, model):
        assert model.request_latency(0.2) == model.request_latency(1.0)

    def test_beyond_table_extrapolates_upward(self, model):
        edge = model.request_latency(6.0)
        beyond = model.request_latency(9.0)
        assert beyond >= edge

    def test_monotone_in_concurrency(self, model):
        samples = [model.request_latency(c / 2) for c in range(2, 16)]
        assert samples == sorted(samples)

    def test_second_channel_is_faster_at_load(self, model):
        assert model.request_latency(6, channels=2) < model.request_latency(
            6, channels=1
        )

    def test_unmeasured_channel_count_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.request_latency(2, channels=4)

    def test_negative_concurrency_rejected(self, model):
        with pytest.raises(ConfigurationError):
            model.request_latency(-1.0)
