"""Tests for DRAM-to-contention-law calibration."""

import pytest

from repro.errors import ConfigurationError, ModelError
from repro.memory.calibration import calibrate_linear_model
from repro.memory.contention import LinearContentionModel
from repro.memory.timing import DDR3_1066, DDR3_1333


class TestCalibration:
    def test_returns_usable_linear_model(self):
        result = calibrate_linear_model(requests_per_stream=256)
        assert isinstance(result.model, LinearContentionModel)
        assert result.model.contention_free_latency > 0
        assert result.model.queueing_latency > 0

    def test_fit_quality_reported(self):
        result = calibrate_linear_model(requests_per_stream=256)
        assert result.r_squared > 0.90
        assert len(result.latencies) == len(result.concurrencies)

    def test_model_tracks_measured_curve(self):
        result = calibrate_linear_model(requests_per_stream=256)
        for c, latency in zip(result.concurrencies, result.latencies):
            predicted = result.model.request_latency(float(c))
            assert predicted == pytest.approx(latency, rel=0.35)

    def test_faster_grade_calibrates_lower_latency(self):
        slow = calibrate_linear_model(DDR3_1066, requests_per_stream=256)
        fast = calibrate_linear_model(DDR3_1333, requests_per_stream=256)
        assert (
            fast.model.request_latency(4) < slow.model.request_latency(4)
        )

    def test_requires_two_distinct_concurrencies(self):
        with pytest.raises(ConfigurationError):
            calibrate_linear_model(concurrencies=(4, 4))

    def test_rejects_non_linear_curves(self):
        # An impossible quality bar forces the rejection path.
        with pytest.raises(ModelError):
            calibrate_linear_model(
                requests_per_stream=256, min_r_squared=0.99999
            )
