"""Unit and property tests for the closed-form contention models."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.memory.contention import (
    BandwidthShareModel,
    ContentionModel,
    LinearContentionModel,
    PowerLawContentionModel,
    nehalem_ddr3_contention,
)
from repro.units import CACHE_LINE_BYTES, NANOSECONDS


class TestLinearContentionModel:
    def test_matches_paper_decomposition(self):
        # T_mb = T_ml + b * T_ql (Section IV-C of the paper).
        model = LinearContentionModel(
            contention_free_latency=50 * NANOSECONDS, queueing_latency=10 * NANOSECONDS
        )
        for b in range(1, 9):
            assert model.request_latency(b) == pytest.approx(
                (50 + 10 * b) * NANOSECONDS
            )

    def test_concurrency_below_one_clamps_to_one(self):
        model = LinearContentionModel(1e-8, 1e-9)
        assert model.request_latency(0.3) == model.request_latency(1.0)

    def test_channels_divide_queueing_term_only(self):
        model = LinearContentionModel(
            contention_free_latency=40 * NANOSECONDS, queueing_latency=20 * NANOSECONDS
        )
        single = model.request_latency(4, channels=1)
        dual = model.request_latency(4, channels=2)
        assert dual == pytest.approx((40 + 40) * NANOSECONDS)
        assert single == pytest.approx((40 + 80) * NANOSECONDS)
        assert dual < single

    def test_latency_ratio_is_relative_to_solo(self):
        model = LinearContentionModel(3e-8, 1e-8)
        assert model.latency_ratio(1) == pytest.approx(1.0)
        assert model.latency_ratio(4) == pytest.approx(7.0 / 4.0)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            LinearContentionModel(contention_free_latency=0, queueing_latency=1e-9)
        with pytest.raises(ConfigurationError):
            LinearContentionModel(contention_free_latency=1e-9, queueing_latency=-1.0)

    def test_rejects_invalid_query(self):
        model = LinearContentionModel(1e-8, 1e-9)
        with pytest.raises(ConfigurationError):
            model.request_latency(-1.0)
        with pytest.raises(ConfigurationError):
            model.request_latency(2.0, channels=0)

    def test_satisfies_protocol(self):
        assert isinstance(LinearContentionModel(1e-8, 1e-9), ContentionModel)

    @given(
        t_ml=st.floats(min_value=1e-10, max_value=1e-6),
        t_ql=st.floats(min_value=0.0, max_value=1e-6),
        c1=st.floats(min_value=1.0, max_value=64.0),
        c2=st.floats(min_value=1.0, max_value=64.0),
    )
    def test_property_latency_non_decreasing_in_concurrency(self, t_ml, t_ql, c1, c2):
        model = LinearContentionModel(t_ml, t_ql)
        low, high = min(c1, c2), max(c1, c2)
        assert model.request_latency(low) <= model.request_latency(high)

    @given(
        t_ml=st.floats(min_value=1e-10, max_value=1e-6),
        t_ql=st.floats(min_value=1e-10, max_value=1e-6),
        b=st.integers(min_value=1, max_value=32),
    )
    def test_property_selection_lemma_ratio(self, t_ml, t_ql, b):
        # The MTL-selection proof needs T_mb / T_m(b+1) > b / (b+1),
        # which holds for any positive T_ml (Section IV-C).
        model = LinearContentionModel(t_ml, t_ql)
        ratio = model.request_latency(b) / model.request_latency(b + 1)
        assert ratio > b / (b + 1)


class TestPowerLawContentionModel:
    def test_alpha_one_degenerates_to_linear(self):
        linear = LinearContentionModel(4e-8, 2e-8)
        power = PowerLawContentionModel(4e-8, 2e-8, alpha=1.0)
        for c in (1, 2, 3.5, 8):
            assert power.request_latency(c) == pytest.approx(
                linear.request_latency(c)
            )

    def test_superlinear_alpha_amplifies_contention(self):
        mild = PowerLawContentionModel(4e-8, 2e-8, alpha=1.0)
        harsh = PowerLawContentionModel(4e-8, 2e-8, alpha=1.5)
        assert harsh.request_latency(4) > mild.request_latency(4)
        assert harsh.request_latency(1) == pytest.approx(mild.request_latency(1))

    def test_rejects_non_positive_alpha(self):
        with pytest.raises(ConfigurationError):
            PowerLawContentionModel(4e-8, 2e-8, alpha=0.0)

    @given(
        alpha=st.floats(min_value=0.25, max_value=3.0),
        c1=st.floats(min_value=1.0, max_value=32.0),
        c2=st.floats(min_value=1.0, max_value=32.0),
    )
    def test_property_monotone_for_any_alpha(self, alpha, c1, c2):
        model = PowerLawContentionModel(4e-8, 2e-8, alpha=alpha)
        low, high = min(c1, c2), max(c1, c2)
        assert model.request_latency(low) <= model.request_latency(high)


class TestBandwidthShareModel:
    def test_flat_until_saturation(self):
        # 8.5 GB/s channel; one 64 B line at full rate takes ~7.5 ns, so
        # with a 60 ns unloaded latency the knee sits near c = 8.
        model = BandwidthShareModel(
            unloaded_latency=60 * NANOSECONDS, peak_bandwidth=8.5e9
        )
        assert model.request_latency(1) == pytest.approx(60 * NANOSECONDS)
        assert model.request_latency(4) == pytest.approx(60 * NANOSECONDS)

    def test_linear_growth_beyond_saturation(self):
        model = BandwidthShareModel(
            unloaded_latency=60 * NANOSECONDS, peak_bandwidth=8.5e9
        )
        c = 16
        expected = CACHE_LINE_BYTES * c / 8.5e9
        assert model.request_latency(c) == pytest.approx(expected)

    def test_channels_scale_the_knee(self):
        model = BandwidthShareModel(
            unloaded_latency=60 * NANOSECONDS, peak_bandwidth=8.5e9
        )
        assert model.request_latency(16, channels=2) < model.request_latency(
            16, channels=1
        )

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            BandwidthShareModel(unloaded_latency=0.0, peak_bandwidth=1e9)
        with pytest.raises(ConfigurationError):
            BandwidthShareModel(unloaded_latency=1e-8, peak_bandwidth=0.0)


class TestNehalemCalibration:
    def test_solo_latency_near_real_ddr3(self):
        model = nehalem_ddr3_contention()
        assert model.request_latency(1) == pytest.approx(64.3 * NANOSECONDS)

    def test_four_way_ratio_places_peak_speedup_at_1_21(self):
        # (L(4)/L(1) + 3) / 4 is the synthetic-sweep peak speedup in
        # region S-MTL=1; the paper measures up to 1.21x.
        model = nehalem_ddr3_contention()
        ratio = model.latency_ratio(4)
        assert ratio == pytest.approx(1.84, abs=0.01)
        assert (ratio + 3) / 4 == pytest.approx(1.21, abs=0.005)
