"""Tests for unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.units import (
    CACHE_LINE_BYTES,
    EVENTS,
    GIB,
    KIB,
    MIB,
    REQUESTS,
    UNIT_CONSTANTS,
    UNIT_PARAMS,
    UNIT_POLYMORPHIC,
    UNIT_RETURNS,
    UNIT_SUFFIXES,
    bytes_per_second,
    cache_lines,
    format_bytes,
    format_time,
    gibibytes,
    kibibytes,
    mebibytes,
    per_second,
    requests_per_second,
)


class TestSizes:
    def test_constants(self):
        assert KIB == 1024
        assert MIB == 1024 ** 2
        assert GIB == 1024 ** 3
        assert CACHE_LINE_BYTES == 64

    def test_constructors(self):
        assert kibibytes(2) == 2048
        assert mebibytes(0.5) == 524288
        assert gibibytes(1) == GIB

    def test_cache_lines_rounds_up(self):
        assert cache_lines(0) == 0
        assert cache_lines(1) == 1
        assert cache_lines(64) == 1
        assert cache_lines(65) == 2
        assert cache_lines(mebibytes(0.5)) == 8192

    def test_cache_lines_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            cache_lines(-1)

    @given(st.integers(min_value=0, max_value=GIB))
    def test_property_cache_lines_cover_footprint(self, footprint):
        lines = cache_lines(footprint)
        assert lines * CACHE_LINE_BYTES >= footprint
        assert (lines - 1) * CACHE_LINE_BYTES < footprint or lines == 0


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0 s"),
            (50e-9, "50.0 ns"),
            (3.2e-6, "3.2 us"),
            (1.5e-3, "1.50 ms"),
            (2.0, "2.000 s"),
        ],
    )
    def test_format_time(self, value, expected):
        assert format_time(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (512, "512 B"),
            (2048, "2.0 KiB"),
            (mebibytes(8), "8.0 MiB"),
            (gibibytes(2), "2.00 GiB"),
        ],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            format_bytes(-1)


class TestCountsAndRates:
    def test_count_constants_are_unit_factors(self):
        assert REQUESTS == 1
        assert EVENTS == 1

    def test_rate_constructors(self):
        assert bytes_per_second(mebibytes(1), 2.0) == mebibytes(1) / 2.0
        assert requests_per_second(300, 60.0) == 5.0
        assert per_second(42, 2.0) == 21.0

    @pytest.mark.parametrize("window", [0.0, -1.0])
    def test_rate_constructors_reject_nonpositive_windows(self, window):
        with pytest.raises(ConfigurationError):
            bytes_per_second(1024, window)
        with pytest.raises(ConfigurationError):
            requests_per_second(10, window)
        with pytest.raises(ConfigurationError):
            per_second(10, window)


class TestUnitMetadataTables:
    def test_count_constants_are_registered(self):
        assert UNIT_CONSTANTS["repro.units.REQUESTS"] == "requests"
        assert UNIT_CONSTANTS["repro.units.EVENTS"] == "events"

    def test_rate_returns_are_derived_dimensions(self):
        assert UNIT_RETURNS["repro.units.bytes_per_second"] == "bytes/seconds"
        assert (
            UNIT_RETURNS["repro.units.requests_per_second"]
            == "requests/seconds"
        )

    def test_unit_params_pin_the_helpers(self):
        assert UNIT_PARAMS["repro.units.format_bytes"] == {"n": "bytes"}
        assert UNIT_PARAMS["repro.units.format_time"] == {"seconds": "seconds"}
        assert UNIT_PARAMS["repro.units.cache_lines"] == {
            "footprint_bytes": "bytes"
        }

    def test_stream_memory_requests_are_cache_line_granular(self):
        # The stream layer's "memory requests" are one-per-64-byte-line,
        # so their declared dimension is cache_lines, not the
        # open-system arrival "requests" the suffix would assign.
        assert UNIT_PARAMS["repro.stream.task.memory_task"] == {
            "requests": "cache_lines"
        }
        assert UNIT_PARAMS["repro.stream.task.compute_task"] == {
            "spilled_requests": "cache_lines"
        }

    def test_per_second_is_polymorphic(self):
        assert "repro.units.per_second" in UNIT_POLYMORPHIC

    def test_rate_suffixes_match_the_algebra_rendering(self):
        assert UNIT_SUFFIXES["bytes_per_second"] == "bytes/seconds"
        assert UNIT_SUFFIXES["requests_per_second"] == "requests/seconds"
        assert UNIT_SUFFIXES["events_per_second"] == "events/seconds"
