"""Tests for unit helpers."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import ConfigurationError
from repro.units import (
    CACHE_LINE_BYTES,
    GIB,
    KIB,
    MIB,
    cache_lines,
    format_bytes,
    format_time,
    gibibytes,
    kibibytes,
    mebibytes,
)


class TestSizes:
    def test_constants(self):
        assert KIB == 1024
        assert MIB == 1024 ** 2
        assert GIB == 1024 ** 3
        assert CACHE_LINE_BYTES == 64

    def test_constructors(self):
        assert kibibytes(2) == 2048
        assert mebibytes(0.5) == 524288
        assert gibibytes(1) == GIB

    def test_cache_lines_rounds_up(self):
        assert cache_lines(0) == 0
        assert cache_lines(1) == 1
        assert cache_lines(64) == 1
        assert cache_lines(65) == 2
        assert cache_lines(mebibytes(0.5)) == 8192

    def test_cache_lines_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            cache_lines(-1)

    @given(st.integers(min_value=0, max_value=GIB))
    def test_property_cache_lines_cover_footprint(self, footprint):
        lines = cache_lines(footprint)
        assert lines * CACHE_LINE_BYTES >= footprint
        assert (lines - 1) * CACHE_LINE_BYTES < footprint or lines == 0


class TestFormatting:
    @pytest.mark.parametrize(
        "value,expected",
        [
            (0.0, "0 s"),
            (50e-9, "50.0 ns"),
            (3.2e-6, "3.2 us"),
            (1.5e-3, "1.50 ms"),
            (2.0, "2.000 s"),
        ],
    )
    def test_format_time(self, value, expected):
        assert format_time(value) == expected

    @pytest.mark.parametrize(
        "value,expected",
        [
            (512, "512 B"),
            (2048, "2.0 KiB"),
            (mebibytes(8), "8.0 MiB"),
            (gibibytes(2), "2.00 GiB"),
        ],
    )
    def test_format_bytes(self, value, expected):
        assert format_bytes(value) == expected

    def test_format_bytes_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            format_bytes(-1)
