"""Tests for the synthetic micro-benchmark (Figure 12)."""

import pytest

from repro.errors import WorkloadError
from repro.memory.cache import LastLevelCache
from repro.runtime.monitor import measure_ratio
from repro.units import mebibytes
from repro.workloads.synthetic import (
    SyntheticWorkload,
    ratio_sweep,
    synthetic_from_count,
    synthetic_from_ratio,
)


def i7_llc():
    return LastLevelCache(capacity_bytes=mebibytes(8), sharers=4)


class TestRatioConstruction:
    @pytest.mark.parametrize("ratio", [0.01, 0.33, 1.0, 4.0])
    def test_measured_ratio_matches_target(self, ratio):
        program = synthetic_from_ratio(ratio, pairs=16)
        assert measure_ratio(program) == pytest.approx(ratio, rel=1e-6)

    def test_name_encodes_parameters(self):
        workload = SyntheticWorkload(ratio=0.5, footprint_bytes=mebibytes(1))
        assert workload.name == "synthetic(r=0.50,1MB)"

    def test_footprint_sets_request_count(self):
        program = synthetic_from_ratio(1.0, footprint_bytes=mebibytes(1), pairs=4)
        memory = program.phases[0].pairs[0].memory
        assert memory.memory_requests == mebibytes(1) / 64

    def test_validation(self):
        with pytest.raises(WorkloadError):
            SyntheticWorkload(ratio=0.0)
        with pytest.raises(WorkloadError):
            SyntheticWorkload(ratio=1.0, footprint_bytes=0)
        with pytest.raises(WorkloadError):
            SyntheticWorkload(ratio=1.0, pairs=0)


class TestFootprintSpill:
    def test_small_footprints_never_spill(self):
        for footprint in (mebibytes(0.5), mebibytes(1)):
            program = synthetic_from_ratio(
                1.0, footprint_bytes=footprint, pairs=4, cache=i7_llc()
            )
            compute = program.phases[0].pairs[0].compute
            assert compute.memory_requests == 0.0

    def test_two_megabyte_footprint_spills(self):
        # The Figure 13(c) regime: compute tasks go off-chip.
        program = synthetic_from_ratio(
            1.0, footprint_bytes=mebibytes(2), pairs=4, cache=i7_llc()
        )
        compute = program.phases[0].pairs[0].compute
        assert compute.memory_requests > 0

    def test_no_cache_model_means_no_spill(self):
        program = synthetic_from_ratio(1.0, footprint_bytes=mebibytes(2), pairs=4)
        assert program.phases[0].pairs[0].compute.memory_requests == 0.0


class TestCountConstruction:
    def test_larger_count_means_smaller_ratio(self):
        low = measure_ratio(synthetic_from_count(2, pairs=8))
        high = measure_ratio(synthetic_from_count(20, pairs=8))
        assert high < low

    def test_count_validation(self):
        with pytest.raises(WorkloadError):
            synthetic_from_count(0)
        with pytest.raises(WorkloadError):
            synthetic_from_count(1, footprint_bytes=0)


class TestRatioSweep:
    def test_paper_sweep_has_400_points(self):
        sweep = ratio_sweep(0.01, 4.00, 0.01)
        assert len(sweep) == 400
        assert sweep[0].ratio == pytest.approx(0.01)
        assert sweep[-1].ratio == pytest.approx(4.00)

    def test_custom_sweep_spacing(self):
        sweep = ratio_sweep(0.1, 0.5, 0.1)
        assert [w.ratio for w in sweep] == pytest.approx([0.1, 0.2, 0.3, 0.4, 0.5])

    def test_sweep_validation(self):
        with pytest.raises(WorkloadError):
            ratio_sweep(0.1, 0.5, 0.0)
        with pytest.raises(WorkloadError):
            ratio_sweep(0.5, 0.1, 0.1)
