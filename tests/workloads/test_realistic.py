"""Tests for the dft, streamcluster, and SIFT trace workloads."""

import pytest

from repro.errors import WorkloadError
from repro.runtime.monitor import measure_phase_ratios, measure_ratio
from repro.workloads.dft import DFT_PAIRS, DFT_RATIO, dft
from repro.workloads.registry import (
    build_workload,
    realistic_workloads,
    workload_names,
)
from repro.workloads.sift import (
    SIFT_FUNCTION_RATIOS,
    SiftWorkload,
    sift,
    sift_function,
)
from repro.workloads.streamcluster import (
    STREAMCLUSTER_RATIOS,
    StreamclusterWorkload,
    streamcluster,
)


class TestDft:
    def test_reproduces_table2_ratio(self):
        assert measure_ratio(dft()) == pytest.approx(DFT_RATIO, rel=1e-4)

    def test_has_96_pairs(self):
        # Section VI-C: "the dft kernel has only 96 parallel
        # memory-compute task pairs".
        assert dft().total_pairs == DFT_PAIRS

    def test_single_phase(self):
        assert len(dft().phases) == 1


class TestStreamcluster:
    @pytest.mark.parametrize("dimension", sorted(STREAMCLUSTER_RATIOS))
    def test_reproduces_table2_ratio(self, dimension):
        program = StreamclusterWorkload(
            dimension=dimension, rounds=1, pairs_per_round=16
        ).build()
        assert measure_ratio(program) == pytest.approx(
            STREAMCLUSTER_RATIOS[dimension], rel=1e-4
        )

    def test_native_input_is_d128(self):
        assert streamcluster().name == "SC_d128"

    def test_multiple_rounds_share_the_ratio(self):
        program = StreamclusterWorkload(rounds=3, pairs_per_round=8).build()
        ratios = measure_phase_ratios(program)
        assert len(ratios) == 3
        values = list(ratios.values())
        assert max(values) == pytest.approx(min(values), rel=0.05)

    def test_unknown_dimension_rejected(self):
        with pytest.raises(WorkloadError):
            streamcluster(dimension=99)

    def test_parameter_validation(self):
        with pytest.raises(WorkloadError):
            StreamclusterWorkload(rounds=0)
        with pytest.raises(WorkloadError):
            StreamclusterWorkload(pairs_per_round=0)


class TestSift:
    def test_fourteen_phases_in_pipeline_order(self):
        program = sift()
        assert [p.name for p in program.phases] == list(SIFT_FUNCTION_RATIOS)

    def test_reproduces_table3_ratios(self):
        # Shrink pair counts to keep the measurement fast.
        program = SiftWorkload(pair_scale=0.1).build()
        measured = measure_phase_ratios(program)
        for function, expected in SIFT_FUNCTION_RATIOS.items():
            assert measured[function] == pytest.approx(expected, rel=1e-4), function

    def test_single_function_program(self):
        program = sift_function("ECONVOLVE", pairs=8)
        assert program.name == "SIFT.ECONVOLVE"
        assert measure_ratio(program) == pytest.approx(0.7004, rel=1e-4)

    def test_unknown_function_rejected(self):
        with pytest.raises(WorkloadError):
            sift_function("GHOST")

    def test_bad_pair_counts_rejected(self):
        with pytest.raises(WorkloadError):
            sift_function("DOG", pairs=0)
        with pytest.raises(WorkloadError):
            SiftWorkload(pair_scale=0.0)


class TestRegistry:
    def test_contains_all_paper_workloads(self):
        names = workload_names()
        assert "dft" in names
        assert "SIFT" in names
        for dim in STREAMCLUSTER_RATIOS:
            assert f"SC_d{dim}" in names

    def test_build_by_name(self):
        assert build_workload("dft").name == "dft"
        assert build_workload("SC_d36").name == "SC_d36"

    def test_unknown_name_rejected(self):
        with pytest.raises(WorkloadError):
            build_workload("ghost")

    def test_realistic_trio_matches_figure_14(self):
        assert realistic_workloads() == ["dft", "SC_d128", "SIFT"]
