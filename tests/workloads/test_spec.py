"""Tests for JSON workload specs."""

import json

import pytest

from repro.errors import WorkloadError
from repro.runtime.monitor import measure_phase_ratios
from repro.workloads.spec import load_workload_spec, parse_workload_spec


def valid_spec():
    return {
        "name": "custom",
        "phases": [
            {"name": "ingest", "pairs": 8, "ratio": 0.55},
            {"name": "emit", "pairs": 4, "requests": 8192,
             "compute_seconds": 0.0012},
        ],
    }


class TestParse:
    def test_builds_phased_program(self):
        program = parse_workload_spec(valid_spec())
        assert program.name == "custom"
        assert [p.name for p in program.phases] == ["ingest", "emit"]
        assert program.total_pairs == 12

    def test_ratio_phases_calibrate_to_reference(self):
        program = parse_workload_spec(
            {"name": "w", "phases": [{"pairs": 8, "ratio": 0.55}]}
        )
        ratios = measure_phase_ratios(program)
        assert list(ratios.values())[0] == pytest.approx(0.55, rel=1e-4)

    def test_explicit_phases_carry_given_values(self):
        program = parse_workload_spec(
            {"name": "w", "phases": [
                {"pairs": 2, "requests": 100, "compute_seconds": 0.5}
            ]}
        )
        pair = program.phases[0].pairs[0]
        assert pair.memory.memory_requests == 100
        assert pair.compute.cpu_seconds == 0.5

    def test_default_phase_names(self):
        program = parse_workload_spec(
            {"name": "w", "phases": [{"pairs": 1, "ratio": 1.0}]}
        )
        assert program.phases[0].name == "phase0"


class TestValidation:
    @pytest.mark.parametrize(
        "document",
        [
            [],
            {"phases": [{"pairs": 1, "ratio": 1.0}]},
            {"name": "", "phases": [{"pairs": 1, "ratio": 1.0}]},
            {"name": "w"},
            {"name": "w", "phases": []},
            {"name": "w", "phases": ["nope"]},
            {"name": "w", "phases": [{"ratio": 1.0}]},
            {"name": "w", "phases": [{"pairs": 0, "ratio": 1.0}]},
            {"name": "w", "phases": [{"pairs": 1, "ratio": -1.0}]},
            {"name": "w", "phases": [{"pairs": 1}]},
            {"name": "w", "phases": [{"pairs": 1, "requests": 10}]},
            {"name": "w", "phases": [{"pairs": 1, "ratio": 1.0,
                                      "requests": 10,
                                      "compute_seconds": 1.0}]},
            {"name": "w", "phases": [{"pairs": 1, "ratio": 1.0,
                                      "mystery": 1}]},
            {"name": "w", "phases": [{"pairs": 1, "ratio": 1.0,
                                      "footprint_bytes": 0}]},
        ],
    )
    def test_rejects_malformed_documents(self, document):
        with pytest.raises(WorkloadError):
            parse_workload_spec(document)


class TestLoadFromFile:
    def test_round_trip_through_disk(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(valid_spec()))
        program = load_workload_spec(path)
        assert program.name == "custom"

    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_workload_spec(tmp_path / "ghost.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(WorkloadError):
            load_workload_spec(path)
