"""Tests for the media-decoder workloads."""

import pytest

from repro.core import DynamicThrottlingPolicy, conventional_policy
from repro.errors import WorkloadError
from repro.runtime.monitor import measure_phase_ratios
from repro.sim.simulator import simulate
from repro.workloads.media import (
    JPEG_STAGE_RATIOS,
    MPEG_STAGE_RATIOS,
    jpeg_decode,
    mpeg2_decode,
)
from repro.workloads.registry import build_workload


class TestStructure:
    def test_jpeg_phases_cycle_per_image(self):
        program = jpeg_decode(images=3, pairs_per_stage=4)
        assert len(program.phases) == 3 * len(JPEG_STAGE_RATIOS)
        assert program.phases[0].name == "ENTROPY-DECODE[0]"
        assert program.phases[4].name == "ENTROPY-DECODE[1]"

    def test_mpeg_phases_cycle_per_frame(self):
        program = mpeg2_decode(frames=2, pairs_per_stage=4)
        assert len(program.phases) == 2 * len(MPEG_STAGE_RATIOS)
        assert program.phases[-1].name == "DEBLOCK[1]"

    def test_registered_in_registry(self):
        assert build_workload("jpeg-decode").name == "jpeg-decode"
        assert build_workload("mpeg2-decode").name == "mpeg2-decode"

    def test_validation(self):
        with pytest.raises(WorkloadError):
            jpeg_decode(images=0)
        with pytest.raises(WorkloadError):
            jpeg_decode(pairs_per_stage=0)
        with pytest.raises(WorkloadError):
            mpeg2_decode(frames=0)
        with pytest.raises(WorkloadError):
            mpeg2_decode(pairs_per_stage=0)


class TestCalibration:
    def test_jpeg_stage_ratios_measured(self):
        program = jpeg_decode(images=1, pairs_per_stage=6)
        ratios = measure_phase_ratios(program)
        for stage, expected in JPEG_STAGE_RATIOS.items():
            assert ratios[f"{stage}[0]"] == pytest.approx(expected, rel=1e-4)

    def test_mpeg_stage_ratios_measured(self):
        program = mpeg2_decode(frames=1, pairs_per_stage=6)
        ratios = measure_phase_ratios(program)
        for stage, expected in MPEG_STAGE_RATIOS.items():
            assert ratios[f"{stage}[0]"] == pytest.approx(expected, rel=1e-4)


class TestThrottling:
    def test_dynamic_throttling_helps_the_decoders(self):
        for program in (jpeg_decode(), mpeg2_decode()):
            baseline = simulate(program, conventional_policy(4)).makespan
            throttled = simulate(
                program, DynamicThrottlingPolicy(context_count=4)
            ).makespan
            assert baseline / throttled > 1.0, program.name

    def test_periodic_phases_drive_repeated_adaptation(self):
        policy = DynamicThrottlingPolicy(context_count=4, window_pairs=8)
        simulate(mpeg2_decode(frames=4, pairs_per_stage=48), policy)
        # MOTION-COMP (0.60, IdleBound 2) alternates with compute-bound
        # stages (IdleBound 1) every frame: multiple selections happen.
        assert len(policy.selections) >= 3
        selected = {e.decision.selected_mtl for e in policy.selections}
        assert selected <= {1, 2}
