"""Cross-policy conformance: the contract every registered policy keeps.

One parametrized suite over :func:`repro.core.policy_names` — add a
policy to the registry and it is under contract here with no test
edits.  The contract:

* **determinism** — two fresh builds of the same spec produce
  bit-identical schedules (same records, same makespan);
* **no state leakage** — running one instance leaves nothing behind
  that changes what the next fresh instance computes;
* **MTL bounds** — every dispatched task sees an MTL in ``[1, n]``,
  and so does the policy's final :meth:`current_mtl`;
* **telemetry integrity** — every stat in ``stats_snapshot()`` and
  every entry of ``selection_log()`` builds a record that passes
  :func:`~repro.runtime.telemetry.validate_record` against
  ``EVENT_SCHEMAS``, and the stat *names* are identical across runs
  (structural stability, the property the executor relies on).
"""

import pytest

from repro.core import ThrottlePolicyPlugin, build_policy, policy_names
from repro.runtime.telemetry import (
    policy_selection_event,
    policy_stat_event,
    validate_record,
)
from repro.sim.machine import i7_860
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase

N = 4
REQUESTS = 8192
L1 = i7_860().memory.request_latency(1.0)

#: Build-time params for registry entries with required parameters.
OVERRIDES = {"static": {"mtl": 2}}


def fresh_policy(name):
    return build_policy(name, N, OVERRIDES.get(name, {}))


def contract_workload() -> StreamProgram:
    """Two phases across the ratio boundary, long enough that every
    windowed policy completes at least one selection."""
    phases = [
        build_phase(f"phase{i}", i, 120, REQUESTS, REQUESTS * L1 / ratio)
        for i, ratio in enumerate((0.25, 1.5))
    ]
    return StreamProgram("contract", phases)


def schedule_digest(result):
    return tuple(
        (
            r.task_id, r.kind.name, r.context_id, r.core_id, r.start, r.end,
            r.mtl_at_dispatch, r.phase_index, r.pair_index, r.probe,
        )
        for r in result.records
    )


def run_fresh(name):
    policy = fresh_policy(name)
    result = simulate(contract_workload(), policy)
    return policy, result


@pytest.mark.parametrize("name", policy_names())
class TestPolicyContract:
    def test_is_a_plugin(self, name):
        assert isinstance(fresh_policy(name), ThrottlePolicyPlugin)

    def test_deterministic_across_fresh_runs(self, name):
        _, first = run_fresh(name)
        _, second = run_fresh(name)
        assert first.makespan == second.makespan
        assert schedule_digest(first) == schedule_digest(second)

    def test_no_state_leakage(self, name):
        _, before = run_fresh(name)
        # Exercise an instance twice — whatever it accumulates must
        # stay inside the instance, not in class or module state.
        used = fresh_policy(name)
        simulate(contract_workload(), used)
        simulate(contract_workload(), used)
        _, after = run_fresh(name)
        assert before.makespan == after.makespan
        assert schedule_digest(before) == schedule_digest(after)

    def test_mtl_stays_in_bounds(self, name):
        policy, result = run_fresh(name)
        assert 1 <= policy.current_mtl() <= N
        for record in result.records:
            assert 1 <= record.mtl_at_dispatch <= N, record

    def test_stats_snapshot_is_stable_and_valid(self, name):
        first_policy, _ = run_fresh(name)
        second_policy, _ = run_fresh(name)
        snapshot = first_policy.stats_snapshot()
        # Base stats present, names sorted, structurally stable.
        for stat in ("windows_closed", "phase_changes", "selections"):
            assert stat in snapshot, stat
        assert list(snapshot) == sorted(snapshot)
        assert list(snapshot) == list(second_policy.stats_snapshot())
        assert snapshot == second_policy.stats_snapshot()
        for stat, value in snapshot.items():
            validate_record(
                policy_stat_event(
                    key="contract", label="contract", policy=policy_label(name),
                    stat=stat, value=value,
                )
            )

    def test_selection_log_validates(self, name):
        policy, result = run_fresh(name)
        log = policy.selection_log()
        for entry in log:
            assert set(entry) == {"time", "selected_mtl"}
            assert 0.0 <= entry["time"] <= result.makespan
            assert 1 <= entry["selected_mtl"] <= N
            validate_record(
                policy_selection_event(
                    key="contract", label="contract", policy=policy_label(name),
                    time=entry["time"], selected_mtl=entry["selected_mtl"],
                )
            )
        # The log mirrors the selections stat for selecting policies.
        assert len(log) == policy.stats_snapshot()["selections"]


def policy_label(name):
    return f"contract-{name}"


class TestRegistryShape:
    def test_the_eight_registered_policies(self):
        assert policy_names() == [
            "activation-budget",
            "adaptive-window",
            "conventional",
            "dynamic",
            "mise",
            "online",
            "qos",
            "static",
        ]
