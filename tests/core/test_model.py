"""Tests for the analytical performance model (Section IV-A)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.model import AnalyticalModel, predict_speedup_curve
from repro.errors import ModelError
from repro.memory.contention import LinearContentionModel, nehalem_ddr3_contention

QUAD = AnalyticalModel(core_count=4)


class TestBusyThreshold:
    def test_quad_core_thresholds_match_paper(self):
        # Figure 8: MTL=1 all busy iff T_m1 <= T_c/3; MTL=2 iff T_m2 <= T_c.
        assert QUAD.busy_threshold(1) == pytest.approx(1 / 3)
        assert QUAD.busy_threshold(2) == pytest.approx(1.0)
        assert QUAD.busy_threshold(3) == pytest.approx(3.0)
        assert QUAD.busy_threshold(4) == float("inf")

    def test_rejects_mtl_out_of_range(self):
        with pytest.raises(ModelError):
            QUAD.busy_threshold(0)
        with pytest.raises(ModelError):
            QUAD.busy_threshold(5)


class TestCoresIdle:
    def test_equation_one_boundary(self):
        # T_m1/T_c exactly 1/3: all busy (<=); just above: idle.
        assert not QUAD.cores_idle(t_mk=1.0, t_c=3.0, k=1)
        assert QUAD.cores_idle(t_mk=1.001, t_c=3.0, k=1)

    def test_mtl_n_never_idles(self):
        assert not QUAD.cores_idle(t_mk=100.0, t_c=0.001, k=4)

    def test_zero_compute_time_idles_below_n(self):
        assert QUAD.cores_idle(t_mk=1.0, t_c=0.0, k=1)
        assert not QUAD.cores_idle(t_mk=1.0, t_c=0.0, k=4)

    def test_rejects_non_positive_memory_time(self):
        with pytest.raises(ModelError):
            QUAD.cores_idle(t_mk=0.0, t_c=1.0, k=1)


class TestIdleBound:
    def test_compute_heavy_workload_has_bound_one(self):
        assert QUAD.idle_bound(t_m=0.1, t_c=1.0) == 1

    def test_paper_example_ratio_change(self):
        # Section IV-B: ratio 0.1 -> bound 1; ratio 0.5 -> bound moves.
        assert QUAD.idle_bound(t_m=0.1, t_c=1.0) == 1
        assert QUAD.idle_bound(t_m=0.5, t_c=1.0) == 2

    def test_memory_bound_workload_has_bound_n(self):
        assert QUAD.idle_bound(t_m=10.0, t_c=1.0) == 4

    @given(
        t_m=st.floats(min_value=1e-6, max_value=1e3),
        t_c=st.floats(min_value=1e-6, max_value=1e3),
    )
    def test_property_bound_is_minimal_all_busy_mtl(self, t_m, t_c):
        bound = QUAD.idle_bound(t_m, t_c)
        assert not QUAD.cores_idle(t_m, t_c, bound)
        for k in range(1, bound):
            assert QUAD.cores_idle(t_m, t_c, k)


class TestExecutionTimeAndSpeedup:
    def test_all_busy_execution_time(self):
        # Figure 9(a): (T_mk + T_c) * t / n.
        assert QUAD.execution_time(t_mk=1.0, t_c=4.0, k=1, pairs=8) == pytest.approx(
            (1.0 + 4.0) * 8 / 4
        )

    def test_idle_execution_time(self):
        # Figure 9(b): T_mk * t / k.
        assert QUAD.execution_time(t_mk=4.0, t_c=1.0, k=2, pairs=8) == pytest.approx(
            4.0 * 8 / 2
        )

    def test_all_busy_speedup_formula(self):
        speedup = QUAD.speedup(t_mk=1.0, t_c=4.0, k=1, t_mn=2.0)
        assert speedup == pytest.approx((2.0 + 4.0) / (1.0 + 4.0))

    def test_idle_speedup_formula(self):
        speedup = QUAD.speedup(t_mk=4.0, t_c=1.0, k=2, t_mn=5.0)
        assert speedup == pytest.approx((5.0 + 1.0) * 2 / (4.0 * 4))

    def test_unthrottled_speedup_is_unity(self):
        assert QUAD.speedup(t_mk=2.0, t_c=1.0, k=4, t_mn=2.0) == pytest.approx(1.0)

    def test_rejects_bad_pairs(self):
        with pytest.raises(ModelError):
            QUAD.execution_time(1.0, 1.0, 1, pairs=0)


class TestSelectionLemmas:
    """The two monotonicity results of Section IV-C, checked against
    the linear contention law they are derived from."""

    @pytest.mark.parametrize("t_c", [0.5, 1.0, 5.0])
    def test_lowest_all_busy_mtl_wins(self, t_c):
        contention = nehalem_ddr3_contention()
        t_m = {k: 1000 * contention.request_latency(k) * 1e6 for k in range(1, 5)}
        t_mn = t_m[4]
        busy = [k for k in range(1, 5) if not QUAD.cores_idle(t_m[k], t_c, k)]
        speedups = [QUAD.speedup(t_m[k], t_c, k, t_mn) for k in busy]
        assert speedups == sorted(speedups, reverse=True)

    def test_highest_idle_mtl_wins(self):
        contention = nehalem_ddr3_contention()
        t_c = 0.01  # strongly memory-bound: MTL 1..3 all idle
        t_m = {k: 1000 * contention.request_latency(k) * 1e6 for k in range(1, 5)}
        t_mn = t_m[4]
        idle = [k for k in range(1, 5) if QUAD.cores_idle(t_m[k], t_c, k)]
        assert idle == [1, 2, 3]
        speedups = [QUAD.speedup(t_m[k], t_c, k, t_mn) for k in idle]
        assert speedups == sorted(speedups)

    def test_selection_metrics_order_like_full_speedups(self):
        t_c = 1.0
        t_ma, t_mb = 0.9, 2.5  # MTL a=2 all busy, MTL b=1 idle
        t_mn = 3.0
        busy_metric = QUAD.busy_selection_metric(t_ma, t_c)
        idle_metric = QUAD.idle_selection_metric(t_mb, 1)
        full_busy = QUAD.speedup(t_ma, t_c, 2, t_mn)
        full_idle = QUAD.speedup(t_mb, t_c, 1, t_mn)
        assert (busy_metric > idle_metric) == (full_busy > full_idle)


class TestPredictSpeedupCurve:
    def test_region_boundaries_match_figure_13(self):
        contention = nehalem_ddr3_contention()
        ratios = [0.05, 0.30, 0.40, 1.00, 1.50]
        predictions = {
            p.ratio: p for p in predict_speedup_curve(ratios, contention)
        }
        # Figure 13: S-MTL = 1 for ratios <= 0.33, then 2, then 3.
        assert predictions[0.05].best_mtl == 1
        assert predictions[0.30].best_mtl == 1
        assert predictions[0.40].best_mtl == 2
        assert predictions[1.50].best_mtl == 3

    def test_peak_speedup_near_1_21(self):
        contention = nehalem_ddr3_contention()
        ratios = [round(0.01 * i, 2) for i in range(1, 401)]
        curve = predict_speedup_curve(ratios, contention)
        peak = max(p.speedup for p in curve)
        assert peak == pytest.approx(1.21, abs=0.01)

    def test_speedups_never_below_unity(self):
        # MTL = n is always a candidate with speedup exactly 1.
        contention = nehalem_ddr3_contention()
        curve = predict_speedup_curve([0.01, 0.5, 2.0, 4.0], contention)
        assert all(p.speedup >= 1.0 for p in curve)

    def test_hill_shape_within_region_one(self):
        contention = nehalem_ddr3_contention()
        rising = predict_speedup_curve([0.10, 0.20, 0.30], contention)
        assert rising[0].speedup < rising[1].speedup < rising[2].speedup

    def test_channels_reduce_predicted_gain(self):
        contention = nehalem_ddr3_contention()
        single = predict_speedup_curve([0.30], contention, channels=1)[0]
        dual = predict_speedup_curve([0.30], contention, channels=2)[0]
        assert dual.speedup < single.speedup

    def test_rejects_bad_ratio(self):
        with pytest.raises(ModelError):
            predict_speedup_curve([0.0], nehalem_ddr3_contention())

    def test_rejects_bad_core_count(self):
        with pytest.raises(ModelError):
            AnalyticalModel(core_count=0)
