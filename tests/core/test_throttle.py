"""End-to-end tests of the dynamic throttling policy."""

import pytest

from repro.core.offline import offline_exhaustive_search
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import ConfigurationError
from repro.sim.machine import i7_860
from repro.sim.scheduler import conventional_policy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase

REQUESTS = 8192
L1 = i7_860().memory.request_latency(1.0)


def synthetic(ratio: float, pairs: int = 160) -> StreamProgram:
    t_c = REQUESTS * L1 / ratio
    return StreamProgram(
        f"synthetic-{ratio}", [build_phase("p", 0, pairs, REQUESTS, t_c)]
    )


def multi_phase(ratios, pairs_per_phase: int = 120) -> StreamProgram:
    phases = [
        build_phase(f"phase{i}", i, pairs_per_phase, REQUESTS, REQUESTS * L1 / r)
        for i, r in enumerate(ratios)
    ]
    return StreamProgram("multi-phase", phases)


class TestConvergence:
    @pytest.mark.parametrize(
        "ratio,expected_mtl",
        [(0.10, 1), (0.25, 1), (0.50, 2), (1.50, 3)],
    )
    def test_selects_the_offline_best_mtl(self, ratio, expected_mtl):
        program = synthetic(ratio)
        policy = DynamicThrottlingPolicy(context_count=4)
        result = simulate(program, policy)
        offline = offline_exhaustive_search(program)
        assert offline.best_mtl == expected_mtl
        assert result.dominant_mtl() == expected_mtl

    def test_single_selection_for_stable_workload(self):
        policy = DynamicThrottlingPolicy(context_count=4)
        simulate(synthetic(0.25), policy)
        assert len(policy.selections) == 1

    def test_speedup_close_to_offline_search(self):
        program = synthetic(0.25)
        dynamic = simulate(program, DynamicThrottlingPolicy(context_count=4))
        conventional = simulate(program, conventional_policy(4))
        offline = offline_exhaustive_search(program)
        dynamic_speedup = conventional.makespan / dynamic.makespan
        offline_speedup = offline.speedup_over(4)
        assert dynamic_speedup > 1.05
        assert dynamic_speedup == pytest.approx(offline_speedup, abs=0.05)


class TestPhaseAdaptation:
    def test_adapts_across_phases(self):
        # A SIFT-like alternation: memory-heavy then compute-heavy.
        program = multi_phase([0.7, 0.08])
        policy = DynamicThrottlingPolicy(context_count=4)
        result = simulate(program, policy)
        assert len(policy.selections) >= 2
        selected = [e.decision.selected_mtl for e in policy.selections]
        assert selected[0] == 2   # ratio 0.7 -> candidates 1/2, busy at 2
        assert selected[-1] == 1  # ratio 0.08 -> all busy at 1

    def test_no_retrigger_when_bound_stable(self):
        # Two phases whose ratios differ but share IdleBound 1: the
        # coarse detector must not re-select.
        program = multi_phase([0.10, 0.20])
        policy = DynamicThrottlingPolicy(context_count=4)
        simulate(program, policy)
        assert len(policy.selections) == 1

    def test_beats_conventional_on_phased_workload(self):
        program = multi_phase([0.7, 0.08, 0.5])
        dynamic = simulate(program, DynamicThrottlingPolicy(context_count=4))
        conventional = simulate(program, conventional_policy(4))
        assert conventional.makespan / dynamic.makespan > 1.03


class TestMonitoringAccounting:
    def test_probe_tasks_are_flagged(self):
        policy = DynamicThrottlingPolicy(context_count=4)
        result = simulate(synthetic(0.5), policy)
        assert any(r.probe for r in result.records)
        assert result.probe_task_time_fraction() < 0.5

    def test_monitoring_stays_cheap_for_large_programs(self):
        policy = DynamicThrottlingPolicy(context_count=4, window_pairs=16)
        result = simulate(synthetic(0.5, pairs=400), policy)
        # Probing is a bounded prefix; its share shrinks with scale.
        assert result.probe_task_time_fraction() < 0.15

    def test_windows_counted(self):
        policy = DynamicThrottlingPolicy(context_count=4)
        simulate(synthetic(0.25), policy)
        assert policy.windows_completed >= 1


class TestConfiguration:
    def test_name_and_initial_state(self):
        policy = DynamicThrottlingPolicy(context_count=4)
        assert policy.name == "dynamic-throttling"
        assert policy.current_mtl() == 4  # starts unthrottled
        assert not policy.is_probing()

    def test_custom_initial_mtl(self):
        policy = DynamicThrottlingPolicy(context_count=4, initial_mtl=2)
        assert policy.current_mtl() == 2

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            DynamicThrottlingPolicy(context_count=0)
        with pytest.raises(ConfigurationError):
            DynamicThrottlingPolicy(context_count=4, initial_mtl=9)
