"""Tests for the Online Exhaustive Search baseline."""

import pytest

from repro.core.policies import OnlineExhaustivePolicy
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import ConfigurationError
from repro.sim.machine import i7_860
from repro.sim.noise import GaussianNoise
from repro.sim.scheduler import conventional_policy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase

REQUESTS = 8192
L1 = i7_860().memory.request_latency(1.0)


def synthetic(ratio: float, pairs: int = 200) -> StreamProgram:
    t_c = REQUESTS * L1 / ratio
    return StreamProgram(
        f"synthetic-{ratio}", [build_phase("p", 0, pairs, REQUESTS, t_c)]
    )


def phased(ratios, pairs: int = 150) -> StreamProgram:
    return StreamProgram(
        "phased",
        [
            build_phase(f"p{i}", i, pairs, REQUESTS, REQUESTS * L1 / r)
            for i, r in enumerate(ratios)
        ],
    )


class TestConfiguration:
    def test_defaults(self):
        policy = OnlineExhaustivePolicy(context_count=4)
        assert policy.name == "online-exhaustive"
        assert policy.current_mtl() == 4
        assert not policy.is_probing()

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            OnlineExhaustivePolicy(context_count=0)
        with pytest.raises(ConfigurationError):
            OnlineExhaustivePolicy(context_count=4, window_pairs=0)
        with pytest.raises(ConfigurationError):
            OnlineExhaustivePolicy(context_count=4, threshold=0.0)
        with pytest.raises(ConfigurationError):
            OnlineExhaustivePolicy(context_count=4, initial_mtl=5)


class TestBehaviour:
    def test_stable_workload_selects_once_at_bootstrap(self):
        # Noise-free identical windows: only the mandatory initial
        # selection fires; the 10% threshold never re-triggers.
        policy = OnlineExhaustivePolicy(context_count=4)
        simulate(synthetic(0.5), policy)
        assert len(policy.selections) == 1

    def test_phase_change_triggers_exhaustive_probe(self):
        policy = OnlineExhaustivePolicy(context_count=4, window_pairs=8)
        simulate(phased([0.7, 0.08]), policy)
        assert len(policy.selections) >= 1
        # Exhaustive: every MTL from 1 to 4 was timed.
        assert set(policy.selections[0].window_times) == {1, 2, 3, 4}

    def test_probe_flag_set_during_search(self):
        policy = OnlineExhaustivePolicy(context_count=4, window_pairs=8)
        result = simulate(phased([0.7, 0.08]), policy)
        assert any(r.probe for r in result.records)

    def test_probing_costs_more_than_dynamic(self):
        # The paper: 4.87% online vs 0.04% dynamic on streamcluster.
        # The online baseline times n windows per trigger; the dynamic
        # mechanism at most ~log n. Compare probe shares directly.
        program = phased([0.7, 0.08], pairs=250)
        online = OnlineExhaustivePolicy(context_count=4, window_pairs=16)
        online_result = simulate(program, online)
        dynamic = DynamicThrottlingPolicy(context_count=4, window_pairs=16)
        dynamic_result = simulate(program, dynamic)
        assert (
            online_result.probe_task_time_fraction()
            > dynamic_result.probe_task_time_fraction()
        )

    def test_noise_can_cause_spurious_triggers(self):
        # Under measurement noise the wall-clock trigger fires even
        # without a real phase change — the paper's critique.
        policy = OnlineExhaustivePolicy(
            context_count=4, window_pairs=4, threshold=0.02
        )
        simulate(
            synthetic(0.5, pairs=300),
            policy,
            noise=GaussianNoise(seed=3, sigma=0.05),
        )
        assert len(policy.selections) >= 1

    def test_selects_a_sane_mtl_on_stable_phase(self):
        # After its (noisy or real) trigger the policy should still
        # land on a reasonable MTL for the steady ratio.
        policy = OnlineExhaustivePolicy(context_count=4, window_pairs=16)
        result = simulate(phased([0.7, 0.7, 0.08], pairs=200), policy)
        assert result.final_mtl() in (1, 2)
