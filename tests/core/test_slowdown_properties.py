"""Property tests for the MISE-style per-pair slowdown estimator.

The fairness and QoS policies trust three properties of
:func:`repro.core.slowdown.estimate_pair_slowdowns`; each is pinned
here over a deterministic randomized grid (fixed-seed ``Random``, so
failures replay):

* **symmetry** — pairs with identical alone loads get identical
  estimates;
* **lower bound** — no estimate is below 1 (sharing never speeds a
  pair up; ``g(j) >= 1`` and ``m/j >= 1``);
* **throttling monotonicity** — blocking one pair never *increases*
  any other pair's estimate (that is what makes greedy
  slowdown-driven throttling safe);
* **homogeneous reduction** — with identical pairs the estimate times
  the alone time equals :meth:`AnalyticalModel.execution_time`
  exactly, so the estimator and the paper's model cannot drift apart.
"""

import math
import random

import pytest

from repro.core.model import AnalyticalModel
from repro.core.slowdown import (
    PairLoad,
    SlowdownProfile,
    estimate_pair_slowdowns,
    linear_latency_factor,
)
from repro.errors import ModelError


def random_cases(seed=0, count=200):
    """Deterministic (pairs, mtl, g) grid covering hetero/homogeneous,
    compute-heavy, memory-heavy, and zero-compute corners."""
    rng = random.Random(seed)
    cases = []
    for _ in range(count):
        m = rng.randint(1, 8)
        pairs = [
            PairLoad(
                t_m_alone=rng.uniform(0.1, 10.0),
                t_c=rng.choice([0.0, rng.uniform(0.0, 20.0)]),
            )
            for _ in range(m)
        ]
        mtl = rng.randint(1, 8)
        g = linear_latency_factor(rng.uniform(0.0, 1.0))
        cases.append((pairs, mtl, g))
    return cases


class TestSymmetry:
    @pytest.mark.parametrize("mtl", [1, 2, 3, 4])
    def test_identical_pairs_get_identical_estimates(self, mtl):
        g = linear_latency_factor(0.3)
        pairs = [PairLoad(3.0, 5.0)] * 4
        estimates = estimate_pair_slowdowns(pairs, mtl, g)
        assert len(set(estimates)) == 1

    def test_symmetric_pairs_equal_inside_heterogeneous_mix(self):
        g = linear_latency_factor(0.25)
        twin = PairLoad(2.0, 1.0)
        pairs = [twin, PairLoad(7.0, 0.0), twin, PairLoad(0.5, 9.0)]
        estimates = estimate_pair_slowdowns(pairs, 2, g)
        assert estimates[0] == estimates[2]

    def test_randomized_twins_always_equal(self):
        for pairs, mtl, g in random_cases(seed=1, count=50):
            doubled = pairs + pairs
            estimates = estimate_pair_slowdowns(doubled, mtl, g)
            for i in range(len(pairs)):
                assert estimates[i] == estimates[i + len(pairs)]


class TestLowerBound:
    def test_estimates_never_below_one(self):
        for pairs, mtl, g in random_cases(seed=2):
            for estimate in estimate_pair_slowdowns(pairs, mtl, g):
                assert estimate >= 1.0

    def test_alone_pair_at_mtl_one_has_no_slowdown(self):
        g = linear_latency_factor(0.5)
        estimates = estimate_pair_slowdowns([PairLoad(4.0, 2.0)], 1, g)
        assert estimates == [1.0]


class TestThrottlingMonotonicity:
    def test_throttling_a_pair_never_hurts_the_others(self):
        for pairs, mtl, g in random_cases(seed=3, count=100):
            if len(pairs) < 2:
                continue
            before = estimate_pair_slowdowns(pairs, mtl, g)
            for victim in range(len(pairs)):
                after = estimate_pair_slowdowns(
                    pairs, mtl, g, throttled=[victim]
                )
                for index in range(len(pairs)):
                    if index == victim:
                        assert math.isinf(after[index])
                    else:
                        assert after[index] <= before[index], (
                            index, victim, mtl,
                        )

    def test_throttled_contribute_no_contention(self):
        # Blocking all but one pair leaves the survivor effectively
        # alone: at MTL 1 its estimate collapses to 1.
        g = linear_latency_factor(0.4)
        pairs = [PairLoad(3.0, 2.0)] * 4
        estimates = estimate_pair_slowdowns(pairs, 1, g, throttled=[1, 2, 3])
        assert estimates[0] == 1.0
        assert estimates[1:] == [math.inf] * 3

    def test_all_throttled_reports_inf_everywhere(self):
        g = linear_latency_factor(0.4)
        pairs = [PairLoad(1.0, 1.0)] * 3
        assert estimate_pair_slowdowns(pairs, 2, g, throttled=[0, 1, 2]) == [
            math.inf
        ] * 3


class TestHomogeneousReduction:
    @pytest.mark.parametrize(
        "m,mtl,t_m,t_c",
        [
            (4, 2, 3.0, 5.0),   # compute-rich, cores busy
            (4, 1, 3.0, 1.0),   # memory-bound, cores idle
            (6, 3, 2.0, 0.5),
            (4, 4, 1.0, 9.0),   # unthrottled
            (3, 2, 4.0, 0.0),   # pure memory
        ],
    )
    def test_estimate_equals_analytical_makespan(self, m, mtl, t_m, t_c):
        g = linear_latency_factor(0.3)
        j = min(mtl, m)
        estimates = estimate_pair_slowdowns([PairLoad(t_m, t_c)] * m, mtl, g)
        model = AnalyticalModel(core_count=m)
        makespan = model.execution_time(t_m * g(j), t_c, j, pairs=m)
        assert estimates[0] * (t_m + t_c) == pytest.approx(
            makespan, rel=1e-12
        )

    def test_randomized_reduction_holds(self):
        rng = random.Random(4)
        g = linear_latency_factor(0.45)
        for _ in range(100):
            m = rng.randint(1, 8)
            mtl = rng.randint(1, m)
            t_m = rng.uniform(0.1, 10.0)
            t_c = rng.uniform(0.0, 10.0)
            estimates = estimate_pair_slowdowns([PairLoad(t_m, t_c)] * m, mtl, g)
            makespan = AnalyticalModel(core_count=m).execution_time(
                t_m * g(mtl), t_c, mtl, pairs=m
            )
            assert estimates[0] * (t_m + t_c) == pytest.approx(
                makespan, rel=1e-12
            )


class TestValidation:
    def test_rejects_bad_mtl(self):
        g = linear_latency_factor(0.1)
        with pytest.raises(ModelError, match="mtl"):
            estimate_pair_slowdowns([PairLoad(1.0, 1.0)], 0, g)

    def test_rejects_out_of_range_throttle_index(self):
        g = linear_latency_factor(0.1)
        with pytest.raises(ModelError, match="throttled index"):
            estimate_pair_slowdowns([PairLoad(1.0, 1.0)], 1, g, throttled=[5])

    def test_rejects_sub_unit_latency_factor(self):
        with pytest.raises(ModelError, match="latency factor"):
            estimate_pair_slowdowns(
                [PairLoad(1.0, 1.0)] * 2, 2, lambda j: 0.5
            )

    def test_empty_pairs_is_empty(self):
        assert estimate_pair_slowdowns([], 2, linear_latency_factor(0.1)) == []


class TestSlowdownProfile:
    def test_fit_reproduces_its_anchor_points(self):
        profile = SlowdownProfile.fit(
            context_count=4, k_a=4, t_m_a=5.0, k_b=1, t_m_b=2.0, t_c=1.0
        )
        assert profile.t_m_alone == pytest.approx(2.0)
        assert profile.t_m_alone + profile.slope * 3 == pytest.approx(5.0)

    def test_slope_clamped_non_negative(self):
        # A noisy fit that would slope downward clamps to flat:
        # contention cannot speed memory tasks up.
        profile = SlowdownProfile.fit(
            context_count=4, k_a=4, t_m_a=1.0, k_b=1, t_m_b=2.0, t_c=0.0
        )
        assert profile.slope == 0.0
