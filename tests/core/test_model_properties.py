"""Property-based tests of the Section IV-A analytical model.

Hand-rolled randomized cases with fixed seeds (deterministic, no
external dependency): each test draws a few hundred random model
configurations and checks an *algebraic* property the paper proves,
rather than a point value:

* the idle condition of Equation 1 flips exactly at the boundary
  ``T_mk / T_c = k / (n - k)``;
* the all-busy and some-idle speedup formulas agree at that boundary
  (the model is continuous across its case split);
* the two monotonicity lemmas behind the binary search in
  :mod:`repro.core.selection` hold for randomized ``T_mk`` curves that
  satisfy the paper's stated preconditions (``T_mk`` grows with ``k``,
  sub-proportionally: ``T_mb / T_m(b+1) > b / (b+1)``), and the
  selector's decision matches a brute-force argmax of the model's
  speedup over every MTL.
"""

import math
import random

from repro.core.model import AnalyticalModel
from repro.core.selection import MtlSelector

CASES = 300


def random_model(rng, n_min=2, n_max=16):
    return AnalyticalModel(core_count=rng.randint(n_min, n_max))


def random_curve(rng, model, t_c):
    """A random ``T_mk`` curve satisfying the paper's preconditions.

    ``T_m(k+1) / T_mk`` is drawn strictly inside ``(1, (k+1)/k)``:
    memory-task time grows with contention, but sub-proportionally to
    the slot count (the contention-free latency component guarantees
    this on real memory systems; Section IV-C).
    """
    t_m = {1: t_c * rng.uniform(0.05, 4.0)}
    for k in range(1, model.core_count):
        growth = rng.uniform(1.0 + 1e-6, (k + 1) / k - 1e-6)
        t_m[k + 1] = t_m[k] * growth
    return t_m


class TestIdleConditionBoundary:
    def test_flips_exactly_at_the_boundary(self):
        rng = random.Random(1001)
        for _ in range(CASES):
            model = random_model(rng)
            n = model.core_count
            k = rng.randint(1, n - 1)
            # A power-of-two scale keeps ``k * s`` and ``(n - k) * s``
            # exactly representable, so ``t_mk / t_c`` rounds to the
            # same float as ``k / (n - k)`` and the boundary case is
            # bit-exact rather than one ulp off.
            scale = 2.0 ** rng.randint(-20, 20)
            boundary = k * scale
            t_c = (n - k) * scale
            # At the boundary the inequality is not strict: all busy.
            assert not model.cores_idle(boundary, t_c, k)
            # Infinitesimally above: some cores idle.
            assert model.cores_idle(boundary * (1 + 1e-9), t_c, k)
            # Infinitesimally below: all busy.
            assert not model.cores_idle(boundary * (1 - 1e-9), t_c, k)

    def test_mtl_n_is_never_idle(self):
        rng = random.Random(1002)
        for _ in range(CASES):
            model = random_model(rng)
            t_c = rng.uniform(0.0, 10.0)
            t_m = rng.uniform(1e-6, 1e6)
            if t_c == 0.0:
                continue
            assert not model.cores_idle(t_m, t_c, model.core_count)

    def test_busy_threshold_matches_equation_1(self):
        rng = random.Random(1003)
        for _ in range(CASES):
            model = random_model(rng)
            n = model.core_count
            k = rng.randint(1, n - 1)
            assert model.busy_threshold(k) == k / (n - k)
        assert math.isinf(model.busy_threshold(model.core_count))


class TestSpeedupFormulasAgreeAtBoundary:
    def test_case_split_is_continuous(self):
        """Both Figure 9 formulas give the same speedup at the boundary.

        With ``T_mk = T_c * k / (n - k)`` the all-busy expression
        ``(T_mn + T_c) / (T_mk + T_c)`` and the some-idle expression
        ``(T_mn + T_c) * k / (T_mk * n)`` are algebraically equal; the
        implementation must agree numerically from both sides.
        """
        rng = random.Random(2001)
        for _ in range(CASES):
            model = random_model(rng)
            n = model.core_count
            k = rng.randint(1, n - 1)
            t_c = rng.uniform(0.001, 10.0)
            t_mk = t_c * k / (n - k)
            t_mn = t_mk * rng.uniform(1.0, n / k)

            busy_formula = (t_mn + t_c) / (t_mk + t_c)
            idle_formula = (t_mn + t_c) * k / (t_mk * n)
            assert math.isclose(busy_formula, idle_formula, rel_tol=1e-12)

            just_busy = model.speedup(t_mk, t_c, k, t_mn)
            just_idle = model.speedup(t_mk * (1 + 1e-12), t_c, k, t_mn)
            assert math.isclose(just_busy, busy_formula, rel_tol=1e-12)
            assert math.isclose(just_idle, just_busy, rel_tol=1e-9)

    def test_speedup_is_execution_time_ratio(self):
        rng = random.Random(2002)
        for _ in range(CASES):
            model = random_model(rng)
            n = model.core_count
            k = rng.randint(1, n)
            t_c = rng.uniform(0.001, 10.0)
            t_mk = rng.uniform(0.001, 10.0)
            t_mn = max(t_mk, rng.uniform(0.001, 20.0))
            pairs = rng.randint(1, 500)
            ratio = model.execution_time(t_mn, t_c, n, pairs) / model.execution_time(
                t_mk, t_c, k, pairs
            )
            assert math.isclose(
                model.speedup(t_mk, t_c, k, t_mn), ratio, rel_tol=1e-12
            )


class TestSelectionMonotonicity:
    def test_idle_predicate_is_monotone_over_valid_curves(self):
        """Idle below a threshold MTL, all-busy at and above it —
        the precondition that makes the binary search correct."""
        rng = random.Random(3001)
        for _ in range(CASES):
            model = random_model(rng)
            t_c = rng.uniform(0.001, 10.0)
            t_m = random_curve(rng, model, t_c)
            idle_flags = [
                model.cores_idle(t_m[k], t_c, k)
                for k in range(1, model.core_count + 1)
            ]
            # Once all-busy, never idle again: no False -> True flip.
            for earlier, later in zip(idle_flags, idle_flags[1:]):
                assert earlier or not later, (idle_flags, t_c, t_m)

    def test_lowest_all_busy_mtl_wins_among_busy(self):
        rng = random.Random(3002)
        for _ in range(CASES):
            model = random_model(rng)
            t_c = rng.uniform(0.001, 10.0)
            t_m = random_curve(rng, model, t_c)
            busy = [
                k
                for k in range(1, model.core_count + 1)
                if not model.cores_idle(t_m[k], t_c, k)
            ]
            metrics = [model.busy_selection_metric(t_m[k], t_c) for k in busy]
            for earlier, later in zip(metrics, metrics[1:]):
                assert earlier > later

    def test_highest_some_idle_mtl_wins_among_idle(self):
        rng = random.Random(3003)
        for _ in range(CASES):
            model = random_model(rng)
            t_c = rng.uniform(0.001, 10.0)
            t_m = random_curve(rng, model, t_c)
            idle = [
                k
                for k in range(1, model.core_count + 1)
                if model.cores_idle(t_m[k], t_c, k)
            ]
            metrics = [model.idle_selection_metric(t_m[k], k) for k in idle]
            for earlier, later in zip(metrics, metrics[1:]):
                assert earlier < later

    def test_binary_search_selects_the_model_optimum(self):
        """Driving :class:`MtlSelector` with a random valid curve lands
        on the MTL a brute-force scan of the model's speedup picks."""
        rng = random.Random(3004)
        for _ in range(CASES):
            model = random_model(rng)
            n = model.core_count
            t_c = rng.uniform(0.001, 10.0)
            t_m = random_curve(rng, model, t_c)
            t_mn = t_m[n]

            selector = MtlSelector(model)
            while (mtl := selector.next_probe()) is not None:
                selector.provide(mtl, t_m[mtl], t_c)
            decision = selector.decision()

            best_speedup = max(
                model.speedup(t_m[k], t_c, k, t_mn) for k in range(1, n + 1)
            )
            chosen = model.speedup(
                t_m[decision.selected_mtl], t_c, decision.selected_mtl, t_mn
            )
            assert math.isclose(chosen, best_speedup, rel_tol=1e-12)

            # The pruning pays: a binary search plus the two candidates,
            # never the full scan the Online Exhaustive baseline does.
            assert decision.probes_used <= math.ceil(math.log2(n)) + 2
