"""Property tests: the two-candidate pruning is actually optimal.

Section IV-C's claim is that comparing only ``MTL_NoIdle`` and
``MTL_Idle`` finds the best MTL, *given* the model's assumptions
(``T_mk`` non-decreasing in ``k`` with the linear decomposition).
These tests drive the selector with randomly generated measurement
families satisfying the assumptions and verify the decision against a
brute-force argmax over all n MTLs — the strongest check the lemmas
admit.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import AnalyticalModel
from repro.core.selection import MtlSelector

N = 4
MODEL = AnalyticalModel(core_count=N)


@st.composite
def linear_measurements(draw):
    """(T_m1..T_mn, T_c) following T_mk = T_ml + k*T_ql."""
    t_ml = draw(st.floats(min_value=0.01, max_value=10.0))
    t_ql = draw(st.floats(min_value=0.0, max_value=5.0))
    t_c = draw(st.floats(min_value=0.01, max_value=50.0))
    t_m = {k: t_ml + k * t_ql for k in range(1, N + 1)}
    return t_m, t_c


def drive_selector(t_m, t_c):
    selector = MtlSelector(MODEL)
    while not selector.done:
        k = selector.next_probe()
        selector.provide(k, t_m[k], t_c)
    return selector.decision()


def brute_force_best(t_m, t_c):
    speedups = {
        k: MODEL.speedup(t_m[k], t_c, k, t_m[N]) for k in range(1, N + 1)
    }
    best = max(speedups.values())
    return {k for k, s in speedups.items() if s == pytest.approx(best)}, speedups


@settings(max_examples=300)
@given(measurements=linear_measurements())
def test_property_selector_matches_brute_force(measurements):
    t_m, t_c = measurements
    decision = drive_selector(t_m, t_c)
    best_set, speedups = brute_force_best(t_m, t_c)
    chosen = speedups[decision.selected_mtl]
    # The chosen MTL's model speedup equals the brute-force optimum
    # (ties are legitimate: with T_ql = 0 every MTL performs alike).
    assert chosen == pytest.approx(max(speedups.values()), rel=1e-9)


@settings(max_examples=300)
@given(measurements=linear_measurements())
def test_property_candidates_bracket_the_boundary(measurements):
    t_m, t_c = measurements
    decision = drive_selector(t_m, t_c)
    # MTL_NoIdle is all-busy; everything below idles.
    assert not MODEL.cores_idle(t_m[decision.mtl_no_idle], t_c,
                                decision.mtl_no_idle)
    if decision.mtl_idle is not None:
        assert MODEL.cores_idle(t_m[decision.mtl_idle], t_c,
                                decision.mtl_idle)
        assert decision.mtl_idle == decision.mtl_no_idle - 1


@settings(max_examples=300)
@given(measurements=linear_measurements())
def test_property_probe_budget_is_logarithmic(measurements):
    t_m, t_c = measurements
    decision = drive_selector(t_m, t_c)
    # ceil(log2(4)) + 1 fill-in = 3 windows max for n = 4.
    assert decision.probes_used <= 3


@settings(max_examples=200)
@given(
    measurements=linear_measurements(),
    seed_mtl=st.integers(min_value=1, max_value=N),
)
def test_property_seeding_never_changes_the_answer(measurements, seed_mtl):
    t_m, t_c = measurements
    unseeded = drive_selector(t_m, t_c)

    selector = MtlSelector(MODEL)
    selector.provide(seed_mtl, t_m[seed_mtl], t_c)
    while not selector.done:
        k = selector.next_probe()
        selector.provide(k, t_m[k], t_c)
    seeded = selector.decision()

    _, speedups = brute_force_best(t_m, t_c)
    assert speedups[seeded.selected_mtl] == pytest.approx(
        speedups[unseeded.selected_mtl], rel=1e-9
    )
