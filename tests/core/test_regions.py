"""Tests for the exact S-MTL region algebra."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.model import predict_speedup_curve
from repro.core.regions import SMtlRegion, s_mtl_regions
from repro.errors import ModelError
from repro.memory.contention import (
    LinearContentionModel,
    nehalem_ddr3_contention,
)


@pytest.fixture(scope="module")
def regions():
    return s_mtl_regions(nehalem_ddr3_contention())


class TestPartitionShape:
    def test_regions_tile_the_interval(self, regions):
        assert regions[0].low == pytest.approx(0.01)
        assert regions[-1].high == pytest.approx(4.0)
        for left, right in zip(regions, regions[1:]):
            assert left.high == pytest.approx(right.low)

    def test_mtl_increases_across_regions(self, regions):
        mtls = [r.mtl for r in regions]
        assert mtls == sorted(mtls)
        assert len(set(mtls)) == len(mtls)

    def test_first_region_is_mtl_one(self, regions):
        assert regions[0].mtl == 1

    def test_contains(self, regions):
        assert regions[0].contains(0.2)
        assert not regions[0].contains(regions[0].high)
        assert regions[0].width == pytest.approx(
            regions[0].high - regions[0].low
        )


class TestBoundaryValues:
    def test_first_boundary_near_paper_third(self, regions):
        # The paper quotes 0.33; the exact crossing of the MTL=1 and
        # MTL=2 speedup curves for the calibrated law is 1/(n - g2),
        # slightly above.
        boundary = regions[0].high
        assert 0.33 < boundary < 0.40

    def test_boundaries_are_argmax_crossings(self, regions):
        contention = nehalem_ddr3_contention()
        for left, right in zip(regions, regions[1:]):
            boundary = left.high
            below = predict_speedup_curve([boundary - 1e-4], contention)[0]
            above = predict_speedup_curve([boundary + 1e-4], contention)[0]
            assert below.best_mtl == left.mtl
            assert above.best_mtl == right.mtl

    def test_first_boundary_matches_closed_form(self, regions):
        # Region 1 ends where the idle-regime MTL=1 curve crosses the
        # all-busy MTL=2 curve: 4r = g2*r + 1, i.e. r* = 1/(n - g2).
        contention = nehalem_ddr3_contention()
        g2 = contention.latency_ratio(2)
        assert regions[0].high == pytest.approx(1.0 / (4.0 - g2), abs=1e-4)

    def test_channels_shift_the_partition_left(self):
        single = s_mtl_regions(nehalem_ddr3_contention(), channels=1)
        dual = s_mtl_regions(nehalem_ddr3_contention(), channels=2)
        # With weaker contention g2 drops, so r* = 1/(n - g2) *falls*:
        # MTL=2 gets cheap sooner and takes over earlier.
        assert dual[0].high < single[0].high


class TestRandomLinearLaws:
    @settings(max_examples=40, deadline=None)
    @given(
        t_ml=st.floats(min_value=1e-9, max_value=1e-6),
        t_ql=st.floats(min_value=1e-10, max_value=1e-6),
    )
    def test_property_partition_is_well_formed(self, t_ml, t_ql):
        contention = LinearContentionModel(t_ml, t_ql)
        regions = s_mtl_regions(contention)
        # Tiles the interval, MTL non-decreasing, first region is 1.
        assert regions[0].low == pytest.approx(0.01)
        assert regions[-1].high == pytest.approx(4.0)
        for left, right in zip(regions, regions[1:]):
            assert left.high == pytest.approx(right.low)
            assert right.mtl > left.mtl
        assert regions[0].mtl == 1

    @settings(max_examples=40, deadline=None)
    @given(
        t_ml=st.floats(min_value=1e-9, max_value=1e-6),
        t_ql=st.floats(min_value=1e-10, max_value=1e-6),
    )
    def test_property_first_boundary_closed_form(self, t_ml, t_ql):
        contention = LinearContentionModel(t_ml, t_ql)
        regions = s_mtl_regions(contention)
        g2 = contention.latency_ratio(2)
        expected = 1.0 / (4.0 - g2)
        if 0.02 < expected < 3.9:  # boundary inside the scanned window
            assert regions[0].high == pytest.approx(expected, rel=1e-2)


class TestValidation:
    def test_rejects_bad_interval(self):
        with pytest.raises(ModelError):
            s_mtl_regions(nehalem_ddr3_contention(), ratio_low=0.0)
        with pytest.raises(ModelError):
            s_mtl_regions(
                nehalem_ddr3_contention(), ratio_low=2.0, ratio_high=1.0
            )
        with pytest.raises(ModelError):
            s_mtl_regions(nehalem_ddr3_contention(), tolerance=0.0)

    def test_zero_queueing_collapses_to_one_region(self):
        # Without contention, throttling never helps: best MTL never
        # leaves... n? With T_ql = 0 every MTL has equal T_m, so the
        # lowest all-busy MTL ties with MTL = n at speedup 1; the model
        # breaks ties toward the smaller constraint, and the partition
        # may legitimately hold several regions of speedup exactly 1.
        contention = LinearContentionModel(5e-8, 0.0)
        regions = s_mtl_regions(contention)
        curve = predict_speedup_curve([r.low for r in regions], contention)
        assert all(p.speedup == pytest.approx(1.0) for p in curve)
