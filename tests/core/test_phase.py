"""Tests for IdleBound-based phase-change detection (Section IV-B)."""

import pytest

from repro.core.model import AnalyticalModel
from repro.core.phase import PairSample, PhaseChangeDetector
from repro.errors import ConfigurationError, MeasurementError

QUAD = AnalyticalModel(core_count=4)


def feed_window(detector, t_m, t_c):
    """Feed one full window of identical samples; return final result."""
    result = None
    for _ in range(detector.window_pairs):
        result = detector.observe(PairSample(t_m=t_m, t_c=t_c))
    return result


class TestPairSample:
    def test_validation(self):
        with pytest.raises(MeasurementError):
            PairSample(t_m=0.0, t_c=1.0)
        with pytest.raises(MeasurementError):
            PairSample(t_m=1.0, t_c=-1.0)


class TestWindows:
    def test_no_result_until_window_full(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=4)
        for _ in range(3):
            assert detector.observe(PairSample(0.1, 1.0)) is None
        assert detector.pending_samples() == 3

    def test_first_window_always_reports_change(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=4)
        window = feed_window(detector, t_m=0.1, t_c=1.0)
        assert window is not None
        assert window.phase_changed
        assert window.idle_bound == 1

    def test_window_reports_means(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=2)
        detector.observe(PairSample(0.1, 1.0))
        window = detector.observe(PairSample(0.3, 3.0))
        assert window.t_m == pytest.approx(0.2)
        assert window.t_c == pytest.approx(2.0)

    def test_window_resets_after_completion(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=2)
        feed_window(detector, 0.1, 1.0)
        assert detector.pending_samples() == 0


class TestTriggering:
    def test_paper_example_point_one_to_point_five(self):
        # Section IV-B: T_m1/T_c from 0.1 to 0.5 changes the idle
        # behaviour at MTL=1 and must trigger.
        detector = PhaseChangeDetector(QUAD, window_pairs=4)
        feed_window(detector, t_m=0.1, t_c=1.0)
        window = feed_window(detector, t_m=0.5, t_c=1.0)
        assert window.phase_changed
        assert window.idle_bound == 2

    def test_ratio_change_within_same_bound_does_not_trigger(self):
        # The coarse-grained criterion: 0.1 -> 0.2 both have bound 1.
        detector = PhaseChangeDetector(QUAD, window_pairs=4)
        feed_window(detector, t_m=0.1, t_c=1.0)
        window = feed_window(detector, t_m=0.2, t_c=1.0)
        assert not window.phase_changed
        assert detector.changes_detected == 1  # only the bootstrap

    def test_reference_updates_every_window(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=2)
        feed_window(detector, 0.1, 1.0)
        feed_window(detector, 0.5, 1.0)
        window = feed_window(detector, 0.5, 1.0)
        assert not window.phase_changed
        assert detector.reference_idle_bound == 2

    def test_set_reference_suppresses_expected_window(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=2)
        feed_window(detector, 0.5, 1.0)       # bound 2
        detector.set_reference(1)
        window = feed_window(detector, 0.1, 1.0)  # bound 1 == pinned ref
        assert not window.phase_changed

    def test_set_reference_validates(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=2)
        with pytest.raises(ConfigurationError):
            detector.set_reference(0)
        with pytest.raises(ConfigurationError):
            detector.set_reference(5)

    def test_reset_window_discards_partial_samples(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=3)
        detector.observe(PairSample(10.0, 1.0))
        detector.reset_window()
        assert detector.pending_samples() == 0
        # The discarded memory-heavy sample must not pollute the next
        # window's means.
        window = feed_window(detector, 0.1, 1.0)
        assert window.idle_bound == 1

    def test_counts_windows_and_changes(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=2)
        feed_window(detector, 0.1, 1.0)
        feed_window(detector, 0.1, 1.0)
        feed_window(detector, 2.0, 1.0)
        assert detector.windows_completed == 3
        assert detector.changes_detected == 2

    def test_rejects_bad_window_size(self):
        with pytest.raises(ConfigurationError):
            PhaseChangeDetector(QUAD, window_pairs=0)


class TestGrowWindow:
    def test_grow_only(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=4)
        detector.grow_window(8)
        assert detector.window_pairs == 8
        with pytest.raises(ConfigurationError):
            detector.grow_window(4)

    def test_growth_extends_the_current_window(self):
        detector = PhaseChangeDetector(QUAD, window_pairs=2)
        detector.observe(PairSample(0.1, 1.0))
        detector.grow_window(4)
        # The partially filled window now needs 4 samples in total.
        assert detector.observe(PairSample(0.1, 1.0)) is None
        assert detector.observe(PairSample(0.1, 1.0)) is None
        assert detector.observe(PairSample(0.1, 1.0)) is not None
