"""Tests for binary-search MTL selection (Section IV-C)."""

import pytest

from repro.core.model import AnalyticalModel
from repro.core.selection import MtlSelector
from repro.errors import MeasurementError, ModelError
from repro.memory.contention import nehalem_ddr3_contention

QUAD = AnalyticalModel(core_count=4)


def measured_t_m(k: int, scale: float = 1.0) -> float:
    """T_mk following the calibrated linear law, scaled."""
    return scale * nehalem_ddr3_contention().request_latency(k) * 1e7


def run_selection(t_c: float, scale: float = 1.0, seed_mtl: int = None):
    """Drive a selector to completion, answering probes from the
    linear law; returns (decision, probed_mtls)."""
    selector = MtlSelector(QUAD)
    probed = []
    if seed_mtl is not None:
        selector.provide(seed_mtl, measured_t_m(seed_mtl, scale), t_c)
        probed.append(seed_mtl)
    while not selector.done:
        mtl = selector.next_probe()
        probed.append(mtl)
        selector.provide(mtl, measured_t_m(mtl, scale), t_c)
    return selector.decision(), probed


class TestBinarySearch:
    def test_compute_heavy_selects_mtl_one(self):
        # T_m1 ~ 0.64, T_c = 10: ratio far below 1/3 everywhere.
        decision, probed = run_selection(t_c=10.0)
        assert decision.mtl_no_idle == 1
        assert decision.mtl_idle is None
        assert decision.selected_mtl == 1

    def test_memory_heavy_compares_boundary_pair(self):
        # T_c small: cores idle up to MTL=3, so candidates are 3 and 4.
        decision, probed = run_selection(t_c=0.05)
        assert decision.mtl_no_idle == 4
        assert decision.mtl_idle == 3
        assert decision.selected_mtl in (3, 4)

    def test_intermediate_ratio_candidates(self):
        # T_c = 1.0: T_m1 ~ 0.64 > 1/3 (idle at 1), T_m2 ~ 0.82 <= 1
        # (busy at 2): candidates 1 and 2.
        decision, _ = run_selection(t_c=1.0)
        assert decision.mtl_no_idle == 2
        assert decision.mtl_idle == 1

    def test_probe_count_is_logarithmic_not_linear(self):
        # The whole point of the pruning: far fewer than n windows.
        _, probed = run_selection(t_c=1.0)
        assert len(probed) <= 3  # vs 4 for exhaustive search

    def test_seeding_with_current_measurement_shortens_search(self):
        _, probed_unseeded = run_selection(t_c=1.0)
        decision, probed_seeded = run_selection(t_c=1.0, seed_mtl=2)
        # Seeded run must not repeat MTL 2 and must reach the same answer.
        assert probed_seeded.count(2) == 1
        assert decision.mtl_no_idle == 2

    def test_probes_never_repeat(self):
        for t_c in (0.05, 0.3, 1.0, 10.0):
            _, probed = run_selection(t_c=t_c)
            assert len(probed) == len(set(probed))


class TestDecisionContents:
    def test_metrics_follow_model(self):
        decision, _ = run_selection(t_c=1.0)
        t_m2, t_c = decision.measurements[2]
        assert decision.busy_metric == pytest.approx(1.0 / (t_m2 + t_c))
        t_m1, _ = decision.measurements[1]
        assert decision.idle_metric == pytest.approx(1.0 / (t_m1 * 4.0))

    def test_selected_is_argmax_of_metrics(self):
        decision, _ = run_selection(t_c=1.0)
        if decision.idle_metric is not None:
            expected = (
                decision.mtl_idle
                if decision.idle_metric > decision.busy_metric
                else decision.mtl_no_idle
            )
            assert decision.selected_mtl == expected

    def test_probes_used_counts_windows(self):
        decision, probed = run_selection(t_c=1.0)
        assert decision.probes_used == len(probed)


class TestProtocolErrors:
    def test_decision_before_done_raises(self):
        selector = MtlSelector(QUAD)
        with pytest.raises(MeasurementError):
            selector.decision()

    def test_double_measurement_rejected(self):
        selector = MtlSelector(QUAD)
        selector.provide(2, 1.0, 1.0)
        with pytest.raises(MeasurementError):
            selector.provide(2, 1.0, 1.0)

    def test_out_of_range_mtl_rejected(self):
        selector = MtlSelector(QUAD)
        with pytest.raises(ModelError):
            selector.provide(5, 1.0, 1.0)

    def test_invalid_times_rejected(self):
        selector = MtlSelector(QUAD)
        with pytest.raises(MeasurementError):
            selector.provide(2, 0.0, 1.0)
        with pytest.raises(MeasurementError):
            selector.provide(2, 1.0, -1.0)

    def test_provide_after_decision_rejected(self):
        decision_selector = MtlSelector(AnalyticalModel(core_count=1))
        decision_selector.provide(1, 1.0, 1.0)
        assert decision_selector.done
        with pytest.raises(MeasurementError):
            decision_selector.provide(1, 2.0, 1.0)

    def test_single_core_machine_decides_immediately_after_one_window(self):
        selector = MtlSelector(AnalyticalModel(core_count=1))
        assert selector.next_probe() == 1
        selector.provide(1, 1.0, 1.0)
        assert selector.decision().selected_mtl == 1
