"""Unit tests of the throttler's internal machinery."""

import pytest

from repro.core.throttle import DynamicThrottlingPolicy, PairAssembler
from repro.sim.events import TaskRecord
from repro.sim.simulator import simulate
from repro.stream.task import TaskKind
from repro.workloads import synthetic_from_ratio


def record(task_id, kind, start, end, mtl=4, phase=0, pair=0):
    return TaskRecord(
        task_id=task_id, kind=kind, context_id=0, core_id=0,
        start=start, end=end, mtl_at_dispatch=mtl,
        phase_index=phase, pair_index=pair,
    )


class TestPairAssembler:
    def test_joins_memory_then_compute(self):
        assembler = PairAssembler()
        assert assembler.feed(
            record("M", TaskKind.MEMORY, 0.0, 1.0, mtl=2)
        ) is None
        joined = assembler.feed(record("C", TaskKind.COMPUTE, 1.0, 4.0))
        assert joined is not None
        sample, mtl = joined
        assert sample.t_m == 1.0
        assert sample.t_c == 3.0
        assert mtl == 2

    def test_compute_without_memory_is_dropped(self):
        assembler = PairAssembler()
        assert assembler.feed(record("C", TaskKind.COMPUTE, 0.0, 1.0)) is None

    def test_pairs_keyed_by_phase_and_index(self):
        assembler = PairAssembler()
        assembler.feed(record("M0", TaskKind.MEMORY, 0.0, 1.0, phase=0, pair=0))
        assembler.feed(record("M1", TaskKind.MEMORY, 0.0, 2.0, phase=1, pair=0))
        joined = assembler.feed(
            record("C1", TaskKind.COMPUTE, 2.0, 3.0, phase=1, pair=0)
        )
        sample, _ = joined
        assert sample.t_m == 2.0  # matched against phase 1's memory task

    def test_entry_consumed_after_join(self):
        assembler = PairAssembler()
        assembler.feed(record("M", TaskKind.MEMORY, 0.0, 1.0))
        assert assembler.feed(record("C", TaskKind.COMPUTE, 1.0, 2.0))
        assert assembler.feed(record("C2", TaskKind.COMPUTE, 2.0, 3.0)) is None


class TestSelectionEvents:
    def test_selection_event_contents(self):
        policy = DynamicThrottlingPolicy(context_count=4)
        simulate(synthetic_from_ratio(0.5, pairs=160), policy)
        assert len(policy.selections) == 1
        event = policy.selections[0]
        assert event.time > 0
        assert event.trigger_idle_bound == 2  # ratio 0.5 -> bound 2
        decision = event.decision
        assert decision.selected_mtl == 2
        assert decision.mtl_no_idle == 2
        assert decision.mtl_idle == 1
        assert set(decision.measurements) >= {1, 2}

    def test_straddling_pairs_are_excluded(self):
        # Pairs whose memory task ran under a different MTL than the
        # one currently being measured must not pollute windows; if
        # they did, the selector would receive mixed-MTL samples and
        # could mis-decide.  We verify indirectly: the decision's
        # measurement at each MTL reflects that MTL's latency ordering.
        policy = DynamicThrottlingPolicy(context_count=4)
        simulate(synthetic_from_ratio(0.6, pairs=200), policy)
        decision = policy.selections[0].decision
        t_m1, _ = decision.measurements[1]
        t_m2, _ = decision.measurements[2]
        assert t_m1 < t_m2  # L(1) < L(2) must survive into the windows

    def test_windows_completed_counter(self):
        policy = DynamicThrottlingPolicy(context_count=4, window_pairs=8)
        simulate(synthetic_from_ratio(0.5, pairs=200), policy)
        assert policy.windows_completed >= 2
