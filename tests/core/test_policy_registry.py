"""Unit tests for the name-keyed policy registry.

The registry is the one place the CLI, suite, and experiment layers
look policies up, so its error surface is part of the UX: every
rejection must name the offending key and list what would have been
accepted.
"""

import pytest

from repro.core.plugin import PolicyParam, register_policy
from repro.core.registry import (
    build_policy,
    parse_policy_arg,
    policy_catalogue,
    policy_entry,
    policy_names,
)
from repro.core.policies import FixedMtlPolicy
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import ConfigurationError


class TestLookup:
    def test_names_are_sorted_and_complete(self):
        names = policy_names()
        assert names == sorted(names)
        assert len(names) == 8

    def test_unknown_name_lists_the_choices(self):
        with pytest.raises(ConfigurationError, match="unknown policy kind"):
            policy_entry("bogus")
        with pytest.raises(ConfigurationError, match=r"\| offline"):
            # `offline` is deliberately outside the registry but the
            # error still advertises it (the runtime special-cases it).
            policy_entry("bogus")

    def test_entry_param_lookup(self):
        entry = policy_entry("dynamic")
        assert entry.param("window_pairs") is not None
        assert entry.param("nope") is None


class TestBuildPolicy:
    def test_builds_the_right_type_with_defaults(self):
        policy = build_policy("dynamic", 4)
        assert isinstance(policy, DynamicThrottlingPolicy)

    def test_params_forwarded(self):
        policy = build_policy("static", 4, {"mtl": 3})
        assert isinstance(policy, FixedMtlPolicy)
        assert policy.current_mtl() == 3

    def test_unknown_param_names_key_and_expectations(self):
        with pytest.raises(
            ConfigurationError, match="'warp' is not a parameter of 'dynamic'"
        ):
            build_policy("dynamic", 4, {"warp": 9})

    def test_missing_required_param_named(self):
        with pytest.raises(ConfigurationError, match="needs a 'mtl' key"):
            build_policy("static", 4)

    def test_int_param_rejects_bool_and_string(self):
        with pytest.raises(ConfigurationError, match="'mtl' must be an int"):
            build_policy("static", 4, {"mtl": True})
        with pytest.raises(ConfigurationError, match="'mtl' must be an int"):
            build_policy("static", 4, {"mtl": "2"})

    def test_float_param_accepts_int_rejects_bool(self):
        entry = policy_entry("adaptive-window")
        float_params = [p for p in entry.params if p.kind == "float"]
        assert float_params, "adaptive-window should declare a float param"
        name = float_params[0].name
        policy = build_policy("adaptive-window", 4, {name: 1})
        assert policy is not None
        with pytest.raises(ConfigurationError, match=f"{name!r} must be a number"):
            build_policy("adaptive-window", 4, {name: True})

    def test_only_supplied_params_forwarded(self):
        # Constructor defaults stay with the constructor: a registry
        # build with no params equals a bare direct call.
        direct = DynamicThrottlingPolicy(context_count=4)
        via_registry = build_policy("dynamic", 4)
        assert via_registry.window_pairs == direct.window_pairs


class TestParsePolicyArg:
    def test_bare_name(self):
        assert parse_policy_arg("conventional") == ("conventional", {})

    def test_params_parsed_to_declared_kinds(self):
        name, params = parse_policy_arg("dynamic:window_pairs=8")
        assert name == "dynamic"
        assert params == {"window_pairs": 8}
        assert isinstance(params["window_pairs"], int)

    def test_unknown_name_fails_before_params(self):
        with pytest.raises(ConfigurationError, match="unknown policy kind"):
            parse_policy_arg("bogus:window_pairs=8")

    def test_unknown_key_rejected(self):
        with pytest.raises(ConfigurationError, match="'warp'"):
            parse_policy_arg("dynamic:warp=9")

    def test_malformed_item_rejected(self):
        with pytest.raises(ConfigurationError, match="malformed policy parameter"):
            parse_policy_arg("dynamic:window_pairs")
        with pytest.raises(ConfigurationError, match="malformed policy parameter"):
            parse_policy_arg("dynamic:=8")

    def test_duplicate_key_rejected(self):
        with pytest.raises(ConfigurationError, match="given twice"):
            parse_policy_arg("dynamic:window_pairs=8,window_pairs=9")

    def test_unparsable_value_names_kind(self):
        with pytest.raises(ConfigurationError, match="must be an int, got 'two'"):
            parse_policy_arg("static:mtl=two")

    def test_roundtrip_through_build(self):
        name, params = parse_policy_arg("static:mtl=2")
        policy = build_policy(name, 4, params)
        assert policy.current_mtl() == 2


class TestCatalogue:
    def test_covers_every_name_in_order(self):
        catalogue = policy_catalogue()
        assert [e["name"] for e in catalogue] == policy_names()

    def test_entries_are_fully_documented(self):
        for entry in policy_catalogue():
            assert entry["summary"], entry["name"]
            assert entry["source"], entry["name"]
            for param in entry["params"]:
                assert param["kind"] in ("int", "float")
                assert param["doc"], (entry["name"], param["name"])
                assert param["default"], (entry["name"], param["name"])

    def test_required_params_marked(self):
        static = next(e for e in policy_catalogue() if e["name"] == "static")
        mtl = next(p for p in static["params"] if p["name"] == "mtl")
        assert mtl["default"] == "required"


class TestRegistration:
    def test_duplicate_registration_rejected(self):
        with pytest.raises(ConfigurationError, match="registered twice"):
            register_policy(
                "dynamic",
                lambda n: None,
                summary="dup",
                source="dup",
                params=(),
            )

    def test_invalid_param_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="param kind"):
            PolicyParam(name="x", kind="str", default=None, doc="d")
