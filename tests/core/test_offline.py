"""Tests for the Offline Exhaustive Search driver."""

import pytest

from repro.core.offline import offline_exhaustive_search
from repro.sim.machine import i7_860
from repro.sim.noise import GaussianNoise
from repro.stream.program import StreamProgram, build_phase

REQUESTS = 8192
L1 = i7_860().memory.request_latency(1.0)


def synthetic(ratio: float, pairs: int = 60) -> StreamProgram:
    t_c = REQUESTS * L1 / ratio
    return StreamProgram(
        f"synthetic-{ratio}", [build_phase("p", 0, pairs, REQUESTS, t_c)]
    )


class TestOfflineSearch:
    def test_searches_every_static_mtl(self):
        outcome = offline_exhaustive_search(synthetic(0.5))
        assert set(outcome.by_mtl) == {1, 2, 3, 4}

    def test_best_is_the_minimum_makespan(self):
        outcome = offline_exhaustive_search(synthetic(0.5))
        best = min(outcome.by_mtl.values(), key=lambda r: r.makespan)
        assert outcome.best.makespan == best.makespan

    @pytest.mark.parametrize("ratio,expected", [(0.10, 1), (0.50, 2), (1.50, 3)])
    def test_finds_the_analytical_s_mtl(self, ratio, expected):
        outcome = offline_exhaustive_search(synthetic(ratio))
        assert outcome.best_mtl == expected

    def test_speedup_over_conventional(self):
        outcome = offline_exhaustive_search(synthetic(0.25))
        assert outcome.speedup_over(4) > 1.05
        assert outcome.speedup_over(outcome.best_mtl) == pytest.approx(1.0)

    def test_smt_machine_searches_eight_mtls(self):
        machine = i7_860(channels=2, smt=2)
        outcome = offline_exhaustive_search(synthetic(0.5, pairs=40), machine)
        assert set(outcome.by_mtl) == set(range(1, 9))

    def test_noise_factory_called_per_run(self):
        seeds = iter(range(100))
        outcome = offline_exhaustive_search(
            synthetic(0.5, pairs=30),
            noise_factory=lambda: GaussianNoise(seed=next(seeds)),
        )
        assert len(outcome.by_mtl) == 4

    def test_makespan_accessor(self):
        outcome = offline_exhaustive_search(synthetic(0.5, pairs=30))
        assert outcome.makespan(4) == outcome.by_mtl[4].makespan
