"""Tests for the adaptive-window throttling extension."""

import pytest

from repro.core.adaptive import AdaptiveWindowThrottlingPolicy
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import ConfigurationError
from repro.sim.scheduler import conventional_policy
from repro.sim.simulator import simulate
from repro.stream.program import StreamProgram, build_phase
from repro.workloads import dft
from repro.workloads.base import REFERENCE_SOLO_LATENCY


def synthetic(ratio: float, pairs: int) -> StreamProgram:
    t_m1 = 8192 * REFERENCE_SOLO_LATENCY
    return StreamProgram(
        f"synthetic-{ratio}", [build_phase("p", 0, pairs, 8192, t_m1 / ratio)]
    )


class TestConfiguration:
    def test_name(self):
        policy = AdaptiveWindowThrottlingPolicy(context_count=4)
        assert policy.name == "adaptive-window-throttling"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AdaptiveWindowThrottlingPolicy(context_count=4, min_window=0)
        with pytest.raises(ConfigurationError):
            AdaptiveWindowThrottlingPolicy(
                context_count=4, min_window=8, max_window=4
            )
        with pytest.raises(ConfigurationError):
            AdaptiveWindowThrottlingPolicy(context_count=4, budget_fraction=0.0)


class TestWindowGrowth:
    def test_starts_at_min_window(self):
        policy = AdaptiveWindowThrottlingPolicy(context_count=4, min_window=4)
        assert policy.window_pairs == 4

    def test_window_grows_on_long_programs(self):
        policy = AdaptiveWindowThrottlingPolicy(
            context_count=4, min_window=4, max_window=24
        )
        simulate(synthetic(0.5, pairs=400), policy)
        assert policy.window_pairs > 4

    def test_window_capped_at_max(self):
        policy = AdaptiveWindowThrottlingPolicy(
            context_count=4, min_window=4, max_window=12
        )
        simulate(synthetic(0.5, pairs=400), policy)
        assert policy.window_pairs <= 12

    def test_window_stays_small_on_short_programs(self):
        policy = AdaptiveWindowThrottlingPolicy(
            context_count=4, min_window=4, budget_fraction=0.15
        )
        simulate(synthetic(0.5, pairs=30), policy)
        assert policy.window_pairs <= 8


class TestEffectiveness:
    def test_selects_the_right_mtl(self):
        policy = AdaptiveWindowThrottlingPolicy(context_count=4)
        result = simulate(synthetic(0.25, pairs=200), policy)
        assert result.dominant_mtl() == 1

    def test_beats_fixed_w16_on_dft(self):
        # dft has 96 pairs: the fixed W=16 policy spends too much of
        # the program monitoring; the adaptive policy's small bootstrap
        # window decides faster (the Figure 15 pathology, fixed).
        program = dft()
        baseline = simulate(program, conventional_policy(4)).makespan
        fixed = simulate(
            program, DynamicThrottlingPolicy(context_count=4, window_pairs=16)
        )
        adaptive = simulate(
            program, AdaptiveWindowThrottlingPolicy(context_count=4)
        )
        assert baseline / adaptive.makespan > baseline / fixed.makespan

    def test_matches_fixed_policy_on_long_programs(self):
        program = synthetic(0.5, pairs=400)
        baseline = simulate(program, conventional_policy(4)).makespan
        fixed = simulate(
            program, DynamicThrottlingPolicy(context_count=4, window_pairs=16)
        )
        adaptive = simulate(
            program, AdaptiveWindowThrottlingPolicy(context_count=4)
        )
        assert baseline / adaptive.makespan == pytest.approx(
            baseline / fixed.makespan, abs=0.02
        )
