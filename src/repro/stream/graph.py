"""Task dependency graph.

The main thread of the paper's runtime "enqueues all the memory and
compute tasks into the work queue, and sets up the dependency between
tasks" (Section V).  :class:`TaskGraph` is that dependency structure:
a validated DAG over :class:`~repro.stream.task.Task` objects with the
queries a scheduler needs — which tasks are ready given a completed
set, and a topological order for sequential (functional) execution.
"""

from __future__ import annotations

from collections import deque
from typing import AbstractSet, Dict, Iterable, Iterator, List

from repro.errors import TaskGraphError
from repro.stream.task import Task

__all__ = ["TaskGraph"]


class TaskGraph:
    """A validated DAG of stream tasks.

    Construction validates that task ids are unique, every dependency
    names an existing task, and the graph is acyclic; a malformed graph
    raises :class:`~repro.errors.TaskGraphError` immediately rather
    than failing mid-simulation.
    """

    def __init__(self, tasks: Iterable[Task]) -> None:
        self._tasks: Dict[str, Task] = {}
        for task in tasks:
            if task.task_id in self._tasks:
                raise TaskGraphError(f"duplicate task id {task.task_id!r}")
            self._tasks[task.task_id] = task

        self._dependents: Dict[str, List[str]] = {tid: [] for tid in self._tasks}
        for task in self._tasks.values():
            for dep in task.depends_on:
                if dep not in self._tasks:
                    raise TaskGraphError(
                        f"task {task.task_id!r} depends on unknown task {dep!r}"
                    )
                if dep == task.task_id:
                    raise TaskGraphError(
                        f"task {task.task_id!r} depends on itself"
                    )
                self._dependents[dep].append(task.task_id)

        self._order = self._topological_order()
        # Completion handling asks for dependents once per task per
        # run, and one graph is reused across many runs (the offline
        # search sweeps every MTL over the same graph) — so resolve
        # the id lists to task lists once, up front.
        self._dependent_tasks: Dict[str, List[Task]] = {
            tid: [self._tasks[t] for t in ids]
            for tid, ids in self._dependents.items()
        }
        # Work-queue seeds, cached for the same reason: every run
        # builds a fresh queue over this graph, and both of these are
        # pure functions of it.
        self._initial_dep_counts: Dict[str, int] = {
            tid: len(task.depends_on) for tid, task in self._tasks.items()
        }
        self._roots: List[Task] = [
            task for task in self._order if not task.depends_on
        ]

    def __len__(self) -> int:
        return len(self._tasks)

    def __contains__(self, task_id: str) -> bool:
        return task_id in self._tasks

    def __iter__(self) -> Iterator[Task]:
        return iter(self._tasks.values())

    def task(self, task_id: str) -> Task:
        """Look up a task by id."""
        try:
            return self._tasks[task_id]
        except KeyError:
            raise TaskGraphError(f"unknown task id {task_id!r}") from None

    def dependents(self, task_id: str) -> List[Task]:
        """Tasks that list ``task_id`` as a dependency."""
        try:
            return self._dependent_tasks[task_id]
        except KeyError:
            raise TaskGraphError(f"unknown task id {task_id!r}") from None

    def ready_tasks(self, completed: AbstractSet[str]) -> List[Task]:
        """Tasks whose dependencies are all in ``completed``.

        Already-completed tasks are excluded.  The result preserves
        insertion (enqueue) order, matching the FIFO work queue of the
        paper's runtime.
        """
        ready = []
        for task in self._tasks.values():
            if task.task_id in completed:
                continue
            if all(dep in completed for dep in task.depends_on):
                ready.append(task)
        return ready

    def initial_dependency_counts(self) -> Dict[str, int]:
        """Fresh ``task_id -> len(depends_on)`` map (a new dict each
        call; work queues decrement their copy as tasks complete)."""
        return dict(self._initial_dep_counts)

    def root_tasks(self) -> List[Task]:
        """Dependency-free tasks in topological (enqueue) order.

        The returned list is shared — callers must not mutate it.
        """
        return self._roots

    def topological_order(self) -> List[Task]:
        """Tasks in an order consistent with all dependencies."""
        return list(self._order)

    def _topological_order(self) -> List[Task]:
        in_degree = {tid: len(t.depends_on) for tid, t in self._tasks.items()}
        queue = deque(tid for tid, deg in in_degree.items() if deg == 0)
        order: List[Task] = []
        while queue:
            tid = queue.popleft()
            order.append(self._tasks[tid])
            for dependent in self._dependents[tid]:
                in_degree[dependent] -= 1
                if in_degree[dependent] == 0:
                    queue.append(dependent)
        if len(order) != len(self._tasks):
            stuck = sorted(tid for tid, deg in in_degree.items() if deg > 0)
            raise TaskGraphError(f"dependency cycle involving tasks {stuck}")
        return order

    def critical_path_ids(self) -> List[str]:
        """Longest dependency chain, by task count.

        Useful for diagnosing workloads whose parallelism is too
        shallow to benefit from throttling.
        """
        depth: Dict[str, int] = {}
        parent: Dict[str, str] = {}
        for task in self._order:
            best_dep = None
            best = 0
            for dep in task.depends_on:
                if depth[dep] >= best:
                    best = depth[dep]
                    best_dep = dep
            depth[task.task_id] = best + 1
            if best_dep is not None:
                parent[task.task_id] = best_dep
        if not depth:
            return []
        tail = max(depth, key=lambda tid: depth[tid])
        path = [tail]
        while path[-1] in parent:
            path.append(parent[path[-1]])
        path.reverse()
        return path
