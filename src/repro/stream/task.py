"""Task model for decoupled stream programs.

A *task* is the scheduling unit of the whole system.  Following the
paper's terminology (Section II), a **memory task** performs the
gather/scatter half of a stream pair — it streams a footprint of data
between DRAM and the last-level cache and is characterised by its
off-chip request count.  A **compute task** performs the compute half —
it operates on cached data and is characterised by its CPU time.  When
the stream-programming footprint contract is violated (Figure 13(c) of
the paper), a compute task additionally carries off-chip requests of
its own, which is why both demand fields exist on every task.

Tasks are deliberately *descriptive*: they carry resource demands, not
behaviour.  The machine simulator turns demands into durations using
the memory system's contention state at run time.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import ConfigurationError
from repro.memory.equilibrium import MemoryDemand

__all__ = ["TaskKind", "Task", "TaskPair", "memory_task", "compute_task"]


class TaskKind(enum.Enum):
    """Role of a task in its stream pair."""

    MEMORY = "memory"
    COMPUTE = "compute"


@dataclass(frozen=True)
class Task:
    """One schedulable unit of work.

    Attributes:
        task_id: Unique identifier within a program (e.g. ``"M[2.7]"``).
        kind: Memory or compute role; the MTL gate applies only to
            :attr:`TaskKind.MEMORY` tasks.
        cpu_seconds: Pure CPU time at full core speed (zero for memory
            tasks, whose streaming loop is memory-bound).
        memory_requests: Off-chip 64-byte requests the task issues.
            This is the footprint line count for a memory task and the
            spilled request count for an over-footprint compute task.
        footprint_bytes: Bytes of stream data the task touches; used by
            the LLC model and for reporting.
        pair_index: Index of the pair this task belongs to within its
            phase.
        phase_index: Index of the program phase the task belongs to.
        depends_on: Task ids that must complete before this one starts.
    """

    task_id: str
    kind: TaskKind
    cpu_seconds: float = 0.0
    memory_requests: float = 0.0
    footprint_bytes: int = 0
    pair_index: int = 0
    phase_index: int = 0
    depends_on: Tuple[str, ...] = field(default=())
    # Derived, write-once in __post_init__ (see there); declared as
    # non-init fields so the attributes are typed without entering
    # __init__, equality, or repr.  Deliberately plain attributes, not
    # properties: the simulator reads them at dispatch and completion
    # rate, and a property's descriptor call is measurable there.
    #: Whether this is a memory (gather/scatter) task; the MTL gate
    #: applies only to these.
    is_memory: bool = field(init=False, repr=False, compare=False)
    #: Total abstract work units the simulator must retire.  A task is
    #: a pipeline of unit-sized steps; each step costs
    #: ``cpu_seconds / work_units`` CPU time plus
    #: ``memory_requests / work_units`` off-chip requests at the
    #: prevailing latency.  The ``max`` in ``__post_init__`` keeps the
    #: unit granularity fine enough for both demand kinds.
    work_units: float = field(init=False, repr=False, compare=False)
    #: Per-work-unit resource demand — one shared (frozen) instance
    #: per task, so dispatching the same task repeatedly never
    #: rebuilds it.  :meth:`demand` returns this.
    unit_demand: MemoryDemand = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if not self.task_id:
            raise ConfigurationError("task_id must be non-empty")
        if self.cpu_seconds < 0:
            raise ConfigurationError(
                f"cpu_seconds must be non-negative, got {self.cpu_seconds}"
            )
        if self.memory_requests < 0:
            raise ConfigurationError(
                f"memory_requests must be non-negative, got {self.memory_requests}"
            )
        if self.footprint_bytes < 0:
            raise ConfigurationError(
                f"footprint_bytes must be non-negative, got {self.footprint_bytes}"
            )
        if self.cpu_seconds == 0 and self.memory_requests == 0:
            raise ConfigurationError(
                f"task {self.task_id!r} has no work (zero CPU time and zero requests)"
            )
        # Every field is frozen, so the derived quantities the
        # simulator reads on each dispatch are computed exactly once
        # (attached behind the frozen dataclass's back; excluded from
        # equality and repr, consistent values under pickling).
        units = max(self.cpu_seconds * 1e9, self.memory_requests, 1.0)
        object.__setattr__(self, "is_memory", self.kind is TaskKind.MEMORY)
        object.__setattr__(self, "work_units", units)
        object.__setattr__(
            self,
            "unit_demand",
            MemoryDemand(
                cpu_seconds_per_unit=self.cpu_seconds / units,
                requests_per_unit=self.memory_requests / units,
            ),
        )

    @property
    def is_compute(self) -> bool:
        return not self.is_memory

    def demand(self) -> MemoryDemand:
        """Per-work-unit resource demand for the equilibrium solver.

        Returns :attr:`unit_demand`, one shared (frozen) instance per
        task, so dispatching the same task repeatedly never rebuilds
        it."""
        return self.unit_demand

    def duration_at_latency(self, request_latency: float) -> float:
        """Wall-clock duration if the request latency stayed constant.

        The simulator integrates this incrementally as contention
        changes; this closed form is what tests and the analytical
        model use for steady-state checks.
        """
        if request_latency < 0:
            raise ConfigurationError(
                f"request_latency must be non-negative, got {request_latency}"
            )
        return self.cpu_seconds + self.memory_requests * request_latency


@dataclass(frozen=True)
class TaskPair:
    """A gather/scatter memory task and its dependent compute task."""

    memory: Task
    compute: Task

    def __post_init__(self) -> None:
        if not self.memory.is_memory:
            raise ConfigurationError(
                f"pair's memory slot holds a {self.memory.kind.value} task"
            )
        if not self.compute.is_compute:
            raise ConfigurationError(
                f"pair's compute slot holds a {self.compute.kind.value} task"
            )
        if self.memory.task_id not in self.compute.depends_on:
            raise ConfigurationError(
                f"compute task {self.compute.task_id!r} does not depend on its "
                f"memory task {self.memory.task_id!r}"
            )

    @property
    def pair_index(self) -> int:
        return self.memory.pair_index

    @property
    def phase_index(self) -> int:
        return self.memory.phase_index


def memory_task(
    task_id: str,
    requests: float,
    footprint_bytes: int = 0,
    pair_index: int = 0,
    phase_index: int = 0,
    depends_on: Tuple[str, ...] = (),
) -> Task:
    """Create a pure memory (gather/scatter) task."""
    return Task(
        task_id=task_id,
        kind=TaskKind.MEMORY,
        cpu_seconds=0.0,
        memory_requests=requests,
        footprint_bytes=footprint_bytes,
        pair_index=pair_index,
        phase_index=phase_index,
        depends_on=depends_on,
    )


def compute_task(
    task_id: str,
    cpu_seconds: float,
    spilled_requests: float = 0.0,
    footprint_bytes: int = 0,
    pair_index: int = 0,
    phase_index: int = 0,
    depends_on: Tuple[str, ...] = (),
) -> Task:
    """Create a compute task, optionally with off-chip spill traffic.

    ``spilled_requests`` is non-zero only when the footprint contract
    is violated; the workload generators compute it from the LLC
    model's miss fraction.
    """
    return Task(
        task_id=task_id,
        kind=TaskKind.COMPUTE,
        cpu_seconds=cpu_seconds,
        memory_requests=spilled_requests,
        footprint_bytes=footprint_bytes,
        pair_index=pair_index,
        phase_index=phase_index,
        depends_on=depends_on,
    )
