"""Stream programming substrate.

The paper's mechanism operates on applications written in the
*gather-compute-scatter* style (Section II): *memory tasks* move data
between DRAM and the last-level cache, *compute tasks* operate on the
cached data, and the two are paired one-to-one with the compute task
depending on its memory task.

This package provides:

* :mod:`repro.stream.task` — the task model (memory/compute tasks,
  pairs, resource demands);
* :mod:`repro.stream.graph` — dependency graphs with cycle and
  dangling-edge validation, topological ordering, and ready-set
  queries;
* :mod:`repro.stream.program` — phased stream programs (a phase is a
  set of independent task pairs; phases are separated by barriers, the
  structure of SIFT's sequence of parallel functions);
* :mod:`repro.stream.builder` — decomposition of flat array loops into
  equally-sized task pairs (Figure 3 of the paper);
* :mod:`repro.stream.kernels` — *executable* numpy gather/compute/
  scatter kernels demonstrating the programming model on real data.
"""

from repro.stream.builder import decompose_loop
from repro.stream.graph import TaskGraph
from repro.stream.program import ProgramPhase, StreamProgram
from repro.stream.task import Task, TaskKind, TaskPair, compute_task, memory_task

__all__ = [
    "ProgramPhase",
    "StreamProgram",
    "Task",
    "TaskGraph",
    "TaskKind",
    "TaskPair",
    "compute_task",
    "decompose_loop",
    "memory_task",
]
