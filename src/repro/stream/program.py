"""Phased stream programs.

A :class:`StreamProgram` is the unit the experiments run: an ordered
sequence of :class:`ProgramPhase` objects, each holding ``t``
independent memory/compute task pairs (Figure 3(b) of the paper).
Phases model the structure of real workloads — SIFT, for instance, is
a sequence of parallel functions with very different memory-to-compute
ratios (Table III), and each function is one phase.  A barrier
separates phases: no task of phase ``i+1`` may start before every task
of phase ``i`` completes, which is how ``pthread_join``-style parallel
sections behave.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import ConfigurationError, WorkloadError
from repro.stream.graph import TaskGraph
from repro.stream.task import Task, TaskPair, compute_task, memory_task

__all__ = ["ProgramPhase", "StreamProgram", "build_phase"]


@dataclass(frozen=True)
class ProgramPhase:
    """One parallel section: ``t`` independent task pairs.

    Attributes:
        name: Human-readable phase name (e.g. ``"ECONVOLVE"``).
        pairs: The phase's task pairs; all memory tasks are mutually
            independent, and each compute task depends only on its
            memory task (plus the implicit phase barrier).
    """

    name: str
    pairs: Tuple[TaskPair, ...]

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("phase name must be non-empty")
        if not self.pairs:
            raise ConfigurationError(f"phase {self.name!r} has no task pairs")

    @property
    def pair_count(self) -> int:
        return len(self.pairs)

    def mean_memory_requests(self) -> float:
        return sum(p.memory.memory_requests for p in self.pairs) / len(self.pairs)

    def mean_compute_seconds(self) -> float:
        return sum(p.compute.cpu_seconds for p in self.pairs) / len(self.pairs)

    def memory_to_compute_ratio(self, request_latency: float) -> float:
        """``T_m1 / T_c`` of this phase at a given solo request latency.

        This is the workload characteristic the paper tabulates
        (Tables II and III) and the throttler monitors.
        """
        t_c = self.mean_compute_seconds()
        if t_c <= 0:
            raise WorkloadError(
                f"phase {self.name!r} has zero compute time; the ratio is undefined"
            )
        return self.mean_memory_requests() * request_latency / t_c


class StreamProgram:
    """An ordered sequence of phases forming one application."""

    def __init__(self, name: str, phases: Sequence[ProgramPhase]) -> None:
        if not name:
            raise ConfigurationError("program name must be non-empty")
        if not phases:
            raise ConfigurationError(f"program {name!r} has no phases")
        self.name = name
        self.phases: Tuple[ProgramPhase, ...] = tuple(phases)

    @property
    def total_pairs(self) -> int:
        return sum(phase.pair_count for phase in self.phases)

    def all_pairs(self) -> List[TaskPair]:
        return [pair for phase in self.phases for pair in phase.pairs]

    def to_task_graph(self) -> TaskGraph:
        """Flatten into a validated task graph with phase barriers.

        The barrier is encoded by making every memory task of phase
        ``i+1`` depend on every compute task of phase ``i``; this is
        exactly the join semantics of consecutive parallel sections.
        """
        tasks: List[Task] = []
        previous_compute_ids: Tuple[str, ...] = ()
        for phase in self.phases:
            current_compute_ids: List[str] = []
            for pair in phase.pairs:
                barrier_deps = tuple(previous_compute_ids) + pair.memory.depends_on
                gated_memory = Task(
                    task_id=pair.memory.task_id,
                    kind=pair.memory.kind,
                    cpu_seconds=pair.memory.cpu_seconds,
                    memory_requests=pair.memory.memory_requests,
                    footprint_bytes=pair.memory.footprint_bytes,
                    pair_index=pair.memory.pair_index,
                    phase_index=pair.memory.phase_index,
                    depends_on=barrier_deps,
                )
                tasks.append(gated_memory)
                tasks.append(pair.compute)
                current_compute_ids.append(pair.compute.task_id)
            previous_compute_ids = tuple(current_compute_ids)
        return TaskGraph(tasks)


def build_phase(
    name: str,
    phase_index: int,
    pair_count: int,
    requests_per_memory_task: float,
    compute_seconds_per_task: float,
    footprint_bytes: int = 0,
    compute_spill_requests: float = 0.0,
) -> ProgramPhase:
    """Construct a phase of ``pair_count`` equally-sized task pairs.

    This is the "equally-sized and cache-friendly" decomposition the
    paper's stream rewriting produces (Section I); all memory tasks of
    the phase are identical, as are all compute tasks.
    """
    if pair_count <= 0:
        raise ConfigurationError(f"pair_count must be positive, got {pair_count}")
    pairs: List[TaskPair] = []
    for i in range(pair_count):
        memory_id = f"M[{phase_index}.{i}]"
        compute_id = f"C[{phase_index}.{i}]"
        mem = memory_task(
            memory_id,
            requests=requests_per_memory_task,
            footprint_bytes=footprint_bytes,
            pair_index=i,
            phase_index=phase_index,
        )
        comp = compute_task(
            compute_id,
            cpu_seconds=compute_seconds_per_task,
            spilled_requests=compute_spill_requests,
            footprint_bytes=footprint_bytes,
            pair_index=i,
            phase_index=phase_index,
            depends_on=(memory_id,),
        )
        pairs.append(TaskPair(memory=mem, compute=comp))
    return ProgramPhase(name=name, pairs=tuple(pairs))
