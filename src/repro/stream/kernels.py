"""Executable gather-compute-scatter kernels.

Figure 2 of the paper introduces the stream programming style with a
pseudo-code example: arrays ``a`` and ``b`` are *gathered* into
streams, kernels ``k1`` and ``k2`` compute ``y = (a + b) * a`` keeping
the intermediate ``x`` local, and the result is *scattered* back.

This module implements that example — and the synthetic kernel of
Figure 12 — as real numpy operations, so the examples can demonstrate
that the decomposed program computes the same values as the original
loop.  Functional execution is orthogonal to timing: the simulator
models *when* tasks run; these kernels show *what* they compute.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Set

import numpy as np

from repro.errors import TaskGraphError, WorkloadError
from repro.stream.graph import TaskGraph

__all__ = [
    "gather",
    "scatter",
    "figure2_original",
    "figure2_streamed",
    "figure12_original",
    "figure12_streamed",
    "FunctionalExecutor",
]


def gather(array: np.ndarray, start: int, end: int) -> np.ndarray:
    """Gather ``array[start:end]`` into a local stream (a copy).

    The copy is the point: a gather materialises the data into on-chip
    storage, after which the compute kernel touches only the stream.
    """
    if not 0 <= start <= end <= len(array):
        raise WorkloadError(
            f"gather range [{start}, {end}) invalid for array of length {len(array)}"
        )
    return array[start:end].copy()


def scatter(stream: np.ndarray, array: np.ndarray, start: int) -> None:
    """Scatter a local stream back to ``array[start:start+len(stream)]``."""
    end = start + len(stream)
    if not 0 <= start <= end <= len(array):
        raise WorkloadError(
            f"scatter range [{start}, {end}) invalid for array of length {len(array)}"
        )
    array[start:end] = stream


def figure2_original(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """The original loops of Figure 2(a): ``x = a + b; y = x * a``."""
    if a.shape != b.shape:
        raise WorkloadError(f"shape mismatch: {a.shape} vs {b.shape}")
    x = a + b
    return x * a


def figure2_streamed(
    a: np.ndarray, b: np.ndarray, tile_elements: int
) -> np.ndarray:
    """The stream version of Figure 2(a), tiled into gather/compute/scatter.

    Kernels ``k1`` (add) and ``k2`` (multiply) run back to back on each
    gathered tile; the intermediate stream ``xs`` never leaves the tile.
    """
    if a.shape != b.shape:
        raise WorkloadError(f"shape mismatch: {a.shape} vs {b.shape}")
    if tile_elements <= 0:
        raise WorkloadError(f"tile_elements must be positive, got {tile_elements}")
    y = np.empty_like(a)
    n = len(a)
    for start in range(0, n, tile_elements):
        end = min(start + tile_elements, n)
        as_ = gather(a, start, end)          # gather(as, a)
        bs = gather(b, start, end)           # gather(bs, b)
        xs = as_ + bs                        # kernel k1
        ys = xs * as_                        # kernel k2
        scatter(ys, y, start)                # scatter(y, ys)
    return y


def figure12_original(length: int, count: int, const: float = 1.0) -> np.ndarray:
    """The synthetic kernel of Figure 12 as plain loops.

    Memory half: ``A[i] = Const``.  Compute half: ``count`` passes of
    ``A[i] += k``.
    """
    if length <= 0:
        raise WorkloadError(f"length must be positive, got {length}")
    if count < 0:
        raise WorkloadError(f"count must be non-negative, got {count}")
    a = np.full(length, const, dtype=np.float64)
    for k in range(count):
        a += k
    return a


def figure12_streamed(
    length: int, count: int, tile_elements: int, const: float = 1.0
) -> np.ndarray:
    """The synthetic kernel of Figure 12 in stream style."""
    if tile_elements <= 0:
        raise WorkloadError(f"tile_elements must be positive, got {tile_elements}")
    a = np.empty(length, dtype=np.float64)
    for start in range(0, length, tile_elements):
        end = min(start + tile_elements, length)
        stream = np.full(end - start, const, dtype=np.float64)  # memory task
        for k in range(count):                                  # compute task
            stream += k
        scatter(stream, a, start)
    return a


@dataclass
class FunctionalExecutor:
    """Sequential functional executor for a task graph.

    Binds task ids to Python callables and runs them in a dependency-
    respecting order, verifying at each step that no task runs before
    its dependencies — a reference implementation against which the
    timed simulator's ordering is cross-checked in tests.
    """

    graph: TaskGraph
    actions: Dict[str, Callable[[], None]] = field(default_factory=dict)
    executed: List[str] = field(default_factory=list)

    def bind(self, task_id: str, action: Callable[[], None]) -> None:
        if task_id not in self.graph:
            raise TaskGraphError(f"cannot bind unknown task {task_id!r}")
        self.actions[task_id] = action

    def run(self) -> List[str]:
        """Execute all bound actions in topological order.

        Returns the execution order.  Tasks without a bound action are
        treated as no-ops (pure scheduling placeholders).
        """
        completed: Set[str] = set()
        for task in self.graph.topological_order():
            missing = [d for d in task.depends_on if d not in completed]
            if missing:
                raise TaskGraphError(
                    f"task {task.task_id!r} scheduled before dependencies {missing}"
                )
            action = self.actions.get(task.task_id)
            if action is not None:
                action()
            completed.add(task.task_id)
            self.executed.append(task.task_id)
        return list(self.executed)
