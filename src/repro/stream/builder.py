"""Loop decomposition into equally-sized stream task pairs.

Figure 3 of the paper shows the transformation this module automates:
a data-parallel loop over a large array, expressed as one memory task
``M1`` and one compute task ``C1``, is forked into ``n`` equally-sized
memory tasks and their dependent compute tasks.  The footprint of each
memory task is chosen to respect the last-level-cache contract; when
the requested tile violates it, the builder either shrinks the tile or
(matching the paper's deliberate Figure 13(c) experiment) attaches the
spilled traffic to the compute tasks.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError, WorkloadError
from repro.memory.cache import LastLevelCache
from repro.stream.program import ProgramPhase, build_phase
from repro.units import cache_lines

__all__ = ["decompose_loop"]


def decompose_loop(
    name: str,
    total_bytes: int,
    tile_bytes: int,
    compute_seconds_per_byte: float,
    phase_index: int = 0,
    cache: Optional[LastLevelCache] = None,
    allow_spill: bool = False,
) -> ProgramPhase:
    """Split a flat array loop into equally-sized task pairs.

    Args:
        name: Phase name for reporting.
        total_bytes: Total array footprint the loop traverses.
        tile_bytes: Footprint of each memory task (the gather tile).
        compute_seconds_per_byte: CPU time the compute half spends per
            byte of gathered data; scales the ``T_m/T_c`` ratio.
        phase_index: Position of this phase in the enclosing program.
        cache: Optional LLC model used to check the footprint contract.
        allow_spill: When the tile overflows the cache share, attach
            the spilled requests to the compute tasks (``True``) or
            refuse the decomposition (``False``).

    Returns:
        A :class:`~repro.stream.program.ProgramPhase` of
        ``ceil(total_bytes / tile_bytes)`` equally-sized pairs.

    Raises:
        WorkloadError: If the tile violates the cache contract and
            ``allow_spill`` is false, or the loop is empty.
    """
    if total_bytes <= 0:
        raise WorkloadError(f"loop over {total_bytes} bytes has no work")
    if tile_bytes <= 0:
        raise ConfigurationError(f"tile_bytes must be positive, got {tile_bytes}")
    if compute_seconds_per_byte < 0:
        raise ConfigurationError(
            "compute_seconds_per_byte must be non-negative, got "
            f"{compute_seconds_per_byte}"
        )

    tile = min(tile_bytes, total_bytes)
    pair_count = (total_bytes + tile - 1) // tile

    spill_requests = 0.0
    if cache is not None and not cache.fits(tile):
        if not allow_spill:
            raise WorkloadError(
                f"tile of {tile} bytes exceeds the per-core cache share of "
                f"{cache.per_core_share_bytes} bytes; shrink the tile or pass "
                "allow_spill=True"
            )
        spill_requests = cache.miss_fraction(tile) * cache_lines(tile)

    compute_seconds = compute_seconds_per_byte * tile
    if compute_seconds <= 0:
        raise WorkloadError(
            f"loop {name!r} has zero compute time per tile; a stream pair "
            "needs a non-empty compute half"
        )
    return build_phase(
        name=name,
        phase_index=phase_index,
        pair_count=pair_count,
        requests_per_memory_task=float(cache_lines(tile)),
        compute_seconds_per_task=compute_seconds,
        footprint_bytes=tile,
        compute_spill_requests=spill_requests,
    )
