"""The run-time memory thread throttling mechanism (Section IV).

:class:`DynamicThrottlingPolicy` is the paper's contribution assembled
into a scheduling policy: it monitors ``W`` memory/compute task pairs
at the current MTL, detects phase changes through the IdleBound
criterion, and on a phase change binary-searches the two candidate
MTLs with the analytical model, committing the winner (*D-MTL*) for
the next phase.

The policy is driven purely by task-completion callbacks, just as the
real implementation is driven by ``gettimeofday()`` brackets around
tasks.  While a selection is in flight the policy *runs* the program
at each probe MTL for a window of ``W`` pairs — the monitoring
overhead is physically simulated, not modelled away — and those tasks
are flagged ``probe`` for overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.model import AnalyticalModel
from repro.core.phase import PairSample, PhaseChangeDetector
from repro.core.plugin import PolicyParam, ThrottlePolicyPlugin, register_policy
from repro.core.selection import MtlDecision, MtlSelector
from repro.errors import ConfigurationError
from repro.sim.events import TaskRecord

__all__ = ["DynamicThrottlingPolicy", "PairAssembler", "SelectionEvent"]


@dataclass(frozen=True)
class SelectionEvent:
    """One completed MTL selection, for reporting."""

    time: float
    trigger_idle_bound: int
    decision: MtlDecision


@dataclass
class PairAssembler:
    """Joins memory and compute records into pair samples.

    A sample is valid only when its memory task ran under the MTL the
    policy is currently measuring; pairs dispatched across an MTL
    switch are dropped, mirroring the paper's exclusion of non-steady
    measurements.
    """

    pending_memory: Dict[Tuple[int, int], Tuple[float, int]] = field(
        default_factory=dict
    )

    def feed(self, record: TaskRecord) -> Optional[Tuple[PairSample, int]]:
        key = (record.phase_index, record.pair_index)
        if record.is_memory:
            self.pending_memory[key] = (record.duration, record.mtl_at_dispatch)
            return None
        entry = self.pending_memory.pop(key, None)
        if entry is None:
            return None
        t_m, mtl = entry
        return PairSample(t_m=t_m, t_c=record.duration), mtl


class DynamicThrottlingPolicy(ThrottlePolicyPlugin):
    """The paper's dynamic memory thread throttling mechanism.

    Args:
        context_count: Schedulable contexts ``n`` (the analytical
            model's core count).
        window_pairs: ``W`` — pairs monitored per estimation window
            (the paper sweeps 4..24 and finds 16 adequate for its
            larger workloads, 8 for dft; Figure 15).
        initial_mtl: Starting constraint; defaults to ``n``
            (unthrottled), so the first window measures ``T_mn``.
        name: Plugin name (overridden by subclasses).
    """

    def __init__(
        self,
        context_count: int,
        window_pairs: int = 16,
        initial_mtl: Optional[int] = None,
        *,
        name: str = "dynamic-throttling",
    ) -> None:
        super().__init__(name)
        if context_count < 1:
            raise ConfigurationError(
                f"context_count must be >= 1, got {context_count}"
            )
        self._model = AnalyticalModel(core_count=context_count)
        self._detector = PhaseChangeDetector(self._model, window_pairs=window_pairs)
        self._assembler = PairAssembler()
        self._mtl = initial_mtl if initial_mtl is not None else context_count
        if not 1 <= self._mtl <= context_count:
            raise ConfigurationError(
                f"initial_mtl {self._mtl} outside [1, {context_count}]"
            )
        self._selector: Optional[MtlSelector] = None
        self._probe_window: List[PairSample] = []
        self._window_pairs = window_pairs
        self.selections: List[SelectionEvent] = []
        self._pending_trigger_bound: Optional[int] = None

    @property
    def window_pairs(self) -> int:
        return self._window_pairs

    @property
    def windows_completed(self) -> int:
        return self._detector.windows_completed

    def current_mtl(self) -> int:
        return self._mtl

    def is_probing(self) -> bool:
        return self._selector is not None

    def on_task_complete(self, record: TaskRecord, now: float) -> None:
        joined = self._assembler.feed(record)
        if joined is None:
            return
        sample, sample_mtl = joined
        if sample_mtl != self._mtl:
            return  # pair straddled an MTL switch; not a steady sample

        if self._selector is None:
            self._monitor(sample, now)
        else:
            self._probe(sample, now)

    # -- monitoring ----------------------------------------------------

    def _monitor(self, sample: PairSample, now: float) -> None:
        window = self._detector.observe(sample)
        if window is None:
            return
        self.on_window_close(now)
        if not window.phase_changed:
            return
        self.on_phase_change(now)
        # Phase change: start a selection, seeded with the window just
        # measured at the current MTL (no wasted re-measurement).
        selector = MtlSelector(self._model)
        selector.provide(self._mtl, window.t_m, window.t_c)
        self._pending_trigger_bound = window.idle_bound
        self._finish_or_continue_selection(selector, now)

    # -- probing -------------------------------------------------------

    def _probe(self, sample: PairSample, now: float) -> None:
        self._probe_window.append(sample)
        if len(self._probe_window) < self._window_pairs:
            return
        t_m = sum(s.t_m for s in self._probe_window) / len(self._probe_window)
        t_c = sum(s.t_c for s in self._probe_window) / len(self._probe_window)
        self._probe_window.clear()
        self.on_window_close(now)
        assert self._selector is not None
        self._selector.provide(self._mtl, t_m, t_c)
        self._finish_or_continue_selection(self._selector, now)

    def _finish_or_continue_selection(
        self, selector: MtlSelector, now: float
    ) -> None:
        next_probe = selector.next_probe()
        if next_probe is not None:
            self._selector = selector
            self._mtl = next_probe
            self._probe_window.clear()
            return
        decision = selector.decision()
        self.selections.append(
            SelectionEvent(
                time=now,
                trigger_idle_bound=self._pending_trigger_bound or 0,
                decision=decision,
            )
        )
        self.on_selection(now, decision.selected_mtl)
        self._selector = None
        self._mtl = decision.selected_mtl
        # The reference IdleBound the monitor compares against must be
        # the bound as measured at the *selected* MTL, else the very
        # next window would re-trigger.
        t_m, t_c = decision.measurements[decision.selected_mtl]
        self._detector.set_reference(self._model.idle_bound(t_m, t_c))
        self._detector.reset_window()


def _build_dynamic(context_count: int, **params: object) -> DynamicThrottlingPolicy:
    return DynamicThrottlingPolicy(context_count, **params)  # type: ignore[arg-type]


register_policy(
    "dynamic",
    _build_dynamic,
    summary=(
        "The paper's D-MTL: IdleBound phase detection plus "
        "model-guided binary search over candidate MTLs"
    ),
    source="MICRO 2010 §IV (D-MTL)",
    params=(
        PolicyParam("window_pairs", "int", "16", "pairs per estimation window"),
        PolicyParam("initial_mtl", "int", "n", "starting constraint"),
    ),
)
