"""Adaptive-window throttling — an extension motivated by Figure 15.

The paper's W sensitivity study shows that the right monitoring window
depends on how much parallel work the program has: dft (96 pairs)
wants W <= 8 while streamcluster and SIFT are happy at W = 16, and the
paper simply reports the best W per workload.  A deployed runtime
cannot be hand-tuned per workload, so this extension sizes the window
from what the mechanism can observe on its own: the number of pairs
the current phase has completed so far.

Policy: start with a small bootstrap window (fast first decision, the
dft case), then grow the window geometrically up to ``max_window`` as
completed pairs accumulate (the streamcluster/SIFT case, where longer
windows buy accuracy at negligible relative cost).  The growth rule
keeps total monitoring below ``budget_fraction`` of the pairs seen.
"""

from __future__ import annotations

from repro.core.plugin import PolicyParam, register_policy
from repro.core.throttle import DynamicThrottlingPolicy
from repro.errors import ConfigurationError
from repro.sim.events import TaskRecord

__all__ = ["AdaptiveWindowThrottlingPolicy"]


class AdaptiveWindowThrottlingPolicy(DynamicThrottlingPolicy):
    """Dynamic throttling with a self-sizing monitoring window.

    Args:
        context_count: Schedulable contexts ``n``.
        min_window: Bootstrap window (pairs) used until enough pairs
            have completed to justify more monitoring.
        max_window: Ceiling on the window size.
        budget_fraction: Target ceiling on the fraction of completed
            pairs spent inside monitoring windows; the window grows
            only while staying within it.
    """

    def __init__(
        self,
        context_count: int,
        min_window: int = 4,
        max_window: int = 24,
        budget_fraction: float = 0.15,
    ) -> None:
        if min_window < 1:
            raise ConfigurationError(f"min_window must be >= 1, got {min_window}")
        if max_window < min_window:
            raise ConfigurationError(
                f"max_window ({max_window}) must be >= min_window ({min_window})"
            )
        if not 0.0 < budget_fraction <= 1.0:
            raise ConfigurationError(
                f"budget_fraction must be in (0, 1], got {budget_fraction}"
            )
        super().__init__(
            context_count=context_count,
            window_pairs=min_window,
            name="adaptive-window-throttling",
        )
        self._min_window = min_window
        self._max_window = max_window
        self._budget_fraction = budget_fraction
        self._pairs_seen = 0
        self.stats.register("window_growths")

    def on_task_complete(self, record: TaskRecord, now: float) -> None:
        if record.is_memory:
            super().on_task_complete(record, now)
            return
        self._pairs_seen += 1
        self._maybe_grow_window()
        super().on_task_complete(record, now)

    def _maybe_grow_window(self) -> None:
        """Grow W while the monitoring budget allows it.

        A window of W pairs per estimation event stays within the
        budget when ``W <= budget_fraction * pairs_seen``; growth is
        applied between windows only (the detector's partial window is
        preserved by never shrinking).
        """
        affordable = int(self._budget_fraction * self._pairs_seen)
        target = max(self._min_window, min(affordable, self._max_window))
        if target > self._window_pairs:
            self._window_pairs = target
            self._detector.grow_window(target)
            self.stats.add("window_growths")


def _build_adaptive(
    context_count: int, **params: object
) -> AdaptiveWindowThrottlingPolicy:
    return AdaptiveWindowThrottlingPolicy(context_count, **params)  # type: ignore[arg-type]


register_policy(
    "adaptive-window",
    _build_adaptive,
    summary=(
        "D-MTL with a self-sizing monitoring window grown from a "
        "per-run monitoring budget"
    ),
    source="this repo (Figure 15 extension)",
    params=(
        PolicyParam("min_window", "int", "4", "bootstrap window (pairs)"),
        PolicyParam("max_window", "int", "24", "window ceiling (pairs)"),
        PolicyParam(
            "budget_fraction", "float", "0.15", "monitoring-pairs budget"
        ),
    ),
)
