"""The paper's primary contribution.

* :mod:`repro.core.model` — the analytical performance model
  (Section IV-A): core-idle condition, execution time, and speedup at
  any MTL constraint.
* :mod:`repro.core.phase` — IdleBound-based coarse phase-change
  detection (Section IV-B).
* :mod:`repro.core.selection` — binary-search MTL selection over the
  two-candidate pruned space (Section IV-C).
* :mod:`repro.core.throttle` — the run-time dynamic throttling policy
  assembling the three pieces.
* :mod:`repro.core.plugin` — the :class:`ThrottlePolicyPlugin`
  protocol every policy implements (setup/update hooks, per-plugin
  stat registration) and the registration primitives.
* :mod:`repro.core.registry` — the name-keyed policy registry the
  CLI, suite, and experiment layers build policies through.
* :mod:`repro.core.policies` — the static policies and the Online
  Exhaustive Search baseline.
* :mod:`repro.core.slowdown` — the per-pair slowdown estimator the
  fairness/QoS policies share.
* :mod:`repro.core.mise` — MISE-style slowdown-fairness policy.
* :mod:`repro.core.qos` — slowdown-cap QoS policy.
* :mod:`repro.core.budget` — windowed activation-budget throttler
  with per-window context blacklists.
* :mod:`repro.core.offline` — the Offline Exhaustive Search driver.
"""

from repro.core.adaptive import AdaptiveWindowThrottlingPolicy
from repro.core.budget import ActivationBudgetPolicy
from repro.core.mise import (
    MiseFairnessPolicy,
    SlowdownDrivenPolicy,
    SlowdownSelectionEvent,
)
from repro.core.model import AnalyticalModel, MtlPrediction, predict_speedup_curve
from repro.core.offline import OfflineSearchOutcome, offline_exhaustive_search
from repro.core.phase import PairSample, PhaseChangeDetector, WindowStats
from repro.core.plugin import (
    PolicyEntry,
    PolicyParam,
    PolicyStats,
    ThrottlePolicyPlugin,
    register_policy,
    registered_policies,
)
from repro.core.qos import QosGuaranteePolicy
from repro.core.regions import SMtlRegion, s_mtl_regions
from repro.core.registry import (
    build_policy,
    parse_policy_arg,
    policy_catalogue,
    policy_entry,
    policy_names,
)
from repro.core.policies import (
    FixedMtlPolicy,
    OnlineExhaustivePolicy,
    OnlineSelectionEvent,
    conventional_policy,
)
from repro.core.selection import MtlDecision, MtlSelector
from repro.core.slowdown import (
    PairLoad,
    SlowdownProfile,
    estimate_pair_slowdowns,
    linear_latency_factor,
)
from repro.core.throttle import DynamicThrottlingPolicy, PairAssembler, SelectionEvent

__all__ = [
    "ActivationBudgetPolicy",
    "AdaptiveWindowThrottlingPolicy",
    "AnalyticalModel",
    "DynamicThrottlingPolicy",
    "FixedMtlPolicy",
    "MiseFairnessPolicy",
    "MtlDecision",
    "MtlPrediction",
    "MtlSelector",
    "OfflineSearchOutcome",
    "OnlineExhaustivePolicy",
    "OnlineSelectionEvent",
    "PairAssembler",
    "PairLoad",
    "PairSample",
    "PhaseChangeDetector",
    "PolicyEntry",
    "PolicyParam",
    "PolicyStats",
    "QosGuaranteePolicy",
    "SMtlRegion",
    "SelectionEvent",
    "SlowdownDrivenPolicy",
    "SlowdownProfile",
    "SlowdownSelectionEvent",
    "ThrottlePolicyPlugin",
    "WindowStats",
    "build_policy",
    "conventional_policy",
    "estimate_pair_slowdowns",
    "linear_latency_factor",
    "offline_exhaustive_search",
    "parse_policy_arg",
    "policy_catalogue",
    "policy_entry",
    "policy_names",
    "predict_speedup_curve",
    "register_policy",
    "registered_policies",
    "s_mtl_regions",
]
