"""The paper's primary contribution.

* :mod:`repro.core.model` — the analytical performance model
  (Section IV-A): core-idle condition, execution time, and speedup at
  any MTL constraint.
* :mod:`repro.core.phase` — IdleBound-based coarse phase-change
  detection (Section IV-B).
* :mod:`repro.core.selection` — binary-search MTL selection over the
  two-candidate pruned space (Section IV-C).
* :mod:`repro.core.throttle` — the run-time dynamic throttling policy
  assembling the three pieces.
* :mod:`repro.core.policies` — the Online Exhaustive Search baseline
  and re-exports of the static policies.
* :mod:`repro.core.offline` — the Offline Exhaustive Search driver.
"""

from repro.core.adaptive import AdaptiveWindowThrottlingPolicy
from repro.core.model import AnalyticalModel, MtlPrediction, predict_speedup_curve
from repro.core.offline import OfflineSearchOutcome, offline_exhaustive_search
from repro.core.phase import PairSample, PhaseChangeDetector, WindowStats
from repro.core.regions import SMtlRegion, s_mtl_regions
from repro.core.policies import (
    FixedMtlPolicy,
    OnlineExhaustivePolicy,
    OnlineSelectionEvent,
    conventional_policy,
)
from repro.core.selection import MtlDecision, MtlSelector
from repro.core.throttle import DynamicThrottlingPolicy, SelectionEvent

__all__ = [
    "AdaptiveWindowThrottlingPolicy",
    "AnalyticalModel",
    "DynamicThrottlingPolicy",
    "FixedMtlPolicy",
    "MtlDecision",
    "MtlPrediction",
    "MtlSelector",
    "OfflineSearchOutcome",
    "OnlineExhaustivePolicy",
    "OnlineSelectionEvent",
    "PairSample",
    "PhaseChangeDetector",
    "SMtlRegion",
    "SelectionEvent",
    "s_mtl_regions",
    "WindowStats",
    "conventional_policy",
    "offline_exhaustive_search",
    "predict_speedup_curve",
]
