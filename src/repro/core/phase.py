"""Phase-change detection (Section IV-B of the paper).

A naive detector would re-run MTL selection whenever the memory-to-
compute ratio moves, but "not each distinctive memory-to-compute ratio
maps to different target MTLs".  The paper's detector is deliberately
coarse: it monitors ``W`` memory/compute task pairs, computes the
*IdleBound* (the minimum MTL at which all cores stay busy, from the
analytical model), and signals a phase change only when the IdleBound
differs from the previous window's — i.e. only when the change could
actually alter the core-idle behaviour and hence the MTL decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import ConfigurationError, MeasurementError
from repro.core.model import AnalyticalModel

__all__ = ["PairSample", "WindowStats", "PhaseChangeDetector"]


@dataclass(frozen=True)
class PairSample:
    """Measured times of one memory/compute task pair."""

    t_m: float
    t_c: float

    def __post_init__(self) -> None:
        if self.t_m <= 0:
            raise MeasurementError(f"t_m must be positive, got {self.t_m}")
        if self.t_c < 0:
            raise MeasurementError(f"t_c must be non-negative, got {self.t_c}")


@dataclass(frozen=True)
class WindowStats:
    """Summary of one completed monitoring window.

    Attributes:
        t_m: Mean memory-task time over the window.
        t_c: Mean compute-task time over the window.
        idle_bound: IdleBound implied by the window means.
        phase_changed: Whether the IdleBound differs from the previous
            window's (the paper's re-selection trigger).
    """

    t_m: float
    t_c: float
    idle_bound: int
    phase_changed: bool


class PhaseChangeDetector:
    """IdleBound-based coarse phase-change detection.

    Feed pair samples with :meth:`observe`; every ``window_pairs``
    samples a window closes and :meth:`observe` reports whether the
    window's IdleBound differs from the previous window's.  The first
    completed window always reports a change (there is no reference
    yet), which is what bootstraps the initial MTL selection.
    """

    def __init__(self, model: AnalyticalModel, window_pairs: int = 16) -> None:
        if window_pairs < 1:
            raise ConfigurationError(
                f"window_pairs must be >= 1, got {window_pairs}"
            )
        self._model = model
        self._window_pairs = window_pairs
        self._window: List[PairSample] = []
        self._reference_bound: Optional[int] = None
        self.windows_completed = 0
        self.changes_detected = 0

    @property
    def window_pairs(self) -> int:
        return self._window_pairs

    @property
    def reference_idle_bound(self) -> Optional[int]:
        """IdleBound of the last completed window (None before any)."""
        return self._reference_bound

    def pending_samples(self) -> int:
        return len(self._window)

    def observe(self, sample: PairSample) -> Optional[WindowStats]:
        """Add one pair sample.

        Returns:
            A :class:`WindowStats` when this sample completes a window
            (``phase_changed`` set when the IdleBound moved); ``None``
            while the window is still filling.
        """
        self._window.append(sample)
        if len(self._window) < self._window_pairs:
            return None

        t_m, t_c = self._window_means()
        self._window.clear()
        self.windows_completed += 1
        bound = self._model.idle_bound(t_m, t_c)
        changed = bound != self._reference_bound
        self._reference_bound = bound
        if changed:
            self.changes_detected += 1
        return WindowStats(
            t_m=t_m, t_c=t_c, idle_bound=bound, phase_changed=changed
        )

    def set_reference(self, idle_bound: int) -> None:
        """Pin the reference IdleBound (after an MTL selection settles,
        the selection's own measurement defines the new baseline)."""
        if not 1 <= idle_bound <= self._model.core_count:
            raise ConfigurationError(
                f"idle_bound {idle_bound} outside [1, {self._model.core_count}]"
            )
        self._reference_bound = idle_bound

    def reset_window(self) -> None:
        """Discard partially collected samples (used when the MTL under
        measurement changes mid-window)."""
        self._window.clear()

    def grow_window(self, window_pairs: int) -> None:
        """Enlarge the window size mid-run (grow-only).

        Shrinking is refused because a partially filled window larger
        than the new size would close retroactively with stale
        semantics; the adaptive-window extension only ever grows.
        """
        if window_pairs < self._window_pairs:
            raise ConfigurationError(
                f"window can only grow (current {self._window_pairs}, "
                f"requested {window_pairs})"
            )
        self._window_pairs = window_pairs

    def _window_means(self) -> Tuple[float, float]:
        t_m = sum(s.t_m for s in self._window) / len(self._window)
        t_c = sum(s.t_c for s in self._window) / len(self._window)
        return t_m, t_c
