"""The name-keyed policy registry.

Importing this module imports every policy module (each registers
itself via :func:`repro.core.plugin.register_policy` at import time)
and exposes the lookup/build API the CLI, suite, and experiment
layers consume:

* :func:`policy_names` — every registered name, sorted;
* :func:`policy_entry` — the :class:`~repro.core.plugin.PolicyEntry`
  for one name;
* :func:`build_policy` — validate parameters (offending key named,
  exactly as the sweep-spec validators do) and construct a fresh
  policy instance;
* :func:`parse_policy_arg` — the CLI's ``name[:k=v,...]`` syntax;
* :func:`policy_catalogue` — plain dicts for reports and the
  ``docs/policies.md`` parity test.

``offline`` is deliberately **not** a registry entry: it is a
meta-procedure over every static MTL (:mod:`repro.core.offline`), not
a policy object, and the runtime layer special-cases it.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

# Imported for their registration side effects: each policy module
# registers itself with the plugin registry at import time.
from repro.core import adaptive as _adaptive  # noqa: F401
from repro.core import budget as _budget  # noqa: F401
from repro.core import mise as _mise  # noqa: F401
from repro.core import policies as _policies  # noqa: F401
from repro.core import qos as _qos  # noqa: F401
from repro.core import throttle as _throttle  # noqa: F401
from repro.core.plugin import PolicyEntry, PolicyParam, registered_policies
from repro.errors import ConfigurationError

__all__ = [
    "build_policy",
    "parse_policy_arg",
    "policy_catalogue",
    "policy_entry",
    "policy_names",
]


def policy_names() -> List[str]:
    """Every registered policy name, sorted."""
    return sorted(registered_policies())


def policy_entry(name: str) -> PolicyEntry:
    """The registry entry for ``name``; unknown names raise."""
    entries = registered_policies()
    if name not in entries:
        raise ConfigurationError(
            f"unknown policy kind {name!r}; use "
            + " | ".join(policy_names())
            + " | offline"
        )
    return entries[name]


def _coerce(param: PolicyParam, value: Any) -> Any:
    """Validate one spec-typed parameter value, naming the offending key.

    Mirrors the sweep-spec validators exactly: ints must be ints
    (bools and strings rejected — ``bool`` subclasses ``int`` and JSON
    specs carry real numbers), floats accept ints.  CLI strings are
    parsed *before* this, in :func:`parse_policy_arg`.
    """
    key = param.name
    if param.kind == "int":
        if isinstance(value, bool) or not isinstance(value, int):
            raise ConfigurationError(
                f"policy spec key {key!r} must be an int, got {value!r}"
            )
        return value
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(
            f"policy spec key {key!r} must be a number, got {value!r}"
        )
    return float(value)


def build_policy(
    name: str,
    context_count: int,
    params: Optional[Mapping[str, Any]] = None,
) -> Any:
    """Build a fresh instance of policy ``name`` for ``context_count``.

    Only parameters actually supplied are forwarded, so defaults are
    owned by the policy constructors — a registry-built policy is
    constructed exactly as a direct call would be.
    """
    entry = policy_entry(name)
    supplied = dict(params) if params is not None else {}
    kwargs: Dict[str, Any] = {}
    for key, value in supplied.items():
        param = entry.param(key)
        if param is None:
            expected = ", ".join(p.name for p in entry.params) or "(none)"
            raise ConfigurationError(
                f"policy spec key {key!r} is not a parameter of "
                f"{name!r}; expected: {expected}"
            )
        kwargs[key] = _coerce(param, value)
    for param in entry.params:
        if param.default is None and param.name not in kwargs:
            raise ConfigurationError(
                f"policy spec {dict(supplied)!r} needs a {param.name!r} key"
            )
    return entry.factory(context_count, **kwargs)


def _parse_value(param: PolicyParam, raw: str) -> Any:
    """Parse one CLI string value per the parameter's declared kind."""
    try:
        return int(raw) if param.kind == "int" else float(raw)
    except ValueError:
        kind = "an int" if param.kind == "int" else "a number"
        raise ConfigurationError(
            f"policy spec key {param.name!r} must be {kind}, got {raw!r}"
        ) from None


def parse_policy_arg(text: str) -> Tuple[str, Dict[str, Any]]:
    """Parse the CLI's ``name[:k=v,...]`` policy syntax.

    Returns the policy name and parameters already parsed to their
    declared kinds, ready for :func:`build_policy`.  The name and
    every key are validated here so a typo fails before any work runs.
    """
    name, _, rest = text.partition(":")
    name = name.strip()
    entry = policy_entry(name)  # validates; raises the unknown-kind error
    params: Dict[str, Any] = {}
    if rest.strip():
        for item in rest.split(","):
            key, sep, value = item.partition("=")
            key = key.strip()
            if not sep or not key or not value.strip():
                raise ConfigurationError(
                    f"malformed policy parameter {item!r} in {text!r}; "
                    "expected name:key=value[,key=value...]"
                )
            if key in params:
                raise ConfigurationError(
                    f"policy parameter {key!r} given twice in {text!r}"
                )
            param = entry.param(key)
            if param is None:
                expected = ", ".join(p.name for p in entry.params) or "(none)"
                raise ConfigurationError(
                    f"policy spec key {key!r} is not a parameter of "
                    f"{name!r}; expected: {expected}"
                )
            params[key] = _parse_value(param, value.strip())
    return name, params


def policy_catalogue() -> List[Dict[str, Any]]:
    """Every registered policy as a plain dict (sorted by name).

    The shape feeds reports and the ``docs/policies.md`` parity test:
    ``{"name", "summary", "source", "params": [{"name", "kind",
    "default", "doc"}, ...]}``.
    """
    catalogue: List[Dict[str, Any]] = []
    for name in policy_names():
        entry = registered_policies()[name]
        catalogue.append(
            {
                "name": entry.name,
                "summary": entry.summary,
                "source": entry.source,
                "params": [
                    {
                        "name": p.name,
                        "kind": p.kind,
                        "default": p.default if p.default is not None else "required",
                        "doc": p.doc,
                    }
                    for p in entry.params
                ],
            }
        )
    return catalogue
