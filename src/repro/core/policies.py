"""Baseline scheduling policies (Section V of the paper).

The paper compares its mechanism against two baselines beyond the
interference-oblivious conventional schedule:

* **Offline Exhaustive Search** — the best *static* MTL found by
  running the whole program once per MTL offline; implemented as a
  driver in :mod:`repro.core.offline` since it is a meta-procedure,
  not an online policy.
* **Online Exhaustive Search** — a naive dynamic baseline implemented
  here: it watches the wall-clock time of ``W``-pair windows, triggers
  re-selection whenever a window's time moves more than a threshold
  (10% performs best in the paper) against the previous window, and
  then measures *every* MTL from 1 to n for a window each, keeping the
  fastest.  Because it keys off noisy wall-clock windows (scheduling
  jitter, load imbalance) rather than per-task steady-state times, it
  both pays ~n× the monitoring cost and sometimes mis-selects — the
  two deficits the paper's mechanism is designed to avoid.

Every policy here is a :class:`~repro.core.plugin.ThrottlePolicyPlugin`
and registers itself in the policy registry; this module is also the
canonical home of :class:`FixedMtlPolicy` and
:func:`conventional_policy` (``repro.sim.scheduler`` re-exports them
for compatibility).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.plugin import PolicyParam, ThrottlePolicyPlugin, register_policy
from repro.errors import ConfigurationError
from repro.sim.events import TaskRecord

__all__ = [
    "FixedMtlPolicy",
    "conventional_policy",
    "OnlineExhaustivePolicy",
    "OnlineSelectionEvent",
]


class FixedMtlPolicy(ThrottlePolicyPlugin):
    """A static MTL constraint — the paper's *S-MTL* runs."""

    def __init__(self, mtl: int, name: Optional[str] = None) -> None:
        if mtl < 1:
            raise ConfigurationError(f"mtl must be >= 1, got {mtl}")
        super().__init__(name if name is not None else f"static-mtl-{mtl}")
        self._mtl = mtl

    def current_mtl(self) -> int:
        return self._mtl


def conventional_policy(context_count: int) -> FixedMtlPolicy:
    """The interference-oblivious baseline: MTL equal to the thread
    count, i.e. no throttling at all.  All speedups in the paper are
    relative to this schedule."""
    return FixedMtlPolicy(mtl=context_count, name="conventional")


@dataclass(frozen=True)
class OnlineSelectionEvent:
    """One completed online-exhaustive selection, for reporting."""

    time: float
    window_times: Dict[int, float]
    selected_mtl: int


class OnlineExhaustivePolicy(ThrottlePolicyPlugin):
    """The paper's naive online MTL searcher.

    Args:
        context_count: Schedulable contexts ``n``.
        window_pairs: ``W`` — pairs per measured window.
        threshold: Relative change in window wall-clock time that
            triggers a re-selection (the paper finds 10% best).
        initial_mtl: Starting constraint (defaults to ``n``).
    """

    def __init__(
        self,
        context_count: int,
        window_pairs: int = 16,
        threshold: float = 0.10,
        initial_mtl: Optional[int] = None,
    ) -> None:
        super().__init__("online-exhaustive")
        if context_count < 1:
            raise ConfigurationError(
                f"context_count must be >= 1, got {context_count}"
            )
        if window_pairs < 1:
            raise ConfigurationError(
                f"window_pairs must be >= 1, got {window_pairs}"
            )
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        self._n = context_count
        self._window_pairs = window_pairs
        self._threshold = threshold
        self._mtl = initial_mtl if initial_mtl is not None else context_count
        if not 1 <= self._mtl <= context_count:
            raise ConfigurationError(
                f"initial_mtl {self._mtl} outside [1, {context_count}]"
            )

        self._window_start: Optional[float] = None
        self._pairs_in_window = 0
        self._previous_window_time: Optional[float] = None
        self._bootstrapped = False

        self._probing: bool = False
        self._probe_queue: List[int] = []
        self._probe_times: Dict[int, float] = {}

        self.selections: List[OnlineSelectionEvent] = []

    @property
    def window_pairs(self) -> int:
        return self._window_pairs

    def current_mtl(self) -> int:
        return self._mtl

    def is_probing(self) -> bool:
        return self._probing

    def on_task_complete(self, record: TaskRecord, now: float) -> None:
        # Pair completion is marked by the compute half finishing.
        if record.is_memory:
            return
        if self._window_start is None:
            self._window_start = record.start
        self._pairs_in_window += 1
        if self._pairs_in_window < self._window_pairs:
            return

        window_time = now - self._window_start
        self._window_start = None
        self._pairs_in_window = 0
        self.on_window_close(now)

        if self._probing:
            self._probe_times[self._mtl] = window_time
            if self._probe_queue:
                self._mtl = self._probe_queue.pop(0)
            else:
                self._finish_selection(now)
        else:
            self._maybe_trigger(window_time, now)

    def _maybe_trigger(self, window_time: float, now: float) -> None:
        previous = self._previous_window_time
        self._previous_window_time = window_time
        if previous is None or previous <= 0:
            # The very first window bootstraps an initial selection
            # (the policy must leave MTL = n somehow even on a stable
            # workload); afterwards only the threshold triggers.
            if self._bootstrapped:
                return
            self._bootstrapped = True
        else:
            change = abs(window_time - previous) / previous
            if change <= self._threshold:
                return
        self.on_phase_change(now)
        # Exhaustive probe: a full window at every MTL from 1 to n.
        self._probing = True
        self._probe_times = {}
        self._probe_queue = list(range(1, self._n + 1))
        self._mtl = self._probe_queue.pop(0)

    def _finish_selection(self, now: float) -> None:
        selected = min(
            self._probe_times, key=lambda mtl: (self._probe_times[mtl], mtl)
        )
        self.selections.append(
            OnlineSelectionEvent(
                time=now,
                window_times=dict(self._probe_times),
                selected_mtl=selected,
            )
        )
        self.on_selection(now, selected)
        self._mtl = selected
        self._probing = False
        self._previous_window_time = None  # restart the trigger baseline


def _build_conventional(context_count: int, **params: object) -> FixedMtlPolicy:
    return conventional_policy(context_count)


def _build_static(context_count: int, **params: object) -> FixedMtlPolicy:
    return FixedMtlPolicy(**params)  # type: ignore[arg-type]


def _build_online(context_count: int, **params: object) -> OnlineExhaustivePolicy:
    return OnlineExhaustivePolicy(context_count, **params)  # type: ignore[arg-type]


register_policy(
    "conventional",
    _build_conventional,
    summary="No throttling: MTL pinned at n (the paper's baseline schedule)",
    source="MICRO 2010 §V (baseline)",
    params=(),
)

register_policy(
    "static",
    _build_static,
    summary="A fixed MTL for the whole run (the paper's S-MTL points)",
    source="MICRO 2010 §V (S-MTL)",
    params=(
        PolicyParam("mtl", "int", None, "the fixed MTL (required)"),
    ),
)

register_policy(
    "online",
    _build_online,
    summary=(
        "Online exhaustive search: wall-clock windows trigger a probe "
        "of every MTL; the fastest window wins"
    ),
    source="MICRO 2010 §V (online exhaustive baseline)",
    params=(
        PolicyParam("window_pairs", "int", "16", "pairs per measured window"),
        PolicyParam("threshold", "float", "0.10", "relative re-trigger threshold"),
        PolicyParam("initial_mtl", "int", "n", "starting constraint"),
    ),
)
