"""Baseline scheduling policies (Section V of the paper).

The paper compares its mechanism against two baselines beyond the
interference-oblivious conventional schedule:

* **Offline Exhaustive Search** — the best *static* MTL found by
  running the whole program once per MTL offline; implemented as a
  driver in :mod:`repro.core.offline` since it is a meta-procedure,
  not an online policy.
* **Online Exhaustive Search** — a naive dynamic baseline implemented
  here: it watches the wall-clock time of ``W``-pair windows, triggers
  re-selection whenever a window's time moves more than a threshold
  (10% performs best in the paper) against the previous window, and
  then measures *every* MTL from 1 to n for a window each, keeping the
  fastest.  Because it keys off noisy wall-clock windows (scheduling
  jitter, load imbalance) rather than per-task steady-state times, it
  both pays ~n× the monitoring cost and sometimes mis-selects — the
  two deficits the paper's mechanism is designed to avoid.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sim.events import TaskRecord
from repro.sim.scheduler import FixedMtlPolicy, conventional_policy

__all__ = [
    "FixedMtlPolicy",
    "conventional_policy",
    "OnlineExhaustivePolicy",
    "OnlineSelectionEvent",
]


@dataclass(frozen=True)
class OnlineSelectionEvent:
    """One completed online-exhaustive selection, for reporting."""

    time: float
    window_times: Dict[int, float]
    selected_mtl: int


class OnlineExhaustivePolicy:
    """The paper's naive online MTL searcher.

    Args:
        context_count: Schedulable contexts ``n``.
        window_pairs: ``W`` — pairs per measured window.
        threshold: Relative change in window wall-clock time that
            triggers a re-selection (the paper finds 10% best).
        initial_mtl: Starting constraint (defaults to ``n``).
    """

    def __init__(
        self,
        context_count: int,
        window_pairs: int = 16,
        threshold: float = 0.10,
        initial_mtl: Optional[int] = None,
    ) -> None:
        if context_count < 1:
            raise ConfigurationError(
                f"context_count must be >= 1, got {context_count}"
            )
        if window_pairs < 1:
            raise ConfigurationError(
                f"window_pairs must be >= 1, got {window_pairs}"
            )
        if threshold <= 0:
            raise ConfigurationError(f"threshold must be positive, got {threshold}")
        self._n = context_count
        self._window_pairs = window_pairs
        self._threshold = threshold
        self._mtl = initial_mtl if initial_mtl is not None else context_count
        if not 1 <= self._mtl <= context_count:
            raise ConfigurationError(
                f"initial_mtl {self._mtl} outside [1, {context_count}]"
            )

        self._window_start: Optional[float] = None
        self._pairs_in_window = 0
        self._previous_window_time: Optional[float] = None
        self._bootstrapped = False

        self._probing: bool = False
        self._probe_queue: List[int] = []
        self._probe_times: Dict[int, float] = {}

        self.selections: List[OnlineSelectionEvent] = []

    @property
    def name(self) -> str:
        return "online-exhaustive"

    @property
    def window_pairs(self) -> int:
        return self._window_pairs

    def current_mtl(self) -> int:
        return self._mtl

    def is_probing(self) -> bool:
        return self._probing

    def on_task_complete(self, record: TaskRecord, now: float) -> None:
        # Pair completion is marked by the compute half finishing.
        if record.is_memory:
            return
        if self._window_start is None:
            self._window_start = record.start
        self._pairs_in_window += 1
        if self._pairs_in_window < self._window_pairs:
            return

        window_time = now - self._window_start
        self._window_start = None
        self._pairs_in_window = 0

        if self._probing:
            self._probe_times[self._mtl] = window_time
            if self._probe_queue:
                self._mtl = self._probe_queue.pop(0)
            else:
                self._finish_selection(now)
        else:
            self._maybe_trigger(window_time, now)

    def _maybe_trigger(self, window_time: float, now: float) -> None:
        previous = self._previous_window_time
        self._previous_window_time = window_time
        if previous is None or previous <= 0:
            # The very first window bootstraps an initial selection
            # (the policy must leave MTL = n somehow even on a stable
            # workload); afterwards only the threshold triggers.
            if self._bootstrapped:
                return
            self._bootstrapped = True
        else:
            change = abs(window_time - previous) / previous
            if change <= self._threshold:
                return
        # Exhaustive probe: a full window at every MTL from 1 to n.
        self._probing = True
        self._probe_times = {}
        self._probe_queue = list(range(1, self._n + 1))
        self._mtl = self._probe_queue.pop(0)

    def _finish_selection(self, now: float) -> None:
        selected = min(
            self._probe_times, key=lambda mtl: (self._probe_times[mtl], mtl)
        )
        self.selections.append(
            OnlineSelectionEvent(
                time=now,
                window_times=dict(self._probe_times),
                selected_mtl=selected,
            )
        )
        self._mtl = selected
        self._probing = False
        self._previous_window_time = None  # restart the trigger baseline
