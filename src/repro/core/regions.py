"""Exact S-MTL region algebra for the synthetic sweep.

Figure 13 partitions the ratio axis into regions by the best static
MTL (S-MTL).  The paper eyeballs the first boundary at 0.33; the
analytical model actually puts every boundary at a computable
crossing of two speedup curves.  This module computes the exact
partition for any contention model, which the sweep benchmark and the
documentation use instead of magic constants:

* within a region the best-MTL speedup is the hill the paper
  describes (rising while all cores stay busy at that MTL, falling
  once they idle);
* the boundary between region ``k`` and ``k+1`` is where the two
  curves cross — at ``r = 1 / (n - g_k(k+1)·?)``-style expressions
  that are clumsy in closed form, so we locate them by bisection on
  the argmax, which is exact to the requested tolerance for any
  latency law.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.core.model import predict_speedup_curve
from repro.errors import ModelError
from repro.memory.contention import ContentionModel

__all__ = ["SMtlRegion", "s_mtl_regions"]


@dataclass(frozen=True)
class SMtlRegion:
    """One maximal ratio interval sharing a best static MTL.

    Attributes:
        low: Inclusive lower ratio bound.
        high: Exclusive upper ratio bound (the next region's low).
        mtl: Best static MTL throughout the interval.
    """

    low: float
    high: float
    mtl: int

    def contains(self, ratio: float) -> bool:
        return self.low <= ratio < self.high

    @property
    def width(self) -> float:
        return self.high - self.low


def _best_mtl(
    ratio: float, contention: ContentionModel, core_count: int, channels: int
) -> int:
    return predict_speedup_curve(
        [ratio], contention, core_count=core_count, channels=channels
    )[0].best_mtl


def s_mtl_regions(
    contention: ContentionModel,
    core_count: int = 4,
    channels: int = 1,
    ratio_low: float = 0.01,
    ratio_high: float = 4.0,
    tolerance: float = 1e-6,
) -> List[SMtlRegion]:
    """Partition ``[ratio_low, ratio_high)`` by best static MTL.

    Scans on a coarse grid to find argmax changes, then bisects each
    change to ``tolerance``.  Works for any latency law satisfying the
    model's monotonicity assumptions (best MTL is then non-decreasing
    in the ratio, which is also verified and reported as a
    :class:`~repro.errors.ModelError` if violated).
    """
    if ratio_low <= 0 or ratio_high <= ratio_low:
        raise ModelError(
            f"need 0 < ratio_low < ratio_high, got [{ratio_low}, {ratio_high}]"
        )
    if tolerance <= 0:
        raise ModelError(f"tolerance must be positive, got {tolerance}")

    # Coarse scan: fine enough that no region narrower than a step is
    # skipped (regions of the linear law are all wider than 0.02 for
    # n <= 32).
    steps = 400
    grid = [
        ratio_low + (ratio_high - ratio_low) * i / steps for i in range(steps + 1)
    ]
    labels = [
        _best_mtl(r, contention, core_count, channels) for r in grid
    ]

    regions: List[SMtlRegion] = []
    region_start = ratio_low
    for i in range(len(grid) - 1):
        if labels[i + 1] == labels[i]:
            continue
        if labels[i + 1] < labels[i]:
            raise ModelError(
                "best MTL decreased with the ratio (from "
                f"{labels[i]} to {labels[i + 1]} near {grid[i]:.3f}); the "
                "latency law violates the model's monotonicity assumptions"
            )
        boundary = _bisect_boundary(
            grid[i], grid[i + 1], labels[i], contention, core_count,
            channels, tolerance,
        )
        regions.append(
            SMtlRegion(low=region_start, high=boundary, mtl=labels[i])
        )
        region_start = boundary
    regions.append(
        SMtlRegion(low=region_start, high=ratio_high, mtl=labels[-1])
    )
    return regions


def _bisect_boundary(
    low: float,
    high: float,
    low_label: int,
    contention: ContentionModel,
    core_count: int,
    channels: int,
    tolerance: float,
) -> float:
    while high - low > tolerance:
        mid = (low + high) / 2
        if _best_mtl(mid, contention, core_count, channels) == low_label:
            low = mid
        else:
            high = mid
    return (low + high) / 2
