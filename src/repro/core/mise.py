"""Slowdown-fairness throttling (the MISE mechanism on task pairs).

MISE's insight is that a thread's slowdown can be estimated online by
occasionally measuring its *alone* performance — giving it the memory
system essentially to itself — and comparing against what it gets
under sharing.  :class:`MiseFairnessPolicy` transplants that loop onto
this codebase's pair vocabulary:

1. **Monitor** ``W`` pairs at the current MTL through the same
   IdleBound :class:`~repro.core.phase.PhaseChangeDetector` the paper's
   mechanism uses, so re-estimation triggers only when the phase
   actually moved.
2. **Probe the alone rate**: run one window at MTL = 1 (the analogue
   of MISE's highest-priority epochs — memory tasks execute without
   memory-side interference).  Probe tasks are flagged for overhead
   accounting exactly like the D-MTL selector's.
3. **Estimate and commit**: fit a
   :class:`~repro.core.slowdown.SlowdownProfile` through the two
   measured points and pick the MTL whose estimated per-pair slowdown
   is smallest (ties prefer the higher MTL — less throttling for the
   same fairness).  Because the operating point is homogeneous, the
   smallest common estimate is exactly the min-max-slowdown choice —
   the fairness objective.

The QoS variant (:mod:`repro.core.qos`) shares this whole loop and
only replaces the final selection rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.model import AnalyticalModel
from repro.core.phase import PairSample, PhaseChangeDetector, WindowStats
from repro.core.plugin import PolicyParam, ThrottlePolicyPlugin, register_policy
from repro.core.slowdown import SlowdownProfile
from repro.core.throttle import PairAssembler
from repro.errors import ConfigurationError
from repro.sim.events import TaskRecord

__all__ = [
    "MiseFairnessPolicy",
    "SlowdownDrivenPolicy",
    "SlowdownSelectionEvent",
]


@dataclass(frozen=True)
class SlowdownSelectionEvent:
    """One committed slowdown-based selection, for reporting."""

    time: float
    trigger_idle_bound: int
    probe_mtl: int
    estimates: Dict[int, float]
    selected_mtl: int


class SlowdownDrivenPolicy(ThrottlePolicyPlugin):
    """Shared monitor/probe/estimate loop of the MISE-style policies.

    Args:
        context_count: Schedulable contexts ``n``.
        window_pairs: ``W`` — pairs per monitoring (and probe) window.
        initial_mtl: Starting constraint (defaults to ``n``).
        name: Plugin name (set by the concrete subclass).
    """

    def __init__(
        self,
        context_count: int,
        window_pairs: int = 16,
        initial_mtl: Optional[int] = None,
        *,
        name: str = "slowdown-driven",
    ) -> None:
        super().__init__(name)
        if context_count < 1:
            raise ConfigurationError(
                f"context_count must be >= 1, got {context_count}"
            )
        self._n = context_count
        self._model = AnalyticalModel(core_count=context_count)
        self._detector = PhaseChangeDetector(self._model, window_pairs=window_pairs)
        self._assembler = PairAssembler()
        self._window_pairs = window_pairs
        self._mtl = initial_mtl if initial_mtl is not None else context_count
        if not 1 <= self._mtl <= context_count:
            raise ConfigurationError(
                f"initial_mtl {self._mtl} outside [1, {context_count}]"
            )
        self._probing = False
        self._probe_mtl: Optional[int] = None
        self._probe_window: List[PairSample] = []
        self._trigger: Optional[WindowStats] = None
        self._trigger_mtl = self._mtl
        self.selections: List[SlowdownSelectionEvent] = []
        self.stats.register("alone_probes")

    @property
    def window_pairs(self) -> int:
        return self._window_pairs

    @property
    def windows_completed(self) -> int:
        return self._detector.windows_completed

    def current_mtl(self) -> int:
        return self._mtl

    def is_probing(self) -> bool:
        return self._probing

    def on_task_complete(self, record: TaskRecord, now: float) -> None:
        joined = self._assembler.feed(record)
        if joined is None:
            return
        sample, sample_mtl = joined
        if sample_mtl != self._mtl:
            return  # pair straddled an MTL switch; not a steady sample
        if self._probing:
            self._probe(sample, now)
        else:
            self._monitor(sample, now)

    # -- monitoring ----------------------------------------------------

    def _monitor(self, sample: PairSample, now: float) -> None:
        window = self._detector.observe(sample)
        if window is None:
            return
        self.on_window_close(now)
        if not window.phase_changed:
            return
        self.on_phase_change(now)
        if self._n == 1:
            return  # MTL = 1 is the only choice; nothing to estimate
        # Alone-rate probe: one window at MTL = 1 (or at n when the
        # trigger itself was measured at 1 — any second concurrency
        # point pins the contention slope).
        self._trigger = window
        self._trigger_mtl = self._mtl
        self._probe_mtl = 1 if self._mtl != 1 else self._n
        self._probing = True
        self._probe_window = []
        self._mtl = self._probe_mtl
        self._detector.reset_window()
        self.stats.add("alone_probes")

    # -- probing -------------------------------------------------------

    def _probe(self, sample: PairSample, now: float) -> None:
        self._probe_window.append(sample)
        if len(self._probe_window) < self._window_pairs:
            return
        t_m = sum(s.t_m for s in self._probe_window) / len(self._probe_window)
        t_c = sum(s.t_c for s in self._probe_window) / len(self._probe_window)
        self._probe_window = []
        self.on_window_close(now)

        trigger = self._trigger
        probe_mtl = self._probe_mtl
        assert trigger is not None and probe_mtl is not None
        pooled_t_c = (trigger.t_c + t_c) / 2.0
        profile = SlowdownProfile.fit(
            context_count=self._n,
            k_a=self._trigger_mtl,
            t_m_a=trigger.t_m,
            k_b=probe_mtl,
            t_m_b=t_m,
            t_c=pooled_t_c,
        )
        estimates = profile.slowdowns()
        selected = self._select(profile, estimates)
        self.selections.append(
            SlowdownSelectionEvent(
                time=now,
                trigger_idle_bound=trigger.idle_bound,
                probe_mtl=probe_mtl,
                estimates=estimates,
                selected_mtl=selected,
            )
        )
        self.on_selection(now, selected)
        self._probing = False
        self._probe_mtl = None
        self._trigger = None
        self._mtl = selected
        # Re-anchor the detector at the committed operating point so
        # the very next window does not re-trigger (same discipline as
        # the D-MTL selector).
        self._detector.set_reference(
            self._model.idle_bound(profile.t_m(selected), pooled_t_c)
        )
        self._detector.reset_window()

    # -- the selection rule (subclass hook) ---------------------------

    def _select(
        self, profile: SlowdownProfile, estimates: Dict[int, float]
    ) -> int:
        raise NotImplementedError


class MiseFairnessPolicy(SlowdownDrivenPolicy):
    """Pick the MTL minimising the estimated per-pair slowdown.

    At the homogeneous operating point every pair shares one estimate,
    so minimising it is exactly minimising the maximum slowdown — the
    fairness objective; ties break toward the higher MTL (less
    throttling for equal fairness).
    """

    def __init__(
        self,
        context_count: int,
        window_pairs: int = 16,
        initial_mtl: Optional[int] = None,
    ) -> None:
        super().__init__(
            context_count,
            window_pairs=window_pairs,
            initial_mtl=initial_mtl,
            name="mise-fairness",
        )

    def _select(
        self, profile: SlowdownProfile, estimates: Dict[int, float]
    ) -> int:
        return min(estimates, key=lambda k: (estimates[k], -k))


def _build_mise(context_count: int, **params: object) -> MiseFairnessPolicy:
    return MiseFairnessPolicy(context_count, **params)  # type: ignore[arg-type]


register_policy(
    "mise",
    _build_mise,
    summary=(
        "Slowdown fairness: probe the alone rate at MTL 1, fit a "
        "contention slope, pick the MTL with the smallest estimated "
        "per-pair slowdown"
    ),
    source="MISE (arXiv:1805.05926)",
    params=(
        PolicyParam("window_pairs", "int", "16", "pairs per window"),
        PolicyParam("initial_mtl", "int", "n", "starting constraint"),
    ),
)
