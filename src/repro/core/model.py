"""The analytical performance model (Section IV-A of the paper).

Given the measured mean memory-task time under ``MTL = k`` (``T_mk``),
the measured mean compute-task time (``T_c``), and the core count
``n``, the model answers three questions:

1. **Do cores idle at MTL = k?**  The time to drain all memory tasks
   through ``k`` slots is compared against the ideal back-to-back
   schedule::

       T_mk * t / k  >  (T_mk + T_c) * t / n
           <=>  T_mk / T_c  >  k / (n - k)      (Equation 1)

   Some cores idle when the inequality holds.  At ``k = n`` it can
   never hold (the right side is unbounded), so MTL = n is always
   all-busy.

2. **What is the execution time at MTL = k?**  ``(T_mk + T_c) * t / n``
   when all cores are busy (Figure 9(a)), ``T_mk * t / k`` when some
   idle (Figure 9(b)).

3. **What is the speedup over the unthrottled MTL = n schedule?**
   ``(T_mn + T_c) / (T_mk + T_c)`` in the all-busy case and
   ``(T_mn + T_c) * k / (T_mk * n)`` in the some-idle case.

:func:`predict_speedup_curve` composes the model with a contention
model's latency ratios to produce the *analytical* series of
Figure 13 — predicted best MTL (S-MTL) and speedup as a function of
the workload's ``T_m1 / T_c`` ratio.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ModelError
from repro.memory.contention import ContentionModel

__all__ = [
    "AnalyticalModel",
    "MtlPrediction",
    "predict_speedup_curve",
]


def _validate_times(t_m: float, t_c: float) -> None:
    if t_m <= 0:
        raise ModelError(f"memory-task time must be positive, got {t_m}")
    if t_c < 0:
        raise ModelError(f"compute-task time must be non-negative, got {t_c}")


@dataclass(frozen=True)
class AnalyticalModel:
    """The paper's analytical model for an ``n``-core machine.

    ``n`` is the number of schedulable contexts — physical cores with
    SMT off.  (With SMT on, ``T_c`` stops being constant and the model
    is knowingly approximate; Section VI-E.)
    """

    core_count: int

    def __post_init__(self) -> None:
        if self.core_count < 1:
            raise ModelError(f"core_count must be >= 1, got {self.core_count}")

    def _validate_mtl(self, k: int) -> None:
        if not 1 <= k <= self.core_count:
            raise ModelError(
                f"MTL {k} outside [1, {self.core_count}]"
            )

    def busy_threshold(self, k: int) -> float:
        """``k / (n - k)`` — the ratio boundary of Equation 1.

        All cores are busy at MTL = k exactly when
        ``T_mk / T_c <= busy_threshold(k)``; infinite at ``k = n``.
        """
        self._validate_mtl(k)
        if k == self.core_count:
            return float("inf")
        return k / (self.core_count - k)

    def cores_idle(self, t_mk: float, t_c: float, k: int) -> bool:
        """Whether some cores idle at MTL = k (Equation 1)."""
        _validate_times(t_mk, t_c)
        if t_c == 0:
            return k < self.core_count
        return t_mk / t_c > self.busy_threshold(k)

    def idle_bound(self, t_m: float, t_c: float) -> int:
        """Minimum MTL at which all cores are busy (*IdleBound*).

        Uses one ``(T_m, T_c)`` measurement as a proxy for every
        candidate MTL, exactly as the phase-change detector does
        (Section IV-B); the subsequent MTL selection re-measures at the
        actual candidates.
        """
        _validate_times(t_m, t_c)
        for k in range(1, self.core_count + 1):
            if not self.cores_idle(t_m, t_c, k):
                return k
        return self.core_count  # unreachable: k = n is never idle

    def execution_time(self, t_mk: float, t_c: float, k: int, pairs: int) -> float:
        """Predicted makespan of ``pairs`` task pairs at MTL = k."""
        _validate_times(t_mk, t_c)
        self._validate_mtl(k)
        if pairs < 1:
            raise ModelError(f"pairs must be >= 1, got {pairs}")
        if self.cores_idle(t_mk, t_c, k):
            return t_mk * pairs / k
        return (t_mk + t_c) * pairs / self.core_count

    def speedup(self, t_mk: float, t_c: float, k: int, t_mn: float) -> float:
        """Speedup of MTL = k over the unthrottled MTL = n schedule.

        ``t_mn`` is the memory-task time measured *without* throttling.
        """
        _validate_times(t_mk, t_c)
        _validate_times(t_mn, t_c)
        self._validate_mtl(k)
        if self.cores_idle(t_mk, t_c, k):
            return (t_mn + t_c) * k / (t_mk * self.core_count)
        denominator = t_mk + t_c
        if denominator <= 0:
            raise ModelError("t_mk + t_c must be positive")
        return (t_mn + t_c) / denominator

    def busy_selection_metric(self, t_mk: float, t_c: float) -> float:
        """Speedup of an all-busy candidate up to the shared factor
        ``(T_mn + T_c)`` — sufficient for comparing candidates without
        measuring ``T_mn`` (Section IV-C)."""
        _validate_times(t_mk, t_c)
        return 1.0 / (t_mk + t_c)

    def idle_selection_metric(self, t_mk: float, k: int) -> float:
        """Speedup of a some-idle candidate up to ``(T_mn + T_c)``."""
        if t_mk <= 0:
            raise ModelError(f"memory-task time must be positive, got {t_mk}")
        self._validate_mtl(k)
        return k / (t_mk * self.core_count)


@dataclass(frozen=True)
class MtlPrediction:
    """Model prediction for one workload ratio.

    Attributes:
        ratio: The workload's ``T_m1 / T_c``.
        best_mtl: Predicted best constraint (the S-MTL of Figure 13).
        speedup: Predicted speedup of ``best_mtl`` over MTL = n.
        per_mtl_speedup: Predicted speedup of every MTL value.
    """

    ratio: float
    best_mtl: int
    speedup: float
    per_mtl_speedup: Dict[int, float]


def predict_speedup_curve(
    ratios: Sequence[float],
    contention: ContentionModel,
    core_count: int = 4,
    channels: int = 1,
) -> List[MtlPrediction]:
    """The analytical series of Figure 13.

    For a synthetic workload with ``T_m1 / T_c = r`` the memory-task
    time under MTL = k scales by the contention model's latency ratio
    ``g_k = L(k) / L(1)``, so with ``T_m1 = r`` and ``T_c = 1`` every
    quantity of the model is determined.  The best MTL and its speedup
    are evaluated per ratio.
    """
    if core_count < 1:
        raise ModelError(f"core_count must be >= 1, got {core_count}")
    model = AnalyticalModel(core_count=core_count)
    latency_1 = contention.request_latency(1.0, channels=channels)
    ratios_g = {
        k: contention.request_latency(float(k), channels=channels) / latency_1
        for k in range(1, core_count + 1)
    }

    predictions: List[MtlPrediction] = []
    for ratio in ratios:
        if ratio <= 0:
            raise ModelError(f"ratio must be positive, got {ratio}")
        t_c = 1.0
        t_m1 = ratio
        t_mn = t_m1 * ratios_g[core_count]
        per_mtl: Dict[int, float] = {}
        for k in range(1, core_count + 1):
            t_mk = t_m1 * ratios_g[k]
            per_mtl[k] = model.speedup(t_mk, t_c, k, t_mn)
        best_mtl = max(per_mtl, key=lambda k: (per_mtl[k], -k))
        predictions.append(
            MtlPrediction(
                ratio=ratio,
                best_mtl=best_mtl,
                speedup=per_mtl[best_mtl],
                per_mtl_speedup=per_mtl,
            )
        )
    return predictions
