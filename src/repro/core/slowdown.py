"""Per-pair slowdown estimation (the MISE mechanism, ported to tasks).

MISE estimates each thread's *slowdown* — alone-performance divided by
shared-performance — by occasionally giving the thread highest memory
priority and taking its request rate then as a proxy for its alone
rate.  In this codebase's task vocabulary the analogue is direct: a
pair's alone memory-task time ``t_m_alone`` is what an MTL = 1 window
measures, and the shared time under an MTL of ``k`` follows from the
contention-scaling of the analytical model.

:func:`estimate_pair_slowdowns` is the estimator itself, phrased over
heterogeneous pairs so the fairness/QoS policies and the property
tests share one implementation.  For pair ``i`` with alone times
``(t_i, c_i)`` running among ``m`` unthrottled pairs at MTL ``k``:

* ``j = min(k, m)`` memory tasks actually overlap, inflating each
  memory task by the latency factor ``g(j)``;
* the memory system drains pair ``i``'s requests in ``t_i * g(j)``
  of service spread over ``j`` slots shared by ``m`` pairs, so its
  memory phase completes in ``t_i * g(j) * m / j``;
* the pair itself cannot finish faster than its own inflated pair
  time ``t_i * g(j) + c_i``.

Estimated completion is the max of the two, and slowdown divides by
the alone time ``t_i + c_i``.  With homogeneous pairs this reduces
*exactly* to ``AnalyticalModel.execution_time`` normalised by the
alone time (a property test pins the equality), and it has the three
properties the MISE-style policies rely on: symmetric pairs get equal
estimates, estimates are always >= 1, and throttling a pair never
increases another pair's estimate (``m/j`` and ``g(j)`` are both
non-increasing when ``m`` shrinks).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, FrozenSet, Iterable, List, Sequence

from repro.errors import ModelError

__all__ = [
    "PairLoad",
    "SlowdownProfile",
    "estimate_pair_slowdowns",
    "linear_latency_factor",
]

#: Floor (relative to the anchor measurement) that keeps an
#: extrapolated alone time positive when the fit anchors above k = 1.
_ALONE_FLOOR = 1e-9


@dataclass(frozen=True)
class PairLoad:
    """Alone-execution times of one memory/compute pair."""

    t_m_alone: float
    t_c: float

    def __post_init__(self) -> None:
        if self.t_m_alone <= 0:
            raise ModelError(
                f"t_m_alone must be positive, got {self.t_m_alone}"
            )
        if self.t_c < 0:
            raise ModelError(f"t_c must be non-negative, got {self.t_c}")


def linear_latency_factor(slope: float) -> Callable[[int], float]:
    """``g(j) = 1 + slope * (j - 1)`` — linear contention scaling.

    ``slope`` is the relative latency increment per extra overlapping
    memory task; ``g(1) = 1`` by construction.
    """
    if slope < 0:
        raise ModelError(f"slope must be non-negative, got {slope}")

    def factor(j: int) -> float:
        return 1.0 + slope * (j - 1)

    return factor


def estimate_pair_slowdowns(
    pairs: Sequence[PairLoad],
    mtl: int,
    latency_factor: Callable[[int], float],
    throttled: Iterable[int] = (),
) -> List[float]:
    """Estimated slowdown of every pair at ``mtl``.

    Args:
        pairs: Alone loads, one per pair.
        mtl: Memory thread limit in force, >= 1.
        latency_factor: ``g(j)`` — memory-task inflation when ``j``
            memory tasks overlap; must be >= 1 with ``g(1) = 1``.
        throttled: Indices of pairs currently blocked from the memory
            system; their slots report ``inf`` (no progress while
            throttled) and they contribute no contention.

    Returns:
        One estimate per pair, aligned with ``pairs``.
    """
    if not pairs:
        return []
    if mtl < 1:
        raise ModelError(f"mtl must be >= 1, got {mtl}")
    blocked: FrozenSet[int] = frozenset(throttled)
    for index in blocked:
        if not 0 <= index < len(pairs):
            raise ModelError(
                f"throttled index {index} outside [0, {len(pairs) - 1}]"
            )
    active = len(pairs) - len(blocked)
    if active == 0:
        return [math.inf] * len(pairs)

    j = min(mtl, active)
    g = float(latency_factor(j))
    if g < 1.0:
        raise ModelError(f"latency factor g({j}) = {g} is < 1")
    queue_depth = active / j

    estimates: List[float] = []
    for index, pair in enumerate(pairs):
        if index in blocked:
            estimates.append(math.inf)
            continue
        shared_t_m = pair.t_m_alone * g
        completion = max(shared_t_m * queue_depth, shared_t_m + pair.t_c)
        estimates.append(completion / (pair.t_m_alone + pair.t_c))
    return estimates


@dataclass(frozen=True)
class SlowdownProfile:
    """Two-point contention fit powering online slowdown estimates.

    The MISE-style policies measure mean pair times at two MTLs — the
    one that triggered re-selection and an alone-rate probe at
    MTL = 1 — and interpolate the memory-task time linearly in the
    thread count between them (slope clamped at zero: contention
    cannot speed memory tasks up).

    Attributes:
        context_count: ``n`` — schedulable contexts.
        t_m_alone: Fitted memory-task time at concurrency 1.
        slope: Absolute memory-time increment per extra thread.
        t_c: Mean compute-task time (concurrency-independent, as in
            the paper's model).
    """

    context_count: int
    t_m_alone: float
    slope: float
    t_c: float

    def __post_init__(self) -> None:
        if self.context_count < 1:
            raise ModelError(
                f"context_count must be >= 1, got {self.context_count}"
            )
        if self.t_m_alone <= 0:
            raise ModelError(
                f"t_m_alone must be positive, got {self.t_m_alone}"
            )
        if self.slope < 0:
            raise ModelError(f"slope must be non-negative, got {self.slope}")
        if self.t_c < 0:
            raise ModelError(f"t_c must be non-negative, got {self.t_c}")

    @classmethod
    def fit(
        cls,
        context_count: int,
        k_a: int,
        t_m_a: float,
        k_b: int,
        t_m_b: float,
        t_c: float,
    ) -> "SlowdownProfile":
        """Fit from two measured points ``(k_a, t_m_a)``, ``(k_b, t_m_b)``."""
        if context_count < 1:
            raise ModelError(
                f"context_count must be >= 1, got {context_count}"
            )
        for k in (k_a, k_b):
            if not 1 <= k <= context_count:
                raise ModelError(f"MTL {k} outside [1, {context_count}]")
        if k_a == k_b:
            raise ModelError(
                f"fit needs two distinct MTLs, got {k_a} twice"
            )
        for t_m in (t_m_a, t_m_b):
            if t_m <= 0:
                raise ModelError(
                    f"memory-task time must be positive, got {t_m}"
                )
        if k_a < k_b:
            k_lo, t_lo, k_hi, t_hi = k_a, t_m_a, k_b, t_m_b
        else:
            k_lo, t_lo, k_hi, t_hi = k_b, t_m_b, k_a, t_m_a
        slope = max(0.0, (t_hi - t_lo) / (k_hi - k_lo))
        alone = t_lo - slope * (k_lo - 1)
        if alone <= 0:
            alone = t_lo * _ALONE_FLOOR
        return cls(
            context_count=context_count,
            t_m_alone=alone,
            slope=slope,
            t_c=t_c,
        )

    def t_m(self, k: int) -> float:
        """Fitted memory-task time at concurrency ``k``."""
        if not 1 <= k <= self.context_count:
            raise ModelError(f"MTL {k} outside [1, {self.context_count}]")
        return self.t_m_alone + self.slope * (k - 1)

    def latency_factor(self, j: int) -> float:
        """``g(j) = t_m(j) / t_m(1)`` — always >= 1, non-decreasing."""
        return self.t_m(j) / self.t_m_alone

    def slowdown(self, k: int) -> float:
        """Estimated per-pair slowdown at MTL ``k`` with all ``n``
        contexts loaded homogeneously (the policy's operating point)."""
        loads = [PairLoad(self.t_m_alone, self.t_c)] * self.context_count
        return estimate_pair_slowdowns(loads, k, self.latency_factor)[0]

    def slowdowns(self) -> Dict[int, float]:
        """Estimated slowdown at every MTL from 1 to ``n``."""
        return {k: self.slowdown(k) for k in range(1, self.context_count + 1)}
