"""MTL selection (Section IV-C of the paper).

The paper proves two monotonicity lemmas from the analytical model:

* among all-busy MTLs, the *lowest* wins (``T_mk`` grows with ``k``
  while ``T_c`` is constant);
* among some-idle MTLs, the *highest* wins (queueing latency grows
  sub-proportionally to ``k`` because of the contention-free
  component: ``T_mb / T_m(b+1) > b / (b+1)``).

The candidate set therefore shrinks from ``n`` to two: ``MTL_NoIdle``
(the minimum all-busy MTL) and ``MTL_Idle = MTL_NoIdle - 1`` (the
maximum some-idle MTL), found by binary search over measured
``(T_mk, T_c)`` windows.  Their speedups share the factor
``(T_mn + T_c)``, so the comparison needs no unthrottled measurement.

:class:`MtlSelector` is an *interactive* state machine because each
measurement requires actually running ``W`` task pairs at the
candidate MTL: the caller loops ``next_probe() -> run window ->
provide()`` until :meth:`next_probe` returns ``None``, then reads
:meth:`decision`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import MeasurementError, ModelError
from repro.core.model import AnalyticalModel

__all__ = ["MtlDecision", "MtlSelector"]


@dataclass(frozen=True)
class MtlDecision:
    """Outcome of one MTL selection.

    Attributes:
        selected_mtl: The chosen constraint (*D-MTL*).
        mtl_no_idle: Minimum all-busy MTL found by the search.
        mtl_idle: Maximum some-idle MTL (``None`` when every MTL keeps
            all cores busy, i.e. ``mtl_no_idle == 1``).
        busy_metric: All-busy candidate's speedup divided by
            ``(T_mn + T_c)``.
        idle_metric: Some-idle candidate's comparable metric (``None``
            without an idle candidate).
        probes_used: Number of measured windows consumed, the
            monitoring cost the pruning is designed to minimise.
        measurements: ``mtl -> (t_m, t_c)`` as measured.
    """

    selected_mtl: int
    mtl_no_idle: int
    mtl_idle: Optional[int]
    busy_metric: float
    idle_metric: Optional[float]
    probes_used: int
    measurements: Dict[int, Tuple[float, float]]


class MtlSelector:
    """Binary-search selector over measured MTL windows."""

    def __init__(self, model: AnalyticalModel) -> None:
        self._model = model
        self._lo = 1
        self._hi = model.core_count
        self._measurements: Dict[int, Tuple[float, float]] = {}
        self._probes = 0
        self._decision: Optional[MtlDecision] = None
        self._needed: Optional[int] = None
        self._advance()

    @property
    def done(self) -> bool:
        return self._decision is not None

    def next_probe(self) -> Optional[int]:
        """MTL that must be measured next, or ``None`` when decided."""
        if self._decision is not None:
            return None
        return self._needed

    def provide(self, mtl: int, t_m: float, t_c: float) -> None:
        """Supply the measured ``(T_mk, T_c)`` window for ``mtl``.

        Seeding with an already-available measurement (e.g. the
        monitoring window at the current MTL) is allowed at any point
        and may shorten the search.
        """
        if self._decision is not None:
            raise MeasurementError("selection already decided")
        if not 1 <= mtl <= self._model.core_count:
            raise ModelError(
                f"mtl {mtl} outside [1, {self._model.core_count}]"
            )
        if mtl in self._measurements:
            raise MeasurementError(f"MTL {mtl} measured twice")
        if t_m <= 0:
            raise MeasurementError(f"t_m must be positive, got {t_m}")
        if t_c < 0:
            raise MeasurementError(f"t_c must be non-negative, got {t_c}")
        self._measurements[mtl] = (t_m, t_c)
        self._probes += 1
        self._advance()

    def decision(self) -> MtlDecision:
        if self._decision is None:
            raise MeasurementError(
                f"selection still needs a measurement at MTL {self._needed}"
            )
        return self._decision

    def _advance(self) -> None:
        """Drive the binary search as far as measurements allow."""
        while self._lo < self._hi:
            mid = (self._lo + self._hi) // 2
            if mid not in self._measurements:
                self._needed = mid
                return
            t_m, t_c = self._measurements[mid]
            if self._model.cores_idle(t_m, t_c, mid):
                self._lo = mid + 1
            else:
                self._hi = mid

        no_idle = self._lo
        if no_idle not in self._measurements:
            self._needed = no_idle
            return
        idle = no_idle - 1 if no_idle > 1 else None
        if idle is not None and idle not in self._measurements:
            self._needed = idle
            return
        self._finalise(no_idle, idle)

    def _finalise(self, no_idle: int, idle: Optional[int]) -> None:
        t_m_busy, t_c_busy = self._measurements[no_idle]
        busy_metric = self._model.busy_selection_metric(t_m_busy, t_c_busy)
        idle_metric: Optional[float] = None
        selected = no_idle
        if idle is not None:
            t_m_idle, _ = self._measurements[idle]
            idle_metric = self._model.idle_selection_metric(t_m_idle, idle)
            if idle_metric > busy_metric:
                selected = idle
        self._decision = MtlDecision(
            selected_mtl=selected,
            mtl_no_idle=no_idle,
            mtl_idle=idle,
            busy_metric=busy_metric,
            idle_metric=idle_metric,
            probes_used=self._probes,
            measurements=dict(self._measurements),
        )
