"""Windowed per-context activation budgets with blacklisting.

BlockHammer-style throttlers bound how hard any one agent may drive
the memory system inside a time window: per-thread activation counters
accumulate, an agent crossing its budget is blacklisted for the rest
of the window, and the counters clear when the window rolls over.
:class:`ActivationBudgetPolicy` is that idiom on this simulator's
vocabulary:

* an *activation* is a memory-task dispatch, observed through the
  plugin :meth:`~repro.core.plugin.ThrottlePolicyPlugin.on_task_dispatch`
  hook;
* the *window* rolls over every ``window_pairs`` completed pairs;
* a blacklisted hardware context is vetoed from acquiring MTL tokens
  through :meth:`~repro.core.plugin.ThrottlePolicyPlugin.blocks_context`
  (it still runs compute work — Section III's "does not have to
  stall" semantics are preserved).

Unlike the MTL-centric policies this one throttles *who* may issue
memory work rather than *how many* may, so its MTL stays fixed; the
two compose (``mtl`` parameter).  At least one context is always left
unblacklisted — with every context vetoed and only memory work ready,
the scheduler would wedge.
"""

from __future__ import annotations

from typing import Dict, Optional, Set

from repro.core.plugin import PolicyParam, ThrottlePolicyPlugin, register_policy
from repro.errors import ConfigurationError
from repro.sim.events import TaskRecord
from repro.stream.task import Task

__all__ = ["ActivationBudgetPolicy"]


class ActivationBudgetPolicy(ThrottlePolicyPlugin):
    """Per-context activation budgets enforced by blacklisting.

    Args:
        context_count: Schedulable contexts ``n``.
        window_pairs: Completed pairs per counting window.
        budget: Memory-task dispatches a context may make per window
            before being blacklisted; defaults to
            ``max(1, 2 * window_pairs // n)`` — twice the fair share.
        mtl: Fixed MTL in force alongside the blacklist (defaults to
            ``n``: all throttling happens via the budget).
    """

    def __init__(
        self,
        context_count: int,
        window_pairs: int = 16,
        budget: Optional[int] = None,
        mtl: Optional[int] = None,
    ) -> None:
        super().__init__("activation-budget")
        if context_count < 1:
            raise ConfigurationError(
                f"context_count must be >= 1, got {context_count}"
            )
        if window_pairs < 1:
            raise ConfigurationError(
                f"window_pairs must be >= 1, got {window_pairs}"
            )
        if budget is None:
            budget = max(1, 2 * window_pairs // context_count)
        if budget < 1:
            raise ConfigurationError(f"budget must be >= 1, got {budget}")
        self._n = context_count
        self._window_pairs = window_pairs
        self._budget = budget
        self._mtl = mtl if mtl is not None else context_count
        if not 1 <= self._mtl <= context_count:
            raise ConfigurationError(
                f"mtl {self._mtl} outside [1, {context_count}]"
            )
        self._counts: Dict[int, int] = {}
        self._blacklist: Set[int] = set()
        self._pairs_in_window = 0
        self.stats.register("activations")
        self.stats.register("blacklist_events")

    @property
    def window_pairs(self) -> int:
        return self._window_pairs

    @property
    def budget(self) -> int:
        return self._budget

    @property
    def blacklisted(self) -> Set[int]:
        """Contexts currently vetoed (copy)."""
        return set(self._blacklist)

    def current_mtl(self) -> int:
        return self._mtl

    def blocks_context(self, context_id: int, now: float) -> bool:
        return context_id in self._blacklist

    def on_task_dispatch(self, task: Task, context_id: int, now: float) -> None:
        if not task.is_memory:
            return
        self.stats.add("activations")
        count = self._counts.get(context_id, 0) + 1
        self._counts[context_id] = count
        if (
            count > self._budget
            and context_id not in self._blacklist
            # Never blacklist the last free context: with only memory
            # work ready and every context vetoed, nothing could run.
            and len(self._blacklist) < self._n - 1
        ):
            self._blacklist.add(context_id)
            self.stats.add("blacklist_events")

    def on_task_complete(self, record: TaskRecord, now: float) -> None:
        if record.is_memory:
            return
        self._pairs_in_window += 1
        if self._pairs_in_window < self._window_pairs:
            return
        self._pairs_in_window = 0
        self._counts.clear()
        self._blacklist.clear()
        self.on_window_close(now)


def _build_activation_budget(
    context_count: int, **params: object
) -> ActivationBudgetPolicy:
    return ActivationBudgetPolicy(context_count, **params)  # type: ignore[arg-type]


register_policy(
    "activation-budget",
    _build_activation_budget,
    summary=(
        "Windowed per-context activation budgets: contexts exceeding "
        "their memory-dispatch budget are blacklisted until the "
        "window rolls over"
    ),
    source="BlockHammer/REGA windowed-counter idiom",
    params=(
        PolicyParam("window_pairs", "int", "16", "completed pairs per window"),
        PolicyParam(
            "budget", "int", "2*window_pairs/n", "dispatches per context per window"
        ),
        PolicyParam("mtl", "int", "n", "fixed MTL alongside the blacklist"),
    ),
)
