"""Offline Exhaustive Search (Section V of the paper).

"The Offline Exhaustive Search policy chooses the best MTL value based
on off-line runs.  MTL is fixed throughout a program's execution."
This module is that meta-procedure: simulate the program once per
static MTL from 1 to n, keep the fastest.  It doubles as the S-MTL
oracle of the synthetic-sweep experiment (Figure 13), which reports
the best static constraint per workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional

from repro.sim.machine import Machine, i7_860
from repro.sim.noise import NoiseModel
from repro.sim.results import SimulationResult
from repro.core.policies import FixedMtlPolicy
from repro.sim.simulator import Simulator
from repro.stream.program import StreamProgram

__all__ = ["OfflineSearchOutcome", "offline_exhaustive_search"]


@dataclass(frozen=True)
class OfflineSearchOutcome:
    """Result of an offline exhaustive search.

    Attributes:
        best_mtl: The static MTL with the smallest makespan (S-MTL).
        best: The simulation result at ``best_mtl``.
        by_mtl: Every per-MTL result, for speedup curves.
    """

    best_mtl: int
    best: SimulationResult
    by_mtl: Dict[int, SimulationResult]

    def makespan(self, mtl: int) -> float:
        return self.by_mtl[mtl].makespan

    def speedup_over(self, baseline_mtl: int) -> float:
        """Speedup of the best static MTL over another static MTL
        (pass ``n`` for the conventional baseline)."""
        return self.by_mtl[baseline_mtl].makespan / self.best.makespan


def offline_exhaustive_search(
    program: StreamProgram,
    machine: Optional[Machine] = None,
    noise_factory: Optional[Callable[[], NoiseModel]] = None,
) -> OfflineSearchOutcome:
    """Simulate ``program`` at every static MTL and keep the fastest.

    Args:
        program: Stream program to search.
        machine: Target machine (defaults to the 1-DIMM i7-860).
        noise_factory: Called once per run so every run sees an
            identically distributed, independently seeded noise stream
            (pass ``None`` for noise-free runs).
    """
    target = machine if machine is not None else i7_860()
    by_mtl: Dict[int, SimulationResult] = {}
    if noise_factory is None:
        # Noise-free runs share one simulator and one pre-built task
        # graph: tasks are frozen and the work queue is rebuilt per
        # run, so results are unchanged, while the rate calculator's
        # snapshot memo stays warm across the whole MTL range.
        simulator = Simulator(target)
        graph = program.to_task_graph()
        for mtl in range(1, target.context_count + 1):
            by_mtl[mtl] = simulator.run_graph(
                graph, FixedMtlPolicy(mtl), program.name
            )
    else:
        for mtl in range(1, target.context_count + 1):
            simulator = Simulator(target, noise=noise_factory())
            by_mtl[mtl] = simulator.run(program, FixedMtlPolicy(mtl))
    best_mtl = min(by_mtl, key=lambda mtl: (by_mtl[mtl].makespan, mtl))
    return OfflineSearchOutcome(
        best_mtl=best_mtl, best=by_mtl[best_mtl], by_mtl=by_mtl
    )
