"""QoS throttling: bound slowdown, maximise throughput.

The QoS formulation of slowdown estimation inverts the fairness
objective: instead of equalising everyone's slowdown, hold a
designated application's slowdown under an operator-chosen bound and
give everything else as much throughput as that bound allows.

:class:`QosGuaranteePolicy` reuses the whole MISE monitor/probe/
estimate loop (:class:`~repro.core.mise.SlowdownDrivenPolicy`) and
changes only the selection rule: among the MTLs whose estimated
per-pair slowdown stays within ``target_slowdown`` it picks the
*largest* (most memory concurrency, hence most throughput for the
rest of the mix); when no MTL can honour the bound — the target is
infeasible for this phase — it degrades to the fairness choice, the
closest the mechanism can get.  At the homogeneous operating point
every pair shares the estimate, so bounding the common estimate
bounds the designated pair's.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.mise import SlowdownDrivenPolicy
from repro.core.plugin import PolicyParam, register_policy
from repro.core.slowdown import SlowdownProfile
from repro.errors import ConfigurationError

__all__ = ["QosGuaranteePolicy"]


class QosGuaranteePolicy(SlowdownDrivenPolicy):
    """Hold estimated slowdown under a target, then maximise MTL.

    Args:
        context_count: Schedulable contexts ``n``.
        target_slowdown: The bound (>= 1); 1 demands alone-run
            performance and is only satisfiable at MTL = 1 on a
            contention-free machine.
        window_pairs: ``W`` — pairs per monitoring (and probe) window.
        initial_mtl: Starting constraint (defaults to ``n``).
    """

    def __init__(
        self,
        context_count: int,
        target_slowdown: float = 1.5,
        window_pairs: int = 16,
        initial_mtl: Optional[int] = None,
    ) -> None:
        if target_slowdown < 1.0:
            raise ConfigurationError(
                f"target_slowdown must be >= 1, got {target_slowdown}"
            )
        super().__init__(
            context_count,
            window_pairs=window_pairs,
            initial_mtl=initial_mtl,
            name="qos-guarantee",
        )
        self._target = target_slowdown
        self.stats.register("target_misses")

    @property
    def target_slowdown(self) -> float:
        return self._target

    def _select(
        self, profile: SlowdownProfile, estimates: Dict[int, float]
    ) -> int:
        feasible = [k for k, s in estimates.items() if s <= self._target]
        if feasible:
            return max(feasible)
        # Infeasible phase: no MTL honours the bound; fall back to the
        # fairness choice (the smallest achievable slowdown).
        self.stats.add("target_misses")
        return min(estimates, key=lambda k: (estimates[k], -k))


def _build_qos(context_count: int, **params: object) -> QosGuaranteePolicy:
    return QosGuaranteePolicy(context_count, **params)  # type: ignore[arg-type]


register_policy(
    "qos",
    _build_qos,
    summary=(
        "Slowdown QoS: largest MTL whose estimated slowdown stays "
        "under target_slowdown; falls back to the fairness choice "
        "when the bound is infeasible"
    ),
    source="QoS slowdown control (arXiv:1508.03087)",
    params=(
        PolicyParam("target_slowdown", "float", "1.5", "slowdown bound (>= 1)"),
        PolicyParam("window_pairs", "int", "16", "pairs per window"),
        PolicyParam("initial_mtl", "int", "n", "starting constraint"),
    ),
)
