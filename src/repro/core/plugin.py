"""The throttling-policy plugin harness.

Ramulator structures its controller plugins around three moments —
``init`` (construction from parameters), ``setup`` (binding to the
hardware being simulated), ``update`` (per-event observation) — with
every plugin registering its statistics so the frontend can dump them
uniformly.  This module brings the same shape to throttling policies:

* :class:`ThrottlePolicyPlugin` is the base class.  Construction takes
  the policy's parameters; :meth:`~ThrottlePolicyPlugin.setup` binds
  the policy to a machine before a run; the simulator drives
  :meth:`~ThrottlePolicyPlugin.on_task_dispatch` and
  :meth:`~ThrottlePolicyPlugin.on_task_complete`, and the policy's own
  machinery reports the derived events
  (:meth:`~ThrottlePolicyPlugin.on_window_close`,
  :meth:`~ThrottlePolicyPlugin.on_phase_change`,
  :meth:`~ThrottlePolicyPlugin.on_selection`) which the base class
  folds into per-plugin statistics.
* :class:`PolicyStats` is the per-plugin stat registry; snapshots flow
  into ``policy_stat`` telemetry events (see
  :mod:`repro.runtime.telemetry`).
* :func:`register_policy` + :class:`PolicyEntry` form the name-keyed
  policy registry.  Policy modules register themselves at import time;
  :mod:`repro.core.registry` imports every policy module and exposes
  the lookup/build API consumed by the CLI, suite, and experiment
  layers.

This module sits below :mod:`repro.sim` (policies live in
:mod:`repro.core`, but ``FixedMtlPolicy`` lives in the scheduler), so
it imports nothing from the simulator at runtime — simulator types
appear in annotations only.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # simulator types are annotation-only at this layer
    from repro.sim.events import TaskRecord
    from repro.sim.machine import Machine
    from repro.stream.task import Task

__all__ = [
    "POLICY_HOOKS",
    "PolicyEntry",
    "PolicyParam",
    "PolicyStats",
    "ThrottlePolicyPlugin",
    "register_policy",
    "registered_policies",
]

#: The machine-readable hook contract: every method through which the
#: simulator (or the policy's own machinery) drives a policy during a
#: run.  Hooks *observe* — they may mutate the policy instance, but
#: never the simulator-owned arguments they receive, may not retain
#: references to those arguments, and may not write module globals.
#: The lint plugin-contract family (RPR901–RPR903) discovers this
#: tuple the same way pool-safety discovers ``POOL_BOUNDARY`` and
#: enforces that contract over every registered policy class.
POLICY_HOOKS: Tuple[str, ...] = (
    "setup",
    "on_task_dispatch",
    "on_task_complete",
    "blocks_context",
    "on_window_close",
    "on_phase_change",
    "on_selection",
)


def _valid_identifier(name: str) -> bool:
    return bool(name) and all(c.isalnum() or c in "_-" for c in name)


class PolicyStats:
    """Ramulator-style per-plugin statistic registry.

    Stats must be registered (usually in the plugin's ``__init__``)
    before they can be bumped; this keeps snapshots structurally
    stable across runs, so two runs of the same policy always expose
    the same stat names — a property the conformance suite pins.
    """

    def __init__(self) -> None:
        self._values: Dict[str, float] = {}

    def register(self, name: str, initial: float = 0.0) -> None:
        if not _valid_identifier(name):
            raise ConfigurationError(f"invalid stat name {name!r}")
        if name in self._values:
            raise ConfigurationError(f"stat {name!r} registered twice")
        self._values[name] = float(initial)

    def registered(self, name: str) -> bool:
        return name in self._values

    def add(self, name: str, delta: float = 1.0) -> None:
        if name not in self._values:
            raise ConfigurationError(f"stat {name!r} was never registered")
        self._values[name] += delta

    def set(self, name: str, value: float) -> None:
        if name not in self._values:
            raise ConfigurationError(f"stat {name!r} was never registered")
        self._values[name] = float(value)

    def get(self, name: str) -> float:
        if name not in self._values:
            raise ConfigurationError(f"stat {name!r} was never registered")
        return self._values[name]

    def snapshot(self) -> Dict[str, float]:
        """Name-sorted copy of every registered stat."""
        return {name: self._values[name] for name in sorted(self._values)}


class ThrottlePolicyPlugin:
    """Base class for pluggable throttling policies.

    Subclasses implement :meth:`current_mtl` (and usually
    :meth:`on_task_complete`); everything else has a safe default so a
    minimal policy stays minimal.  The base class registers the stats
    common to every policy (``windows_closed``, ``phase_changes``,
    ``selections``); subclasses register their own in ``__init__`` and
    everything surfaces through :meth:`stats_snapshot`.
    """

    #: Stats every plugin carries, bumped by the default hook bodies.
    _BASE_STATS = ("windows_closed", "phase_changes", "selections")

    def __init__(self, name: str) -> None:
        if not _valid_identifier(name):
            raise ConfigurationError(f"invalid policy name {name!r}")
        self._plugin_name = name
        self.stats = PolicyStats()
        for stat in self._BASE_STATS:
            self.stats.register(stat)

    # -- identity ------------------------------------------------------

    @property
    def name(self) -> str:
        return self._plugin_name

    # -- the SchedulingPolicy surface ---------------------------------

    def current_mtl(self) -> int:
        raise NotImplementedError(
            f"{type(self).__name__} must implement current_mtl()"
        )

    def is_probing(self) -> bool:
        return False

    # -- simulator-driven hooks ---------------------------------------

    def setup(self, machine: "Machine") -> None:
        """Bind to the machine before a run (Ramulator's ``setup``).

        The default is a no-op; policies that size internal structures
        from the context count override it.  The simulator calls it
        exactly once per ``run_graph``.
        """
        return None

    def on_task_dispatch(self, task: "Task", context_id: int, now: float) -> None:
        """A task was just dispatched to ``context_id``.

        The simulator only pays for this call when a subclass actually
        overrides it (the hot path checks the method identity once per
        run), so the default body must stay empty.
        """
        return None

    def on_task_complete(self, record: "TaskRecord", now: float) -> None:
        """A task completed (the policy's monitoring hook)."""
        return None

    def blocks_context(self, context_id: int, now: float) -> bool:
        """Whether ``context_id`` may not acquire an MTL token now.

        Veto hook for blacklist-style policies (BlockHammer idiom);
        consulted by the dispatcher before the MTL gate.  Like
        :meth:`on_task_dispatch` it costs nothing unless overridden.
        """
        return False

    # -- policy-driven derived events ---------------------------------

    def on_window_close(self, now: float) -> None:
        """A monitoring or probe window completed."""
        self.stats.add("windows_closed")

    def on_phase_change(self, now: float) -> None:
        """The detector signalled a phase change (re-selection trigger)."""
        self.stats.add("phase_changes")

    def on_selection(self, now: float, selected_mtl: int) -> None:
        """An MTL selection committed."""
        self.stats.add("selections")

    # -- reporting -----------------------------------------------------

    def stats_snapshot(self) -> Dict[str, float]:
        """Name-sorted stat values for telemetry emission."""
        return self.stats.snapshot()

    def selection_log(self) -> List[Dict[str, Any]]:
        """Selection decisions as ``policy_selection`` payload fields.

        Each entry carries ``time`` (float) and ``selected_mtl``
        (int); the telemetry layer wraps them into validated records.
        The default derives the log from a ``selections`` attribute
        when the policy keeps one with ``time``/``selected_mtl``-like
        events, so ported policies get it for free.
        """
        events = getattr(self, "selections", None)
        if not events:
            return []
        log: List[Dict[str, Any]] = []
        for event in events:
            selected = getattr(event, "selected_mtl", None)
            if selected is None:
                decision = getattr(event, "decision", None)
                selected = getattr(decision, "selected_mtl", None)
            if selected is None:
                continue
            log.append({"time": float(event.time), "selected_mtl": int(selected)})
        return log


@dataclass(frozen=True)
class PolicyParam:
    """One declared parameter of a registered policy.

    ``default`` is the human-readable default shown in
    ``docs/policies.md`` (``None`` marks the parameter required);
    ``kind`` drives CLI/spec coercion (``"int"`` or ``"float"``).
    """

    name: str
    kind: str
    default: Optional[str]
    doc: str

    def __post_init__(self) -> None:
        if self.kind not in ("int", "float"):
            raise ConfigurationError(
                f"param kind must be 'int' or 'float', got {self.kind!r}"
            )
        if not _valid_identifier(self.name):
            raise ConfigurationError(f"invalid param name {self.name!r}")


@dataclass(frozen=True)
class PolicyEntry:
    """One registry entry: identity, documentation, and a factory.

    ``factory(context_count, **params)`` builds a fresh policy
    instance; params not supplied by the caller are left to the
    factory's own defaults so registry-built policies are constructed
    exactly as direct calls would be.
    """

    name: str
    summary: str
    source: str
    params: Tuple[PolicyParam, ...]
    factory: Callable[..., Any]

    def param(self, name: str) -> Optional[PolicyParam]:
        for param in self.params:
            if param.name == name:
                return param
        return None


_REGISTRY: Dict[str, PolicyEntry] = {}


def register_policy(
    name: str,
    factory: Callable[..., Any],
    *,
    summary: str,
    source: str,
    params: Tuple[PolicyParam, ...] = (),
) -> PolicyEntry:
    """Register a policy under ``name`` (import-time, once)."""
    if not _valid_identifier(name):
        raise ConfigurationError(f"invalid policy name {name!r}")
    if name in _REGISTRY:
        raise ConfigurationError(f"policy {name!r} registered twice")
    seen = set()
    for param in params:
        if param.name in seen:
            raise ConfigurationError(
                f"policy {name!r} declares param {param.name!r} twice"
            )
        seen.add(param.name)
    entry = PolicyEntry(
        name=name, summary=summary, source=source, params=tuple(params),
        factory=factory,
    )
    _REGISTRY[name] = entry
    return entry


def registered_policies() -> Dict[str, PolicyEntry]:
    """Snapshot of the registry (name -> entry), insertion-ordered."""
    return dict(_REGISTRY)
