"""User-defined workloads from declarative JSON specs.

Reproducing new workloads should not require writing Python: a JSON
document describes the phase structure and per-phase characteristics,
either as a published-style memory-to-compute *ratio* (calibrated
against the reference machine, like Tables II/III) or as explicit
*requests* and *compute_seconds*.

Example::

    {
      "name": "my-pipeline",
      "phases": [
        {"name": "ingest",  "pairs": 64, "ratio": 0.55},
        {"name": "crunch",  "pairs": 96, "ratio": 0.08},
        {"name": "emit",    "pairs": 32,
         "requests": 8192, "compute_seconds": 0.0012}
      ]
    }

Load with :func:`load_workload_spec` (a path or an already-parsed
dict).  Validation is eager and names the offending phase.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Union

from repro.errors import WorkloadError
from repro.stream.program import ProgramPhase, StreamProgram, build_phase
from repro.units import cache_lines
from repro.workloads.base import DEFAULT_FOOTPRINT_BYTES, compute_time_for_ratio

__all__ = ["load_workload_spec", "parse_workload_spec"]

_PHASE_KEYS = {
    "name",
    "pairs",
    "ratio",
    "requests",
    "compute_seconds",
    "footprint_bytes",
}


def load_workload_spec(source: Union[str, pathlib.Path]) -> StreamProgram:
    """Load a workload spec from a JSON file."""
    path = pathlib.Path(source)
    try:
        text = path.read_text()
    except OSError as exc:
        raise WorkloadError(f"cannot read workload spec {path}: {exc}") from exc
    try:
        document = json.loads(text)
    except json.JSONDecodeError as exc:
        raise WorkloadError(f"workload spec {path} is not valid JSON: {exc}") from exc
    return parse_workload_spec(document)


def parse_workload_spec(document: Dict[str, Any]) -> StreamProgram:
    """Build a stream program from a parsed spec document."""
    if not isinstance(document, dict):
        raise WorkloadError(
            f"workload spec must be a JSON object, got {type(document).__name__}"
        )
    name = document.get("name")
    if not name or not isinstance(name, str):
        raise WorkloadError("workload spec needs a non-empty string 'name'")
    raw_phases = document.get("phases")
    if not isinstance(raw_phases, list) or not raw_phases:
        raise WorkloadError(
            f"workload {name!r} needs a non-empty 'phases' list"
        )

    phases: List[ProgramPhase] = []
    for index, raw in enumerate(raw_phases):
        phases.append(_parse_phase(name, index, raw))
    return StreamProgram(name, phases)


def _parse_phase(workload: str, index: int, raw: Any) -> ProgramPhase:
    if not isinstance(raw, dict):
        raise WorkloadError(
            f"{workload!r} phase {index} must be an object, got "
            f"{type(raw).__name__}"
        )
    unknown = set(raw) - _PHASE_KEYS
    if unknown:
        raise WorkloadError(
            f"{workload!r} phase {index} has unknown keys {sorted(unknown)}; "
            f"allowed: {sorted(_PHASE_KEYS)}"
        )
    phase_name = raw.get("name", f"phase{index}")
    pairs = raw.get("pairs")
    if not isinstance(pairs, int) or pairs < 1:
        raise WorkloadError(
            f"{workload!r} phase {phase_name!r} needs integer 'pairs' >= 1"
        )
    footprint = raw.get("footprint_bytes", DEFAULT_FOOTPRINT_BYTES)
    if not isinstance(footprint, int) or footprint <= 0:
        raise WorkloadError(
            f"{workload!r} phase {phase_name!r}: 'footprint_bytes' must be a "
            "positive integer"
        )

    has_ratio = "ratio" in raw
    has_explicit = "requests" in raw or "compute_seconds" in raw
    if has_ratio and has_explicit:
        raise WorkloadError(
            f"{workload!r} phase {phase_name!r}: give either 'ratio' or "
            "'requests'+'compute_seconds', not both"
        )

    if has_ratio:
        ratio = raw["ratio"]
        if not isinstance(ratio, (int, float)) or ratio <= 0:
            raise WorkloadError(
                f"{workload!r} phase {phase_name!r}: 'ratio' must be positive"
            )
        requests = float(cache_lines(footprint))
        compute_seconds = compute_time_for_ratio(float(ratio), footprint)
    else:
        requests = raw.get("requests")
        compute_seconds = raw.get("compute_seconds")
        if not isinstance(requests, (int, float)) or requests <= 0:
            raise WorkloadError(
                f"{workload!r} phase {phase_name!r}: needs positive 'requests' "
                "(or use 'ratio')"
            )
        if not isinstance(compute_seconds, (int, float)) or compute_seconds <= 0:
            raise WorkloadError(
                f"{workload!r} phase {phase_name!r}: needs positive "
                "'compute_seconds' (or use 'ratio')"
            )
        requests = float(requests)
        compute_seconds = float(compute_seconds)

    return build_phase(
        name=str(phase_name),
        phase_index=index,
        pair_count=pairs,
        requests_per_memory_task=requests,
        compute_seconds_per_task=compute_seconds,
        footprint_bytes=footprint,
    )
