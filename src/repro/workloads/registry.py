"""Name-based workload registry.

Lets examples and benchmark harnesses look workloads up by the names
the paper uses (``dft``, ``SC_d128`` .. ``SC_d20``, ``SIFT``), plus
parameterised synthetic instances.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import WorkloadError
from repro.stream.program import StreamProgram
from repro.workloads.dft import dft
from repro.workloads.media import jpeg_decode, mpeg2_decode
from repro.workloads.sift import sift
from repro.workloads.streamcluster import STREAMCLUSTER_RATIOS, streamcluster

__all__ = ["workload_names", "build_workload", "realistic_workloads"]

_FACTORIES: Dict[str, Callable[[], StreamProgram]] = {
    "dft": dft,
    "SIFT": sift,
    "jpeg-decode": jpeg_decode,
    "mpeg2-decode": mpeg2_decode,
}
for _dim in sorted(STREAMCLUSTER_RATIOS):
    _FACTORIES[f"SC_d{_dim}"] = (
        lambda dimension=_dim: streamcluster(dimension)
    )


def workload_names() -> List[str]:
    """All registered workload names, sorted."""
    return sorted(_FACTORIES)


def build_workload(name: str) -> StreamProgram:
    """Build a registered workload by name."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(workload_names())}"
        ) from None
    return factory()


def realistic_workloads() -> List[str]:
    """The three realistic workloads of Figure 14, in paper order."""
    return ["dft", "SC_d128", "SIFT"]
