"""SIFT (Scale-Invariant Feature Transform) workload (Table III).

SIFT++ builds a Gaussian scale-space pyramid (the convolution
functions), differences adjacent scales (DOG), and upsamples
(COPYUP).  The paper reports per-function memory-to-compute ratios
(Table III) spanning 7.8% to 70% — the phase diversity that motivates
*dynamic* MTL adaptation: the throttler must pick MTL=2 for ECONVOLVE
(70.04%) and drop to MTL=1 for ECONVOLVE2 (7.83%) as the program moves
through its pipeline (Section VI-D1).

The trace model: the functions as consecutive phases in pipeline
order, each with the published ratio.  Later pyramid octaves process
smaller images, reflected in the decreasing pair counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import WorkloadError
from repro.stream.program import ProgramPhase, StreamProgram, build_phase
from repro.units import cache_lines
from repro.workloads.base import DEFAULT_FOOTPRINT_BYTES, compute_time_for_ratio

__all__ = ["SIFT_FUNCTION_RATIOS", "SiftWorkload", "sift", "sift_function"]

#: Published ``T_m1 / T_c`` per parallel function (Table III), in
#: pipeline order.
SIFT_FUNCTION_RATIOS: Dict[str, float] = {
    "COPYUP": 0.2102,
    "ECONVOLVE": 0.7004,
    "ECONVOLVE2": 0.0783,
    "ECONVOLVE3-0": 0.0845,
    "ECONVOLVE3-1": 0.0845,
    "ECONVOLVE3-2": 0.0832,
    "ECONVOLVE3-3": 0.0827,
    "ECONVOLVE3-4": 0.0815,
    "ECONVOLVE4-0": 0.1187,
    "ECONVOLVE4-1": 0.1166,
    "ECONVOLVE4-2": 0.1210,
    "ECONVOLVE4-3": 0.1168,
    "ECONVOLVE4-4": 0.1153,
    "DOG": 0.6032,
}

#: Task pairs per function: the convolution pyramid shrinks by octave,
#: so later functions carry less parallel work.
_DEFAULT_PAIR_COUNTS: Dict[str, int] = {
    "COPYUP": 96,
    "ECONVOLVE": 96,
    "ECONVOLVE2": 96,
    "ECONVOLVE3-0": 80,
    "ECONVOLVE3-1": 80,
    "ECONVOLVE3-2": 80,
    "ECONVOLVE3-3": 80,
    "ECONVOLVE3-4": 80,
    "ECONVOLVE4-0": 64,
    "ECONVOLVE4-1": 64,
    "ECONVOLVE4-2": 64,
    "ECONVOLVE4-3": 64,
    "ECONVOLVE4-4": 64,
    "DOG": 96,
}


def _build_function_phase(
    function: str, phase_index: int, pairs: int, footprint_bytes: int
) -> ProgramPhase:
    ratio = SIFT_FUNCTION_RATIOS[function]
    requests = cache_lines(footprint_bytes)
    t_c = compute_time_for_ratio(ratio, footprint_bytes)
    return build_phase(
        name=function,
        phase_index=phase_index,
        pair_count=pairs,
        requests_per_memory_task=float(requests),
        compute_seconds_per_task=t_c,
        footprint_bytes=footprint_bytes,
    )


@dataclass(frozen=True)
class SiftWorkload:
    """The full SIFT pipeline as a phased stream program."""

    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES
    pair_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.pair_scale <= 0:
            raise WorkloadError(
                f"pair_scale must be positive, got {self.pair_scale}"
            )

    @property
    def name(self) -> str:
        return "SIFT"

    def function_names(self) -> Tuple[str, ...]:
        return tuple(SIFT_FUNCTION_RATIOS)

    def build(self) -> StreamProgram:
        phases: List[ProgramPhase] = []
        for index, function in enumerate(SIFT_FUNCTION_RATIOS):
            pairs = max(int(_DEFAULT_PAIR_COUNTS[function] * self.pair_scale), 1)
            phases.append(
                _build_function_phase(
                    function, index, pairs, self.footprint_bytes
                )
            )
        return StreamProgram(self.name, phases)


def sift() -> StreamProgram:
    """Build the full 14-phase SIFT pipeline."""
    return SiftWorkload().build()


def sift_function(function: str, pairs: int = None) -> StreamProgram:
    """Build one SIFT parallel function as a standalone program.

    Figure 16 of the paper evaluates the main functions individually;
    this gives the same granularity.
    """
    if function not in SIFT_FUNCTION_RATIOS:
        raise WorkloadError(
            f"unknown SIFT function {function!r}; known: "
            f"{', '.join(SIFT_FUNCTION_RATIOS)}"
        )
    count = pairs if pairs is not None else _DEFAULT_PAIR_COUNTS[function]
    if count < 1:
        raise WorkloadError(f"pairs must be >= 1, got {count}")
    phase = _build_function_phase(function, 0, count, DEFAULT_FOOTPRINT_BYTES)
    return StreamProgram(f"SIFT.{function}", [phase])
