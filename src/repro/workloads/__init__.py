"""Workloads.

Trace-driven stream programs calibrated to the paper's published
workload characteristics:

* :mod:`repro.workloads.synthetic` — the Figure 12 micro-benchmark
  with ratio and footprint knobs (the Figure 13 sweep);
* :mod:`repro.workloads.dft` — the OpenCV dft kernel (Table II);
* :mod:`repro.workloads.streamcluster` — the six PARSEC streamcluster
  instances (Table II, Figure 17);
* :mod:`repro.workloads.sift` — the 14-function SIFT pipeline
  (Table III, Figure 16);
* :mod:`repro.workloads.registry` — lookup by paper name.
"""

from repro.workloads.base import (
    DEFAULT_FOOTPRINT_BYTES,
    REFERENCE_SOLO_LATENCY,
    Workload,
    compute_time_for_ratio,
)
from repro.workloads.dft import DFT_PAIRS, DFT_RATIO, DftWorkload, dft
from repro.workloads.registry import (
    build_workload,
    realistic_workloads,
    workload_names,
)
from repro.workloads.media import (
    JPEG_STAGE_RATIOS,
    MPEG_STAGE_RATIOS,
    jpeg_decode,
    mpeg2_decode,
)
from repro.workloads.spec import load_workload_spec, parse_workload_spec
from repro.workloads.sift import (
    SIFT_FUNCTION_RATIOS,
    SiftWorkload,
    sift,
    sift_function,
)
from repro.workloads.streamcluster import (
    NATIVE_DIMENSION,
    STREAMCLUSTER_RATIOS,
    StreamclusterWorkload,
    streamcluster,
)
from repro.workloads.synthetic import (
    SyntheticWorkload,
    ratio_sweep,
    synthetic_from_count,
    synthetic_from_ratio,
)

__all__ = [
    "DEFAULT_FOOTPRINT_BYTES",
    "DFT_PAIRS",
    "DFT_RATIO",
    "DftWorkload",
    "NATIVE_DIMENSION",
    "REFERENCE_SOLO_LATENCY",
    "SIFT_FUNCTION_RATIOS",
    "STREAMCLUSTER_RATIOS",
    "SiftWorkload",
    "StreamclusterWorkload",
    "SyntheticWorkload",
    "Workload",
    "build_workload",
    "compute_time_for_ratio",
    "JPEG_STAGE_RATIOS",
    "MPEG_STAGE_RATIOS",
    "dft",
    "jpeg_decode",
    "load_workload_spec",
    "mpeg2_decode",
    "parse_workload_spec",
    "ratio_sweep",
    "realistic_workloads",
    "sift",
    "sift_function",
    "streamcluster",
    "synthetic_from_count",
    "synthetic_from_ratio",
    "workload_names",
]
