"""The synthetic micro-benchmark (Figure 12 of the paper).

The kernel is a simple array computation: each memory task stores a
constant into its array tile (streaming it through the LLC); each
compute task makes ``count`` passes over the tile adding a constant.
Two construction paths are provided:

* :func:`synthetic_from_count` — faithful to Figure 12: the ``count``
  knob sets the compute time from a per-element-per-pass cost.
* :func:`synthetic_from_ratio` — the evaluation's parameterisation:
  the target ``T_m1 / T_c`` ratio directly (the paper sweeps 0.01 to
  4.00 in 0.01 steps).

The footprint knob reproduces the Figure 13 variants: 0.5 MB and 1 MB
tiles fit the per-core LLC share; 2 MB tiles overflow it, so the
compute tasks carry spilled off-chip requests (computed from the LLC
model) and interfere with memory tasks — the effect that breaks the
analytical model in Figure 13(c).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import WorkloadError
from repro.memory.cache import LastLevelCache
from repro.stream.program import StreamProgram, build_phase
from repro.units import cache_lines, mebibytes
from repro.workloads.base import (
    DEFAULT_FOOTPRINT_BYTES,
    compute_time_for_ratio,
)

__all__ = [
    "SyntheticWorkload",
    "synthetic_from_ratio",
    "synthetic_from_count",
    "ratio_sweep",
]

#: Seconds per array element per compute pass (the cost of one
#: ``A[i] += k``) used by the count-based constructor: a handful of
#: cycles on a 2.8 GHz Nehalem.
_SECONDS_PER_ELEMENT_PASS = 1.5e-9

#: Bytes per array element (``A`` is a double array).
_ELEMENT_BYTES = 8


@dataclass(frozen=True)
class SyntheticWorkload:
    """One synthetic workload instance.

    Attributes:
        ratio: Target ``T_m1 / T_c`` on the reference machine.
        footprint_bytes: Memory-task tile size.
        pairs: Number of memory/compute task pairs.
        cache: Optional LLC model; when the tile overflows the per-core
            share the compute tasks carry the spilled requests.
    """

    ratio: float
    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES
    pairs: int = 64
    cache: Optional[LastLevelCache] = None

    def __post_init__(self) -> None:
        if self.ratio <= 0:
            raise WorkloadError(f"ratio must be positive, got {self.ratio}")
        if self.footprint_bytes <= 0:
            raise WorkloadError(
                f"footprint_bytes must be positive, got {self.footprint_bytes}"
            )
        if self.pairs < 1:
            raise WorkloadError(f"pairs must be >= 1, got {self.pairs}")

    @property
    def name(self) -> str:
        footprint_mb = self.footprint_bytes / mebibytes(1)
        return f"synthetic(r={self.ratio:.2f},{footprint_mb:g}MB)"

    def build(self) -> StreamProgram:
        requests = cache_lines(self.footprint_bytes)
        t_c = compute_time_for_ratio(self.ratio, self.footprint_bytes)
        spill = 0.0
        if self.cache is not None:
            spill = self.cache.miss_fraction(self.footprint_bytes) * requests
        phase = build_phase(
            name="kernel",
            phase_index=0,
            pair_count=self.pairs,
            requests_per_memory_task=float(requests),
            compute_seconds_per_task=t_c,
            footprint_bytes=self.footprint_bytes,
            compute_spill_requests=spill,
        )
        return StreamProgram(self.name, [phase])


def synthetic_from_ratio(
    ratio: float,
    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES,
    pairs: int = 64,
    cache: Optional[LastLevelCache] = None,
) -> StreamProgram:
    """Build a synthetic program with a target ``T_m1/T_c`` ratio."""
    return SyntheticWorkload(
        ratio=ratio, footprint_bytes=footprint_bytes, pairs=pairs, cache=cache
    ).build()


def synthetic_from_count(
    count: int,
    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES,
    pairs: int = 64,
    cache: Optional[LastLevelCache] = None,
) -> StreamProgram:
    """Build the Figure 12 kernel from its ``count`` knob.

    ``count`` passes over ``footprint / 8`` double elements define the
    compute time; the implied ``T_m1 / T_c`` falls out of the tile's
    request count.
    """
    if count < 1:
        raise WorkloadError(f"count must be >= 1, got {count}")
    if footprint_bytes <= 0:
        raise WorkloadError(
            f"footprint_bytes must be positive, got {footprint_bytes}"
        )
    elements = footprint_bytes // _ELEMENT_BYTES
    t_c = count * elements * _SECONDS_PER_ELEMENT_PASS
    requests = cache_lines(footprint_bytes)
    spill = 0.0
    if cache is not None:
        spill = cache.miss_fraction(footprint_bytes) * requests
    phase = build_phase(
        name=f"kernel(count={count})",
        phase_index=0,
        pair_count=pairs,
        requests_per_memory_task=float(requests),
        compute_seconds_per_task=t_c,
        footprint_bytes=footprint_bytes,
        compute_spill_requests=spill,
    )
    return StreamProgram(f"synthetic(count={count})", [phase])


def ratio_sweep(
    start: float = 0.01,
    stop: float = 4.00,
    step: float = 0.01,
    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES,
    pairs: int = 64,
    cache: Optional[LastLevelCache] = None,
) -> List[SyntheticWorkload]:
    """The Figure 13 sweep: ratios ``start..stop`` in ``step`` steps."""
    if step <= 0:
        raise WorkloadError(f"step must be positive, got {step}")
    if stop < start:
        raise WorkloadError(f"stop ({stop}) must be >= start ({start})")
    workloads: List[SyntheticWorkload] = []
    steps = int(round((stop - start) / step))
    for i in range(steps + 1):
        ratio = round(start + i * step, 10)
        if ratio > stop + 1e-12:
            break
        workloads.append(
            SyntheticWorkload(
                ratio=ratio,
                footprint_bytes=footprint_bytes,
                pairs=pairs,
                cache=cache,
            )
        )
    return workloads
