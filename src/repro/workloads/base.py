"""Workload protocol and calibration helpers.

The paper characterises every workload by its memory-to-compute ratio
``T_m1 / T_c`` (Tables II and III), measured on the reference machine
— the 1-DIMM i7-860.  Our workloads are *trace-driven*: each is a
stream program whose memory tasks carry a real footprint (hence a real
request count) and whose compute time is calibrated so that the
program reproduces the published ratio on the reference machine.  On
any other machine (2-DIMM, SMT) the ratio then shifts naturally with
the memory system, exactly as a real binary's would.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.errors import WorkloadError
from repro.memory.contention import nehalem_ddr3_contention
from repro.stream.program import StreamProgram
from repro.units import cache_lines, mebibytes

__all__ = [
    "Workload",
    "REFERENCE_SOLO_LATENCY",
    "DEFAULT_FOOTPRINT_BYTES",
    "compute_time_for_ratio",
]

#: ``L(1)`` of the reference machine (1-DIMM i7-860); the basis every
#: published ``T_m1/T_c`` ratio is calibrated against.
REFERENCE_SOLO_LATENCY = nehalem_ddr3_contention().request_latency(1.0)

#: Default memory-task footprint: 0.5 MB, comfortably inside the
#: per-core LLC share, as the real-workload experiments require
#: (Section V: "always less than the last-level cache size per core").
DEFAULT_FOOTPRINT_BYTES = mebibytes(0.5)


@runtime_checkable
class Workload(Protocol):
    """A named generator of stream programs."""

    @property
    def name(self) -> str:
        """Workload name as reported in the paper's tables."""

    def build(self) -> StreamProgram:
        """Materialise the workload as a stream program."""


def compute_time_for_ratio(
    ratio: float, footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES
) -> float:
    """Compute-task seconds giving ``T_m1 / T_c = ratio`` at reference.

    ``T_m1`` is the footprint's request count times the reference
    solo latency; the returned ``T_c`` is ``T_m1 / ratio``.
    """
    if ratio <= 0:
        raise WorkloadError(f"ratio must be positive, got {ratio}")
    if footprint_bytes <= 0:
        raise WorkloadError(
            f"footprint_bytes must be positive, got {footprint_bytes}"
        )
    t_m1 = cache_lines(footprint_bytes) * REFERENCE_SOLO_LATENCY
    return t_m1 / ratio
