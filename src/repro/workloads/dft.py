"""The OpenCV ``dft`` kernel workload (Table II of the paper).

The paper rewrites OpenCV's discrete-Fourier-transform kernel into
stream style following Gummaraju et al. and reports:

* ``T_m1 / T_c = 12.77%`` — strongly compute-bound, so all cores stay
  busy at any MTL and the throttler should settle on D-MTL = 1
  (Section VI-B);
* exactly **96** parallel memory/compute task pairs — few enough that
  monitoring overhead dominates once ``W > 8`` (Section VI-C).

The trace model: one parallel section of 96 equally-sized pairs, each
gathering a 0.5 MB tile of transform rows, with compute time
calibrated to the published ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stream.program import StreamProgram, build_phase
from repro.units import cache_lines
from repro.workloads.base import DEFAULT_FOOTPRINT_BYTES, compute_time_for_ratio

__all__ = ["DFT_RATIO", "DFT_PAIRS", "DftWorkload", "dft"]

#: Published ``T_m1 / T_c`` of the dft kernel (Table II).
DFT_RATIO = 0.1277

#: Published number of parallel memory-compute task pairs (Section VI-C).
DFT_PAIRS = 96


@dataclass(frozen=True)
class DftWorkload:
    """The dft kernel as a trace-driven stream program."""

    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES

    @property
    def name(self) -> str:
        return "dft"

    def build(self) -> StreamProgram:
        requests = cache_lines(self.footprint_bytes)
        t_c = compute_time_for_ratio(DFT_RATIO, self.footprint_bytes)
        phase = build_phase(
            name="dft-kernel",
            phase_index=0,
            pair_count=DFT_PAIRS,
            requests_per_memory_task=float(requests),
            compute_seconds_per_task=t_c,
            footprint_bytes=self.footprint_bytes,
        )
        return StreamProgram(self.name, [phase])


def dft() -> StreamProgram:
    """Build the dft workload with default parameters."""
    return DftWorkload().build()
