"""PARSEC ``streamcluster`` workloads (Table II of the paper).

Streamcluster solves online k-median clustering; its inner loop
repeatedly evaluates opening a new cluster centre against every point,
a long sequence of similar parallel sections.  The paper varies the
point dimensionality to produce six instances with different
memory-to-compute ratios (Table II):

=========  ==============
instance   ``T_m1 / T_c``
=========  ==============
SC_d128    37.14%  (the PARSEC *native* input)
SC_d72     43.09%
SC_d48     28.90%
SC_d36     54.13%
SC_d32     24.59%
SC_d20     49.58%
=========  ==============

The trace model: ``rounds`` consecutive phases (the repeated pgain
evaluations) of equally-sized pairs, all at the instance's ratio.
With many pairs per phase and a stable ratio, the throttler selects
once and keeps its D-MTL — the behaviour behind the paper's 0.04%
monitoring overhead for this workload.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import WorkloadError
from repro.stream.program import StreamProgram, build_phase
from repro.units import cache_lines
from repro.workloads.base import DEFAULT_FOOTPRINT_BYTES, compute_time_for_ratio

__all__ = [
    "STREAMCLUSTER_RATIOS",
    "NATIVE_DIMENSION",
    "StreamclusterWorkload",
    "streamcluster",
]

#: Published ``T_m1 / T_c`` per input dimensionality (Table II).
STREAMCLUSTER_RATIOS: Dict[int, float] = {
    128: 0.3714,
    72: 0.4309,
    48: 0.2890,
    36: 0.5413,
    32: 0.2459,
    20: 0.4958,
}

#: The PARSEC-provided *native* input size (footnote 3 of the paper).
NATIVE_DIMENSION = 128


@dataclass(frozen=True)
class StreamclusterWorkload:
    """One streamcluster instance.

    Attributes:
        dimension: Input array dimensionality (one of the six studied).
        rounds: Number of consecutive pgain parallel sections.
        pairs_per_round: Task pairs per section.
        footprint_bytes: Memory-task tile size.
    """

    dimension: int = NATIVE_DIMENSION
    rounds: int = 6
    pairs_per_round: int = 64
    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES

    def __post_init__(self) -> None:
        if self.dimension not in STREAMCLUSTER_RATIOS:
            raise WorkloadError(
                f"dimension {self.dimension} not studied; pick one of "
                f"{sorted(STREAMCLUSTER_RATIOS)}"
            )
        if self.rounds < 1:
            raise WorkloadError(f"rounds must be >= 1, got {self.rounds}")
        if self.pairs_per_round < 1:
            raise WorkloadError(
                f"pairs_per_round must be >= 1, got {self.pairs_per_round}"
            )

    @property
    def name(self) -> str:
        return f"SC_d{self.dimension}"

    @property
    def ratio(self) -> float:
        return STREAMCLUSTER_RATIOS[self.dimension]

    def build(self) -> StreamProgram:
        requests = cache_lines(self.footprint_bytes)
        t_c = compute_time_for_ratio(self.ratio, self.footprint_bytes)
        phases: List = []
        for round_index in range(self.rounds):
            phases.append(
                build_phase(
                    name=f"pgain-{round_index}",
                    phase_index=round_index,
                    pair_count=self.pairs_per_round,
                    requests_per_memory_task=float(requests),
                    compute_seconds_per_task=t_c,
                    footprint_bytes=self.footprint_bytes,
                )
            )
        return StreamProgram(self.name, phases)


def streamcluster(dimension: int = NATIVE_DIMENSION) -> StreamProgram:
    """Build a streamcluster instance by input dimensionality."""
    return StreamclusterWorkload(dimension=dimension).build()
