"""Media-decoder workloads (motivated by the paper's Section II).

The paper motivates stream programming with media applications:
"some media applications, such as jpeg/mpeg decoder, and image
processing kernels are rewritten in the StreamIt language".  It does
not evaluate them, so no published ratios exist; these trace models
are *synthetic but structurally faithful* — each decoder stage is a
parallel phase whose memory-to-compute ratio reflects its arithmetic
intensity (entropy decoding is branchy compute, colour conversion is
a streaming triple-store), and an MPEG decoder cycles its stage
sequence once per frame, giving the throttler a periodic phase
pattern unlike anything in the paper's evaluation set.

Stage ratios are module constants so experiments can cite them the
way Tables II/III are cited for the paper's workloads.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import WorkloadError
from repro.stream.program import ProgramPhase, StreamProgram, build_phase
from repro.units import cache_lines
from repro.workloads.base import DEFAULT_FOOTPRINT_BYTES, compute_time_for_ratio

__all__ = [
    "JPEG_STAGE_RATIOS",
    "MPEG_STAGE_RATIOS",
    "jpeg_decode",
    "mpeg2_decode",
]

#: Modelled ``T_m1/T_c`` per JPEG decode stage (arithmetic-intensity
#: ordering: entropy decode is compute-bound; colour conversion is a
#: bandwidth-bound streaming kernel).
JPEG_STAGE_RATIOS: Dict[str, float] = {
    "ENTROPY-DECODE": 0.06,
    "DEQUANT-IDCT": 0.18,
    "UPSAMPLE": 0.35,
    "COLOR-CONVERT": 0.55,
}

#: Modelled ``T_m1/T_c`` per MPEG-2 decode stage.
MPEG_STAGE_RATIOS: Dict[str, float] = {
    "VLD": 0.07,
    "IDCT": 0.20,
    "MOTION-COMP": 0.60,
    "DEBLOCK": 0.30,
}


def _stage_phase(
    stage: str,
    ratio: float,
    phase_index: int,
    pairs: int,
    footprint_bytes: int,
) -> ProgramPhase:
    requests = cache_lines(footprint_bytes)
    t_c = compute_time_for_ratio(ratio, footprint_bytes)
    return build_phase(
        name=stage,
        phase_index=phase_index,
        pair_count=pairs,
        requests_per_memory_task=float(requests),
        compute_seconds_per_task=t_c,
        footprint_bytes=footprint_bytes,
    )


def jpeg_decode(
    images: int = 4,
    pairs_per_stage: int = 48,
    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES,
) -> StreamProgram:
    """A JPEG decoder: the four stages, repeated once per image.

    Each image's stages run back to back (producer-consumer), so the
    throttler sees the full ratio range from 6% to 55% ``images``
    times over.
    """
    if images < 1:
        raise WorkloadError(f"images must be >= 1, got {images}")
    if pairs_per_stage < 1:
        raise WorkloadError(
            f"pairs_per_stage must be >= 1, got {pairs_per_stage}"
        )
    phases: List[ProgramPhase] = []
    index = 0
    for image in range(images):
        for stage, ratio in JPEG_STAGE_RATIOS.items():
            phases.append(
                _stage_phase(
                    f"{stage}[{image}]", ratio, index, pairs_per_stage,
                    footprint_bytes,
                )
            )
            index += 1
    return StreamProgram("jpeg-decode", phases)


def mpeg2_decode(
    frames: int = 6,
    pairs_per_stage: int = 32,
    footprint_bytes: int = DEFAULT_FOOTPRINT_BYTES,
) -> StreamProgram:
    """An MPEG-2 decoder: the stage cycle repeated once per frame."""
    if frames < 1:
        raise WorkloadError(f"frames must be >= 1, got {frames}")
    if pairs_per_stage < 1:
        raise WorkloadError(
            f"pairs_per_stage must be >= 1, got {pairs_per_stage}"
        )
    phases: List[ProgramPhase] = []
    index = 0
    for frame in range(frames):
        for stage, ratio in MPEG_STAGE_RATIOS.items():
            phases.append(
                _stage_phase(
                    f"{stage}[{frame}]", ratio, index, pairs_per_stage,
                    footprint_bytes,
                )
            )
            index += 1
    return StreamProgram("mpeg2-decode", phases)
