"""repro — reproduction of *Memory Latency Reduction via Thread
Throttling* (Cheng, Lin, Li, Yang; MICRO 2010).

The library decomposes into the paper's contribution and the
substrates it runs on:

* :mod:`repro.core` — the analytical model, phase detection, MTL
  selection, the dynamic throttling policy, and the baselines;
* :mod:`repro.sim` — a processor-sharing multi-core machine simulator
  standing in for the paper's Intel i7-860 testbed;
* :mod:`repro.memory` — contention models, an LLC capacity model, and
  a bank-level DRAM validator;
* :mod:`repro.stream` — the gather-compute-scatter task model;
* :mod:`repro.workloads` — the paper's synthetic sweep, dft,
  streamcluster, and SIFT as calibrated trace-driven programs;
* :mod:`repro.runtime` / :mod:`repro.analysis` — measurement
  protocols, experiment harnesses, and reporting.

Quickstart::

    from repro import (
        DynamicThrottlingPolicy, conventional_policy, i7_860, simulate,
    )
    from repro.workloads import streamcluster

    program = streamcluster()                # the PARSEC native input
    machine = i7_860()                       # 4 cores, 1 DIMM
    base = simulate(program, conventional_policy(4), machine)
    fast = simulate(program, DynamicThrottlingPolicy(4), machine)
    print(f"speedup {base.makespan / fast.makespan:.3f}x")
"""

from repro.core import (
    AnalyticalModel,
    DynamicThrottlingPolicy,
    FixedMtlPolicy,
    MtlDecision,
    MtlSelector,
    OnlineExhaustivePolicy,
    PhaseChangeDetector,
    conventional_policy,
    offline_exhaustive_search,
    predict_speedup_curve,
)
from repro.sim import (
    GaussianNoise,
    Machine,
    SimulationResult,
    Simulator,
    ZeroNoise,
    i7_860,
    simulate,
)
from repro.stream import StreamProgram, TaskGraph, TaskPair

__version__ = "1.0.0"

__all__ = [
    "AnalyticalModel",
    "DynamicThrottlingPolicy",
    "FixedMtlPolicy",
    "GaussianNoise",
    "Machine",
    "MtlDecision",
    "MtlSelector",
    "OnlineExhaustivePolicy",
    "PhaseChangeDetector",
    "SimulationResult",
    "Simulator",
    "StreamProgram",
    "TaskGraph",
    "TaskPair",
    "ZeroNoise",
    "__version__",
    "conventional_policy",
    "i7_860",
    "offline_exhaustive_search",
    "predict_speedup_curve",
    "simulate",
]
