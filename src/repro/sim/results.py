"""Simulation results and derived statistics.

:class:`SimulationResult` is the immutable outcome of one run.  All the
quantities the paper reports are derived from it: makespan (the basis
of every speedup), per-kind mean task durations grouped by the MTL in
force (``T_mk`` and ``T_c``), core utilisation, the MTL timeline of a
dynamic policy, and the share of execution spent in monitoring windows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import MeasurementError
from repro.sim.events import MtlChange, TaskRecord
from repro.stream.task import TaskKind

__all__ = ["SimulationResult"]


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one simulated program execution."""

    program_name: str
    machine_name: str
    policy_name: str
    context_count: int
    records: Tuple[TaskRecord, ...]
    mtl_changes: Tuple[MtlChange, ...]

    @property
    def makespan(self) -> float:
        """Total execution time (what the paper's speedups compare)."""
        if not self.records:
            return 0.0
        return max(record.end for record in self.records)

    @property
    def task_count(self) -> int:
        return len(self.records)

    def durations(
        self,
        kind: Optional[TaskKind] = None,
        mtl: Optional[int] = None,
        phase_index: Optional[int] = None,
        include_probes: bool = True,
    ) -> List[float]:
        """Durations of records matching the given filters."""
        out = []
        for record in self.records:
            if kind is not None and record.kind is not kind:
                continue
            if mtl is not None and record.mtl_at_dispatch != mtl:
                continue
            if phase_index is not None and record.phase_index != phase_index:
                continue
            if not include_probes and record.probe:
                continue
            out.append(record.duration)
        return out

    def mean_memory_duration(
        self, mtl: Optional[int] = None, phase_index: Optional[int] = None
    ) -> float:
        """Mean memory-task duration — ``T_mk`` when filtered by MTL."""
        samples = self.durations(
            kind=TaskKind.MEMORY, mtl=mtl, phase_index=phase_index
        )
        if not samples:
            raise MeasurementError(
                f"no memory-task samples for mtl={mtl!r}, phase={phase_index!r}"
            )
        return sum(samples) / len(samples)

    def mean_compute_duration(self, phase_index: Optional[int] = None) -> float:
        """Mean compute-task duration — ``T_c``."""
        samples = self.durations(kind=TaskKind.COMPUTE, phase_index=phase_index)
        if not samples:
            raise MeasurementError(
                f"no compute-task samples for phase={phase_index!r}"
            )
        return sum(samples) / len(samples)

    def busy_time(self) -> float:
        """Total task-execution time summed over contexts."""
        return sum(record.duration for record in self.records)

    def utilization(self) -> float:
        """Fraction of context-seconds spent executing tasks."""
        span = self.makespan
        if span <= 0:
            return 0.0
        return self.busy_time() / (span * self.context_count)

    def idle_time(self) -> float:
        """Context-seconds spent idle (the cost of over-throttling)."""
        return self.makespan * self.context_count - self.busy_time()

    def context_timeline(self, context_id: int) -> List[TaskRecord]:
        """Records of one context, ordered by start time."""
        rows = [r for r in self.records if r.context_id == context_id]
        rows.sort(key=lambda r: r.start)
        return rows

    def probe_task_time_fraction(self) -> float:
        """Share of task-execution time inside monitoring windows.

        The paper quantifies monitoring cost as a percentage of total
        execution time (0.04% for its mechanism vs 4.87% for Online
        Exhaustive on streamcluster); this is the simulated analogue.
        """
        busy = self.busy_time()
        if busy <= 0:
            return 0.0
        probe = sum(r.duration for r in self.records if r.probe)
        return probe / busy

    def final_mtl(self) -> int:
        """MTL in force at the end of the run."""
        return self.mtl_changes[-1].new_mtl

    def mtl_residency(self) -> Dict[int, float]:
        """Seconds spent under each MTL value.

        For a dynamic policy this shows where the run settled; the
        mode of this distribution is the *D-MTL* reported in the
        paper's per-workload figures.
        """
        if not self.mtl_changes:
            return {}
        residency: Dict[int, float] = {}
        span = self.makespan
        for i, change in enumerate(self.mtl_changes):
            end = (
                self.mtl_changes[i + 1].time
                if i + 1 < len(self.mtl_changes)
                else span
            )
            residency[change.new_mtl] = residency.get(change.new_mtl, 0.0) + max(
                end - change.time, 0.0
            )
        return residency

    def dominant_mtl(self) -> int:
        """The MTL the run spent the most time under (the D-MTL)."""
        residency = self.mtl_residency()
        if not residency:
            raise MeasurementError("no MTL timeline recorded")
        return max(residency, key=lambda k: residency[k])

    def memory_concurrency_profile(self) -> List[Tuple[float, float, int]]:
        """Piecewise-constant memory-task concurrency over time.

        Returns ``(start, end, concurrent)`` segments covering the
        makespan; the maximum ``concurrent`` over all segments is the
        peak memory concurrency, which an MTL-respecting schedule keeps
        at or below the gate limit in force.
        """
        memory = [r for r in self.records if r.is_memory]
        if not memory:
            return []
        boundaries = sorted({r.start for r in memory} | {r.end for r in memory})
        profile: List[Tuple[float, float, int]] = []
        for begin, end in zip(boundaries, boundaries[1:]):
            midpoint = (begin + end) / 2
            live = sum(1 for r in memory if r.start <= midpoint < r.end)
            profile.append((begin, end, live))
        return profile

    def peak_memory_concurrency(self) -> int:
        """Largest number of simultaneously running memory tasks."""
        profile = self.memory_concurrency_profile()
        if not profile:
            return 0
        return max(live for _, _, live in profile)

    def verify_consistency(self) -> None:
        """Internal invariants; raises :class:`MeasurementError` on
        violation.  Exercised by the test suite after every scenario.
        """
        seen = set()
        for record in self.records:
            if record.task_id in seen:
                raise MeasurementError(f"task {record.task_id!r} recorded twice")
            seen.add(record.task_id)
        for context_id in range(self.context_count):
            timeline = self.context_timeline(context_id)
            for earlier, later in zip(timeline, timeline[1:]):
                if later.start < earlier.end - 1e-12:
                    raise MeasurementError(
                        f"context {context_id} ran {earlier.task_id!r} and "
                        f"{later.task_id!r} concurrently"
                    )
