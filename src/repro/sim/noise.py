"""Measurement and scheduling noise.

The paper takes pains to control noise on the real machine: service
routines are disabled, workloads run 20 times and the middle 10 runs
are averaged (Section V).  It also attributes the Online Exhaustive
baseline's mis-selections to "irregular scheduling overhead and the
impact of load imbalance" (Section VI-B).  To reproduce both effects
the simulator perturbs task durations with a seeded, multiplicative
jitter plus occasional OS-noise spikes, and charges a small dispatch
overhead per task.

All noise is deterministic given the seed, so experiments are exactly
repeatable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

import numpy as np

from repro.errors import ConfigurationError
from repro.units import MICROSECONDS

__all__ = ["NoiseModel", "ZeroNoise", "GaussianNoise", "noise_for_seed"]


@runtime_checkable
class NoiseModel(Protocol):
    """Protocol for task-level noise sources."""

    def duration_factor(self) -> float:
        """Multiplicative factor applied to one task's work (``> 0``)."""

    def dispatch_overhead(self) -> float:
        """Seconds of scheduler overhead charged when a task is dispatched."""


class ZeroNoise:
    """No noise: factors of exactly 1, zero overhead.

    Used for analytical-model corroboration where the paper's
    steady-state formulas must be matched to numerical precision.
    """

    def duration_factor(self) -> float:
        return 1.0

    def dispatch_overhead(self) -> float:
        return 0.0


@dataclass
class GaussianNoise:
    """Truncated-Gaussian duration jitter with rare OS-noise spikes.

    The defaults model the paper's deliberately quieted testbed
    (Section V disables "many of the service routines ... to reduce
    system noise"): sub-percent duration jitter, rare small spikes, a
    ~1 us dequeue-and-lock cost per task.

    Attributes:
        seed: RNG seed; equal seeds give identical noise streams.
        sigma: Relative standard deviation of task-duration jitter.
        spike_probability: Chance a task absorbs an OS-noise spike
            (daemon wakeup, interrupt storm) that inflates it.
        spike_magnitude: Relative inflation of a spiked task.
        overhead_seconds: Mean dispatch (dequeue/lock) overhead.
    """

    seed: int = 0
    sigma: float = 0.005
    spike_probability: float = 0.002
    spike_magnitude: float = 0.25
    overhead_seconds: float = 1.0 * MICROSECONDS

    def __post_init__(self) -> None:
        if self.sigma < 0:
            raise ConfigurationError(f"sigma must be non-negative, got {self.sigma}")
        if not 0.0 <= self.spike_probability <= 1.0:
            raise ConfigurationError(
                f"spike_probability must be in [0, 1], got {self.spike_probability}"
            )
        if self.spike_magnitude < 0:
            raise ConfigurationError(
                f"spike_magnitude must be non-negative, got {self.spike_magnitude}"
            )
        if self.overhead_seconds < 0:
            raise ConfigurationError(
                f"overhead_seconds must be non-negative, got {self.overhead_seconds}"
            )
        self._rng = np.random.default_rng(self.seed)

    def duration_factor(self) -> float:
        factor = 1.0 + self.sigma * float(self._rng.standard_normal())
        factor = max(factor, 0.5)  # truncate: work cannot vanish
        if float(self._rng.random()) < self.spike_probability:
            factor *= 1.0 + self.spike_magnitude
        return factor

    def dispatch_overhead(self) -> float:
        # Exponential around the mean models lock-contention tails.
        return float(self._rng.exponential(self.overhead_seconds))


def noise_for_seed(seed: "int | None") -> "NoiseModel | None":
    """The canonical seed-to-noise mapping for sweep and measurement runs.

    ``None`` means a noise-free run (the simulator substitutes
    :class:`ZeroNoise`); an integer seeds a fresh, private
    :class:`GaussianNoise` stream.  Every execution path — the serial
    measurement protocol, the parallel sweep workers, the instrumented
    experiment runs — derives its noise through this one function, so
    per-point seeding has a single source of truth and no path can
    accidentally share RNG state across runs or processes.  (There is
    deliberately no module-level RNG anywhere in this package: each
    :class:`GaussianNoise` owns its generator, constructed here, in the
    process that runs the point.)
    """
    if seed is None:
        return None
    return GaussianNoise(seed=seed)
