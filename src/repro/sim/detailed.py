"""Request-level machine simulation.

The main simulator (:mod:`repro.sim.simulator`) models memory time
through a contention law.  This module removes that abstraction for
validation purposes: every memory task issues its cache-line requests
*individually* into the bank-level FR-FCFS controller
(:class:`~repro.memory.dram.FrFcfsController`), so queueing, row
locality, bank conflicts, and bus serialisation **emerge** from
microarchitectural state instead of being postulated.  The scheduling
side (work queue, MTL token gate, policies, phase barriers) is shared
with the main simulator, so any policy — including the dynamic
throttler — runs unchanged.

Scope: the detailed mode supports pure memory tasks and miss-free
compute tasks on SMT-off machines (the configuration of the paper's
headline experiments).  Those restrictions keep the co-simulation
exact; the rate-based simulator covers the spill/SMT regimes.

Cost: one event per cache line.  A 0.5 MB tile is 8192 events, so use
smaller tiles (e.g. 32-64 KiB) for sweeps; the validation benchmark
shows the closed-form and request-level machines agree on speedups
and MTL decisions (``benchmarks/test_ablation_request_level.py``).
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.memory.dram import DramRequest, FrFcfsController
from repro.memory.timing import DDR3_1066, DramTiming
from repro.sim.events import MtlChange, TaskRecord
from repro.sim.noise import NoiseModel, ZeroNoise
from repro.sim.results import SimulationResult
from repro.sim.scheduler import MtlGate, SchedulingPolicy, WorkQueue
from repro.stream.program import StreamProgram
from repro.stream.task import Task
from repro.units import CACHE_LINE_BYTES

__all__ = ["DetailedSimulator"]

#: Hard ceiling on simulated requests per run — one event each; beyond
#: this the run would silently take minutes, so fail loudly instead.
_MAX_TOTAL_REQUESTS = 5_000_000


class _MemoryTaskState:
    """Progress of one in-flight memory task."""

    __slots__ = ("task", "context_id", "core_id", "start", "remaining",
                 "next_line", "mtl_at_dispatch", "probe")

    def __init__(self, task: Task, context_id: int, core_id: int,
                 start: float, requests: int, base_line: int,
                 mtl_at_dispatch: int, probe: bool) -> None:
        self.task = task
        self.context_id = context_id
        self.core_id = core_id
        self.start = start
        self.remaining = requests
        self.next_line = base_line
        self.mtl_at_dispatch = mtl_at_dispatch
        self.probe = probe


class DetailedSimulator:
    """Co-simulation of CPU scheduling and per-request DRAM timing.

    Args:
        core_count: Physical cores (one context each; SMT excluded).
        timing: DRAM device grade.
        channels: Memory channels.
        noise: Optional noise model applied to compute durations and
            dispatch overhead (memory jitter emerges from the DRAM
            model itself).
    """

    def __init__(
        self,
        core_count: int = 4,
        timing: DramTiming = DDR3_1066,
        channels: int = 1,
        noise: Optional[NoiseModel] = None,
    ) -> None:
        if core_count < 1:
            raise ConfigurationError(f"core_count must be >= 1, got {core_count}")
        self.core_count = core_count
        self.timing = timing
        self.channels = channels
        self.noise: NoiseModel = noise if noise is not None else ZeroNoise()

    def run(self, program: StreamProgram, policy: SchedulingPolicy) -> SimulationResult:
        graph = program.to_task_graph()
        self._validate_graph(graph)

        queue = WorkQueue(graph)
        gate = MtlGate(self._validated_mtl(policy))
        controller = FrFcfsController(timing=self.timing, channels=self.channels)
        lines_per_region = max(
            self.timing.row_bytes // CACHE_LINE_BYTES * 4,
            max(int(t.memory_requests) for t in graph if t.is_memory) + 1,
        ) if any(t.is_memory for t in graph) else 1

        # Event heap: (time, sequence, kind, context_id).
        events: List[Tuple[float, int, str, int]] = []
        sequence = 0
        memory_states: Dict[int, _MemoryTaskState] = {}
        compute_running: Dict[int, Tuple[Task, float, int, bool]] = {}
        records: List[TaskRecord] = []
        mtl_changes = [MtlChange(0.0, gate.limit, gate.limit, "initial")]
        region_counter = 0
        now = 0.0

        def push(time: float, kind: str, context_id: int) -> None:
            nonlocal sequence
            heapq.heappush(events, (time, sequence, kind, context_id))
            sequence += 1

        def dispatch() -> None:
            nonlocal region_counter
            for context_id in range(self.core_count):
                if context_id in memory_states or context_id in compute_running:
                    continue
                task = queue.pop_compute(context_id)
                if task is None and queue.pending_memory > 0 and gate.try_acquire():
                    task = queue.pop_memory()
                    if task is None:  # pragma: no cover
                        gate.release()
                        continue
                    queue.note_memory_ran_on(task, context_id)
                if task is None:
                    continue
                overhead = self.noise.dispatch_overhead()
                probe = policy.is_probing()
                if task.is_memory:
                    requests = max(int(round(task.memory_requests)), 1)
                    state = _MemoryTaskState(
                        task=task, context_id=context_id,
                        core_id=context_id, start=now,
                        requests=requests,
                        base_line=region_counter * lines_per_region,
                        mtl_at_dispatch=gate.limit, probe=probe,
                    )
                    region_counter += 1
                    memory_states[context_id] = state
                    self._issue_next(controller, state, arrival=now + overhead)
                else:
                    duration = (
                        overhead
                        + task.cpu_seconds * self.noise.duration_factor()
                    )
                    compute_running[context_id] = (task, now, gate.limit, probe)
                    push(now + duration, "compute", context_id)

        def drain_controller() -> None:
            while controller.pending_count > 0:
                request, _ = controller.service_one()
                assert request.completion is not None
                push(request.completion, "request", request.stream_id)

        def complete(task: Task, context_id: int, start: float,
                     mtl: int, probe: bool) -> None:
            record = TaskRecord(
                task_id=task.task_id, kind=task.kind, context_id=context_id,
                core_id=context_id, start=start, end=now,
                mtl_at_dispatch=mtl, phase_index=task.phase_index,
                pair_index=task.pair_index, probe=probe,
            )
            records.append(record)
            queue.mark_complete(task)
            policy.on_task_complete(record, now)

        max_events = _MAX_TOTAL_REQUESTS
        processed = 0
        while not queue.exhausted():
            self._sync_mtl(policy, gate, mtl_changes, now)
            dispatch()
            drain_controller()
            if not events:
                raise SimulationError(
                    "detailed simulation wedged: work remains but no "
                    "events are scheduled"
                )
            processed += 1
            if processed > max_events:
                raise SimulationError(
                    f"detailed simulation exceeded {max_events} events; "
                    "shrink the memory-task footprints"
                )
            time, _, kind, context_id = heapq.heappop(events)
            now = time
            if kind == "compute":
                task, start, mtl, probe = compute_running.pop(context_id)
                complete(task, context_id, start, mtl, probe)
            else:
                state = memory_states[context_id]
                state.remaining -= 1
                if state.remaining > 0:
                    self._issue_next(controller, state, arrival=now)
                else:
                    del memory_states[context_id]
                    gate.release()
                    complete(state.task, context_id, state.start,
                             state.mtl_at_dispatch, state.probe)

        return SimulationResult(
            program_name=program.name,
            machine_name=(
                f"detailed-{self.core_count}core/{self.channels}ch"
            ),
            policy_name=policy.name,
            context_count=self.core_count,
            records=tuple(records),
            mtl_changes=tuple(mtl_changes),
        )

    def _issue_next(
        self,
        controller: FrFcfsController,
        state: _MemoryTaskState,
        arrival: float,
    ) -> None:
        address = controller.decode(state.next_line * CACHE_LINE_BYTES)
        state.next_line += 1
        controller.submit(
            DramRequest(
                stream_id=state.context_id, address=address, arrival=arrival
            )
        )

    def _validate_graph(self, graph) -> None:
        total_requests = 0
        for task in graph:
            if task.is_memory and task.cpu_seconds > 0:
                raise ConfigurationError(
                    f"detailed mode needs pure memory tasks; "
                    f"{task.task_id!r} carries CPU work"
                )
            if task.is_compute and task.memory_requests > 0:
                raise ConfigurationError(
                    f"detailed mode needs miss-free compute tasks; "
                    f"{task.task_id!r} carries spill traffic (use the "
                    "rate-based simulator for the over-footprint regime)"
                )
            if task.is_memory:
                total_requests += int(round(task.memory_requests))
        if total_requests > _MAX_TOTAL_REQUESTS:
            raise ConfigurationError(
                f"program would issue {total_requests} requests "
                f"(> {_MAX_TOTAL_REQUESTS}); shrink footprints for the "
                "detailed mode"
            )

    def _validated_mtl(self, policy: SchedulingPolicy) -> int:
        mtl = policy.current_mtl()
        if not 1 <= mtl <= self.core_count:
            raise ConfigurationError(
                f"policy {policy.name!r} requested MTL {mtl}, outside "
                f"[1, {self.core_count}]"
            )
        return mtl

    def _sync_mtl(self, policy, gate, mtl_changes, now) -> None:
        mtl = self._validated_mtl(policy)
        if mtl != gate.limit:
            mtl_changes.append(
                MtlChange(time=now, old_mtl=gate.limit, new_mtl=mtl,
                          reason=policy.name)
            )
            gate.set_limit(mtl)
