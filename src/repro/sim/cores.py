"""Cores and SMT hardware contexts.

The paper's machine is a quad-core i7-860 whose 2-way SMT is disabled
for the main experiments and enabled for the scalability study
(Section VI-E).  We model a processor as ``core_count`` physical cores,
each exposing ``smt_ways`` hardware contexts.  A context runs at most
one task; software threads are pinned one-per-context exactly as the
paper pins pthreads with affinity.

SMT sharing: when multiple contexts of one core simultaneously run
CPU-demanding tasks, they share the core's execution resources.  The
aggregate throughput of a 2-way-shared core exceeds 1.0 (that is SMT's
point) but each sibling runs slower than alone, so ``T_c`` stops being
a constant — the effect that degrades the paper's analytical model
under SMT.  Memory tasks spend their time stalled on prefetches and
consume negligible execution bandwidth, so they do not slow a sibling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import ConfigurationError

__all__ = ["HardwareContext", "Processor"]


@dataclass(frozen=True)
class HardwareContext:
    """One SMT thread slot."""

    context_id: int
    core_id: int


@dataclass(frozen=True)
class Processor:
    """A multi-core processor with optional SMT.

    Attributes:
        core_count: Physical cores (``n`` in the paper's model — with
            SMT off, also the scheduler's thread count).
        smt_ways: Hardware contexts per core (1 = SMT off).
        smt_aggregate_throughput: Combined execution throughput of one
            core when all its contexts run CPU-bound work, relative to
            a single unshared context.  1.25 reflects the ~25% benefit
            commonly measured for Nehalem SMT.
    """

    core_count: int = 4
    smt_ways: int = 1
    smt_aggregate_throughput: float = 1.25

    def __post_init__(self) -> None:
        if self.core_count < 1:
            raise ConfigurationError(
                f"core_count must be >= 1, got {self.core_count}"
            )
        if self.smt_ways < 1:
            raise ConfigurationError(f"smt_ways must be >= 1, got {self.smt_ways}")
        if self.smt_aggregate_throughput < 1.0:
            raise ConfigurationError(
                "smt_aggregate_throughput must be >= 1.0, got "
                f"{self.smt_aggregate_throughput}"
            )

    @property
    def context_count(self) -> int:
        """Schedulable hardware contexts (software thread count)."""
        return self.core_count * self.smt_ways

    def contexts(self) -> List[HardwareContext]:
        """All contexts, grouped by core then SMT way."""
        return [
            HardwareContext(context_id=core * self.smt_ways + way, core_id=core)
            for core in range(self.core_count)
            for way in range(self.smt_ways)
        ]

    def core_of(self, context_id: int) -> int:
        if not 0 <= context_id < self.context_count:
            raise ConfigurationError(
                f"context_id {context_id} out of range [0, {self.context_count})"
            )
        return context_id // self.smt_ways

    def cpu_rate(self, cpu_active_on_core: int) -> float:
        """Per-context execution rate given CPU-active siblings.

        With one CPU-active context the core is unshared (rate 1.0);
        with ``k > 1`` the aggregate throughput is divided equally.
        """
        if cpu_active_on_core < 0:
            raise ConfigurationError(
                f"cpu_active_on_core must be >= 0, got {cpu_active_on_core}"
            )
        if cpu_active_on_core <= 1:
            return 1.0
        return self.smt_aggregate_throughput / cpu_active_on_core
