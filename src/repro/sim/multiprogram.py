"""Multiprogram co-scheduling.

The paper evaluates one stream application at a time; real systems run
mixes, and the MTL gate is naturally *global* — it constrains memory
tasks regardless of which application they belong to (the related-work
systems it is compared against, like Fairness-via-Source-Throttling,
are explicitly multi-application).  This module extends the simulator
to program mixes:

* :func:`merge_programs` — combine several stream programs into one
  task graph with namespaced task ids and disjoint phase-index ranges.
  Crucially, there is **no barrier between programs**: each program
  keeps its internal phase barriers, but programs proceed
  independently, exactly as two processes sharing a machine would.
* :func:`co_schedule` — run the mix under one policy and report both
  the combined schedule and per-program completion times, from which
  fairness metrics (per-program slowdown vs. running alone) follow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import NoiseModel
from repro.sim.results import SimulationResult
from repro.sim.scheduler import SchedulingPolicy
from repro.sim.simulator import Simulator
from repro.stream.graph import TaskGraph
from repro.stream.program import StreamProgram
from repro.stream.task import Task

__all__ = ["CoScheduleResult", "merge_programs", "co_schedule"]


def merge_programs(
    programs: Sequence[StreamProgram],
) -> Tuple[TaskGraph, Dict[str, Tuple[int, int]]]:
    """Merge programs into one graph with namespaced ids.

    Returns:
        ``(graph, phase_ranges)`` where ``phase_ranges[name]`` is the
        half-open ``[first, last)`` phase-index range assigned to that
        program (phase indices are shifted so every pair key stays
        unique — the throttler joins pairs by ``(phase, pair)``).

    Raises:
        ConfigurationError: On an empty mix or duplicate program names.
    """
    if not programs:
        raise ConfigurationError("cannot merge an empty program mix")
    names = [p.name for p in programs]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate program names in mix: {names}")

    merged: List[Task] = []
    phase_ranges: Dict[str, Tuple[int, int]] = {}
    phase_offset = 0
    for program in programs:
        prefix = f"{program.name}::"
        for task in program.to_task_graph():
            merged.append(
                Task(
                    task_id=prefix + task.task_id,
                    kind=task.kind,
                    cpu_seconds=task.cpu_seconds,
                    memory_requests=task.memory_requests,
                    footprint_bytes=task.footprint_bytes,
                    pair_index=task.pair_index,
                    phase_index=task.phase_index + phase_offset,
                    depends_on=tuple(prefix + dep for dep in task.depends_on),
                )
            )
        phase_ranges[program.name] = (
            phase_offset,
            phase_offset + len(program.phases),
        )
        phase_offset += len(program.phases)
    return TaskGraph(merged), phase_ranges


@dataclass(frozen=True)
class CoScheduleResult:
    """Outcome of one co-scheduled mix."""

    combined: SimulationResult
    phase_ranges: Dict[str, Tuple[int, int]]

    @property
    def program_names(self) -> Tuple[str, ...]:
        return tuple(self.phase_ranges)

    def program_records(self, name: str):
        if name not in self.phase_ranges:
            raise ConfigurationError(
                f"unknown program {name!r}; mix contains "
                f"{sorted(self.phase_ranges)}"
            )
        prefix = f"{name}::"
        return [
            r for r in self.combined.records if r.task_id.startswith(prefix)
        ]

    def program_finish_time(self, name: str) -> float:
        """When the program's last task completed."""
        return max(r.end for r in self.program_records(name))

    def slowdown(self, name: str, solo_makespan: float) -> float:
        """Per-program slowdown vs. its solo run (>= 1 under load)."""
        if solo_makespan <= 0:
            raise ConfigurationError(
                f"solo_makespan must be positive, got {solo_makespan}"
            )
        return self.program_finish_time(name) / solo_makespan


def co_schedule(
    programs: Sequence[StreamProgram],
    policy: SchedulingPolicy,
    machine: Optional[Machine] = None,
    noise: Optional[NoiseModel] = None,
) -> CoScheduleResult:
    """Run a program mix under one (global) scheduling policy."""
    graph, phase_ranges = merge_programs(programs)
    target = machine if machine is not None else i7_860()
    simulator = Simulator(target, noise=noise)
    mix_name = "+".join(p.name for p in programs)
    combined = simulator.run_graph(graph, policy, mix_name)
    return CoScheduleResult(combined=combined, phase_ranges=phase_ranges)
