"""Execution records emitted by the simulator.

The simulator's observable output is a stream of :class:`TaskRecord`
objects (one per completed task, the analogue of the paper's
``gettimeofday()`` bracketing of each task) and :class:`MtlChange`
markers (one per policy decision).  Everything downstream — speedups,
monitoring overhead, utilisation, gantt charts — derives from these.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SimulationError
from repro.stream.task import TaskKind

__all__ = ["TaskRecord", "MtlChange"]


@dataclass(frozen=True)
class TaskRecord:
    """Completion record of one task.

    Attributes:
        task_id: Id of the completed task.
        kind: Memory or compute.
        context_id: Hardware context (thread slot) that ran it.
        core_id: Physical core of that context.
        start: Simulated start time (seconds).
        end: Simulated completion time (seconds).
        mtl_at_dispatch: MTL constraint in force when the task was
            dispatched; the throttler groups ``T_m`` samples by this.
        phase_index: Program phase the task belongs to.
        pair_index: Pair index within the phase.
        probe: True when the task ran inside a policy's monitoring
            window; used to account monitoring overhead.
    """

    task_id: str
    kind: TaskKind
    context_id: int
    core_id: int
    start: float
    end: float
    mtl_at_dispatch: int
    phase_index: int
    pair_index: int
    probe: bool = False

    def __post_init__(self) -> None:
        if self.end < self.start:
            raise SimulationError(
                f"task {self.task_id!r} ends ({self.end}) before it starts "
                f"({self.start})"
            )

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def is_memory(self) -> bool:
        return self.kind is TaskKind.MEMORY


@dataclass(frozen=True)
class MtlChange:
    """A policy decision changing the MTL constraint."""

    time: float
    old_mtl: int
    new_mtl: int
    reason: str = ""
