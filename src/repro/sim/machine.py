"""Machine presets.

A :class:`Machine` pairs a :class:`~repro.sim.cores.Processor` with a
:class:`~repro.memory.system.MemorySystem`.  :func:`i7_860` builds the
paper's testbed (Section V) in its three studied configurations:

========================  =============================================
``i7_860()``              4 threads, 1 DIMM / 1 channel (main results)
``i7_860(channels=2)``    4 threads, 2 DIMMs (Fig. 18 left)
``i7_860(channels=2, smt=2)``  8 SMT threads, 2 DIMMs (Fig. 18 right)
========================  =============================================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.memory.cache import LastLevelCache
from repro.memory.contention import ContentionModel, nehalem_ddr3_contention
from repro.memory.system import MemorySystem
from repro.sim.cores import Processor
from repro.units import mebibytes

__all__ = ["Machine", "i7_860"]


@dataclass(frozen=True)
class Machine:
    """A complete simulated machine."""

    name: str
    processor: Processor
    memory: MemorySystem

    @property
    def context_count(self) -> int:
        return self.processor.context_count

    @property
    def core_count(self) -> int:
        return self.processor.core_count

    def solo_request_latency(self) -> float:
        """Unloaded per-request latency ``L(1)`` — the basis of the
        ``T_m1`` column in the paper's workload tables."""
        return self.memory.request_latency(1.0)


def i7_860(
    channels: int = 1,
    smt: int = 1,
    contention: "ContentionModel | None" = None,
    llc_capacity_bytes: int = mebibytes(8),
) -> Machine:
    """The paper's Intel i7-860 (Nehalem) testbed.

    Args:
        channels: Populated DDR3 channels (1 = the 2 GB single-DIMM
            configuration, 2 = the dual-DIMM 17 GB/s configuration of
            the scalability study).
        smt: SMT ways (1 = disabled, 2 = the 8-thread configuration).
        contention: Override the calibrated DDR3-1066 contention model
            (used by the contention-model ablation).
        llc_capacity_bytes: Last-level cache size (8 MB on the i7-860;
            the paper footnotes a 12 MB Q9550 shows the same trends).
    """
    processor = Processor(core_count=4, smt_ways=smt)
    cache = LastLevelCache(
        capacity_bytes=llc_capacity_bytes, sharers=processor.core_count
    )
    memory = MemorySystem(
        contention=contention if contention is not None else nehalem_ddr3_contention(),
        channels=channels,
        cache=cache,
    )
    label = f"i7-860/{channels}ch" + (f"/smt{smt}" if smt > 1 else "")
    return Machine(name=label, processor=processor, memory=memory)
