"""Processor-sharing rate calculation.

Between two events nothing about the running-task population changes,
so every task progresses at a constant rate.  This module computes
those rates:

1. Count, per core, the contexts running CPU-demanding work and derive
   each context's execution rate (SMT sharing).
2. Build each task's per-work-unit memory demand (its CPU component
   slowed by the execution rate) and solve the contention equilibrium
   for the effective memory concurrency.
3. Each task's speed is the reciprocal of its per-unit cost
   ``cpu_per_unit / cpu_rate + requests_per_unit * L(c)``.

For a population of ``k`` pure memory tasks and any number of miss-free
compute tasks this reduces exactly to the paper's model: each memory
task retires one request per ``L(k)`` and each compute task runs at
full speed, so ``T_mk = requests * L(k)`` and ``T_c`` is MTL-invariant.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import SimulationError
from repro.memory.equilibrium import MemoryDemand
from repro.memory.system import MemorySystem
from repro.sim.cores import Processor
from repro.stream.task import Task

__all__ = ["RunningTask", "RateSnapshot", "RateCalculator"]


@dataclass
class RunningTask:
    """Mutable execution state of one dispatched task."""

    task: Task
    context_id: int
    core_id: int
    start: float
    remaining_units: float
    overhead_remaining: float
    mtl_at_dispatch: int
    probe: bool = False

    @property
    def in_overhead_phase(self) -> bool:
        """Dispatch overhead (dequeue, locking) is consumed as pure CPU
        time before the task's real work begins."""
        return self.overhead_remaining > 0.0


@dataclass(frozen=True)
class RateSnapshot:
    """Rates for the current running population.

    Attributes:
        speeds: Work units per second for each context id.
        cpu_rates: Execution rate of each context id (SMT sharing).
        request_latency: Per-request memory latency every running task
            currently sees.
        memory_concurrency: Effective memory concurrency behind that
            latency.
    """

    speeds: Dict[int, float]
    cpu_rates: Dict[int, float]
    request_latency: float
    memory_concurrency: float


class RateCalculator:
    """Computes progress rates for a running-task population."""

    def __init__(self, processor: Processor, memory: MemorySystem) -> None:
        self._processor = processor
        self._memory = memory

    def snapshot(self, running: Sequence[RunningTask]) -> RateSnapshot:
        """Rates, latency, and concurrency for the current population."""
        cpu_rates = self._cpu_rates(running)

        demands: List[MemoryDemand] = []
        for rt in running:
            if rt.in_overhead_phase:
                # Overhead is pure CPU; no memory demand yet.
                continue
            demand = rt.task.demand()
            rate = cpu_rates[rt.context_id]
            demands.append(
                MemoryDemand(
                    cpu_seconds_per_unit=demand.cpu_seconds_per_unit / rate,
                    requests_per_unit=demand.requests_per_unit,
                )
            )
        concurrency, latency = self._memory.resolve(demands)

        speeds: Dict[int, float] = {}
        for rt in running:
            if rt.in_overhead_phase:
                speeds[rt.context_id] = 0.0  # work phase not started
                continue
            demand = rt.task.demand()
            rate = cpu_rates[rt.context_id]
            unit_cost = (
                demand.cpu_seconds_per_unit / rate
                + demand.requests_per_unit * latency
            )
            if unit_cost <= 0:
                raise SimulationError(
                    f"task {rt.task.task_id!r} has non-positive unit cost"
                )
            speeds[rt.context_id] = 1.0 / unit_cost
        return RateSnapshot(
            speeds=speeds,
            cpu_rates=cpu_rates,
            request_latency=latency,
            memory_concurrency=concurrency,
        )

    def _cpu_rates(self, running: Sequence[RunningTask]) -> Dict[int, float]:
        """Per-context execution rates under SMT sharing.

        A context is CPU-active when its task currently demands CPU:
        real CPU work, or the pure-CPU dispatch-overhead phase.  Memory
        tasks past their overhead phase sit in prefetch stalls and do
        not pressure the core.
        """
        cpu_active_per_core: Dict[int, int] = {}
        for rt in running:
            demands_cpu = rt.in_overhead_phase or rt.task.cpu_seconds > 0
            if demands_cpu:
                cpu_active_per_core[rt.core_id] = (
                    cpu_active_per_core.get(rt.core_id, 0) + 1
                )
        rates: Dict[int, float] = {}
        for rt in running:
            active = cpu_active_per_core.get(rt.core_id, 0)
            rates[rt.context_id] = self._processor.cpu_rate(active)
        return rates
