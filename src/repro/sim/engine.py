"""Processor-sharing rate calculation.

Between two events nothing about the running-task population changes,
so every task progresses at a constant rate.  This module computes
those rates:

1. Count, per core, the contexts running CPU-demanding work and derive
   each context's execution rate (SMT sharing).
2. Build each task's per-work-unit memory demand (its CPU component
   slowed by the execution rate) and solve the contention equilibrium
   for the effective memory concurrency.
3. Each task's speed is the reciprocal of its per-unit cost
   ``cpu_per_unit / cpu_rate + requests_per_unit * L(c)``.

For a population of ``k`` pure memory tasks and any number of miss-free
compute tasks this reduces exactly to the paper's model: each memory
task retires one request per ``L(k)`` and each compute task runs at
full speed, so ``T_mk = requests * L(k)`` and ``T_c`` is MTL-invariant.

Hot-path structure (see ``docs/performance.md``): a snapshot is a pure
function of the population's *signature* — per task, its context, its
core, whether it is in the pure-CPU dispatch-overhead phase, and its
per-unit demand.  :class:`RateCalculator` therefore memoizes whole
:class:`RateSnapshot` objects keyed by the ordered signature tuple; an
unchanged population (the overwhelmingly common case across a sweep's
event pairs) costs one dict lookup instead of an equilibrium solve.
Each :class:`RunningTask` pre-computes both of its signature entries at
dispatch, so phase transitions and MTL changes need no explicit cache
invalidation: they change the population's signature, which simply
selects a different memo slot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.errors import SimulationError
from repro.memory.equilibrium import MemoryDemand
from repro.memory.system import MemorySystem
from repro.sim.cores import Processor
from repro.stream.task import Task

__all__ = ["RunningTask", "RateSnapshot", "RateCalculator", "CohortTable"]

#: Relative work threshold below which a task counts as finished.
#: Historically lived in :mod:`repro.sim.simulator` (which re-exports
#: it); it moved here so :class:`RunningTask` can precompute each
#: task's absolute completion threshold at dispatch.
_COMPLETION_EPSILON = 1e-9


class RunningTask:
    """Mutable execution state of one dispatched task.

    A plain ``__slots__`` class (not a dataclass): the event loop reads
    these attributes every event, and slots keep that access — and the
    per-dispatch allocation — cheap.  The derived fields (``demand``,
    ``total_units`` and the signature entries) are computed once at
    construction: the task is frozen, so they can never go stale.
    """

    __slots__ = (
        "task",
        "context_id",
        "core_id",
        "start",
        "remaining_units",
        "overhead_remaining",
        "mtl_at_dispatch",
        "probe",
        "demand",
        "total_units",
        "completion_threshold",
        "_sig_work",
        "_sig_overhead",
        "_cohort_work",
        "_cohort_overhead",
    )

    def __init__(
        self,
        task: Task,
        context_id: int,
        core_id: int,
        start: float,
        remaining_units: float,
        overhead_remaining: float,
        mtl_at_dispatch: int,
        probe: bool = False,
    ) -> None:
        self.task = task
        self.context_id = context_id
        self.core_id = core_id
        self.start = start
        self.remaining_units = remaining_units
        self.overhead_remaining = overhead_remaining
        self.mtl_at_dispatch = mtl_at_dispatch
        self.probe = probe
        #: Per-work-unit demand, shared with the (frozen) task.
        self.demand = task.unit_demand
        #: ``task.work_units``, cached for the per-event completion check.
        self.total_units = task.work_units
        #: ``_COMPLETION_EPSILON * total_units``, hoisted out of the
        #: event loop: the product of two per-task constants is itself
        #: constant, so precomputing it is bitwise-free.
        self.completion_threshold = _COMPLETION_EPSILON * self.total_units
        # Signature entries for the two phases.  During the overhead
        # phase the task is pure CPU: its demand never reaches the
        # memory system and its speed is pinned to 0, so the entry
        # deliberately omits the demand — overhead tasks with different
        # demands produce identical snapshots.
        self._sig_work = (
            context_id,
            core_id,
            False,
            self.demand.cpu_seconds_per_unit,
            self.demand.requests_per_unit,
        )
        # Rate-cohort keys (the signature minus the context id),
        # precomputed so admitting or removing the task from a cohort
        # never slices a tuple on the event path.  The overhead pair is
        # set unconditionally: ``overhead_remaining`` is a public slot
        # that callers (and tests) may raise after construction.
        self._cohort_work = self._sig_work[1:]
        self._sig_overhead = (context_id, core_id, True)
        self._cohort_overhead = (core_id, True)

    def __repr__(self) -> str:
        return (
            f"RunningTask(task={self.task.task_id!r}, "
            f"context_id={self.context_id}, core_id={self.core_id}, "
            f"start={self.start}, remaining_units={self.remaining_units}, "
            f"overhead_remaining={self.overhead_remaining}, "
            f"mtl_at_dispatch={self.mtl_at_dispatch}, probe={self.probe})"
        )

    @property
    def in_overhead_phase(self) -> bool:
        """Dispatch overhead (dequeue, locking) is consumed as pure CPU
        time before the task's real work begins."""
        return self.overhead_remaining > 0.0

    def signature(self) -> Tuple:
        """This task's contribution to the population signature."""
        if self.overhead_remaining > 0.0:
            return self._sig_overhead
        return self._sig_work


class CohortTable:
    """The running population grouped into same-rate cohorts.

    Every member of a cohort shares the same core, the same phase
    (dispatch overhead vs real work), and — for work-phase tasks — the
    same per-unit demand.  A :class:`RateSnapshot` assigns rates per
    context from exactly those inputs, so all members provably carry
    bitwise-equal speeds (a property test pins this), and the event
    loop can advance a cohort as one batch: one ``min`` over remaining
    work, one ``time_step * speed`` product, instead of one of each per
    task.

    The table also maintains the population's signature list
    incrementally — dispatches, completions, and phase flips each touch
    one slot — so the per-event memo key for
    :meth:`RateCalculator.snapshot_keyed` is a ``tuple()`` of a live
    list instead of a fresh per-task rebuild.

    What invalidates a cohort: nothing in place.  Dispatches add
    members, completions remove them, and a task leaving its overhead
    phase *moves* (:meth:`flip_to_work`) into its work cohort; between
    events a cohort's membership is exact by construction.  MTL changes
    need no handling at all — they alter dispatch decisions, never the
    rates of already-running tasks.

    Mutating methods find a task's slot by identity
    (:class:`RunningTask` has no ``__eq__``), mirroring how the seed
    loop's ``running`` dict keyed members by context.

    The methods below are the *specification* of the bookkeeping (and
    what the cohort property tests exercise); the simulator's event
    loop aliases the three slots as locals and performs the equivalent
    mutations inline, because at small populations the method-call
    overhead alone would exceed the batching win.
    """

    __slots__ = ("population", "signatures", "cohorts")

    def __init__(self) -> None:
        #: Insertion-ordered population, mirroring the seed loop's
        #: ``list(running.values())`` (completion processing order and
        #: downstream determinism depend on it).
        self.population: List[RunningTask] = []
        #: ``signatures[i] == population[i].signature()``, maintained
        #: incrementally.
        self.signatures: List[Tuple] = []
        #: Rate-cohort key -> members.  The key is a task's signature
        #: minus its context id (``sig[1:]``): ``(core_id, True)`` for
        #: the overhead phase, ``(core_id, False, a_i, m_i)`` for work.
        self.cohorts: Dict[Tuple, List[RunningTask]] = {}

    def __len__(self) -> int:
        return len(self.population)

    def key(self) -> Tuple:
        """The population's memoization key (its ordered signatures)."""
        return tuple(self.signatures)

    def add(self, rt: RunningTask) -> None:
        """Admit a freshly dispatched task into its cohort."""
        if rt.overhead_remaining > 0.0:
            sig, cohort_key = rt._sig_overhead, rt._cohort_overhead
        else:
            sig, cohort_key = rt._sig_work, rt._cohort_work
        self.population.append(rt)
        self.signatures.append(sig)
        members = self.cohorts.get(cohort_key)
        if members is None:
            self.cohorts[cohort_key] = [rt]
        else:
            members.append(rt)

    def remove(self, rt: RunningTask) -> None:
        """Drop a completed task from the population and its cohort."""
        index = self.population.index(rt)
        del self.population[index]
        sig = self.signatures.pop(index)
        cohort_key = sig[1:]
        members = self.cohorts[cohort_key]
        if len(members) == 1:
            del self.cohorts[cohort_key]
        else:
            members.remove(rt)

    def flip_to_work(self, rt: RunningTask) -> None:
        """Move a task whose overhead phase just drained into its work
        cohort (the one in-place transition a task ever makes)."""
        index = self.population.index(rt)
        old_key = self.signatures[index][1:]
        self.signatures[index] = rt._sig_work
        members = self.cohorts[old_key]
        if len(members) == 1:
            del self.cohorts[old_key]
        else:
            members.remove(rt)
        new_key = rt._sig_work[1:]
        target = self.cohorts.get(new_key)
        if target is None:
            self.cohorts[new_key] = [rt]
        else:
            target.append(rt)


@dataclass(frozen=True)
class RateSnapshot:
    """Rates for the current running population.

    Attributes:
        speeds: Work units per second for each context id.
        cpu_rates: Execution rate of each context id (SMT sharing).
        request_latency: Per-request memory latency every running task
            currently sees.
        memory_concurrency: Effective memory concurrency behind that
            latency.
    """

    speeds: Dict[int, float]
    cpu_rates: Dict[int, float]
    request_latency: float
    memory_concurrency: float


class RateCalculator:
    """Computes progress rates for a running-task population.

    Snapshots are memoized by population signature (see the module
    docstring); :meth:`snapshot` is the memoized entry point the
    simulator uses, :meth:`compute_snapshot` the always-cold path the
    memoization property tests compare against.  ``hits`` / ``misses``
    feed the ``snapshot_cache`` telemetry events.
    """

    def __init__(
        self,
        processor: Processor,
        memory: MemorySystem,
        max_entries: int = 65536,
    ) -> None:
        if max_entries < 1:
            raise SimulationError(f"max_entries must be >= 1, got {max_entries}")
        self._processor = processor
        self._memory = memory
        self._max_entries = max_entries
        self._memo: Dict[Tuple, RateSnapshot] = {}
        self.hits = 0
        self.misses = 0

    def cache_info(self) -> Dict[str, int]:
        """Lookup counters and table size, for telemetry."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memo),
        }

    def snapshot(self, running: Iterable[RunningTask]) -> RateSnapshot:
        """Rates, latency, and concurrency for the current population.

        Memoized: a population whose signature was seen before returns
        the previously computed (frozen, shareable) snapshot object.
        """
        if not isinstance(running, (list, tuple)):
            running = list(running)
        # Inline signature() — this runs once per task per event.
        key = tuple(
            [
                rt._sig_overhead if rt.overhead_remaining > 0.0 else rt._sig_work
                for rt in running
            ]
        )
        return self.snapshot_keyed(key, running)

    def snapshot_keyed(
        self, key: Tuple, running: Sequence[RunningTask]
    ) -> RateSnapshot:
        """Memoized snapshot for a caller-maintained signature key.

        The cohort-batched event loop keeps the population signature
        current incrementally (:meth:`CohortTable.key`), skipping the
        per-task rebuild :meth:`snapshot` performs.  ``key`` must equal
        ``tuple(rt.signature() for rt in running)``; both entry points
        share one memo, so mixing them is safe.
        """
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        snap = self.compute_snapshot(running)
        if len(self._memo) >= self._max_entries:
            # Populations recur in tight cycles; overflowing the table
            # means the working set outgrew it — start over rather than
            # track recency on the per-event path.
            self._memo.clear()
        self._memo[key] = snap
        return snap

    def compute_snapshot(self, running: Iterable[RunningTask]) -> RateSnapshot:
        """The cold path: compute a snapshot without touching the memo."""
        if not isinstance(running, (list, tuple)):
            running = list(running)
        cpu_rates = self._cpu_rates(running)

        demands = []
        for rt in running:
            if rt.overhead_remaining > 0.0:
                # Overhead is pure CPU; no memory demand yet.
                continue
            demand = rt.demand
            rate = cpu_rates[rt.context_id]
            demands.append(
                MemoryDemand(
                    cpu_seconds_per_unit=demand.cpu_seconds_per_unit / rate,
                    requests_per_unit=demand.requests_per_unit,
                )
            )
        concurrency, latency = self._memory.resolve(demands)

        speeds: Dict[int, float] = {}
        for rt in running:
            if rt.overhead_remaining > 0.0:
                speeds[rt.context_id] = 0.0  # work phase not started
                continue
            demand = rt.demand
            rate = cpu_rates[rt.context_id]
            unit_cost = (
                demand.cpu_seconds_per_unit / rate
                + demand.requests_per_unit * latency
            )
            if unit_cost <= 0:
                raise SimulationError(
                    f"task {rt.task.task_id!r} has non-positive unit cost"
                )
            speeds[rt.context_id] = 1.0 / unit_cost
        return RateSnapshot(
            speeds=speeds,
            cpu_rates=cpu_rates,
            request_latency=latency,
            memory_concurrency=concurrency,
        )

    def _cpu_rates(self, running: Iterable[RunningTask]) -> Dict[int, float]:
        """Per-context execution rates under SMT sharing.

        A context is CPU-active when its task currently demands CPU:
        real CPU work, or the pure-CPU dispatch-overhead phase.  Memory
        tasks past their overhead phase sit in prefetch stalls and do
        not pressure the core.
        """
        cpu_active_per_core: Dict[int, int] = {}
        for rt in running:
            demands_cpu = rt.overhead_remaining > 0.0 or rt.task.cpu_seconds > 0
            if demands_cpu:
                cpu_active_per_core[rt.core_id] = (
                    cpu_active_per_core.get(rt.core_id, 0) + 1
                )
        rates: Dict[int, float] = {}
        cpu_rate = self._processor.cpu_rate
        for rt in running:
            rates[rt.context_id] = cpu_rate(cpu_active_per_core.get(rt.core_id, 0))
        return rates
