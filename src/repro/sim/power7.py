"""POWER7-class machine preset — the paper's stated future work.

The conclusion of the paper: "We are currently working on extending
the scalability study in this paper to an IBM POWER7 machine that has
substantially more hardware threads than the Intel i7-based systems."
This module builds that machine so the extension experiment can run:

* 8 cores with 4-way SMT — 32 hardware threads;
* two 4-channel DDR3 memory controllers (8 channels total, ~100 GB/s
  class), modelled as 8 interleaved channels;
* a 32 MB (4 MB/core) L3, eDRAM on the real part; the capacity model
  only needs the per-core share.

The contention law is re-derived rather than copied from the i7: the
same DDR3-1066 grade feeds the bank-level calibration, so the queueing
constant reflects the deeper bank pool per controller.
"""

from __future__ import annotations

from typing import Optional

from repro.memory.cache import LastLevelCache
from repro.memory.contention import ContentionModel, nehalem_ddr3_contention
from repro.memory.system import MemorySystem
from repro.sim.cores import Processor
from repro.sim.machine import Machine
from repro.units import mebibytes

__all__ = ["power7"]


def power7(
    smt: int = 4,
    channels: int = 8,
    contention: Optional[ContentionModel] = None,
) -> Machine:
    """An IBM POWER7-class machine.

    Args:
        smt: SMT ways per core (the real part supports 1, 2, or 4).
        channels: Populated memory channels (up to 8).
        contention: Override the per-channel contention law (defaults
            to the same calibrated DDR3 law as the i7 preset; the
            channel count is what changes the system balance).
    """
    processor = Processor(
        core_count=8,
        smt_ways=smt,
        # POWER7's SMT4 yields roughly 1.6-1.8x single-thread
        # throughput per core on commercial workloads.
        smt_aggregate_throughput=1.7 if smt >= 4 else 1.4,
    )
    cache = LastLevelCache(
        capacity_bytes=mebibytes(32), sharers=processor.core_count
    )
    memory = MemorySystem(
        contention=contention if contention is not None else nehalem_ddr3_contention(),
        channels=channels,
        cache=cache,
    )
    label = f"power7/{channels}ch/smt{smt}"
    return Machine(name=label, processor=processor, memory=memory)
