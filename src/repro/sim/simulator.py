"""The simulation event loop.

:class:`Simulator` executes a :class:`~repro.stream.program.StreamProgram`
on a :class:`~repro.sim.machine.Machine` under a
:class:`~repro.sim.scheduler.SchedulingPolicy`, producing a
:class:`~repro.sim.results.SimulationResult`.

The loop alternates two actions until the work queue drains:

1. **Dispatch** — every idle hardware context first tries a ready
   compute task (cache-affinity preferred), then a ready memory task
   if the MTL gate grants a token, else idles (Section III semantics).
2. **Advance** — rates are recomputed for the running population
   (processor sharing + memory-contention equilibrium) and time jumps
   to the next task-phase boundary or completion.  Completions release
   MTL tokens, unlock dependents, and are reported to the policy,
   which may retune the MTL for subsequent dispatches.

Two implementations of the loop exist, selected by the
``cohort_batching`` constructor flag:

* **Cohort-batched** (the default) — the population is grouped into
  same-rate cohorts (:class:`~repro.sim.engine.CohortTable`): one
  ``min`` over remaining work and one ``dt * speed`` product advance a
  whole cohort, the signature memo key is maintained incrementally,
  idle contexts are tracked in a sorted list instead of rescanned, and
  MTL validation/plugin no-op hooks are skipped when provably inert.
  Everything the batch computes is bitwise-equal to stepping tasks one
  by one — ``min(r_i) / s == min(r_i / s)`` because float division is
  weakly monotone, and cohort members share bitwise-equal rates by
  construction — so results are bit-identical to the reference loop.
* **Reference** (``cohort_batching=False``) — the seed's per-task
  stepping, kept as the oracle for the equivalence tests
  (``tests/sim/test_cohort_advancement.py``) and for bisecting any
  future divergence.

Determinism: given the same program, machine, policy, and noise seed,
two runs produce identical results.
"""

from __future__ import annotations

import math
from bisect import insort
from typing import Dict, List, Optional

from repro.core.plugin import ThrottlePolicyPlugin
from repro.core.policies import FixedMtlPolicy
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import (
    _COMPLETION_EPSILON,
    CohortTable,
    RateCalculator,
    RunningTask,
)
from repro.sim.events import MtlChange, TaskRecord
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import NoiseModel, ZeroNoise
from repro.sim.results import SimulationResult
from repro.sim.scheduler import MtlGate, SchedulingPolicy, WorkQueue
from repro.stream.program import StreamProgram
from repro.stream.task import Task

__all__ = ["Simulator", "simulate"]

#: ``TaskRecord.__new__``, hoisted for the batched loop's fast record
#: construction (see the comment at the construction site).
_RECORD_NEW = TaskRecord.__new__


def _plugin_hook(policy: SchedulingPolicy, name: str):
    """Resolve an optional plugin hook, skipping default no-op bodies.

    Returns the bound method only when the policy actually overrides
    the :class:`~repro.core.plugin.ThrottlePolicyPlugin` default (or
    is a plain policy providing the method itself); the dispatch hot
    path then pays for a hook exactly when one is implemented.
    """
    method = getattr(policy, name, None)
    if method is None:
        return None
    base = getattr(ThrottlePolicyPlugin, name, None)
    if base is not None and getattr(method, "__func__", None) is base:
        return None
    return method


class Simulator:
    """Reusable simulator bound to one machine and noise model.

    Args:
        machine: Machine to simulate.
        noise: Task-duration noise model (default: none).
        dispatch_preference: What an idle context tries first —
            ``"compute-first"`` (the default; a freed context consumes
            the compute task whose data it just gathered, the
            cache-friendly order the paper's runtime exhibits) or
            ``"memory-first"`` (keep the memory pipeline maximally
            full; exists for the scheduling-order ablation).
        cohort_batching: Use the cohort-batched event loop (the
            default).  ``False`` selects the per-task reference loop;
            results are bit-identical either way (the equivalence
            tests pin this), the flag exists so tests can compare the
            two and any future divergence can be bisected.
    """

    _DISPATCH_PREFERENCES = ("compute-first", "memory-first")

    def __init__(
        self,
        machine: Machine,
        noise: Optional[NoiseModel] = None,
        dispatch_preference: str = "compute-first",
        cohort_batching: bool = True,
    ) -> None:
        if dispatch_preference not in self._DISPATCH_PREFERENCES:
            raise ConfigurationError(
                f"dispatch_preference must be one of "
                f"{self._DISPATCH_PREFERENCES}, got {dispatch_preference!r}"
            )
        self.machine = machine
        self.noise: NoiseModel = noise if noise is not None else ZeroNoise()
        self.dispatch_preference = dispatch_preference
        self.cohort_batching = bool(cohort_batching)
        self._rates = RateCalculator(machine.processor, machine.memory)
        # Read once: the policy-validation path consults it per event.
        self._context_count = machine.context_count

    @property
    def rate_calculator(self) -> RateCalculator:
        """This simulator's (memoizing) rate calculator, exposed for
        cache-effectiveness telemetry (``snapshot_cache`` events)."""
        return self._rates

    def run(self, program: StreamProgram, policy: SchedulingPolicy) -> SimulationResult:
        """Execute ``program`` to completion under ``policy``."""
        return self.run_graph(program.to_task_graph(), policy, program.name)

    def run_graph(
        self,
        graph,
        policy: SchedulingPolicy,
        name: str,
    ) -> SimulationResult:
        """Execute a pre-built task graph (multiprogram mixes use this
        to bypass the single-program phase-barrier construction)."""
        queue = WorkQueue(graph)
        # Plugin moments (the init/setup/update shape): bind the policy
        # to the machine, then resolve the optional hooks once so plain
        # policies and no-op defaults cost nothing per event.
        setup = _plugin_hook(policy, "setup")
        if setup is not None:
            setup(self.machine)
        on_dispatch = _plugin_hook(policy, "on_task_dispatch")
        blocks = _plugin_hook(policy, "blocks_context")
        gate = MtlGate(self._validated_mtl(policy))
        contexts = self.machine.processor.contexts()
        records: List[TaskRecord] = []
        mtl_changes: List[MtlChange] = [
            MtlChange(time=0.0, old_mtl=gate.limit, new_mtl=gate.limit, reason="initial")
        ]
        loop = self._run_batched if self.cohort_batching else self._run_reference
        loop(
            graph, queue, policy, name, gate, contexts, records, mtl_changes,
            on_dispatch, blocks,
        )
        return SimulationResult(
            program_name=name,
            machine_name=self.machine.name,
            policy_name=policy.name,
            context_count=self.machine.context_count,
            records=tuple(records),
            mtl_changes=tuple(mtl_changes),
        )

    # -- shared helpers ------------------------------------------------

    def _validated_mtl(self, policy: SchedulingPolicy) -> int:
        mtl = policy.current_mtl()
        if not 1 <= mtl <= self._context_count:
            raise ConfigurationError(
                f"policy {policy.name!r} requested MTL {mtl}, outside "
                f"[1, {self._context_count}]"
            )
        return mtl

    def _no_progress(self, graph, queue: WorkQueue) -> SimulationError:
        if queue.has_ready_work():
            return SimulationError(
                "no task running yet ready work exists; the MTL gate "
                "is wedged (this is a scheduler bug)"
            )
        return SimulationError(
            f"deadlock: {len(graph) - queue.completed_count} tasks "
            "can never become ready"
        )

    def _try_memory(
        self, queue: WorkQueue, gate: MtlGate, context_id: int, now: float,
        blocks=None,
    ) -> Optional[Task]:
        """Dispatch a memory task if one is ready, the policy does not
        veto this context (blacklist plugins), and the gate grants."""
        if queue.pending_memory > 0:
            if blocks is not None and blocks(context_id, now):
                return None
            if gate.try_acquire():
                task = queue.pop_memory()
                if task is None:  # pragma: no cover - guarded by pending_memory
                    gate.release()
                    return None
                queue.note_memory_ran_on(task, context_id)
                return task
        return None

    # -- the cohort-batched loop (default) -----------------------------

    def _run_batched(
        self, graph, queue, policy, name, gate, contexts, records,
        mtl_changes, on_dispatch, blocks,
    ) -> None:
        """The optimized event loop.

        One deliberately flat function: every per-event cost lives in a
        local, dispatch and advance are inlined, and the population's
        cohort structure decides per event between two advance paths —

        * **per-task stepping** when every cohort is a singleton (one
          hardware context per core, distinct demands): the batch
          apparatus cannot save anything, so the loop degenerates to
          the reference stepping minus its per-event overheads
          (signature rebuilds, full context rescans, redundant MTL
          validation, no-op plugin hooks);
        * **cohort batching** otherwise: one ``min`` over remaining
          work and one ``dt * speed`` product per cohort.
          ``min(r_i) / s == min(r_i / s)`` bitwise for ``s > 0``
          (division by a positive float is weakly monotone) and
          members share bitwise-equal rates by construction, so both
          paths produce bit-identical results.

        The ``CohortTable`` slots are aliased as locals and mutated
        inline (see its docstring for the bookkeeping contract).
        """
        running: Dict[int, RunningTask] = {}
        cohorts = CohortTable()
        population = cohorts.population
        signatures = cohorts.signatures
        cohort_map = cohorts.cohorts
        #: context_id -> position in the dispatch scan order.
        positions = {
            context.context_id: index for index, context in enumerate(contexts)
        }
        #: Idle scan positions, ascending — dispatch removes, completion
        #: re-inserts in order, so a scan visits exactly the idle
        #: contexts in the same order the reference loop's full scan
        #: would reach them.
        idle = list(range(len(contexts)))
        on_complete = _plugin_hook(policy, "on_task_complete")
        probing = _plugin_hook(policy, "is_probing")

        # Hot-path hoists: bound methods and constants the loop touches
        # every event.
        current_mtl = policy.current_mtl
        policy_name = policy.name
        has_ready = queue.has_ready_work
        pop_compute = queue.pop_compute
        dispatch_memory = queue.try_dispatch_memory
        mark_complete = queue.mark_complete
        release = gate.release
        try_memory = self._try_memory
        duration_factor = self.noise.duration_factor
        dispatch_overhead = self.noise.dispatch_overhead
        # Exactly-ZeroNoise models return 1.0 / 0.0 unconditionally and
        # hold no RNG, so skipping their calls drops no stream draws,
        # and ``work_units * 1.0 == work_units`` bitwise.
        zero_noise = type(self.noise) is ZeroNoise
        snapshot_keyed = self._rates.snapshot_keyed
        memory_first = self.dispatch_preference == "memory-first"
        context_ids = [context.context_id for context in contexts]
        core_ids = [context.core_id for context in contexts]
        context_count = self._context_count
        eps = _COMPLETION_EPSILON
        inf = math.inf
        isfinite = math.isfinite
        records_append = records.append
        # An exactly-FixedMtlPolicy policy returns one constant forever
        # and the gate already holds it (validated at creation), so the
        # whole per-event MTL sync is provably a no-op.  The exact type
        # check keeps subclasses with livelier ``current_mtl`` honest.
        static_mtl = type(policy) is FixedMtlPolicy

        now = 0.0
        #: Completions seen so far; ``queue.mark_complete`` raises on a
        #: double completion, so this equals ``queue.completed_count``
        #: without re-deriving it from the queue every event.
        completed_count = queue.completed_count
        graph_size = len(graph)
        max_iterations = 10 * graph_size + 1000
        iterations = 0
        while completed_count != graph_size:
            iterations += 1
            if iterations > max_iterations:
                raise SimulationError(
                    f"simulation of {name!r} exceeded {max_iterations} "
                    "iterations; the scheduler is not making progress"
                )

            # _sync_mtl, validating only on change: the gate's limit is
            # always in range, so an unchanged (== limit) answer needs
            # no bounds check.
            if not static_mtl:
                mtl = current_mtl()
                if mtl != gate.limit:
                    if not 1 <= mtl <= context_count:
                        raise ConfigurationError(
                            f"policy {policy_name!r} requested MTL {mtl}, "
                            f"outside [1, {context_count}]"
                        )
                    mtl_changes.append(
                        MtlChange(
                            time=now, old_mtl=gate.limit, new_mtl=mtl,
                            reason=policy_name,
                        )
                    )
                    gate.set_limit(mtl)

            # -- dispatch ---------------------------------------------
            if idle and has_ready():
                if blocks is None:
                    # Task availability is context-independent (the
                    # affinity scan only reorders a non-empty compute
                    # queue) and the gate only saturates further during
                    # a scan, so once one idle position comes up empty
                    # every later one must too: successful dispatches
                    # form a strict prefix of the idle list.
                    taken = 0
                    for position in idle:
                        context_id = context_ids[position]
                        if memory_first:
                            task = dispatch_memory(gate, context_id)
                            if task is None:
                                task = pop_compute(context_id)
                        else:
                            task = pop_compute(context_id)
                            if task is None:
                                task = dispatch_memory(gate, context_id)
                        if task is None:
                            break
                        if zero_noise:
                            rt = RunningTask(
                                task, context_id, core_ids[position], now,
                                task.work_units, 0.0, gate.limit,
                                probing() if probing is not None else False,
                            )
                        else:
                            rt = RunningTask(
                                task, context_id, core_ids[position], now,
                                task.work_units * duration_factor(),
                                dispatch_overhead(), gate.limit,
                                probing() if probing is not None else False,
                            )
                        running[context_id] = rt
                        population.append(rt)
                        if rt.overhead_remaining > 0.0:
                            signatures.append(rt._sig_overhead)
                            cohort_key = rt._cohort_overhead
                        else:
                            signatures.append(rt._sig_work)
                            cohort_key = rt._cohort_work
                        members = cohort_map.get(cohort_key)
                        if members is None:
                            cohort_map[cohort_key] = [rt]
                        else:
                            members.append(rt)
                        taken += 1
                        if on_dispatch is not None:
                            on_dispatch(task, context_id, now)
                        if not has_ready():
                            break
                    if taken:
                        del idle[:taken]
                else:
                    # A blacklist plugin can veto individual contexts,
                    # so dispatches are no longer a prefix — and the
                    # veto hook must see the same per-context call
                    # sequence the reference loop makes.
                    taken_set = None
                    for position in idle:
                        context = contexts[position]
                        context_id = context.context_id
                        if memory_first:
                            task = try_memory(
                                queue, gate, context_id, now, blocks
                            )
                            if task is None:
                                task = pop_compute(context_id)
                        else:
                            task = pop_compute(context_id)
                            if task is None:
                                task = try_memory(
                                    queue, gate, context_id, now, blocks
                                )
                        if task is None:
                            continue
                        rt = RunningTask(
                            task, context_id, context.core_id, now,
                            task.work_units * duration_factor(),
                            dispatch_overhead(), gate.limit,
                            probing() if probing is not None else False,
                        )
                        running[context_id] = rt
                        population.append(rt)
                        if rt.overhead_remaining > 0.0:
                            signatures.append(rt._sig_overhead)
                            cohort_key = rt._cohort_overhead
                        else:
                            signatures.append(rt._sig_work)
                            cohort_key = rt._cohort_work
                        members = cohort_map.get(cohort_key)
                        if members is None:
                            cohort_map[cohort_key] = [rt]
                        else:
                            members.append(rt)
                        if taken_set is None:
                            taken_set = {position}
                        else:
                            taken_set.add(position)
                        if on_dispatch is not None:
                            on_dispatch(task, context_id, now)
                        if not has_ready():
                            break
                    if taken_set is not None:
                        idle[:] = [p for p in idle if p not in taken_set]

            if not running:
                raise self._no_progress(graph, queue)

            # -- advance ----------------------------------------------
            snapshot = snapshot_keyed(tuple(signatures), population)
            speeds = snapshot.speeds
            cpu_rates = snapshot.cpu_rates

            finished_indices = None
            if len(cohort_map) == len(population):
                # Every cohort is a singleton: step per task.
                dt = inf
                for rt in population:
                    if rt.overhead_remaining > 0.0:
                        step = rt.overhead_remaining / cpu_rates[rt.context_id]
                    else:
                        speed = speeds[rt.context_id]
                        if speed <= 0:
                            raise SimulationError(
                                f"task {rt.task.task_id!r} has "
                                "non-positive speed"
                            )
                        step = rt.remaining_units / speed
                    if step < dt:
                        dt = step
                if not isfinite(dt) or dt < 0:
                    raise SimulationError(f"invalid time step {dt!r}")
                now += dt
                for index, rt in enumerate(population):
                    if rt.overhead_remaining > 0.0:
                        value = rt.overhead_remaining - dt * cpu_rates[
                            rt.context_id
                        ]
                        if value <= eps * (value if value > 1.0 else 1.0):
                            # Overhead drained: flip into the work
                            # cohort (safe inline — this branch
                            # iterates the population, not the map).
                            rt.overhead_remaining = 0.0
                            signatures[index] = rt._sig_work
                            cohort_key = rt._cohort_overhead
                            members = cohort_map[cohort_key]
                            if len(members) == 1:
                                del cohort_map[cohort_key]
                            else:
                                members.remove(rt)
                            work_key = rt._cohort_work
                            members = cohort_map.get(work_key)
                            if members is None:
                                cohort_map[work_key] = [rt]
                            else:
                                members.append(rt)
                        else:
                            rt.overhead_remaining = value
                    else:
                        value = rt.remaining_units - dt * speeds[rt.context_id]
                        rt.remaining_units = value
                        if value <= rt.completion_threshold:
                            if finished_indices is None:
                                finished_indices = [index]
                            else:
                                finished_indices.append(index)
            else:
                # One step per cohort.
                dt = inf
                for cohort_key, members in cohort_map.items():
                    lo = inf
                    if cohort_key[1]:  # overhead cohort: pure CPU phase
                        for rt in members:
                            value = rt.overhead_remaining
                            if value < lo:
                                lo = value
                        scale = cpu_rates[members[0].context_id]
                    else:
                        scale = speeds[members[0].context_id]
                        if scale <= 0:
                            self._raise_nonpositive_speed(population, speeds)
                        for rt in members:
                            value = rt.remaining_units
                            if value < lo:
                                lo = value
                    step = lo / scale
                    if step < dt:
                        dt = step
                if not isfinite(dt) or dt < 0:
                    raise SimulationError(f"invalid time step {dt!r}")

                now += dt
                finished = None
                flipped = None
                for cohort_key, members in cohort_map.items():
                    if cohort_key[1]:
                        # dt * rate computed once: every member
                        # subtracts the identical product the per-task
                        # loop would.
                        delta = dt * cpu_rates[members[0].context_id]
                        for rt in members:
                            value = rt.overhead_remaining - delta
                            rt.overhead_remaining = value
                            if value <= eps * (value if value > 1.0 else 1.0):
                                rt.overhead_remaining = 0.0
                                if flipped is None:
                                    flipped = [rt]
                                else:
                                    flipped.append(rt)
                    else:
                        delta = dt * speeds[members[0].context_id]
                        for rt in members:
                            value = rt.remaining_units - delta
                            rt.remaining_units = value
                            if value <= rt.completion_threshold:
                                if finished is None:
                                    finished = [rt]
                                else:
                                    finished.append(rt)

                # Structural mutations only after the map iteration: a
                # phase flip moves the task into its work cohort.
                if flipped is not None:
                    for rt in flipped:
                        cohorts.flip_to_work(rt)
                if finished is not None:
                    # Completions must be processed in population order
                    # — record order, dependent-release order, and
                    # policy hooks all observe it — not cohort order.
                    if len(finished) > 1:
                        order = {id(rt) for rt in finished}
                        finished_indices = [
                            index
                            for index, rt in enumerate(population)
                            if id(rt) in order
                        ]
                    else:
                        finished_indices = [population.index(finished[0])]

            if finished_indices is not None:
                completed_count += len(finished_indices)
                for index in finished_indices:
                    rt = population[index]
                    del running[rt.context_id]
                    insort(idle, positions[rt.context_id])
                    task = rt.task
                    if task.is_memory:
                        release()
                    # Fast TaskRecord construction: allocate raw and
                    # fill the instance dict wholesale, skipping the
                    # frozen dataclass's guarded per-field
                    # object.__setattr__ calls.  Field-for-field
                    # identical to the generated __init__, and its
                    # ``end < start`` validation cannot fire here —
                    # ``dt >= 0`` is enforced every event, so ``now``
                    # never drops below any running task's start.
                    record = _RECORD_NEW(TaskRecord)
                    record.__dict__.update({
                        "task_id": task.task_id,
                        "kind": task.kind,
                        "context_id": rt.context_id,
                        "core_id": rt.core_id,
                        "start": rt.start,
                        "end": now,
                        "mtl_at_dispatch": rt.mtl_at_dispatch,
                        "phase_index": task.phase_index,
                        "pair_index": task.pair_index,
                        "probe": rt.probe,
                    })
                    records_append(record)
                    mark_complete(task)
                    if on_complete is not None:
                        on_complete(record, now)
                # Structural removal, descending so indices stay valid.
                for index in reversed(finished_indices):
                    rt = population[index]
                    del population[index]
                    del signatures[index]
                    cohort_key = rt._cohort_work
                    members = cohort_map[cohort_key]
                    if len(members) == 1:
                        del cohort_map[cohort_key]
                    else:
                        members.remove(rt)

    @staticmethod
    def _raise_nonpositive_speed(population, speeds) -> None:
        """Raise the reference loop's error for the first offending
        task in population order (cohort iteration order differs)."""
        for rt in population:
            if rt.overhead_remaining <= 0.0 and speeds[rt.context_id] <= 0:
                raise SimulationError(
                    f"task {rt.task.task_id!r} has non-positive speed"
                )
        raise SimulationError(
            "non-positive cohort speed with no offending task"
        )  # pragma: no cover - cohorts mirror the population exactly

    # -- the per-task reference loop -----------------------------------

    def _run_reference(
        self, graph, queue, policy, name, gate, contexts, records,
        mtl_changes, on_dispatch, blocks,
    ) -> None:
        """The seed's per-task event loop, byte-for-byte semantics.

        The oracle the cohort-batched loop is tested against; see the
        module docstring.
        """
        running: Dict[int, RunningTask] = {}
        now = 0.0
        max_iterations = 10 * len(graph) + 1000
        iterations = 0
        while not queue.exhausted():
            iterations += 1
            if iterations > max_iterations:
                raise SimulationError(
                    f"simulation of {name!r} exceeded {max_iterations} "
                    "iterations; the scheduler is not making progress"
                )

            self._sync_mtl(policy, gate, mtl_changes, now)
            self._dispatch(
                queue, gate, policy, contexts, running, now, on_dispatch, blocks
            )

            if not running:
                raise self._no_progress(graph, queue)

            now = self._advance(queue, gate, policy, running, records, now)

    def _sync_mtl(
        self,
        policy: SchedulingPolicy,
        gate: MtlGate,
        mtl_changes: List[MtlChange],
        now: float,
    ) -> None:
        mtl = self._validated_mtl(policy)
        if mtl != gate.limit:
            mtl_changes.append(
                MtlChange(time=now, old_mtl=gate.limit, new_mtl=mtl, reason=policy.name)
            )
            gate.set_limit(mtl)

    def _dispatch(
        self,
        queue: WorkQueue,
        gate: MtlGate,
        policy: SchedulingPolicy,
        contexts,
        running: Dict[int, RunningTask],
        now: float,
        on_dispatch=None,
        blocks=None,
    ) -> None:
        # Early exits skip no-op scans only; dispatch order is unchanged
        # (the queue only drains on a successful pick, so re-checking
        # ready work after each dispatch matches checking before).
        if len(running) == len(contexts) or not queue.has_ready_work():
            return
        noise = self.noise
        for context in contexts:
            context_id = context.context_id
            if context_id in running:
                continue
            task = self._pick_task(queue, gate, context_id, now, blocks)
            if task is None:
                continue
            running[context_id] = RunningTask(
                task=task,
                context_id=context_id,
                core_id=context.core_id,
                start=now,
                remaining_units=task.work_units * noise.duration_factor(),
                overhead_remaining=noise.dispatch_overhead(),
                mtl_at_dispatch=gate.limit,
                probe=policy.is_probing(),
            )
            if on_dispatch is not None:
                on_dispatch(task, context_id, now)
            if not queue.has_ready_work():
                return

    def _pick_task(
        self, queue: WorkQueue, gate: MtlGate, context_id: int, now: float,
        blocks=None,
    ):
        """Choose a task for an idle context per the dispatch order."""
        if self.dispatch_preference == "memory-first":
            task = self._try_memory(queue, gate, context_id, now, blocks)
            if task is not None:
                return task
            return queue.pop_compute(context_id)
        task = queue.pop_compute(context_id)
        if task is not None:
            return task
        return self._try_memory(queue, gate, context_id, now, blocks)

    def _advance(
        self,
        queue: WorkQueue,
        gate: MtlGate,
        policy: SchedulingPolicy,
        running: Dict[int, RunningTask],
        records: List[TaskRecord],
        now: float,
    ) -> float:
        # One shared population list: the rate calculator memoizes by
        # population signature, so most events resolve to a dict hit.
        population = list(running.values())
        snapshot = self._rates.snapshot(population)
        speeds = snapshot.speeds
        cpu_rates = snapshot.cpu_rates

        dt = math.inf
        for rt in population:
            if rt.overhead_remaining > 0.0:
                rate = cpu_rates[rt.context_id]
                step = rt.overhead_remaining / rate
            else:
                speed = speeds[rt.context_id]
                if speed <= 0:
                    raise SimulationError(
                        f"task {rt.task.task_id!r} has non-positive speed"
                    )
                step = rt.remaining_units / speed
            if step < dt:
                dt = step
        if not math.isfinite(dt) or dt < 0:
            raise SimulationError(f"invalid time step {dt!r}")

        now += dt
        finished: List[RunningTask] = []
        for rt in population:
            if rt.overhead_remaining > 0.0:
                rate = cpu_rates[rt.context_id]
                rt.overhead_remaining -= dt * rate
                if rt.overhead_remaining <= _COMPLETION_EPSILON * max(
                    rt.overhead_remaining, 1.0
                ):
                    rt.overhead_remaining = 0.0
            else:
                speed = speeds[rt.context_id]
                rt.remaining_units -= dt * speed
                if rt.remaining_units <= _COMPLETION_EPSILON * rt.total_units:
                    finished.append(rt)

        for rt in finished:
            del running[rt.context_id]
            if rt.task.is_memory:
                gate.release()
            record = TaskRecord(
                task_id=rt.task.task_id,
                kind=rt.task.kind,
                context_id=rt.context_id,
                core_id=rt.core_id,
                start=rt.start,
                end=now,
                mtl_at_dispatch=rt.mtl_at_dispatch,
                phase_index=rt.task.phase_index,
                pair_index=rt.task.pair_index,
                probe=rt.probe,
            )
            records.append(record)
            queue.mark_complete(rt.task)
            policy.on_task_complete(record, now)
        return now


def simulate(
    program: StreamProgram,
    policy: SchedulingPolicy,
    machine: Optional[Machine] = None,
    noise: Optional[NoiseModel] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`.

    Defaults to the paper's 1-DIMM i7-860 and zero noise.
    """
    return Simulator(
        machine=machine if machine is not None else i7_860(),
        noise=noise,
    ).run(program, policy)
