"""The simulation event loop.

:class:`Simulator` executes a :class:`~repro.stream.program.StreamProgram`
on a :class:`~repro.sim.machine.Machine` under a
:class:`~repro.sim.scheduler.SchedulingPolicy`, producing a
:class:`~repro.sim.results.SimulationResult`.

The loop alternates two actions until the work queue drains:

1. **Dispatch** — every idle hardware context first tries a ready
   compute task (cache-affinity preferred), then a ready memory task
   if the MTL gate grants a token, else idles (Section III semantics).
2. **Advance** — rates are recomputed for the running population
   (processor sharing + memory-contention equilibrium) and time jumps
   to the next task-phase boundary or completion.  Completions release
   MTL tokens, unlock dependents, and are reported to the policy,
   which may retune the MTL for subsequent dispatches.

Determinism: given the same program, machine, policy, and noise seed,
two runs produce identical results.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from repro.core.plugin import ThrottlePolicyPlugin
from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import RateCalculator, RunningTask
from repro.sim.events import MtlChange, TaskRecord
from repro.sim.machine import Machine, i7_860
from repro.sim.noise import NoiseModel, ZeroNoise
from repro.sim.results import SimulationResult
from repro.sim.scheduler import MtlGate, SchedulingPolicy, WorkQueue
from repro.stream.program import StreamProgram
from repro.stream.task import Task

__all__ = ["Simulator", "simulate"]

#: Relative work threshold below which a task counts as finished.
_COMPLETION_EPSILON = 1e-9


def _plugin_hook(policy: SchedulingPolicy, name: str):
    """Resolve an optional plugin hook, skipping default no-op bodies.

    Returns the bound method only when the policy actually overrides
    the :class:`~repro.core.plugin.ThrottlePolicyPlugin` default (or
    is a plain policy providing the method itself); the dispatch hot
    path then pays for a hook exactly when one is implemented.
    """
    method = getattr(policy, name, None)
    if method is None:
        return None
    base = getattr(ThrottlePolicyPlugin, name, None)
    if base is not None and getattr(method, "__func__", None) is base:
        return None
    return method


class Simulator:
    """Reusable simulator bound to one machine and noise model.

    Args:
        machine: Machine to simulate.
        noise: Task-duration noise model (default: none).
        dispatch_preference: What an idle context tries first —
            ``"compute-first"`` (the default; a freed context consumes
            the compute task whose data it just gathered, the
            cache-friendly order the paper's runtime exhibits) or
            ``"memory-first"`` (keep the memory pipeline maximally
            full; exists for the scheduling-order ablation).
    """

    _DISPATCH_PREFERENCES = ("compute-first", "memory-first")

    def __init__(
        self,
        machine: Machine,
        noise: Optional[NoiseModel] = None,
        dispatch_preference: str = "compute-first",
    ) -> None:
        if dispatch_preference not in self._DISPATCH_PREFERENCES:
            raise ConfigurationError(
                f"dispatch_preference must be one of "
                f"{self._DISPATCH_PREFERENCES}, got {dispatch_preference!r}"
            )
        self.machine = machine
        self.noise: NoiseModel = noise if noise is not None else ZeroNoise()
        self.dispatch_preference = dispatch_preference
        self._rates = RateCalculator(machine.processor, machine.memory)
        # Read once: the policy-validation path consults it per event.
        self._context_count = machine.context_count

    @property
    def rate_calculator(self) -> RateCalculator:
        """This simulator's (memoizing) rate calculator, exposed for
        cache-effectiveness telemetry (``snapshot_cache`` events)."""
        return self._rates

    def run(self, program: StreamProgram, policy: SchedulingPolicy) -> SimulationResult:
        """Execute ``program`` to completion under ``policy``."""
        return self.run_graph(program.to_task_graph(), policy, program.name)

    def run_graph(
        self,
        graph,
        policy: SchedulingPolicy,
        name: str,
    ) -> SimulationResult:
        """Execute a pre-built task graph (multiprogram mixes use this
        to bypass the single-program phase-barrier construction)."""
        queue = WorkQueue(graph)
        # Plugin moments (the init/setup/update shape): bind the policy
        # to the machine, then resolve the optional hooks once so plain
        # policies and no-op defaults cost nothing per event.
        setup = _plugin_hook(policy, "setup")
        if setup is not None:
            setup(self.machine)
        on_dispatch = _plugin_hook(policy, "on_task_dispatch")
        blocks = _plugin_hook(policy, "blocks_context")
        gate = MtlGate(self._validated_mtl(policy))
        contexts = self.machine.processor.contexts()
        running: Dict[int, RunningTask] = {}
        records: List[TaskRecord] = []
        mtl_changes: List[MtlChange] = [
            MtlChange(time=0.0, old_mtl=gate.limit, new_mtl=gate.limit, reason="initial")
        ]
        now = 0.0

        max_iterations = 10 * len(graph) + 1000
        iterations = 0
        while not queue.exhausted():
            iterations += 1
            if iterations > max_iterations:
                raise SimulationError(
                    f"simulation of {name!r} exceeded {max_iterations} "
                    "iterations; the scheduler is not making progress"
                )

            self._sync_mtl(policy, gate, mtl_changes, now)
            self._dispatch(
                queue, gate, policy, contexts, running, now, on_dispatch, blocks
            )

            if not running:
                if queue.has_ready_work():
                    raise SimulationError(
                        "no task running yet ready work exists; the MTL gate "
                        "is wedged (this is a scheduler bug)"
                    )
                raise SimulationError(
                    f"deadlock: {len(graph) - queue.completed_count} tasks "
                    "can never become ready"
                )

            now = self._advance(queue, gate, policy, running, records, now)

        return SimulationResult(
            program_name=name,
            machine_name=self.machine.name,
            policy_name=policy.name,
            context_count=self.machine.context_count,
            records=tuple(records),
            mtl_changes=tuple(mtl_changes),
        )

    def _validated_mtl(self, policy: SchedulingPolicy) -> int:
        mtl = policy.current_mtl()
        if not 1 <= mtl <= self._context_count:
            raise ConfigurationError(
                f"policy {policy.name!r} requested MTL {mtl}, outside "
                f"[1, {self._context_count}]"
            )
        return mtl

    def _sync_mtl(
        self,
        policy: SchedulingPolicy,
        gate: MtlGate,
        mtl_changes: List[MtlChange],
        now: float,
    ) -> None:
        mtl = self._validated_mtl(policy)
        if mtl != gate.limit:
            mtl_changes.append(
                MtlChange(time=now, old_mtl=gate.limit, new_mtl=mtl, reason=policy.name)
            )
            gate.set_limit(mtl)

    def _dispatch(
        self,
        queue: WorkQueue,
        gate: MtlGate,
        policy: SchedulingPolicy,
        contexts,
        running: Dict[int, RunningTask],
        now: float,
        on_dispatch=None,
        blocks=None,
    ) -> None:
        # Early exits skip no-op scans only; dispatch order is unchanged
        # (the queue only drains on a successful pick, so re-checking
        # ready work after each dispatch matches checking before).
        if len(running) == len(contexts) or not queue.has_ready_work():
            return
        noise = self.noise
        for context in contexts:
            context_id = context.context_id
            if context_id in running:
                continue
            task = self._pick_task(queue, gate, context_id, now, blocks)
            if task is None:
                continue
            running[context_id] = RunningTask(
                task=task,
                context_id=context_id,
                core_id=context.core_id,
                start=now,
                remaining_units=task.work_units * noise.duration_factor(),
                overhead_remaining=noise.dispatch_overhead(),
                mtl_at_dispatch=gate.limit,
                probe=policy.is_probing(),
            )
            if on_dispatch is not None:
                on_dispatch(task, context_id, now)
            if not queue.has_ready_work():
                return

    def _pick_task(
        self, queue: WorkQueue, gate: MtlGate, context_id: int, now: float,
        blocks=None,
    ):
        """Choose a task for an idle context per the dispatch order."""
        if self.dispatch_preference == "memory-first":
            task = self._try_memory(queue, gate, context_id, now, blocks)
            if task is not None:
                return task
            return queue.pop_compute(context_id)
        task = queue.pop_compute(context_id)
        if task is not None:
            return task
        return self._try_memory(queue, gate, context_id, now, blocks)

    def _try_memory(
        self, queue: WorkQueue, gate: MtlGate, context_id: int, now: float,
        blocks=None,
    ) -> Optional[Task]:
        """Dispatch a memory task if one is ready, the policy does not
        veto this context (blacklist plugins), and the gate grants."""
        if queue.pending_memory > 0:
            if blocks is not None and blocks(context_id, now):
                return None
            if gate.try_acquire():
                task = queue.pop_memory()
                if task is None:  # pragma: no cover - guarded by pending_memory
                    gate.release()
                    return None
                queue.note_memory_ran_on(task, context_id)
                return task
        return None

    def _advance(
        self,
        queue: WorkQueue,
        gate: MtlGate,
        policy: SchedulingPolicy,
        running: Dict[int, RunningTask],
        records: List[TaskRecord],
        now: float,
    ) -> float:
        # One shared population list: the rate calculator memoizes by
        # population signature, so most events resolve to a dict hit.
        population = list(running.values())
        snapshot = self._rates.snapshot(population)
        speeds = snapshot.speeds
        cpu_rates = snapshot.cpu_rates

        dt = math.inf
        for rt in population:
            if rt.overhead_remaining > 0.0:
                rate = cpu_rates[rt.context_id]
                step = rt.overhead_remaining / rate
            else:
                speed = speeds[rt.context_id]
                if speed <= 0:
                    raise SimulationError(
                        f"task {rt.task.task_id!r} has non-positive speed"
                    )
                step = rt.remaining_units / speed
            if step < dt:
                dt = step
        if not math.isfinite(dt) or dt < 0:
            raise SimulationError(f"invalid time step {dt!r}")

        now += dt
        finished: List[RunningTask] = []
        for rt in population:
            if rt.overhead_remaining > 0.0:
                rate = cpu_rates[rt.context_id]
                rt.overhead_remaining -= dt * rate
                if rt.overhead_remaining <= _COMPLETION_EPSILON * max(
                    rt.overhead_remaining, 1.0
                ):
                    rt.overhead_remaining = 0.0
            else:
                speed = speeds[rt.context_id]
                rt.remaining_units -= dt * speed
                if rt.remaining_units <= _COMPLETION_EPSILON * rt.total_units:
                    finished.append(rt)

        for rt in finished:
            del running[rt.context_id]
            if rt.task.is_memory:
                gate.release()
            record = TaskRecord(
                task_id=rt.task.task_id,
                kind=rt.task.kind,
                context_id=rt.context_id,
                core_id=rt.core_id,
                start=rt.start,
                end=now,
                mtl_at_dispatch=rt.mtl_at_dispatch,
                phase_index=rt.task.phase_index,
                pair_index=rt.task.pair_index,
                probe=rt.probe,
            )
            records.append(record)
            queue.mark_complete(rt.task)
            policy.on_task_complete(record, now)
        return now


def simulate(
    program: StreamProgram,
    policy: SchedulingPolicy,
    machine: Optional[Machine] = None,
    noise: Optional[NoiseModel] = None,
) -> SimulationResult:
    """One-shot convenience wrapper around :class:`Simulator`.

    Defaults to the paper's 1-DIMM i7-860 and zero noise.
    """
    return Simulator(
        machine=machine if machine is not None else i7_860(),
        noise=noise,
    ).run(program, policy)
