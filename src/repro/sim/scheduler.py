"""Work queue, MTL gate, and the scheduling-policy protocol.

This module is the simulated counterpart of the paper's application-
level runtime (Section V): the main thread enqueues all memory and
compute tasks with their dependencies into a work queue; child threads
(hardware contexts here) dequeue tasks; "a lock and a counter are used
to reinforce MTL restriction".  The lock-and-counter is the
:class:`MtlGate`; the queue is :class:`WorkQueue`; policies — the
paper's dynamic throttler and its baselines — plug in through
:class:`SchedulingPolicy`.  The static policies themselves
(:class:`~repro.core.policies.FixedMtlPolicy`,
:func:`~repro.core.policies.conventional_policy`) now live with the
rest of the policy plugins in :mod:`repro.core.policies` and are
re-exported here for compatibility.

Dispatch preference follows Section III: a context that cannot acquire
an MTL token "does not have to stall if it has compute work to do", so
ready compute tasks are always dispatchable; compute tasks prefer the
context that gathered their data (cache affinity, matching the paper's
thread pinning).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional, Protocol, Tuple, runtime_checkable

from repro.core.policies import FixedMtlPolicy, conventional_policy
from repro.errors import ConfigurationError, SchedulingError
from repro.sim.events import TaskRecord
from repro.stream.graph import TaskGraph
from repro.stream.task import Task

__all__ = [
    "SchedulingPolicy",
    "FixedMtlPolicy",
    "conventional_policy",
    "MtlGate",
    "WorkQueue",
]


@runtime_checkable
class SchedulingPolicy(Protocol):
    """Protocol every scheduling policy implements.

    The simulator queries :meth:`current_mtl` at every dispatch and
    feeds every completion to :meth:`on_task_complete`; a policy
    changes the throttle simply by returning a different value from
    :meth:`current_mtl` afterwards.
    """

    @property
    def name(self) -> str:
        """Short policy name used in reports."""

    def current_mtl(self) -> int:
        """The MTL constraint in force right now."""

    def on_task_complete(self, record: TaskRecord, now: float) -> None:
        """Observe a completed task (the policy's monitoring hook)."""

    def is_probing(self) -> bool:
        """Whether dispatched tasks currently belong to a monitoring
        window (recorded on :class:`TaskRecord.probe` for overhead
        accounting)."""


class MtlGate:
    """The lock-and-counter enforcing the MTL restriction.

    Tokens are acquired when a memory task is dispatched and released
    when it completes.  Lowering the limit below the in-use count does
    not preempt running memory tasks (neither does the paper's
    runtime); it only blocks new acquisitions until tasks drain.
    """

    def __init__(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"MTL limit must be >= 1, got {limit}")
        self._limit = limit
        self._in_use = 0

    @property
    def limit(self) -> int:
        return self._limit

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def available(self) -> bool:
        """Whether :meth:`try_acquire` would currently grant a token.

        A failed ``try_acquire`` has no side effects, so dispatchers
        may consult this first and skip the whole memory-dispatch
        attempt while the gate is saturated (the cohort-batched loop
        does, once per scan, instead of one failed acquire per idle
        context)."""
        return self._in_use < self._limit

    def set_limit(self, limit: int) -> None:
        if limit < 1:
            raise ConfigurationError(f"MTL limit must be >= 1, got {limit}")
        self._limit = limit

    def try_acquire(self) -> bool:
        if self._in_use < self._limit:
            self._in_use += 1
            return True
        return False

    def release(self) -> None:
        if self._in_use <= 0:
            raise SchedulingError("MTL gate released more tokens than acquired")
        self._in_use -= 1


class WorkQueue:
    """FIFO work queue over a task graph, split by task kind.

    Tracks dependency counts and surfaces ready tasks in enqueue order,
    with a cache-affinity fast path for compute tasks: a context
    preferentially picks the compute task whose memory task it ran
    itself, since that data sits in its cache slice.
    """

    def __init__(self, graph: TaskGraph) -> None:
        self._graph = graph
        self._dependents_of = graph.dependents
        self._remaining_deps: Dict[str, int] = graph.initial_dependency_counts()
        self._ready_memory: Deque[Task] = deque()
        self._ready_compute: Deque[Task] = deque()
        self._completed: set = set()
        self._dispatched: set = set()
        #: pair key -> context that ran the pair's memory task
        self._affinity: Dict[Tuple[int, int], int] = {}
        #: context -> number of pair keys it currently owns; an exact
        #: mirror of ``_affinity`` so :meth:`pop_compute` can skip the
        #: ready-queue scan for contexts that own no claim at all.
        self._affinity_counts: Dict[int, int] = {}

        # Dependency-free tasks enqueue in topological order — the
        # same order the per-task scan this replaces produced.
        for task in graph.root_tasks():
            self._enqueue(task)

    def _enqueue(self, task: Task) -> None:
        if task.is_memory:
            self._ready_memory.append(task)
        else:
            self._ready_compute.append(task)

    @property
    def pending_memory(self) -> int:
        return len(self._ready_memory)

    @property
    def pending_compute(self) -> int:
        return len(self._ready_compute)

    @property
    def completed_count(self) -> int:
        return len(self._completed)

    def exhausted(self) -> bool:
        """All tasks completed."""
        return len(self._completed) == len(self._graph)

    def has_ready_work(self) -> bool:
        return bool(self._ready_memory or self._ready_compute)

    def pop_compute(self, context_id: int) -> Optional[Task]:
        """Dequeue a ready compute task, preferring cache affinity."""
        ready = self._ready_compute
        if not ready:
            return None
        if self._affinity_counts.get(context_id):
            affinity = self._affinity
            for index, task in enumerate(ready):
                if affinity.get((task.phase_index, task.pair_index)) == context_id:
                    del ready[index]
                    self._dispatched.add(task.task_id)
                    return task
        task = ready.popleft()
        self._dispatched.add(task.task_id)
        return task

    def pop_memory(self) -> Optional[Task]:
        """Dequeue the oldest ready memory task."""
        if not self._ready_memory:
            return None
        task = self._ready_memory.popleft()
        self._dispatched.add(task.task_id)
        return task

    def try_dispatch_memory(self, gate: "MtlGate", context_id: int) -> Optional[Task]:
        """Fused memory dispatch: the pending check, gate acquisition,
        dequeue, and affinity note of a successful
        ``pop_memory`` + ``note_memory_ran_on`` sequence in one call.

        Exactly equivalent to the unfused sequence (same checks, same
        order, token released on no other path), but the event loop
        pays one method call instead of four-plus per memory dispatch.
        Callers that consult a ``blocks_context`` veto must keep using
        the unfused path so the plugin sees every attempt.
        """
        if not self._ready_memory:
            return None
        if not gate.try_acquire():
            return None
        task = self._ready_memory.popleft()
        self._dispatched.add(task.task_id)
        key = (task.phase_index, task.pair_index)
        previous = self._affinity.get(key)
        if previous != context_id:
            counts = self._affinity_counts
            if previous is not None:
                counts[previous] -= 1
            self._affinity[key] = context_id
            counts[context_id] = counts.get(context_id, 0) + 1
        return task

    def note_memory_ran_on(self, task: Task, context_id: int) -> None:
        """Record affinity for the pair's upcoming compute task."""
        key = (task.phase_index, task.pair_index)
        previous = self._affinity.get(key)
        if previous == context_id:
            return
        if previous is not None:
            self._affinity_counts[previous] -= 1
        self._affinity[key] = context_id
        self._affinity_counts[context_id] = (
            self._affinity_counts.get(context_id, 0) + 1
        )

    def mark_complete(self, task: Task) -> List[Task]:
        """Mark a task complete; returns tasks that just became ready."""
        task_id = task.task_id
        if task_id in self._completed:
            raise SchedulingError(f"task {task_id!r} completed twice")
        if task_id not in self._dispatched:
            raise SchedulingError(
                f"task {task_id!r} completed without being dispatched"
            )
        self._completed.add(task_id)
        newly_ready: List[Task] = []
        remaining = self._remaining_deps
        for dependent in self._dependents_of(task_id):
            dependent_id = dependent.task_id
            count = remaining[dependent_id] - 1
            remaining[dependent_id] = count
            if count == 0:
                # _enqueue, inlined: this runs once per task per run.
                if dependent.is_memory:
                    self._ready_memory.append(dependent)
                else:
                    self._ready_compute.append(dependent)
                newly_ready.append(dependent)
            elif count < 0:
                raise SchedulingError(
                    f"dependency count of {dependent_id!r} went negative"
                )
        return newly_ready
