"""ASCII gantt rendering of simulated schedules.

Figures 1, 4, and 5 of the paper are schedule diagrams: per-core
timelines showing memory tasks, compute tasks, and the idle gaps the
MTL constraint introduces.  :func:`render_gantt` reproduces them as
terminal art, e.g.::

    P0 |MMMMMM CCCCCCCCCCCC MMMM CCCCCCCCCCCC            |
    P1 |......MMMMMM CCCCCCCCCCCC MMMM CCCCCCCCCCC       |

``M`` = memory task, ``C`` = compute task, ``.`` = idle while waiting
for an MTL token, space = no work available.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.units import format_time

__all__ = ["render_gantt"]


def render_gantt(result: SimulationResult, width: int = 80) -> str:
    """Render the schedule of ``result`` as fixed-width ASCII rows.

    Args:
        result: A completed simulation.
        width: Character columns representing the full makespan.
    """
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    span = result.makespan
    if span <= 0:
        return f"{result.program_name}: empty schedule"

    scale = width / span
    lines: List[str] = [
        f"{result.program_name} on {result.machine_name} under "
        f"{result.policy_name} — makespan {format_time(span)}",
    ]
    for context_id in range(result.context_count):
        row = [" "] * width
        for record in result.context_timeline(context_id):
            begin = min(int(record.start * scale), width - 1)
            end = min(int(record.end * scale), width)
            end = max(end, begin + 1)  # at least one cell per task
            symbol = "M" if record.is_memory else "C"
            for column in range(begin, end):
                row[column] = symbol
        lines.append(f"P{context_id} |{''.join(row)}|")
    legend = "    M=memory  C=compute  (blank=idle)"
    lines.append(legend)
    return "\n".join(lines)
