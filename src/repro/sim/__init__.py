"""Machine-simulator substrate.

A trace-driven, processor-sharing discrete-event simulator of a
multi-core machine executing a stream program under a scheduling
policy.  It substitutes for the paper's physical Intel i7-860 testbed:

* :mod:`repro.sim.machine` — machine presets (the i7-860 in its
  1-DIMM, 2-DIMM, and SMT configurations from Section V/VI-E);
* :mod:`repro.sim.cores` — cores and SMT hardware contexts;
* :mod:`repro.sim.engine` — the processor-sharing rate calculator that
  turns task demands plus memory contention into progress rates;
* :mod:`repro.sim.scheduler` — the work queue and the MTL token gate
  (the lock-and-counter of the paper's runtime), plus the policy
  protocol;
* :mod:`repro.sim.simulator` — the event loop tying it all together;
* :mod:`repro.sim.events` / :mod:`repro.sim.results` — execution
  records and derived statistics;
* :mod:`repro.sim.noise` — measurement/scheduling jitter;
* :mod:`repro.sim.gantt` — ASCII schedule rendering (Figures 4 and 5);
* :mod:`repro.sim.detailed` — request-level co-simulation with the
  bank-level DRAM controller (contention emerges, validation mode);
* :mod:`repro.sim.multiprogram` — co-scheduling of program mixes
  under one global MTL gate;
* :mod:`repro.sim.power7` — the POWER7-class machine of the paper's
  announced follow-up study.
"""

from repro.sim.detailed import DetailedSimulator
from repro.sim.events import MtlChange, TaskRecord
from repro.sim.machine import Machine, i7_860
from repro.sim.multiprogram import CoScheduleResult, co_schedule, merge_programs
from repro.sim.power7 import power7
from repro.sim.noise import GaussianNoise, NoiseModel, ZeroNoise
from repro.sim.results import SimulationResult
from repro.sim.scheduler import FixedMtlPolicy, SchedulingPolicy, conventional_policy
from repro.sim.simulator import Simulator, simulate

__all__ = [
    "DetailedSimulator",
    "FixedMtlPolicy",
    "GaussianNoise",
    "Machine",
    "MtlChange",
    "NoiseModel",
    "SchedulingPolicy",
    "SimulationResult",
    "Simulator",
    "TaskRecord",
    "ZeroNoise",
    "CoScheduleResult",
    "co_schedule",
    "conventional_policy",
    "merge_programs",
    "i7_860",
    "power7",
    "simulate",
]
