"""Unit helpers used throughout the library.

The simulator's base time unit is the **second** (floats), and the base
size unit is the **byte** (ints).  These helpers exist so that module
code and tests can write ``46.3 * NANOSECONDS`` or ``mebibytes(2)``
instead of raw exponents, and so that reports can render quantities in
the unit a reader expects.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "SECONDS",
    "MILLISECONDS",
    "MICROSECONDS",
    "NANOSECONDS",
    "KIB",
    "MIB",
    "GIB",
    "CACHE_LINE_BYTES",
    "UNIT_CONSTANTS",
    "UNIT_RETURNS",
    "UNIT_SUFFIXES",
    "kibibytes",
    "mebibytes",
    "gibibytes",
    "cache_lines",
    "format_time",
    "format_bytes",
]

SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Cache-line granularity of the modelled memory system (DDR3 burst to a
#: 64-byte line, the Nehalem line size used throughout the paper).
CACHE_LINE_BYTES = 64


#: Dimension of each constant above, keyed by its canonical dotted
#: name.  The dimensional-consistency lint rules (RPR8xx) seed their
#: inference from these tables, so a new constant or helper gets unit
#: checking by adding one entry here rather than editing the linter.
#: The SI time factors are *seconds-denominated* (``46.3 *
#: NANOSECONDS`` is a value in seconds), so they all carry "seconds".
UNIT_CONSTANTS = {
    "repro.units.SECONDS": "seconds",
    "repro.units.MILLISECONDS": "seconds",
    "repro.units.MICROSECONDS": "seconds",
    "repro.units.NANOSECONDS": "seconds",
    "repro.units.KIB": "bytes",
    "repro.units.MIB": "bytes",
    "repro.units.GIB": "bytes",
    "repro.units.CACHE_LINE_BYTES": "bytes",
}

#: Dimension of each helper's return value (``None`` marks helpers
#: returning dimensionless renderings).
UNIT_RETURNS = {
    "repro.units.kibibytes": "bytes",
    "repro.units.mebibytes": "bytes",
    "repro.units.gibibytes": "bytes",
    "repro.units.cache_lines": "cache_lines",
}

#: Naming convention -> dimension.  A variable or attribute named
#: exactly ``seconds`` or ending in ``_seconds`` is a duration, and so
#: on.  Deliberately short and exact-match: generic suffixes ("lines",
#: "count") would tag names that never meant a unit.
UNIT_SUFFIXES = {
    "seconds": "seconds",
    "bytes": "bytes",
    "cycles": "cycles",
    "tasks": "tasks",
    "cache_lines": "cache_lines",
}


def kibibytes(n: float) -> int:
    """Return ``n`` KiB expressed in bytes."""
    return int(n * KIB)


def mebibytes(n: float) -> int:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * MIB)


def gibibytes(n: float) -> int:
    """Return ``n`` GiB expressed in bytes."""
    return int(n * GIB)


def cache_lines(footprint_bytes: int) -> int:
    """Number of cache lines needed to cover ``footprint_bytes``.

    A memory task that gathers a footprint of ``footprint_bytes``
    issues one off-chip request per cache line.
    """
    if footprint_bytes < 0:
        # ConfigurationError, not ValueError: this helper runs inside
        # pool workers (sweep points build workloads there), and only
        # repro.errors types cross the process boundary cleanly.
        raise ConfigurationError(
            f"footprint must be non-negative, got {footprint_bytes}"
        )
    return (footprint_bytes + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES


def format_time(seconds: float) -> str:
    """Render a duration with an auto-selected SI unit (ns/us/ms/s)."""
    magnitude = abs(seconds)
    if magnitude == 0.0:
        return "0 s"
    if magnitude < 1e-6:
        return f"{seconds / NANOSECONDS:.1f} ns"
    if magnitude < 1e-3:
        return f"{seconds / MICROSECONDS:.1f} us"
    if magnitude < 1.0:
        return f"{seconds / MILLISECONDS:.2f} ms"
    return f"{seconds:.3f} s"


def format_bytes(n: int) -> str:
    """Render a byte count with an auto-selected binary unit."""
    if n < 0:
        raise ConfigurationError(f"byte count must be non-negative, got {n}")
    if n < KIB:
        return f"{n} B"
    if n < MIB:
        return f"{n / KIB:.1f} KiB"
    if n < GIB:
        return f"{n / MIB:.1f} MiB"
    return f"{n / GIB:.2f} GiB"
