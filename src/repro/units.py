"""Unit helpers used throughout the library.

The simulator's base time unit is the **second** (floats), and the base
size unit is the **byte** (ints).  These helpers exist so that module
code and tests can write ``46.3 * NANOSECONDS`` or ``mebibytes(2)``
instead of raw exponents, and so that reports can render quantities in
the unit a reader expects.
"""

from __future__ import annotations

from repro.errors import ConfigurationError

__all__ = [
    "SECONDS",
    "MILLISECONDS",
    "MICROSECONDS",
    "NANOSECONDS",
    "KIB",
    "MIB",
    "GIB",
    "CACHE_LINE_BYTES",
    "REQUESTS",
    "EVENTS",
    "UNIT_CONSTANTS",
    "UNIT_PARAMS",
    "UNIT_POLYMORPHIC",
    "UNIT_RETURNS",
    "UNIT_SUFFIXES",
    "kibibytes",
    "mebibytes",
    "gibibytes",
    "cache_lines",
    "bytes_per_second",
    "requests_per_second",
    "per_second",
    "format_time",
    "format_bytes",
]

SECONDS = 1.0
MILLISECONDS = 1e-3
MICROSECONDS = 1e-6
NANOSECONDS = 1e-9

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Cache-line granularity of the modelled memory system (DDR3 burst to a
#: 64-byte line, the Nehalem line size used throughout the paper).
CACHE_LINE_BYTES = 64

#: Count dimensions for the open-system work (gateway -> server -> disk
#: tiers, arrival processes): ``3 * REQUESTS`` is a request count the
#: unit inference can track, same as ``2 * KIB`` is a byte count.
REQUESTS = 1
EVENTS = 1


#: Dimension of each constant above, keyed by its canonical dotted
#: name.  The dimensional-consistency lint rules (RPR8xx) seed their
#: inference from these tables, so a new constant or helper gets unit
#: checking by adding one entry here rather than editing the linter.
#: The SI time factors are *seconds-denominated* (``46.3 *
#: NANOSECONDS`` is a value in seconds), so they all carry "seconds".
UNIT_CONSTANTS = {
    "repro.units.SECONDS": "seconds",
    "repro.units.MILLISECONDS": "seconds",
    "repro.units.MICROSECONDS": "seconds",
    "repro.units.NANOSECONDS": "seconds",
    "repro.units.KIB": "bytes",
    "repro.units.MIB": "bytes",
    "repro.units.GIB": "bytes",
    "repro.units.CACHE_LINE_BYTES": "bytes",
    "repro.units.REQUESTS": "requests",
    "repro.units.EVENTS": "events",
}

#: Dimension of each helper's return value.  Derived dimensions use
#: the algebra's rendering (numerator ``*`` factors, then ``/`` and
#: the denominator): ``"bytes/seconds"`` is a transfer rate.
UNIT_RETURNS = {
    "repro.units.kibibytes": "bytes",
    "repro.units.mebibytes": "bytes",
    "repro.units.gibibytes": "bytes",
    "repro.units.cache_lines": "cache_lines",
    "repro.units.bytes_per_second": "bytes/seconds",
    "repro.units.requests_per_second": "requests/seconds",
}

#: Explicit per-parameter dimensions, keyed by the callable's canonical
#: dotted name.  These *seed and override* the interprocedural
#: inference in ``repro.lint.dimflow``: an entry here wins over both
#: the name-suffix convention and anything call sites pass in, so a
#: deliberately unsuffixed parameter (``n``) can still carry a
#: checkable unit.
UNIT_PARAMS = {
    "repro.units.format_bytes": {"n": "bytes"},
    "repro.units.format_time": {"seconds": "seconds"},
    "repro.units.cache_lines": {"footprint_bytes": "bytes"},
    "repro.units.bytes_per_second": {
        "moved_bytes": "bytes",
        "window_seconds": "seconds",
    },
    "repro.units.requests_per_second": {
        "count_requests": "requests",
        "window_seconds": "seconds",
    },
    # The stream/task layer counts *memory* requests, which are
    # cache-line granular in this model (one off-chip request per
    # 64-byte line, see ``cache_lines``) — not the open-system arrival
    # "requests" dimension the suffix convention would assign.  These
    # overrides record that contract so ``cache_lines(tile)`` flows
    # into them cleanly and a true arrival count would be flagged.
    "repro.stream.task.memory_task": {"requests": "cache_lines"},
    "repro.stream.task.compute_task": {"spilled_requests": "cache_lines"},
    "repro.stream.program.build_phase": {
        "compute_spill_requests": "cache_lines"
    },
}

#: Genuinely unit-polymorphic callables: their parameters accept any
#: dimension and their return unit depends on the argument's, so the
#: inference must neither pin their parameters from call sites nor
#: flag their internally "mixed" arithmetic.  ``per_second(count,
#: window)`` is the canonical case — it turns *any* count into a rate.
UNIT_POLYMORPHIC = frozenset(
    {
        "repro.units.per_second",
        "builtins.abs",
        "builtins.min",
        "builtins.max",
        "builtins.sum",
    }
)

#: Naming convention -> dimension.  A variable or attribute named
#: exactly ``seconds`` or ending in ``_seconds`` is a duration, and so
#: on.  Deliberately short and exact-match: generic suffixes ("lines",
#: "count") would tag names that never meant a unit.  Rate suffixes
#: map to the derived dimension the algebra produces for the matching
#: quotient, so ``drain_bytes_per_second = moved_bytes /
#: window_seconds`` checks out end to end.
UNIT_SUFFIXES = {
    "seconds": "seconds",
    "bytes": "bytes",
    "cycles": "cycles",
    "tasks": "tasks",
    "cache_lines": "cache_lines",
    "requests": "requests",
    "events": "events",
    "bytes_per_second": "bytes/seconds",
    "requests_per_second": "requests/seconds",
    "events_per_second": "events/seconds",
}


def kibibytes(n: float) -> int:
    """Return ``n`` KiB expressed in bytes."""
    return int(n * KIB)


def mebibytes(n: float) -> int:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * MIB)


def gibibytes(n: float) -> int:
    """Return ``n`` GiB expressed in bytes."""
    return int(n * GIB)


def cache_lines(footprint_bytes: int) -> int:
    """Number of cache lines needed to cover ``footprint_bytes``.

    A memory task that gathers a footprint of ``footprint_bytes``
    issues one off-chip request per cache line.
    """
    if footprint_bytes < 0:
        # ConfigurationError, not ValueError: this helper runs inside
        # pool workers (sweep points build workloads there), and only
        # repro.errors types cross the process boundary cleanly.
        raise ConfigurationError(
            f"footprint must be non-negative, got {footprint_bytes}"
        )
    return (footprint_bytes + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES


def bytes_per_second(moved_bytes: float, window_seconds: float) -> float:
    """Transfer rate of ``moved_bytes`` drained over ``window_seconds``."""
    if window_seconds <= 0:
        raise ConfigurationError(
            f"rate window must be positive, got {window_seconds}"
        )
    return moved_bytes / window_seconds


def requests_per_second(count_requests: float, window_seconds: float) -> float:
    """Arrival/service rate of ``count_requests`` over ``window_seconds``."""
    if window_seconds <= 0:
        raise ConfigurationError(
            f"rate window must be positive, got {window_seconds}"
        )
    return count_requests / window_seconds


def per_second(count: float, window_seconds: float) -> float:
    """Rate of *any* count over ``window_seconds`` (unit-polymorphic).

    The returned value's dimension is ``<count's unit>/seconds``; the
    caller keeps track.  Listed in :data:`UNIT_POLYMORPHIC` so the
    lint inference does not pin ``count`` to any one dimension.
    """
    if window_seconds <= 0:
        raise ConfigurationError(
            f"rate window must be positive, got {window_seconds}"
        )
    return count / window_seconds


def format_time(seconds: float) -> str:
    """Render a duration with an auto-selected SI unit (ns/us/ms/s)."""
    magnitude = abs(seconds)
    if magnitude == 0.0:
        return "0 s"
    if magnitude < 1e-6:
        return f"{seconds / NANOSECONDS:.1f} ns"
    if magnitude < 1e-3:
        return f"{seconds / MICROSECONDS:.1f} us"
    if magnitude < 1.0:
        return f"{seconds / MILLISECONDS:.2f} ms"
    return f"{seconds:.3f} s"


def format_bytes(n: int) -> str:
    """Render a byte count with an auto-selected binary unit."""
    if n < 0:
        raise ConfigurationError(f"byte count must be non-negative, got {n}")
    if n < KIB:
        return f"{n} B"
    if n < MIB:
        return f"{n / KIB:.1f} KiB"
    if n < GIB:
        return f"{n / MIB:.1f} MiB"
    return f"{n / GIB:.2f} GiB"
