"""Series containers and ASCII charts for figure regeneration.

Each figure benchmark produces one or more named series (e.g. the
"measured" and "analytical" speedup curves of Figure 13) and renders
them as an ASCII scatter/line chart so the shape is inspectable in
terminal output and in ``bench_output.txt``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.errors import MeasurementError

__all__ = ["Series", "ascii_chart"]


@dataclass(frozen=True)
class Series:
    """One named data series.

    Attributes:
        name: Legend label.
        points: ``(x, y)`` pairs, in x order.
        marker: Single character used to plot the series.
    """

    name: str
    points: Tuple[Tuple[float, float], ...]
    marker: str = "*"

    def __post_init__(self) -> None:
        if not self.name:
            raise MeasurementError("series name must be non-empty")
        if len(self.marker) != 1:
            raise MeasurementError(
                f"marker must be a single character, got {self.marker!r}"
            )

    @property
    def xs(self) -> List[float]:
        return [p[0] for p in self.points]

    @property
    def ys(self) -> List[float]:
        return [p[1] for p in self.points]


def ascii_chart(
    series_list: Sequence[Series],
    width: int = 72,
    height: int = 18,
    title: str = "",
) -> str:
    """Plot series on a shared-axis ASCII grid.

    Later series overwrite earlier ones where they collide, so put the
    reference (analytical) series first and the measured series last.
    """
    if width < 16 or height < 4:
        raise MeasurementError(f"chart too small: {width}x{height}")
    points = [p for s in series_list for p in s.points]
    if not points:
        raise MeasurementError("nothing to plot")

    xs = [p[0] for p in points]
    ys = [p[1] for p in points]
    x_lo, x_hi = min(xs), max(xs)
    y_lo, y_hi = min(ys), max(ys)
    x_span = x_hi - x_lo or 1.0
    y_span = y_hi - y_lo or 1.0

    grid = [[" "] * width for _ in range(height)]
    for series in series_list:
        for x, y in series.points:
            col = int((x - x_lo) / x_span * (width - 1))
            row = height - 1 - int((y - y_lo) / y_span * (height - 1))
            grid[row][col] = series.marker

    lines: List[str] = []
    if title:
        lines.append(title)
    for i, row in enumerate(grid):
        y_value = y_hi - i * y_span / (height - 1)
        lines.append(f"{y_value:8.3f} |{''.join(row)}")
    lines.append(" " * 9 + "+" + "-" * width)
    lines.append(f"{'':9}{x_lo:<12.3f}{'':{max(width - 24, 0)}}{x_hi:>12.3f}")
    legend = "   ".join(f"{s.marker} {s.name}" for s in series_list)
    lines.append(f"{'':9}{legend}")
    return "\n".join(lines)
