"""ASCII timelines of MTL decisions and memory concurrency.

The gantt chart shows *what ran where*; this module shows *what the
throttler did and what the memory system felt*: the MTL constraint as
a step function over time, aligned with the memory-concurrency
profile, e.g.::

    MTL  |44444422222222222222222222222222222222222222222222|
    mem  |44444422222122222212222221222222122222212222221222|
          0 ms                                        206 ms

Reading the two rows together verifies the gate visually: the ``mem``
row never exceeds the ``MTL`` row.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.sim.results import SimulationResult
from repro.units import format_time

__all__ = ["render_timeline"]


def _sample_step(
    segments: List[tuple], span: float, width: int, default: int
) -> List[int]:
    """Sample a piecewise-constant function onto ``width`` columns."""
    samples = []
    for column in range(width):
        when = (column + 0.5) * span / width
        value = default
        for start, end, level in segments:
            if start <= when < end:
                value = level
                break
        samples.append(value)
    return samples


def render_timeline(result: SimulationResult, width: int = 60) -> str:
    """Render MTL constraint and memory concurrency over time."""
    if width < 10:
        raise ConfigurationError(f"width must be >= 10, got {width}")
    span = result.makespan
    if span <= 0:
        return f"{result.program_name}: empty timeline"

    mtl_segments = []
    for i, change in enumerate(result.mtl_changes):
        end = (
            result.mtl_changes[i + 1].time
            if i + 1 < len(result.mtl_changes)
            else span
        )
        mtl_segments.append((change.time, end, change.new_mtl))
    mtl_row = _sample_step(mtl_segments, span, width, default=0)

    concurrency_segments = result.memory_concurrency_profile()
    mem_row = _sample_step(concurrency_segments, span, width, default=0)

    def row_text(values: List[int]) -> str:
        return "".join(str(min(v, 9)) if v > 0 else "." for v in values)

    header = (
        f"{result.program_name} under {result.policy_name} — MTL constraint "
        "vs memory concurrency"
    )
    footer = f"      0 s{'':{max(width - 18, 1)}}{format_time(span)}"
    return "\n".join(
        [
            header,
            f"MTL  |{row_text(mtl_row)}|",
            f"mem  |{row_text(mem_row)}|",
            footer,
        ]
    )
