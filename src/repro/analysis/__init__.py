"""Analysis and reporting helpers.

* :mod:`repro.analysis.stats` — geometric mean, spread, line fits;
* :mod:`repro.analysis.tables` — fixed-width table rendering;
* :mod:`repro.analysis.figures` — data series and ASCII charts;
* :mod:`repro.analysis.report` — policy-comparison formatting.
"""

from repro.analysis.export import result_to_dict, result_to_json, series_to_csv
from repro.analysis.figures import Series, ascii_chart
from repro.analysis.report import (
    format_comparison,
    format_comparison_grid,
    geomean_improvement,
)
from repro.analysis.timeline import render_timeline
from repro.analysis.stats import (
    LinearFit,
    arithmetic_mean,
    geometric_mean,
    linear_fit,
    stdev,
)
from repro.analysis.tables import (
    format_percent,
    format_speedup,
    render_policy_matrix,
    render_table,
)

__all__ = [
    "LinearFit",
    "Series",
    "arithmetic_mean",
    "ascii_chart",
    "format_comparison",
    "format_comparison_grid",
    "format_percent",
    "format_speedup",
    "geomean_improvement",
    "geometric_mean",
    "linear_fit",
    "render_policy_matrix",
    "render_table",
    "render_timeline",
    "result_to_dict",
    "result_to_json",
    "series_to_csv",
    "stdev",
]
