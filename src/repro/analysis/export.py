"""Machine-readable export of simulation results and figure series.

Terminal tables are for humans; downstream tooling (plotting scripts,
regression dashboards) wants structured data.  This module serialises
the library's two main result types without adding dependencies:

* :func:`result_to_dict` / :func:`result_to_json` — a complete
  :class:`~repro.sim.results.SimulationResult` (records, MTL timeline,
  derived statistics);
* :func:`series_to_csv` — figure series as CSV with one x column and
  one column per series (missing points left empty).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.figures import Series
from repro.errors import MeasurementError
from repro.sim.results import SimulationResult

__all__ = ["result_to_dict", "result_to_json", "series_to_csv"]


def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """Serialise a simulation result to plain Python data."""
    return {
        "program": result.program_name,
        "machine": result.machine_name,
        "policy": result.policy_name,
        "context_count": result.context_count,
        "makespan": result.makespan,
        "utilization": result.utilization(),
        "probe_task_time_fraction": result.probe_task_time_fraction(),
        "mtl_changes": [
            {
                "time": change.time,
                "old_mtl": change.old_mtl,
                "new_mtl": change.new_mtl,
                "reason": change.reason,
            }
            for change in result.mtl_changes
        ],
        "records": [
            {
                "task_id": record.task_id,
                "kind": record.kind.value,
                "context": record.context_id,
                "core": record.core_id,
                "start": record.start,
                "end": record.end,
                "mtl": record.mtl_at_dispatch,
                "phase": record.phase_index,
                "pair": record.pair_index,
                "probe": record.probe,
            }
            for record in result.records
        ],
    }


def result_to_json(result: SimulationResult, indent: int = 2) -> str:
    """Serialise a simulation result to a JSON string."""
    return json.dumps(result_to_dict(result), indent=indent)


def series_to_csv(series_list: Sequence[Series]) -> str:
    """Render figure series as CSV sharing one x column.

    Rows are the union of all x values in ascending order; a series
    without a point at some x contributes an empty cell.
    """
    if not series_list:
        raise MeasurementError("nothing to export")
    names = [s.name for s in series_list]
    if len(set(names)) != len(names):
        raise MeasurementError(f"duplicate series names: {names}")

    by_series: List[Dict[float, float]] = [dict(s.points) for s in series_list]
    xs = sorted({x for table in by_series for x in table})
    lines = ["x," + ",".join(_csv_quote(name) for name in names)]
    for x in xs:
        cells = [repr(x)]
        for table in by_series:
            cells.append(repr(table[x]) if x in table else "")
        lines.append(",".join(cells))
    return "\n".join(lines) + "\n"


def _csv_quote(text: str) -> str:
    if any(ch in text for ch in ',"\n'):
        return '"' + text.replace('"', '""') + '"'
    return text
