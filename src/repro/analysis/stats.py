"""Statistics helpers for experiment reporting.

The paper summarises realistic-workload results as a geometric mean of
speedups ("a geometric mean of 12% performance improvement"); the
DRAM-linearity ablation needs a least-squares line fit.  Both live
here, dependency-free.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.errors import MeasurementError

__all__ = ["geometric_mean", "arithmetic_mean", "stdev", "LinearFit", "linear_fit"]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values."""
    if not values:
        raise MeasurementError("geometric_mean of an empty sample")
    if any(v <= 0 for v in values):
        raise MeasurementError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Sequence[float]) -> float:
    """Plain mean."""
    if not values:
        raise MeasurementError("arithmetic_mean of an empty sample")
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Population standard deviation."""
    if not values:
        raise MeasurementError("stdev of an empty sample")
    mean = arithmetic_mean(values)
    return math.sqrt(sum((v - mean) ** 2 for v in values) / len(values))


@dataclass(frozen=True)
class LinearFit:
    """Least-squares line ``y = intercept + slope * x``.

    Attributes:
        slope: Fitted slope.
        intercept: Fitted intercept.
        r_squared: Coefficient of determination (1 = perfect line).
    """

    slope: float
    intercept: float
    r_squared: float

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x


def linear_fit(xs: Sequence[float], ys: Sequence[float]) -> LinearFit:
    """Ordinary least squares over paired samples."""
    if len(xs) != len(ys):
        raise MeasurementError(
            f"mismatched sample lengths: {len(xs)} vs {len(ys)}"
        )
    if len(xs) < 2:
        raise MeasurementError("linear_fit needs at least two points")
    n = len(xs)
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    sxx = sum((x - mean_x) ** 2 for x in xs)
    if sxx == 0:
        raise MeasurementError("linear_fit needs varying x values")
    sxy = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    slope = sxy / sxx
    intercept = mean_y - slope * mean_x
    ss_res = sum((y - (intercept + slope * x)) ** 2 for x, y in zip(xs, ys))
    ss_tot = sum((y - mean_y) ** 2 for y in ys)
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot
    return LinearFit(slope=slope, intercept=intercept, r_squared=r_squared)
