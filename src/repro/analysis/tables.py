"""Fixed-width table rendering for benchmark output.

The benchmark harness regenerates the paper's tables as terminal
text; this module owns the formatting so every bench prints in a
consistent style::

    Benchmark      | Name     | T_m1/T_c
    ---------------+----------+---------
    streamcluster  | SC_d128  |   37.1%
"""

from __future__ import annotations

from typing import List, Mapping, Sequence

from repro.analysis.stats import geometric_mean
from repro.errors import MeasurementError

__all__ = [
    "render_table",
    "render_policy_matrix",
    "format_percent",
    "format_speedup",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render rows under headers with aligned columns."""
    if not headers:
        raise MeasurementError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise MeasurementError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells.extend([[str(c) for c in row] for row in rows])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_policy_matrix(
    policy_names: Sequence[str],
    workload_names: Sequence[str],
    speedups: Mapping[str, Mapping[str, float]],
) -> str:
    """Policies x workloads speedup matrix with a geomean column.

    One row per policy, one column per workload, plus a trailing
    geometric-mean column — the cross-policy comparison table the
    registry-wide benchmark prints.

    Args:
        policy_names: Row order.
        workload_names: Column order.
        speedups: ``workload -> policy -> speedup``; every
            (workload, policy) cell must be present.
    """
    rows = []
    for policy in policy_names:
        cells = [policy]
        values = []
        for workload in workload_names:
            per_policy = speedups.get(workload)
            if per_policy is None or policy not in per_policy:
                raise MeasurementError(
                    f"no speedup for policy {policy!r} on workload "
                    f"{workload!r}; the matrix needs every cell"
                )
            values.append(per_policy[policy])
            cells.append(format_speedup(per_policy[policy]))
        cells.append(format_speedup(geometric_mean(values)))
        rows.append(cells)
    headers = ["Policy"] + [str(w) for w in workload_names] + ["geomean"]
    return render_table(headers, rows)


def format_percent(value: float, decimals: int = 2) -> str:
    """``0.3714 -> '37.14%'``."""
    return f"{value * 100:.{decimals}f}%"


def format_speedup(value: float, decimals: int = 3) -> str:
    """``1.2129 -> '1.213x'``."""
    return f"{value:.{decimals}f}x"
