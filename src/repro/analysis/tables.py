"""Fixed-width table rendering for benchmark output.

The benchmark harness regenerates the paper's tables as terminal
text; this module owns the formatting so every bench prints in a
consistent style::

    Benchmark      | Name     | T_m1/T_c
    ---------------+----------+---------
    streamcluster  | SC_d128  |   37.1%
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import MeasurementError

__all__ = ["render_table", "format_percent", "format_speedup"]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Render rows under headers with aligned columns."""
    if not headers:
        raise MeasurementError("table needs at least one column")
    for row in rows:
        if len(row) != len(headers):
            raise MeasurementError(
                f"row {row!r} has {len(row)} cells, expected {len(headers)}"
            )
    cells: List[List[str]] = [[str(h) for h in headers]]
    cells.extend([[str(c) for c in row] for row in rows])
    widths = [
        max(len(cells[r][c]) for r in range(len(cells)))
        for c in range(len(headers))
    ]
    lines = []
    header_line = " | ".join(h.ljust(w) for h, w in zip(cells[0], widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float, decimals: int = 2) -> str:
    """``0.3714 -> '37.14%'``."""
    return f"{value * 100:.{decimals}f}%"


def format_speedup(value: float, decimals: int = 3) -> str:
    """``1.2129 -> '1.213x'``."""
    return f"{value:.{decimals}f}x"
