"""Experiment report formatting.

Turns :class:`~repro.runtime.experiment.ComparisonResult` objects into
the bar-chart-like rows of Figures 14, 16, 17, and 18: one line per
policy with its speedup and the MTL it selected (the number printed on
each bar in the paper).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.analysis.stats import geometric_mean
from repro.analysis.tables import format_percent, format_speedup, render_table

if TYPE_CHECKING:  # avoid a layering cycle: analysis is below runtime
    from repro.runtime.experiment import ComparisonResult

__all__ = ["format_comparison", "format_comparison_grid", "geomean_improvement"]


def format_comparison(
    result: ComparisonResult, include_stats: bool = False
) -> str:
    """One workload's policy comparison as a table.

    With ``include_stats``, the per-plugin counter snapshots carried
    on each :class:`~repro.runtime.experiment.PolicyOutcome` (the same
    counters the executor emits as ``policy_stat`` telemetry) follow
    the table as one ``policy: stat=value ...`` line per policy that
    registered any; policies without counters are omitted.  Off by
    default so existing golden artifacts keep their exact bytes.
    """
    rows = []
    for outcome in result.outcomes:
        rows.append(
            [
                outcome.policy_name,
                format_speedup(outcome.speedup),
                "-" if outcome.selected_mtl is None else str(outcome.selected_mtl),
                format_percent(outcome.probe_fraction),
            ]
        )
    table = render_table(
        ["Policy", "Speedup", "MTL", "Probe share"], rows
    )
    report = f"{result.program_name} on {result.machine_name}\n{table}"
    if include_stats:
        stat_lines = [
            "  {}: {}".format(
                outcome.policy_name,
                " ".join(f"{stat}={value:g}" for stat, value in outcome.stats),
            )
            for outcome in result.outcomes
            if outcome.stats
        ]
        if stat_lines:
            report += "\n\npolicy stats (instrumented run):\n" + "\n".join(
                stat_lines
            )
    return report


def format_comparison_grid(
    results: Sequence[ComparisonResult], policy_names: Sequence[str]
) -> str:
    """Several workloads x several policies, one row per workload."""
    headers = ["Workload"] + [f"{name} (MTL)" for name in policy_names]
    rows = []
    for result in results:
        row = [result.program_name]
        for name in policy_names:
            outcome = result.outcome(name)
            mtl = "-" if outcome.selected_mtl is None else str(outcome.selected_mtl)
            row.append(f"{format_speedup(outcome.speedup)} ({mtl})")
        rows.append(row)
    return render_table(headers, rows)


def geomean_improvement(
    results: Sequence[ComparisonResult], policy_name: str
) -> float:
    """Geometric-mean improvement of one policy across workloads.

    Returns the improvement fraction (0.12 for the paper's headline
    "12% performance improvement").
    """
    speedups = [result.speedup(policy_name) for result in results]
    return geometric_mean(speedups) - 1.0
