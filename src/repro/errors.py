"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class.  Subsystems raise the narrower
subclasses below; each carries enough context in its message to diagnose
the failing configuration without a debugger.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "ConfigurationError",
    "SchedulingError",
    "SimulationError",
    "TaskGraphError",
    "WorkloadError",
    "ModelError",
    "MeasurementError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid machine, memory-system, or policy configuration.

    Raised eagerly at construction time (e.g. a zero core count, an MTL
    outside ``[1, n]``, a negative latency) so that bad parameters never
    reach the simulator.
    """


class TaskGraphError(ReproError):
    """A malformed stream task graph (cycles, dangling dependencies)."""


class WorkloadError(ReproError):
    """A workload definition that cannot be realised as a stream program."""


class SchedulingError(ReproError):
    """An internal scheduling invariant was violated.

    This indicates a bug in a scheduling policy (e.g. more concurrent
    memory tasks than the MTL gate permits) rather than bad user input.
    """


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class ModelError(ReproError):
    """Invalid inputs to the analytical performance model."""


class MeasurementError(ReproError):
    """A measurement protocol was given insufficient or invalid samples."""
