"""Effective-concurrency equilibrium solver.

When every running memory-bound task is a *pure* memory task, the
memory concurrency is simply the number of such tasks, and the paper's
``T_mk = requests * L(k)`` holds directly.  The Figure 13(c) regime
breaks that purity: compute tasks whose footprints overflow the LLC
also issue off-chip requests, so they both *suffer* contention and
*contribute* to it — but only for the fraction of their time actually
spent waiting on memory.

We model each running task ``i`` by its per-work-unit demand: ``a_i``
seconds of CPU work and ``m_i`` off-chip requests.  At a candidate
concurrency ``c`` the task spends a fraction

    ``w_i(c) = m_i * L(c) / (a_i + m_i * L(c))``

of its wall-clock time occupying the memory system, which is exactly
its contribution to concurrency.  The effective concurrency is the
fixed point of ``F(c) = sum_i w_i(c)``.

``F`` is non-decreasing in ``c`` (because ``L`` is) and bounded by the
number of memory-demanding tasks ``N``, so iterating from ``c = N``
produces a monotonically decreasing, convergent sequence; the limit is
the greatest fixed point.  Pure memory tasks have ``a_i = 0`` and
``w_i = 1`` identically, recovering the paper's model exactly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.errors import ModelError

__all__ = ["MemoryDemand", "effective_concurrency"]


@dataclass(frozen=True)
class MemoryDemand:
    """Per-work-unit resource demand of one running task.

    Attributes:
        cpu_seconds_per_unit: CPU time ``a_i`` one work unit needs.
        requests_per_unit: Off-chip requests ``m_i`` one work unit
            issues.  A pure memory task has ``cpu_seconds_per_unit=0``
            and ``requests_per_unit=1``; a miss-free compute task has
            ``requests_per_unit=0``.
    """

    cpu_seconds_per_unit: float
    requests_per_unit: float

    def __post_init__(self) -> None:
        if self.cpu_seconds_per_unit < 0:
            raise ModelError(
                f"cpu_seconds_per_unit must be >= 0, got {self.cpu_seconds_per_unit}"
            )
        if self.requests_per_unit < 0:
            raise ModelError(
                f"requests_per_unit must be >= 0, got {self.requests_per_unit}"
            )

    def memory_weight(self, request_latency: float) -> float:
        """Fraction of wall-clock time spent in the memory system when
        each request costs ``request_latency`` seconds."""
        memory_time = self.requests_per_unit * request_latency
        total = self.cpu_seconds_per_unit + memory_time
        if total == 0.0:
            return 0.0
        return memory_time / total


def effective_concurrency(
    demands: Sequence[MemoryDemand],
    latency_fn: Callable[[float], float],
    tolerance: float = 1e-9,
    max_iterations: int = 200,
) -> float:
    """Solve ``c = sum_i w_i(c)`` for the running task population.

    Args:
        demands: Demands of every currently running task.
        latency_fn: Maps concurrency to per-request latency (normally a
            bound :meth:`ContentionModel.request_latency`).  Must be
            non-decreasing and positive.
        tolerance: Absolute convergence tolerance on ``c``.
        max_iterations: Iteration cap; exceeding it raises
            :class:`~repro.errors.ModelError` (it indicates a
            non-monotone latency function).

    Returns:
        The effective memory concurrency, ``0 <= c <= len(demands)``.
    """
    memory_tasks = [d for d in demands if d.requests_per_unit > 0]
    if not memory_tasks:
        return 0.0

    c = float(len(memory_tasks))
    for _ in range(max_iterations):
        latency = latency_fn(c)
        if latency <= 0:
            raise ModelError(f"latency_fn returned non-positive latency {latency}")
        updated = sum(d.memory_weight(latency) for d in memory_tasks)
        if abs(updated - c) <= tolerance:
            return updated
        # Damped update: guards against oscillation if latency_fn is
        # only piecewise monotone (e.g. the bandwidth-share model's kink).
        c = 0.5 * (c + updated)
    raise ModelError(
        f"effective_concurrency failed to converge within {max_iterations} "
        f"iterations (last c={c!r})"
    )
