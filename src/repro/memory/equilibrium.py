"""Effective-concurrency equilibrium solver.

When every running memory-bound task is a *pure* memory task, the
memory concurrency is simply the number of such tasks, and the paper's
``T_mk = requests * L(k)`` holds directly.  The Figure 13(c) regime
breaks that purity: compute tasks whose footprints overflow the LLC
also issue off-chip requests, so they both *suffer* contention and
*contribute* to it — but only for the fraction of their time actually
spent waiting on memory.

We model each running task ``i`` by its per-work-unit demand: ``a_i``
seconds of CPU work and ``m_i`` off-chip requests.  At a candidate
concurrency ``c`` the task spends a fraction

    ``w_i(c) = m_i * L(c) / (a_i + m_i * L(c))``

of its wall-clock time occupying the memory system, which is exactly
its contribution to concurrency.  The effective concurrency is the
fixed point of ``F(c) = sum_i w_i(c)``.

``F`` is non-decreasing in ``c`` (because ``L`` is) and bounded by the
number of memory-demanding tasks ``N``, so iterating from ``c = N``
produces a monotonically decreasing, convergent sequence; the limit is
the greatest fixed point.  Pure memory tasks have ``a_i = 0`` and
``w_i = 1`` identically, recovering the paper's model exactly.

Hot-path structure (see ``docs/performance.md``):

* **Pure-population fast path** — when every memory-demanding task is
  pure (``a_i == 0``), every ``w_i`` is identically 1 and the damped
  iteration converges on its first step to exactly ``float(N)``.  The
  solver detects this in one scan and returns the closed form without
  building the filtered task list or evaluating any ``w_i`` — after
  one ``latency_fn`` probe that preserves the iterative path's
  positive-latency validation, so the result (and every raised error)
  is bit-identical to the damped iteration's.
* **Solution memo** — :class:`EquilibriumSolver` wraps the solver with
  a dictionary keyed by the population's demand signature, so a
  population already solved under the same latency function costs one
  dict lookup.  Keys preserve demand *order*: float summation is not
  associative, and a canonicalised (sorted) key could return a result
  computed under a different summation order than a cold solve of the
  same sequence would use — breaking the engine's bit-identical
  guarantee for mixed populations.
* **Warm-started misses** — on a full-key miss the solver projects the
  population onto its memory-demanding subsequence (the only part the
  iteration ever reads: zero-request demands are filtered out before
  the first step and contribute nothing afterwards) and consults a
  second memo keyed by that *canonical* signature.  A hit there is the
  nearest cached neighbour at distance zero in the projected
  demand-signature space — the one neighbour whose solution is
  provably the same floats a cold solve would produce — so the solver
  reuses it outright, skipping every damped iteration.  Zero distance
  is not an implementation shortcut but the correctness boundary:
  seeding the iteration from a *nonzero*-distance neighbour would walk
  a different trajectory and converge with different last-ULP bits,
  breaking the golden fig13 artifacts.  In the engine this fires
  constantly: populations that differ only in their miss-free compute
  tasks (dispatch churn on other contexts) project to the same
  canonical key.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.errors import ModelError

__all__ = [
    "MemoryDemand",
    "effective_concurrency",
    "demand_signature",
    "EquilibriumSolver",
]


@dataclass(frozen=True)
class MemoryDemand:
    """Per-work-unit resource demand of one running task.

    Attributes:
        cpu_seconds_per_unit: CPU time ``a_i`` one work unit needs.
        requests_per_unit: Off-chip requests ``m_i`` one work unit
            issues.  A pure memory task has ``cpu_seconds_per_unit=0``
            and ``requests_per_unit=1``; a miss-free compute task has
            ``requests_per_unit=0``.
    """

    cpu_seconds_per_unit: float
    requests_per_unit: float

    def __post_init__(self) -> None:
        if self.cpu_seconds_per_unit < 0:
            raise ModelError(
                f"cpu_seconds_per_unit must be >= 0, got {self.cpu_seconds_per_unit}"
            )
        if self.requests_per_unit < 0:
            raise ModelError(
                f"requests_per_unit must be >= 0, got {self.requests_per_unit}"
            )

    def memory_weight(self, request_latency: float) -> float:
        """Fraction of wall-clock time spent in the memory system when
        each request costs ``request_latency`` seconds."""
        memory_time = self.requests_per_unit * request_latency
        total = self.cpu_seconds_per_unit + memory_time
        if total == 0.0:
            return 0.0
        return memory_time / total


def demand_signature(demands: Sequence[MemoryDemand]) -> bytes:
    """Order-preserving memo key for a demand population.

    The order of ``demands`` is part of the key on purpose: the damped
    iteration sums ``w_i`` in sequence order and float addition is not
    associative, so permutations of one multiset may (in the last ULP)
    converge to different values.  An order-preserving key guarantees a
    memo hit returns exactly what a cold solve of the same call would.

    The key is the little-endian IEEE-754 packing of the per-task
    ``(a_i, m_i)`` pairs rather than a tuple: ``bytes`` caches its hash
    while tuples re-hash every element per lookup, so a precomputed key
    makes a memo hit O(1) regardless of population size.  Packing is
    bit-exact, so distinct demand sequences can never collide (at most,
    ``-0.0`` and ``0.0`` get separate entries — which only splits the
    memo, never merges results).
    """
    values = []
    for d in demands:
        values.append(d.cpu_seconds_per_unit)
        values.append(d.requests_per_unit)
    return struct.pack(f"<{len(values)}d", *values)


def effective_concurrency(
    demands: Sequence[MemoryDemand],
    latency_fn: Callable[[float], float],
    tolerance: float = 1e-9,
    max_iterations: int = 200,
    fast_path: bool = True,
    stats: Optional[Dict[str, int]] = None,
) -> float:
    """Solve ``c = sum_i w_i(c)`` for the running task population.

    Args:
        demands: Demands of every currently running task.
        latency_fn: Maps concurrency to per-request latency (normally a
            bound :meth:`ContentionModel.request_latency`).  Must be
            non-decreasing and positive.
        tolerance: Absolute convergence tolerance on ``c``.
        max_iterations: Iteration cap; exceeding it raises
            :class:`~repro.errors.ModelError` (it indicates a
            non-monotone latency function).
        fast_path: Allow the pure-population closed form.  ``False``
            forces the damped iteration; results are bit-identical
            either way (the regression tests pin this), the flag exists
            so tests and the perf microbenchmark can compare the paths.
        stats: Optional dict that receives ``{"iterations": n}`` — the
            damped-iteration steps this solve performed (0 on the
            closed-form paths).  :class:`EquilibriumSolver` uses it to
            account iterations saved by warm-start reuse.

    Returns:
        The effective memory concurrency, ``0 <= c <= len(demands)``.
    """
    if stats is not None:
        stats["iterations"] = 0
    if fast_path:
        # One scan: count memory tasks, bail to the general path on the
        # first impure one.  ``pure`` ends at -1 for mixed populations.
        pure = 0
        for d in demands:
            if d.requests_per_unit > 0.0:
                if d.cpu_seconds_per_unit != 0.0:
                    pure = -1
                    break
                pure += 1
        if pure == 0:
            return 0.0
        if pure > 0:
            # Every w_i is identically 1, so the iteration's first step
            # returns sum(1.0, ...) == float(pure) exactly.  Probe the
            # latency once to keep the iterative path's validation (a
            # non-positive latency must still raise).
            latency = latency_fn(float(pure))
            if latency <= 0:
                raise ModelError(
                    f"latency_fn returned non-positive latency {latency}"
                )
            for d in demands:
                if (
                    d.requests_per_unit > 0.0
                    and d.requests_per_unit * latency == 0.0
                ):
                    # Denormal underflow: the iteration's first step
                    # sees w_i = 0 for this task (``m * L`` rounds to
                    # zero), so the closed form does not apply — fall
                    # through to the damped iteration.
                    break
            else:
                return float(pure)

    memory_tasks = [d for d in demands if d.requests_per_unit > 0]
    if not memory_tasks:
        return 0.0

    # The per-iteration sum is the hot loop of every cold mixed solve;
    # hoist the attribute reads out of it.  The inlined body replicates
    # :meth:`MemoryDemand.memory_weight` operation for operation — same
    # term order, same ``total == 0`` denormal-underflow guard, and
    # skipping a zero term instead of adding 0.0 leaves a non-negative
    # accumulator bit-identical — so results match the uninlined seed
    # loop float for float (pinned by the equilibrium property tests).
    pairs = [(d.cpu_seconds_per_unit, d.requests_per_unit) for d in memory_tasks]
    c = float(len(memory_tasks))
    for iteration in range(max_iterations):
        latency = latency_fn(c)
        if latency <= 0:
            raise ModelError(f"latency_fn returned non-positive latency {latency}")
        updated = 0.0
        for a, m in pairs:
            memory_time = m * latency
            total = a + memory_time
            if total != 0.0:
                updated += memory_time / total
        if abs(updated - c) <= tolerance:
            if stats is not None:
                stats["iterations"] = iteration + 1
            return updated
        # Damped update: guards against oscillation if latency_fn is
        # only piecewise monotone (e.g. the bandwidth-share model's kink).
        c = 0.5 * (c + updated)
    raise ModelError(
        f"effective_concurrency failed to converge within {max_iterations} "
        f"iterations (last c={c!r})"
    )


class EquilibriumSolver:
    """Memoizing front-end over :func:`effective_concurrency`.

    Bound to one latency function (normally a
    :meth:`~repro.memory.system.MemorySystem.request_latency`), the
    solver caches ``(concurrency, request_latency)`` pairs keyed by the
    population's order-preserving :func:`demand_signature`.  A repeat
    population costs one dict lookup; the cached pair is exactly what a
    cold solve would return, so memoization can never change a result.

    The returned latency is ``latency_fn(max(c, 1.0))`` — the loaded
    per-request latency the simulator charges (a lone request still
    competes with itself; with no memory task running it is the
    unloaded ``L(1)`` a newly arriving request would pay).

    Full-key misses are *warm-started*: the population is projected
    onto its memory-demanding subsequence and a second memo keyed by
    that canonical signature is consulted.  The projection is exact —
    :func:`effective_concurrency` filters out zero-request demands
    before its first step, so two populations with the same canonical
    key provably solve to the same floats — which makes a warm hit a
    zero-distance nearest-neighbour reuse, the only distance at which
    reuse preserves the engine's bit-identical guarantee (see the
    module docstring).  A warm hit skips the entire damped iteration;
    ``warm_hits`` and ``iterations_saved`` account the savings.

    Attributes:
        hits / misses: Full-key lookup counters for cache-effectiveness
            telemetry (``snapshot_cache`` events).
        warm_hits: Full-key misses served from the canonical memo
            without iterating.
        iterations_saved: Damped-iteration steps those warm hits
            avoided (each canonical entry remembers what its cold
            solve cost).
    """

    def __init__(
        self,
        latency_fn: Callable[[float], float],
        max_entries: int = 65536,
    ) -> None:
        if max_entries < 1:
            raise ModelError(f"max_entries must be >= 1, got {max_entries}")
        self._latency_fn = latency_fn
        self._max_entries = max_entries
        self._memo: Dict[bytes, Tuple[float, float]] = {}
        #: canonical signature -> (concurrency, latency, cold iterations)
        self._canonical: Dict[bytes, Tuple[float, float, int]] = {}
        self.hits = 0
        self.misses = 0
        self.warm_hits = 0
        self.iterations_saved = 0

    def __len__(self) -> int:
        return len(self._memo)

    def cache_info(self) -> Dict[str, int]:
        """Lookup/warm-start counters and table sizes, for telemetry."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "entries": len(self._memo),
            "warm_hits": self.warm_hits,
            "cold_solves": self.misses - self.warm_hits,
            "iterations_saved": self.iterations_saved,
            "warm_entries": len(self._canonical),
        }

    def solve(
        self,
        demands: Sequence[MemoryDemand],
        key: Optional[bytes] = None,
    ) -> Tuple[float, float]:
        """``(concurrency, latency)`` for the population, memoized.

        Args:
            demands: Demands of every currently running task.
            key: Precomputed :func:`demand_signature` of ``demands``;
                callers that already hold one (the rate calculator
                maintains signatures incrementally) skip rebuilding it.
        """
        if key is None:
            key = demand_signature(demands)
        cached = self._memo.get(key)
        if cached is not None:
            self.hits += 1
            return cached
        self.misses += 1
        # Warm start: a neighbour at distance zero in the projected
        # demand-signature space solved this exact subproblem already.
        memory_tasks = [d for d in demands if d.requests_per_unit > 0]
        canonical_key = demand_signature(memory_tasks)
        warm = self._canonical.get(canonical_key)
        if warm is not None:
            concurrency, latency, iterations = warm
            self.warm_hits += 1
            self.iterations_saved += iterations
            self._remember(key, concurrency, latency)
            return concurrency, latency
        stats: Dict[str, int] = {}
        concurrency = effective_concurrency(demands, self._latency_fn, stats=stats)
        latency = self._latency_fn(concurrency if concurrency > 1.0 else 1.0)
        self._remember(key, concurrency, latency)
        if len(self._canonical) >= self._max_entries:
            self._canonical.clear()
        self._canonical[canonical_key] = (
            concurrency,
            latency,
            stats["iterations"],
        )
        return concurrency, latency

    def _remember(self, key: bytes, concurrency: float, latency: float) -> None:
        if len(self._memo) >= self._max_entries:
            # Populations recur in tight cycles; a full table means the
            # workload's working set outgrew it, and starting over is
            # cheaper and simpler than tracking recency.
            self._memo.clear()
        self._memo[key] = (concurrency, latency)
