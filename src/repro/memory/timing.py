"""DRAM device timing parameters.

These parameters feed the detailed bank-level model in
:mod:`repro.memory.dram`.  They are expressed in DRAM clock cycles, the
way datasheets specify them, and converted to seconds through the clock
period.  The presets correspond to the DDR3-1066 DIMMs of the paper's
Dell Vostro 430 testbed (Section V) and, for sensitivity studies, a
faster DDR3-1333 grade.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import NANOSECONDS

__all__ = ["DramTiming", "DDR3_1066", "DDR3_1333"]


@dataclass(frozen=True)
class DramTiming:
    """Timing of one DRAM device grade.

    Attributes:
        clock_period: Duration of one memory clock cycle, in seconds.
            (DDR transfers two beats per cycle; burst lengths below are
            already expressed in clock cycles.)
        t_cl: CAS latency — column access to first data, in cycles.
        t_rcd: RAS-to-CAS delay — activate to column access, in cycles.
        t_rp: Row precharge time, in cycles.
        t_ras: Minimum row-open time (activate to precharge), in cycles.
        t_burst: Data-bus occupancy of one 64-byte burst (BL8 on a
            64-bit channel = 4 clock cycles), in cycles.
        banks_per_rank: Number of banks in each rank.
        ranks_per_channel: Number of ranks sharing a channel.
        row_bytes: Bytes covered by one open row (page size x devices).
    """

    clock_period: float
    t_cl: int
    t_rcd: int
    t_rp: int
    t_ras: int
    t_burst: int
    banks_per_rank: int = 8
    ranks_per_channel: int = 2
    row_bytes: int = 8192

    def __post_init__(self) -> None:
        if self.clock_period <= 0:
            raise ConfigurationError(
                f"clock_period must be positive, got {self.clock_period}"
            )
        for name in ("t_cl", "t_rcd", "t_rp", "t_ras", "t_burst"):
            value = getattr(self, name)
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if self.banks_per_rank <= 0 or self.ranks_per_channel <= 0:
            raise ConfigurationError("bank/rank counts must be positive")
        if self.row_bytes <= 0:
            raise ConfigurationError(f"row_bytes must be positive, got {self.row_bytes}")

    def cycles(self, n: int) -> float:
        """Convert ``n`` clock cycles to seconds."""
        return n * self.clock_period

    @property
    def row_hit_latency(self) -> float:
        """Seconds from scheduling a row-hit read to the end of its burst."""
        return self.cycles(self.t_cl + self.t_burst)

    @property
    def row_miss_latency(self) -> float:
        """Seconds for a closed-row access: activate, then column read."""
        return self.cycles(self.t_rcd + self.t_cl + self.t_burst)

    @property
    def row_conflict_latency(self) -> float:
        """Seconds for a row conflict: precharge, activate, column read."""
        return self.cycles(self.t_rp + self.t_rcd + self.t_cl + self.t_burst)

    @property
    def banks_per_channel(self) -> int:
        """Total independently schedulable banks on one channel."""
        return self.banks_per_rank * self.ranks_per_channel


#: DDR3-1066: 533 MHz clock (1.875 ns), 7-7-7-20 grade, as in the paper's
#: single-DIMM 8.5 GB/s configuration.
DDR3_1066 = DramTiming(
    clock_period=1.875 * NANOSECONDS,
    t_cl=7,
    t_rcd=7,
    t_rp=7,
    t_ras=20,
    t_burst=4,
)

#: DDR3-1333: 667 MHz clock (1.5 ns), 9-9-9-24 grade, for sensitivity runs.
DDR3_1333 = DramTiming(
    clock_period=1.5 * NANOSECONDS,
    t_cl=9,
    t_rcd=9,
    t_rp=9,
    t_ras=24,
    t_burst=4,
)
