"""Memory-system substrate.

This package models the off-chip memory system of the evaluation
machine.  It provides three layers of fidelity:

* :mod:`repro.memory.contention` — closed-form per-request latency
  models parameterised by the number of concurrent memory tasks.  The
  :class:`~repro.memory.contention.LinearContentionModel` implements the
  exact queueing law the paper assumes (``L(c) = T_ml + c * T_ql``).
* :mod:`repro.memory.dram` — a bank/row-buffer-level DRAM timing
  simulator with an FR-FCFS controller, used to validate that the
  linear law is a faithful summary of streaming-access contention.
* :mod:`repro.memory.cache` — a last-level-cache capacity model that
  decides what fraction of a compute task's accesses spill off-chip
  when a memory task's footprint exceeds the cache share.

:mod:`repro.memory.equilibrium` ties the layers together by solving for
the *effective* memory concurrency when compute tasks with non-zero
miss fractions coexist with pure memory tasks, and
:mod:`repro.memory.system` packages everything behind one façade used
by the machine simulator.
"""

from repro.memory.cache import LastLevelCache
from repro.memory.calibration import CalibrationResult, calibrate_linear_model
from repro.memory.contention import (
    BandwidthShareModel,
    ContentionModel,
    LinearContentionModel,
    PowerLawContentionModel,
    nehalem_ddr3_contention,
)
from repro.memory.empirical import EmpiricalContentionModel
from repro.memory.equilibrium import MemoryDemand, effective_concurrency
from repro.memory.system import MemorySystem
from repro.memory.timing import DDR3_1066, DDR3_1333, DramTiming

__all__ = [
    "BandwidthShareModel",
    "CalibrationResult",
    "calibrate_linear_model",
    "ContentionModel",
    "DDR3_1066",
    "DDR3_1333",
    "DramTiming",
    "EmpiricalContentionModel",
    "LastLevelCache",
    "LinearContentionModel",
    "MemoryDemand",
    "MemorySystem",
    "PowerLawContentionModel",
    "effective_concurrency",
    "nehalem_ddr3_contention",
]
