"""Empirical contention model sampled from the bank-level DRAM model.

The closed-form laws in :mod:`repro.memory.contention` are *assumed*
shapes.  This model assumes nothing: it runs the detailed
FR-FCFS/bank-level simulator at every integer concurrency once,
tabulates the measured mean request latency, and interpolates between
table entries.  Plugging it into a machine preset yields an
end-to-end pipeline in which the only memory-latency source is the
microarchitectural model — the strongest internal validation the
reproduction can offer for its closed-form calibration (see
``benchmarks/test_ablation_empirical_memory.py``).
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.memory.dram import measure_latency_curve
from repro.memory.timing import DDR3_1066, DramTiming

__all__ = ["EmpiricalContentionModel"]


class EmpiricalContentionModel:
    """Latency law tabulated from bank-level DRAM measurements.

    The table is built eagerly at construction (one detailed run per
    integer concurrency up to ``max_concurrency``); queries
    interpolate linearly between entries and extrapolate the last
    segment beyond the table.

    Args:
        timing: DRAM device grade to measure.
        max_concurrency: Largest stream count to tabulate; queries
            beyond it extrapolate the final segment's slope.
        requests_per_stream: Streaming depth per measurement (larger
            is smoother but slower to build).
        channels_measured: Channel configurations to pre-measure; a
            query for an unmeasured channel count raises, because
            silently reusing another channel's table would defeat the
            model's purpose.
    """

    def __init__(
        self,
        timing: DramTiming = DDR3_1066,
        max_concurrency: int = 8,
        requests_per_stream: int = 1024,
        channels_measured: Sequence[int] = (1, 2),
    ) -> None:
        if max_concurrency < 2:
            raise ConfigurationError(
                f"max_concurrency must be >= 2, got {max_concurrency}"
            )
        if not channels_measured:
            raise ConfigurationError("channels_measured must be non-empty")
        self.timing = timing
        self.max_concurrency = max_concurrency
        self._tables: Dict[int, Tuple[float, ...]] = {}
        concurrencies = list(range(1, max_concurrency + 1))
        for channels in channels_measured:
            curve = measure_latency_curve(
                concurrencies,
                requests_per_stream=requests_per_stream,
                timing=timing,
                channels=channels,
            )
            # Enforce monotonicity (running max): the equilibrium
            # solver requires a non-decreasing latency law, and tiny
            # measurement dips between adjacent concurrencies would
            # otherwise break its convergence guarantee.
            table = []
            ceiling = 0.0
            for c in concurrencies:
                ceiling = max(ceiling, curve[c].mean_latency)
                table.append(ceiling)
            self._tables[channels] = tuple(table)

    def measured_channels(self) -> Tuple[int, ...]:
        return tuple(sorted(self._tables))

    def table(self, channels: int = 1) -> Tuple[float, ...]:
        """The tabulated latencies ``L(1) .. L(max_concurrency)``."""
        self._require_channel(channels)
        return self._tables[channels]

    def request_latency(self, concurrency: float, channels: int = 1) -> float:
        """Interpolated per-request latency (the ContentionModel API)."""
        self._require_channel(channels)
        if concurrency < 0:
            raise ConfigurationError(
                f"concurrency must be >= 0, got {concurrency}"
            )
        table = self._tables[channels]
        c = max(concurrency, 1.0)
        if c >= self.max_concurrency:
            # Extrapolate the last segment.
            slope = table[-1] - table[-2]
            return table[-1] + slope * (c - self.max_concurrency)
        lower = int(c)
        fraction = c - lower
        low_latency = table[lower - 1]
        high_latency = table[lower]
        return low_latency + fraction * (high_latency - low_latency)

    def _require_channel(self, channels: int) -> None:
        if channels not in self._tables:
            raise ConfigurationError(
                f"channel count {channels} was not measured; this model "
                f"holds tables for {sorted(self._tables)} — construct it "
                "with the channel configurations you intend to query"
            )
