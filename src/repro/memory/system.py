"""Memory-system façade used by the machine simulator.

Bundles a contention model, a channel count, and an LLC capacity model
behind the two queries the simulator needs:

* :meth:`MemorySystem.resolve` — given the demands of all currently
  running tasks, the effective concurrency and the per-request latency
  every one of them currently sees;
* :meth:`MemorySystem.miss_fraction` — the off-chip spill fraction of a
  compute task with a given footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.memory.cache import LastLevelCache
from repro.memory.contention import ContentionModel
from repro.memory.equilibrium import MemoryDemand, effective_concurrency

__all__ = ["MemorySystem"]


@dataclass(frozen=True)
class MemorySystem:
    """Off-chip memory system of one simulated machine.

    Attributes:
        contention: Per-request latency model.
        channels: Independent memory channels (1-DIMM = 1, 2-DIMM = 2
            in the paper's setups).
        cache: Optional LLC capacity model; when ``None``, every
            compute task is assumed miss-free (the stream-programming
            contract holds by construction).
    """

    contention: ContentionModel
    channels: int = 1
    cache: Optional[LastLevelCache] = None

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {self.channels}")

    def request_latency(self, concurrency: float) -> float:
        """Per-request latency at a given effective concurrency."""
        return self.contention.request_latency(concurrency, channels=self.channels)

    def resolve(self, demands: Sequence[MemoryDemand]) -> Tuple[float, float]:
        """Effective concurrency and request latency for running tasks.

        Returns:
            ``(concurrency, latency)``.  With no memory-demanding task
            running the concurrency is 0 and the latency is the
            unloaded ``L(1)`` (what a newly arriving request would pay).
        """
        concurrency = effective_concurrency(demands, self.request_latency)
        return concurrency, self.request_latency(max(concurrency, 1.0))

    def miss_fraction(self, footprint_bytes: int) -> float:
        """Off-chip fraction of a compute task's accesses."""
        if self.cache is None:
            return 0.0
        return self.cache.miss_fraction(footprint_bytes)
