"""Memory-system façade used by the machine simulator.

Bundles a contention model, a channel count, and an LLC capacity model
behind the two queries the simulator needs:

* :meth:`MemorySystem.resolve` — given the demands of all currently
  running tasks, the effective concurrency and the per-request latency
  every one of them currently sees;
* :meth:`MemorySystem.miss_fraction` — the off-chip spill fraction of a
  compute task with a given footprint.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.memory.cache import LastLevelCache
from repro.memory.contention import ContentionModel
from repro.memory.equilibrium import EquilibriumSolver, MemoryDemand

__all__ = ["MemorySystem"]


@dataclass(frozen=True)
class MemorySystem:
    """Off-chip memory system of one simulated machine.

    Attributes:
        contention: Per-request latency model.
        channels: Independent memory channels (1-DIMM = 1, 2-DIMM = 2
            in the paper's setups).
        cache: Optional LLC capacity model; when ``None``, every
            compute task is assumed miss-free (the stream-programming
            contract holds by construction).
    """

    contention: ContentionModel
    channels: int = 1
    cache: Optional[LastLevelCache] = None

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {self.channels}")
        # Per-instance equilibrium solution memo, built lazily (the
        # dataclass is frozen, so it is attached behind its back and
        # excluded from equality, repr, and pickles).
        object.__setattr__(self, "_solver", None)

    def __getstate__(self) -> Dict[str, Any]:
        state = dict(self.__dict__)
        state["_solver"] = None  # memo is a cache, never serialized
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        for name, value in state.items():
            object.__setattr__(self, name, value)
        object.__setattr__(self, "_solver", None)

    def request_latency(self, concurrency: float) -> float:
        """Per-request latency at a given effective concurrency."""
        return self.contention.request_latency(concurrency, channels=self.channels)

    def equilibrium_solver(self) -> EquilibriumSolver:
        """This instance's memoizing equilibrium solver.

        Shared by every :class:`~repro.sim.engine.RateCalculator` (and
        therefore every offline-search MTL run) bound to this memory
        system, so repeat populations across runs hit the same memo.
        """
        solver = self._solver
        if solver is None:
            solver = EquilibriumSolver(self.request_latency)
            # repro: lint-ok RPR201 -- write-once lazy memo attach; excluded from eq/repr/pickle
            object.__setattr__(self, "_solver", solver)
        return solver

    def equilibrium_cache_info(self) -> Dict[str, int]:
        """Counters of the shared solver (hits, misses, warm-start
        hits, iterations saved); feeds ``equilibrium_warm`` telemetry
        without handing callers the solver itself."""
        return self.equilibrium_solver().cache_info()

    def resolve(
        self,
        demands: Sequence[MemoryDemand],
        key: Optional[bytes] = None,
    ) -> Tuple[float, float]:
        """Effective concurrency and request latency for running tasks.

        Solutions are memoized per instance (see
        :class:`~repro.memory.equilibrium.EquilibriumSolver`); pass a
        precomputed ``key`` (:func:`~repro.memory.equilibrium.demand_signature`)
        to skip rebuilding the memo key.

        Returns:
            ``(concurrency, latency)``.  With no memory-demanding task
            running the concurrency is 0 and the latency is the
            unloaded ``L(1)`` (what a newly arriving request would pay).
        """
        return self.equilibrium_solver().solve(demands, key=key)

    def miss_fraction(self, footprint_bytes: int) -> float:
        """Off-chip fraction of a compute task's accesses."""
        if self.cache is None:
            return 0.0
        return self.cache.miss_fraction(footprint_bytes)
