"""Closed-form memory-contention models.

A contention model answers one question: *what is the average per-request
(per cache line) latency seen by a memory task when the memory system
serves an effective concurrency of ``c`` memory tasks?*

The paper's analytical model (Section IV-C) decomposes the memory-task
time under ``MTL = b`` into a contention-free component ``T_ml`` and a
queueing component proportional to the concurrency, ``b * T_ql``.  The
:class:`LinearContentionModel` implements exactly that law; Section VI-A
of the paper shows it matches a real Nehalem for streaming tasks, and our
bank-level DRAM simulator (:mod:`repro.memory.dram`) re-validates it.

Two alternatives are provided for ablation studies:

* :class:`PowerLawContentionModel` — super-/sub-linear queueing growth,
  ``L(c) = T_ml + T_ql * (c / channels) ** alpha``; models bank-conflict
  amplification (``alpha > 1``) or deep-queue pipelining (``alpha < 1``).
* :class:`BandwidthShareModel` — a pure bandwidth-partitioning view in
  which latency is flat until the pin bandwidth saturates and grows
  linearly afterwards.

All models share the invariant that latency is positive and
non-decreasing in concurrency, which the property-based tests enforce
and the paper's MTL-selection monotonicity proofs require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

from repro.errors import ConfigurationError
from repro.units import CACHE_LINE_BYTES, NANOSECONDS

__all__ = [
    "ContentionModel",
    "LinearContentionModel",
    "PowerLawContentionModel",
    "BandwidthShareModel",
    "nehalem_ddr3_contention",
]


@runtime_checkable
class ContentionModel(Protocol):
    """Protocol implemented by all contention models."""

    def request_latency(self, concurrency: float, channels: int = 1) -> float:
        """Average seconds per 64-byte request at the given concurrency.

        Args:
            concurrency: Effective number of concurrent memory tasks.
                May be fractional (compute tasks with partial miss
                rates contribute fractional demand); values below 1 are
                clamped to 1 because a task always competes at least
                with itself.
            channels: Number of independent memory channels the
                requests are interleaved across.
        """


def _validate_concurrency(concurrency: float, channels: int) -> float:
    if channels < 1:
        raise ConfigurationError(f"channels must be >= 1, got {channels}")
    if concurrency < 0:
        raise ConfigurationError(f"concurrency must be >= 0, got {concurrency}")
    return max(concurrency, 1.0)


@dataclass(frozen=True)
class LinearContentionModel:
    """The paper's queueing law: ``L(c) = T_ml + (c / channels) * T_ql``.

    ``T_ml`` is the contention-free latency and ``T_ql`` the queueing
    latency added per concurrent memory task (Table I of the paper).
    Interleaving across ``channels`` divides the queueing pressure.

    Attributes:
        contention_free_latency: ``T_ml`` in seconds per request.
        queueing_latency: ``T_ql`` in seconds per request per
            concurrent task on a single channel.
    """

    contention_free_latency: float
    queueing_latency: float

    def __post_init__(self) -> None:
        if self.contention_free_latency <= 0:
            raise ConfigurationError(
                "contention_free_latency must be positive, got "
                f"{self.contention_free_latency}"
            )
        if self.queueing_latency < 0:
            raise ConfigurationError(
                f"queueing_latency must be non-negative, got {self.queueing_latency}"
            )

    def request_latency(self, concurrency: float, channels: int = 1) -> float:
        c = _validate_concurrency(concurrency, channels)
        return self.contention_free_latency + self.queueing_latency * c / channels

    def latency_ratio(self, concurrency: float, channels: int = 1) -> float:
        """``L(c) / L(1)`` — how much slower a request is than solo."""
        return self.request_latency(concurrency, channels) / self.request_latency(
            1.0, channels
        )


@dataclass(frozen=True)
class PowerLawContentionModel:
    """``L(c) = T_ml + T_ql * (c / channels) ** alpha``.

    ``alpha = 1`` degenerates to :class:`LinearContentionModel`;
    ``alpha > 1`` models bank-conflict and row-buffer-interference
    amplification; ``alpha < 1`` models controllers that pipeline deep
    queues well.
    """

    contention_free_latency: float
    queueing_latency: float
    alpha: float = 1.0

    def __post_init__(self) -> None:
        if self.contention_free_latency <= 0:
            raise ConfigurationError(
                "contention_free_latency must be positive, got "
                f"{self.contention_free_latency}"
            )
        if self.queueing_latency < 0:
            raise ConfigurationError(
                f"queueing_latency must be non-negative, got {self.queueing_latency}"
            )
        if self.alpha <= 0:
            raise ConfigurationError(f"alpha must be positive, got {self.alpha}")

    def request_latency(self, concurrency: float, channels: int = 1) -> float:
        c = _validate_concurrency(concurrency, channels)
        return self.contention_free_latency + self.queueing_latency * (
            c / channels
        ) ** self.alpha


@dataclass(frozen=True)
class BandwidthShareModel:
    """Latency from equal division of pin bandwidth.

    Below saturation every stream sees the unloaded latency; beyond it,
    each of the ``c`` streams receives ``peak_bandwidth * channels / c``
    bytes per second, so the per-line service time grows linearly.

    Attributes:
        unloaded_latency: Seconds per request with an idle bus.
        peak_bandwidth: Bytes per second deliverable by one channel.
    """

    unloaded_latency: float
    peak_bandwidth: float

    def __post_init__(self) -> None:
        if self.unloaded_latency <= 0:
            raise ConfigurationError(
                f"unloaded_latency must be positive, got {self.unloaded_latency}"
            )
        if self.peak_bandwidth <= 0:
            raise ConfigurationError(
                f"peak_bandwidth must be positive, got {self.peak_bandwidth}"
            )

    def request_latency(self, concurrency: float, channels: int = 1) -> float:
        c = _validate_concurrency(concurrency, channels)
        service_time = CACHE_LINE_BYTES * c / (self.peak_bandwidth * channels)
        return max(self.unloaded_latency, service_time)


def nehalem_ddr3_contention() -> LinearContentionModel:
    """Calibrated model for the paper's i7-860 / DDR3-1066 testbed.

    ``T_ml = 46.3 ns`` and ``T_ql = 18 ns`` give ``L(1) ~ 64 ns`` (a
    realistic loaded DDR3 round trip) and ``L(4)/L(1) ~ 1.84``, which
    places the synthetic-sweep peak speedup at ``(L(4)/L(1) + 3)/4 ~
    1.21`` — the maximum the paper measures on the real machine
    (Section VI-A), and keeps the S-MTL region boundaries at
    ``T_m1/T_c = k/(n-k)`` as in Figure 13.
    """
    return LinearContentionModel(
        contention_free_latency=46.3 * NANOSECONDS,
        queueing_latency=18.0 * NANOSECONDS,
    )
