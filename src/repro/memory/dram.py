"""Bank-level DRAM timing simulator.

The analytical model of the paper rests on one microarchitectural
assumption (Section IV-C): the average memory-task latency under an
MTL of ``b`` decomposes as ``T_ml + b * T_ql`` — contention adds a
queueing term *linear* in the number of concurrent streaming tasks.
The paper validates this on a real Nehalem; a reproduction without the
hardware needs its own evidence, which this module provides.

It simulates ``s`` concurrent streaming agents (one per memory task)
issuing sequential 64-byte reads from disjoint address regions into a
DDR3 memory system with channels, ranks, and banks.  The controller
implements FR-FCFS (row hits first, then oldest).  Banks prepare rows
in parallel; the channel data bus serialises bursts; row conflicts pay
precharge + activate and respect ``tRAS``.

:func:`measure_latency_curve` sweeps the number of agents and reports
the mean per-request latency at each concurrency, which the ablation
benchmark fits against the linear law.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.memory.timing import DDR3_1066, DramTiming
from repro.units import CACHE_LINE_BYTES, MIB

__all__ = [
    "DramAddress",
    "AddressMapper",
    "DramRequest",
    "DramStats",
    "DramSimulator",
    "FrFcfsController",
    "measure_latency_curve",
]


@dataclass(frozen=True)
class DramAddress:
    """Decoded location of one cache line in the memory system."""

    channel: int
    bank: int  # flat bank index within the channel (rank folded in)
    row: int


@dataclass(frozen=True)
class AddressMapper:
    """Physical-address to (channel, bank, row) decoder.

    Uses the mapping common to stream-friendly controllers: cache lines
    interleave across channels at line granularity; within a channel,
    consecutive lines fill a row, rows interleave across banks.  A
    sequential stream therefore enjoys long row-hit runs while distinct
    streams (different regions) land on different rows and collide on
    banks only occasionally.
    """

    timing: DramTiming
    channels: int = 1

    def __post_init__(self) -> None:
        if self.channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {self.channels}")

    #: Fibonacci-hash multiplier used to spread row runs across banks.
    #: A plain ``row_run % banks`` mapping sends power-of-two-aligned
    #: buffers (exactly what distinct stream regions are) to the same
    #: bank, which no real controller tolerates; address-bit hashing is
    #: the standard fix.
    _BANK_HASH_MULTIPLIER = 2654435761

    @property
    def lines_per_row(self) -> int:
        return self.timing.row_bytes // CACHE_LINE_BYTES

    def decode(self, byte_address: int) -> DramAddress:
        """Decode a byte address into a :class:`DramAddress`."""
        if byte_address < 0:
            raise ConfigurationError(
                f"byte_address must be non-negative, got {byte_address}"
            )
        line = byte_address // CACHE_LINE_BYTES
        channel = line % self.channels
        channel_line = line // self.channels
        row_run = channel_line // self.lines_per_row
        hashed = (row_run * self._BANK_HASH_MULTIPLIER) >> 12
        bank = hashed % self.timing.banks_per_channel
        row = row_run // self.timing.banks_per_channel
        return DramAddress(channel=channel, bank=bank, row=row)


@dataclass
class DramRequest:
    """One outstanding 64-byte read."""

    stream_id: int
    address: DramAddress
    arrival: float
    completion: Optional[float] = None

    @property
    def latency(self) -> float:
        if self.completion is None:
            raise SimulationError("request has not completed")
        return self.completion - self.arrival


@dataclass
class _BankState:
    ready_time: float = 0.0
    open_row: Optional[int] = None
    activate_time: float = 0.0


@dataclass
class _ChannelState:
    bus_free_time: float = 0.0
    banks: List[_BankState] = field(default_factory=list)


@dataclass(frozen=True)
class DramStats:
    """Aggregate results of one simulation run."""

    mean_latency: float
    max_latency: float
    row_hit_rate: float
    total_time: float
    requests: int

    @property
    def bandwidth_bytes_per_second(self) -> float:
        if self.total_time <= 0:
            return 0.0
        return self.requests * CACHE_LINE_BYTES / self.total_time


class DramSimulator:
    """FR-FCFS DRAM controller simulation for streaming agents.

    Args:
        timing: DRAM device grade (defaults to the paper's DDR3-1066).
        channels: Independent channels (1 for the paper's 1-DIMM
            configuration, 2 for the 2-DIMM scalability study).
        stream_region_bytes: Size of the disjoint region each stream
            walks; streams start ``stream_region_bytes`` apart so their
            rows differ, as separate stream buffers would.
    """

    def __init__(
        self,
        timing: DramTiming = DDR3_1066,
        channels: int = 1,
        stream_region_bytes: int = 4 * MIB,
    ) -> None:
        if channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {channels}")
        if stream_region_bytes < CACHE_LINE_BYTES:
            raise ConfigurationError(
                "stream_region_bytes must hold at least one line, got "
                f"{stream_region_bytes}"
            )
        self.timing = timing
        self.channels = channels
        self.stream_region_bytes = stream_region_bytes
        self.mapper = AddressMapper(timing=timing, channels=channels)

    def run(self, streams: int, requests_per_stream: int) -> DramStats:
        """Simulate ``streams`` agents each reading sequentially.

        Each agent keeps exactly one request outstanding (the paper's
        memory tasks walk arrays with software prefetch, which behaves
        like a short dependent chain per task) and issues the next
        request the moment the previous one completes.
        """
        if streams < 1:
            raise ConfigurationError(f"streams must be >= 1, got {streams}")
        if requests_per_stream < 1:
            raise ConfigurationError(
                f"requests_per_stream must be >= 1, got {requests_per_stream}"
            )

        controller = FrFcfsController(timing=self.timing, channels=self.channels)
        next_line: List[int] = [
            s * self.stream_region_bytes // CACHE_LINE_BYTES for s in range(streams)
        ]
        remaining = [requests_per_stream] * streams
        for s in range(streams):
            controller.submit(self._issue(s, next_line, arrival=0.0))

        completed: List[DramRequest] = []
        hits = 0
        total = streams * requests_per_stream
        while len(completed) < total:
            request, was_hit = controller.service_one()
            completed.append(request)
            if was_hit:
                hits += 1
            stream = request.stream_id
            remaining[stream] -= 1
            if remaining[stream] > 0:
                assert request.completion is not None
                controller.submit(
                    self._issue(stream, next_line, arrival=request.completion)
                )

        mean_latency = sum(r.latency for r in completed) / total
        max_latency = max(r.latency for r in completed)
        finish = max(r.completion for r in completed if r.completion is not None)
        return DramStats(
            mean_latency=mean_latency,
            max_latency=max_latency,
            row_hit_rate=hits / total,
            total_time=finish,
            requests=total,
        )

    def _issue(
        self, stream: int, next_line: List[int], arrival: float
    ) -> DramRequest:
        line = next_line[stream]
        next_line[stream] = line + 1
        address = self.mapper.decode(line * CACHE_LINE_BYTES)
        return DramRequest(stream_id=stream, address=address, arrival=arrival)


class FrFcfsController:
    """Incremental FR-FCFS memory controller.

    Holds the bank/bus state and a pending-request queue; every
    :meth:`service_one` call picks the highest-priority pending
    request (row hits first among the earliest-startable, oldest
    otherwise, with an age cap against starvation), commits its
    timing against the bank and channel-bus state, and returns it with
    its absolute completion time filled in.

    Used in batch mode by :class:`DramSimulator` and incrementally by
    the request-level machine simulator
    (:mod:`repro.sim.detailed`), which co-simulates CPU scheduling
    with this controller.
    """

    def __init__(self, timing: DramTiming = DDR3_1066, channels: int = 1) -> None:
        if channels < 1:
            raise ConfigurationError(f"channels must be >= 1, got {channels}")
        self.timing = timing
        self.channels = channels
        self.mapper = AddressMapper(timing=timing, channels=channels)
        self._channel_states = [
            _ChannelState(
                banks=[_BankState() for _ in range(timing.banks_per_channel)]
            )
            for _ in range(channels)
        ]
        self._pending: List[DramRequest] = []
        self.serviced = 0
        self.row_hits = 0

    @property
    def pending_count(self) -> int:
        return len(self._pending)

    def submit(self, request: DramRequest) -> None:
        """Queue one request for service."""
        self._pending.append(request)

    def decode(self, byte_address: int) -> DramAddress:
        """Expose the controller's address mapping."""
        return self.mapper.decode(byte_address)

    def service_one(self) -> Tuple[DramRequest, bool]:
        """Pick and complete one request under FR-FCFS.

        Among the pending requests able to start earliest, row hits win,
        then the oldest arrival — the FR-FCFS priority order.
        """
        pending = self._pending
        channel_states = self._channel_states
        if not pending:
            raise SimulationError("no pending requests to service")

        def feasible_start(req: DramRequest) -> float:
            channel = channel_states[req.address.channel]
            bank = channel.banks[req.address.bank]
            return max(req.arrival, bank.ready_time)

        earliest = min(feasible_start(r) for r in pending)
        # Age cap: pure hit-first FR-FCFS lets a sequential stream
        # monopolise its open row indefinitely; controllers bound the
        # wait, after which the oldest request wins unconditionally.
        starvation_threshold = 32 * self.timing.row_conflict_latency
        starving = any(
            earliest - r.arrival > starvation_threshold for r in pending
        )

        def priority(req: DramRequest) -> Tuple[float, int, float]:
            start = feasible_start(req)
            channel = channel_states[req.address.channel]
            bank = channel.banks[req.address.bank]
            is_hit = bank.open_row == req.address.row
            # Requests startable at the global earliest time compete by
            # FR-FCFS; later-feasible requests are considered only if
            # nothing else can go.
            startable_now = 0 if start <= earliest else 1
            hit_rank = 0 if (is_hit and not starving) else 1
            return (startable_now, hit_rank, req.arrival)

        chosen = min(pending, key=priority)
        pending.remove(chosen)

        timing = self.timing
        channel = channel_states[chosen.address.channel]
        bank = channel.banks[chosen.address.bank]
        start = max(chosen.arrival, bank.ready_time)
        was_hit = bank.open_row == chosen.address.row

        if was_hit:
            data_ready = start + timing.cycles(timing.t_cl)
        elif bank.open_row is None:
            bank.activate_time = start
            data_ready = start + timing.cycles(timing.t_rcd + timing.t_cl)
        else:
            # Row conflict: precharge may not begin before tRAS elapses
            # from the activate that opened the current row.
            precharge_start = max(
                start, bank.activate_time + timing.cycles(timing.t_ras)
            )
            bank.activate_time = precharge_start + timing.cycles(timing.t_rp)
            data_ready = bank.activate_time + timing.cycles(
                timing.t_rcd + timing.t_cl
            )

        burst_start = max(data_ready, channel.bus_free_time)
        completion = burst_start + timing.cycles(timing.t_burst)
        channel.bus_free_time = completion
        bank.ready_time = completion
        bank.open_row = chosen.address.row
        chosen.completion = completion
        self.serviced += 1
        if was_hit:
            self.row_hits += 1
        return chosen, was_hit


def measure_latency_curve(
    concurrencies: Sequence[int],
    requests_per_stream: int = 2048,
    timing: DramTiming = DDR3_1066,
    channels: int = 1,
) -> Dict[int, DramStats]:
    """Mean request latency as a function of stream concurrency.

    This is the curve the ablation benchmark fits against the paper's
    linear law ``L(c) = T_ml + c * T_ql``.
    """
    results: Dict[int, DramStats] = {}
    simulator = DramSimulator(timing=timing, channels=channels)
    for c in concurrencies:
        results[c] = simulator.run(streams=c, requests_per_stream=requests_per_stream)
    return results
