"""Last-level cache capacity model.

The stream programming discipline (Section II of the paper) requires
that a memory task's footprint fit in the last-level cache so that its
companion compute task runs miss-free.  The paper deliberately violates
this in one experiment — the 2 MB-footprint synthetic sweep of
Figure 13(c) — and observes that compute tasks then interfere with
memory tasks and break the analytical model.

This module decides *how much* a compute task spills off-chip for a
given footprint.  The model: the shared LLC is divided equally among
the cores actively holding stream data; a fixed per-core overhead
(instructions, stack, runtime metadata) reduces the useful share; any
excess footprint beyond the share is re-fetched on every compute-task
traversal, making that fraction of the task's accesses off-chip
requests.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.units import mebibytes

__all__ = ["LastLevelCache"]


@dataclass(frozen=True)
class LastLevelCache:
    """Capacity model of a shared last-level cache.

    Attributes:
        capacity_bytes: Total LLC capacity (8 MB on the i7-860).
        sharers: Number of cores whose stream footprints share the
            cache concurrently (the core count of the machine).
        overhead_bytes: Per-core bytes consumed by code, stack, and
            runtime metadata and therefore unavailable to stream data.
    """

    capacity_bytes: int
    sharers: int
    overhead_bytes: int = mebibytes(0.25)

    def __post_init__(self) -> None:
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"capacity_bytes must be positive, got {self.capacity_bytes}"
            )
        if self.sharers <= 0:
            raise ConfigurationError(f"sharers must be positive, got {self.sharers}")
        if self.overhead_bytes < 0:
            raise ConfigurationError(
                f"overhead_bytes must be non-negative, got {self.overhead_bytes}"
            )

    @property
    def per_core_share_bytes(self) -> int:
        """Stream-data bytes one core can keep resident."""
        share = self.capacity_bytes // self.sharers - self.overhead_bytes
        return max(share, 0)

    def fits(self, footprint_bytes: int) -> bool:
        """Whether a memory task's footprint stays resident for its
        compute task (the stream-programming contract)."""
        if footprint_bytes < 0:
            raise ConfigurationError(
                f"footprint_bytes must be non-negative, got {footprint_bytes}"
            )
        return footprint_bytes <= self.per_core_share_bytes

    def miss_fraction(self, footprint_bytes: int) -> float:
        """Fraction of a compute task's accesses that go off-chip.

        Zero when the footprint fits.  Otherwise the excess portion of
        the working set is evicted between traversals and must be
        re-fetched, so ``excess / footprint`` of the accesses miss.
        The result is in ``[0, 1]``.
        """
        if footprint_bytes < 0:
            raise ConfigurationError(
                f"footprint_bytes must be non-negative, got {footprint_bytes}"
            )
        if footprint_bytes == 0:
            return 0.0
        share = self.per_core_share_bytes
        if footprint_bytes <= share:
            return 0.0
        excess = footprint_bytes - share
        return min(excess / footprint_bytes, 1.0)
