"""Calibrating the closed-form contention law from the DRAM model.

The machine simulator consumes a :class:`LinearContentionModel`; the
bank-level simulator in :mod:`repro.memory.dram` produces latency
curves.  This module closes the loop: measure the detailed model's
``L(c)`` curve, fit the paper's ``T_ml + c * T_ql`` law to it, and
return a ready-to-use contention model — the procedure a user would
follow to retarget the reproduction at a *different* memory system
(another DRAM grade, more channels) without hand-picking constants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.stats import LinearFit, linear_fit
from repro.errors import ConfigurationError, ModelError
from repro.memory.contention import LinearContentionModel
from repro.memory.dram import measure_latency_curve
from repro.memory.timing import DDR3_1066, DramTiming

__all__ = ["CalibrationResult", "calibrate_linear_model"]


@dataclass(frozen=True)
class CalibrationResult:
    """A fitted contention model plus its goodness of fit.

    Attributes:
        model: The fitted linear contention law.
        fit: The underlying least-squares fit (slope = ``T_ql``,
            intercept = ``T_ml``).
        concurrencies: Stream counts the curve was measured at.
        latencies: Mean per-request latency at each concurrency.
    """

    model: LinearContentionModel
    fit: LinearFit
    concurrencies: Sequence[int]
    latencies: Sequence[float]

    @property
    def r_squared(self) -> float:
        return self.fit.r_squared


def calibrate_linear_model(
    timing: DramTiming = DDR3_1066,
    concurrencies: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8),
    requests_per_stream: int = 1024,
    min_r_squared: float = 0.90,
) -> CalibrationResult:
    """Fit ``L(c) = T_ml + c * T_ql`` to the bank-level DRAM model.

    Args:
        timing: DRAM device grade to calibrate against.
        concurrencies: Stream counts to measure (must contain at least
            two distinct values).
        requests_per_stream: Streaming depth per measurement.
        min_r_squared: Reject the calibration when the detailed model
            is not adequately linear — a guard against silently
            shipping a law the microarchitecture does not obey.

    Raises:
        ModelError: When the fit quality is below ``min_r_squared`` or
            the fitted parameters are unusable (non-positive ``T_ml``).
    """
    if len(set(concurrencies)) < 2:
        raise ConfigurationError(
            "calibration needs at least two distinct concurrencies, got "
            f"{list(concurrencies)}"
        )
    curve = measure_latency_curve(
        list(concurrencies),
        requests_per_stream=requests_per_stream,
        timing=timing,
        channels=1,
    )
    latencies = [curve[c].mean_latency for c in concurrencies]
    fit = linear_fit([float(c) for c in concurrencies], latencies)
    if fit.r_squared < min_r_squared:
        raise ModelError(
            f"DRAM latency curve is not linear enough to calibrate "
            f"(R^2 = {fit.r_squared:.3f} < {min_r_squared}); the "
            "T_ml + c*T_ql law does not hold for this configuration"
        )
    if fit.intercept <= 0:
        raise ModelError(
            f"fitted contention-free latency is non-positive "
            f"({fit.intercept!r}); widen the concurrency range"
        )
    if fit.slope < 0:
        raise ModelError(
            f"fitted queueing latency is negative ({fit.slope!r})"
        )
    model = LinearContentionModel(
        contention_free_latency=fit.intercept,
        queueing_latency=fit.slope,
    )
    return CalibrationResult(
        model=model,
        fit=fit,
        concurrencies=tuple(concurrencies),
        latencies=tuple(latencies),
    )
