"""Command-line interface.

``python -m repro <command>`` exposes the library's main entry points
without writing Python:

* ``list-workloads`` — registered workloads and their pair counts;
* ``list-policies`` — the registered throttling policies, their
  parameters, and one-line summaries (the policy registry,
  :mod:`repro.core.registry`); ``run``, ``compare``, and ``suite``
  accept any of them as ``NAME[:key=value,...]``;
* ``ratio WORKLOAD`` — measure a workload's ``T_m1/T_c`` (Table II/III);
* ``run WORKLOAD`` — simulate under a policy and report speedup,
  selected MTL, and optionally the schedule gantt;
* ``compare WORKLOAD`` — the Figure 14 three-policy comparison;
* ``sweep`` — a miniature Figure 13 synthetic sweep;
* ``perfbench`` — engine performance microbenchmarks writing
  ``BENCH_sim.json`` (see ``docs/performance.md``);
* ``lint`` — AST-based static invariant checks (determinism,
  memo-safety, telemetry-schema integrity, plus the call-graph-based
  transitive-determinism, pool-safety, dimensional-consistency,
  plugin-contract, mutation-after-freeze, and exception-flow
  families; see ``docs/static_analysis.md``).  ``--jobs N`` fans the
  per-file pass over worker processes with identical output;
  ``--cache-dir DIR`` makes warm runs skip unchanged files;
  ``--format sarif`` renders SARIF 2.1.0; ``--explain RPR###`` prints
  one rule's documentation; exit code 1 on findings, 2 on
  usage/configuration errors.

Workloads are named as in the paper (``dft``, ``SC_d128``, ``SIFT``)
or loaded from a JSON spec via ``--spec`` (see
:mod:`repro.workloads.spec`).  Machines are configured with
``--channels`` and ``--smt``.

The grid-shaped commands (``sweep``, ``suite``, ``compare``) run
through the parallel sweep executor and accept ``--jobs N`` (worker
processes), ``--cache-dir PATH`` (content-addressed result cache; also
settable via ``REPRO_CACHE_DIR``), ``--no-cache``, and
``--telemetry PATH`` (JSON-lines run telemetry).  ``--jobs 1`` is the
serial in-process path and produces bit-identical results.

Resilience flags on the same commands: ``--timeout SECONDS`` (per-point
budget, pool mode), ``--retries N`` (bounded retries before a point
degrades into a structured failure), and ``--inject-faults SPEC``
(deterministic chaos testing, e.g. ``seed=7,crash=0.2,error=0.1`` —
see ``docs/fault_injection.md``).  A sweep with failed points still
prints every healthy row and exits with code 3.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import Any, List, Mapping, Optional

from repro.analysis import (
    format_comparison,
    format_percent,
    format_speedup,
    render_table,
)
from repro.core import (
    build_policy,
    conventional_policy,
    parse_policy_arg,
    policy_catalogue,
    policy_entry,
    predict_speedup_curve,
)
from repro.errors import ReproError
from repro.runtime import (
    FaultPlan,
    PointFailure,
    ResultCache,
    SweepExecutor,
    SweepPoint,
    TelemetryWriter,
    all_policy_specs,
    compare_policies_grid,
    measure_ratio,
    offline_best_static_factory,
    paper_policy_specs,
)
from repro.sim import Simulator, i7_860
from repro.sim.gantt import render_gantt
from repro.stream.program import StreamProgram
from repro.units import format_time
from repro.workloads import build_workload, workload_names
from repro.workloads.spec import load_workload_spec

__all__ = ["main"]


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Memory thread throttling (MICRO 2010) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_machine_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--channels", type=int, default=1,
                       help="memory channels (1 or 2)")
        p.add_argument("--smt", type=int, default=1,
                       help="SMT ways (1 = off, 2 = on)")

    def add_workload_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("workload", nargs="?",
                       help="registered workload name (see list-workloads)")
        p.add_argument("--spec", help="path to a JSON workload spec")

    def add_executor_options(p: argparse.ArgumentParser) -> None:
        p.add_argument("--jobs", type=int, default=1,
                       help="worker processes (1 = serial in-process)")
        p.add_argument("--cache-dir", default=None,
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR if set, else no cache)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the result cache")
        p.add_argument("--telemetry", default=None,
                       help="append JSON-lines run telemetry to PATH")
        p.add_argument("--timeout", type=float, default=None, metavar="SECONDS",
                       help="per-point wall-clock budget; a point exceeding "
                            "it is retried (at --jobs 1 it governs injected "
                            "hangs only)")
        p.add_argument("--retries", type=int, default=2,
                       help="retry budget per point before it degrades "
                            "into a structured failure (default: 2)")
        p.add_argument("--inject-faults", default=None, metavar="SPEC",
                       help="deterministic fault injection, e.g. "
                            "'seed=7,crash=0.2,error=0.1,hang=0.05'; see "
                            "docs/fault_injection.md")

    sub.add_parser("list-workloads", help="list registered workloads")

    sub.add_parser(
        "list-policies",
        help="list registered throttling policies and their parameters",
    )

    ratio = sub.add_parser("ratio", help="measure a workload's T_m1/T_c")
    add_workload_options(ratio)
    add_machine_options(ratio)

    run = sub.add_parser("run", help="simulate a workload under a policy")
    add_workload_options(run)
    add_machine_options(run)
    run.add_argument(
        "--policy",
        default="dynamic",
        help="registered policy name, optionally with parameters as "
             "NAME:key=value[,key=value...] (see list-policies); also "
             "offline and the static:K shorthand",
    )
    run.add_argument("--gantt", action="store_true",
                     help="render the schedule as ASCII")
    run.add_argument("--window-pairs", type=int, default=16,
                     help="W, the monitoring window (dynamic/online)")

    compare = sub.add_parser(
        "compare", help="offline vs dynamic vs online (Figure 14 row)"
    )
    add_workload_options(compare)
    add_machine_options(compare)
    add_executor_options(compare)
    compare.add_argument(
        "--policies", nargs="*", default=None, metavar="NAME[:k=v,...]",
        help="policies to compare (registered names with optional "
             "parameters; default: the Figure 14 trio)",
    )
    compare.add_argument(
        "--all-policies", action="store_true",
        help="compare every registered policy (see list-policies)",
    )

    characterize_cmd = sub.add_parser(
        "characterize",
        help="per-phase ratios, IdleBounds, and model predictions",
    )
    add_workload_options(characterize_cmd)
    add_machine_options(characterize_cmd)

    sweep = sub.add_parser("sweep", help="synthetic ratio sweep (Figure 13)")
    sweep.add_argument("--start", type=float, default=0.05)
    sweep.add_argument("--stop", type=float, default=2.0)
    sweep.add_argument("--step", type=float, default=0.1)
    add_executor_options(sweep)

    suite = sub.add_parser(
        "suite",
        help="run the realistic workloads x machines x policies grid as CSV",
    )
    suite.add_argument(
        "--workloads", nargs="*", default=None,
        help="workload names (default: the Figure 14 trio)",
    )
    suite.add_argument(
        "--policies", nargs="*", default=None, metavar="NAME[:k=v,...]",
        help="policies for the grid (registered names with optional "
             "parameters; default: dynamic, static-1, static-2)",
    )
    add_executor_options(suite)

    lint = sub.add_parser(
        "lint",
        help="static invariant checks (determinism, memo-safety, "
             "telemetry schema; see docs/static_analysis.md)",
        epilog="exit codes: 0 no findings; 1 findings reported; "
               "2 usage or configuration error (unknown rule id, "
               "missing path, unreadable baseline)",
    )
    lint.add_argument("paths", nargs="*", default=None, metavar="PATH",
                      help="files or directories to check "
                           "(default: src tests)")
    lint.add_argument("--rule", action="append", dest="rules",
                      metavar="RPR###",
                      help="run only this rule (repeatable)")
    lint.add_argument("--format", choices=["text", "json", "sarif"],
                      default="text",
                      dest="fmt", help="report format (default: text; "
                           "sarif is SARIF 2.1.0 for code-scanning UIs)")
    lint.add_argument("--output", default=None, metavar="PATH",
                      help="also write the report to PATH ('-' prints the "
                           "JSON report to stdout; the CI job uploads the "
                           "JSON and SARIF reports as artifacts)")
    lint.add_argument("--jobs", type=int, default=1,
                      help="worker processes for the per-file pass "
                           "(1 = in-process; findings are identical and "
                           "identically ordered either way)")
    lint.add_argument("--cache-dir", default=None, metavar="DIR",
                      help="content-hash scan cache: warm runs skip files "
                           "whose bytes (and the rule set) are unchanged, "
                           "with byte-identical output")
    lint.add_argument("--graph-output", default=None, metavar="PATH",
                      help="serialize the project call graph to PATH as "
                           "JSON (the CI job uploads it as an artifact)")
    lint.add_argument("--units-output", default=None, metavar="PATH",
                      help="serialize the inferred unit-signature table "
                           "(per-parameter/return dimensions closed over "
                           "the call graph) to PATH as JSON")
    lint.add_argument("--baseline", default=None, metavar="PATH",
                      help="drop findings fingerprinted in this baseline "
                           "file (accepted pre-existing debt)")
    lint.add_argument("--write-baseline", action="store_true",
                      help="write the current findings to --baseline "
                           "instead of failing on them")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    lint.add_argument("--explain", default=None, metavar="RPR###",
                      help="print one rule's catalogue entry and its "
                           "docs/static_analysis.md section, then exit")

    perfbench = sub.add_parser(
        "perfbench",
        help="engine performance microbenchmarks (writes BENCH_sim.json)",
    )
    perfbench.add_argument("--quick", action="store_true",
                           help="smaller grids/rep counts (the CI perf job)")
    perfbench.add_argument("--profile", action="store_true",
                           help="cProfile the engine benchmark and report "
                                "the top functions by cumulative time")
    perfbench.add_argument("--output", default=None, metavar="PATH",
                           help="report destination (default: BENCH_sim.json; "
                                "'-' prints JSON to stdout only)")
    perfbench.add_argument("--baseline", default=None, metavar="PATH",
                           help="perf baseline for before/after speedups and "
                                "--check (default: benchmarks/perf/"
                                "baseline.json)")
    perfbench.add_argument("--check", action="store_true",
                           help="exit 4 if engine events/sec regressed >30%% "
                                "against the baseline's current block")
    perfbench.add_argument("--telemetry", default=None, metavar="PATH",
                           help="append snapshot_cache/profile telemetry "
                                "to PATH")
    return parser


def _executor_from_args(args: argparse.Namespace) -> SweepExecutor:
    """Build the sweep executor a grid command asked for."""
    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    cache = None
    cache_dir = args.cache_dir or os.environ.get("REPRO_CACHE_DIR")
    if cache_dir and not args.no_cache:
        cache = ResultCache(cache_dir)
    telemetry = TelemetryWriter(args.telemetry) if args.telemetry else None
    fault_plan = (
        FaultPlan.parse(args.inject_faults) if args.inject_faults else None
    )
    return SweepExecutor(
        jobs=args.jobs,
        cache=cache,
        telemetry=telemetry,
        timeout=args.timeout,
        retries=args.retries,
        fault_plan=fault_plan,
    )


def _report_failures(failures) -> int:
    """Print degraded points to stderr; exit code 3 if any."""
    if not failures:
        return 0
    for failure in failures:
        print(
            f"warning: point {failure.label or failure.key[:12]} failed "
            f"after {failure.attempts} attempts: {failure.reason}",
            file=sys.stderr,
        )
    print(
        f"warning: {len(failures)} point(s) degraded; healthy rows above "
        "are unaffected",
        file=sys.stderr,
    )
    return 3


def _workload_spec_from_args(args: argparse.Namespace) -> Mapping[str, Any]:
    """Declarative workload spec for the executor-backed commands."""
    if args.spec:
        try:
            document = json.loads(open(args.spec).read())
        except OSError as exc:
            raise ReproError(f"cannot read workload spec {args.spec}: {exc}")
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"workload spec {args.spec} is not valid JSON: {exc}"
            )
        return {"kind": "spec", "document": document}
    if not args.workload:
        raise ReproError("give a workload name or --spec PATH")
    return {"kind": "registry", "name": args.workload}


def _load_program(args: argparse.Namespace) -> StreamProgram:
    if args.spec:
        return load_workload_spec(args.spec)
    if not args.workload:
        raise ReproError("give a workload name or --spec PATH")
    return build_workload(args.workload)


def _machine(args: argparse.Namespace):
    return i7_860(channels=args.channels, smt=args.smt)


def _make_policy(name: str, program: StreamProgram, machine, window_pairs: int):
    """Build the policy ``--policy`` names, via the registry.

    Two spellings bypass the registry: ``offline`` (a meta-procedure,
    not a registered policy) and the legacy ``static:K`` shorthand for
    ``static:mtl=K``.
    """
    if name == "offline":
        return offline_best_static_factory(program, machine)()
    if name.startswith("static:") and "=" not in name:
        tail = name.split(":", 1)[1]
        try:
            name = f"static:mtl={int(tail)}"
        except ValueError:
            raise ReproError(
                f"unknown policy {name!r}; use static:K or static:mtl=K"
            ) from None
    kind, params = parse_policy_arg(name)
    # --window-pairs feeds every policy that monitors in windows,
    # unless the arg already pins W explicitly.
    if (
        policy_entry(kind).param("window_pairs") is not None
        and "window_pairs" not in params
    ):
        params["window_pairs"] = window_pairs
    return build_policy(kind, machine.context_count, params)


def _cmd_list_workloads() -> int:
    rows = [
        [name, str(build_workload(name).total_pairs)]
        for name in workload_names()
    ]
    print(render_table(["workload", "task pairs"], rows))
    return 0


def _cmd_list_policies() -> int:
    rows = []
    for entry in policy_catalogue():
        params = ", ".join(
            f"{p['name']}={p['default']}" for p in entry["params"]
        )
        rows.append([entry["name"], params or "-", entry["summary"]])
    print(render_table(["policy", "parameters", "summary"], rows))
    return 0


def _policy_specs_from_args(args: argparse.Namespace) -> Mapping[str, Any]:
    """Turn ``--policies NAME[:k=v,...]`` into name-keyed specs."""
    specs = {}
    for text in args.policies:
        kind, params = parse_policy_arg(text)
        name = text if text != kind else kind
        if name in specs:
            raise ReproError(f"policy {name!r} given twice in --policies")
        specs[name] = {"kind": kind, **params}
    return specs


def _cmd_ratio(args: argparse.Namespace) -> int:
    program = _load_program(args)
    ratio = measure_ratio(program, machine=_machine(args))
    print(f"{program.name}: T_m1/T_c = {format_percent(ratio)}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    program = _load_program(args)
    machine = _machine(args)
    policy = _make_policy(args.policy, program, machine, args.window_pairs)
    simulator = Simulator(machine)
    result = simulator.run(program, policy)
    baseline = simulator.run(
        program, conventional_policy(machine.context_count)
    )
    print(f"workload: {program.name} ({program.total_pairs} pairs)")
    print(f"machine:  {machine.name}")
    print(f"policy:   {policy.name}")
    print(f"makespan: {format_time(result.makespan)}")
    print(
        "speedup vs conventional: "
        f"{format_speedup(baseline.makespan / result.makespan)}"
    )
    print(f"dominant MTL: {result.dominant_mtl()}")
    if args.gantt:
        print()
        print(render_gantt(result))
    return 0


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.runtime.characterize import characterize

    program = _load_program(args)
    print(characterize(program, machine=_machine(args)).render())
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    if args.all_policies and args.policies:
        raise ReproError("give --policies or --all-policies, not both")
    if args.all_policies:
        policies = all_policy_specs()
    elif args.policies:
        policies = _policy_specs_from_args(args)
    else:
        policies = paper_policy_specs()
    result = compare_policies_grid(
        _workload_spec_from_args(args),
        policies,
        machine={"preset": "i7_860", "channels": args.channels, "smt": args.smt},
        executor=_executor_from_args(args),
    )
    print(format_comparison(result))
    return _report_failures(result.failures)


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.step <= 0 or args.stop < args.start:
        raise ReproError("sweep needs step > 0 and stop >= start")
    from repro.memory.contention import nehalem_ddr3_contention

    ratios = []
    value = args.start
    while value <= args.stop + 1e-9:
        ratios.append(round(value, 6))
        value += args.step
    predictions = predict_speedup_curve(ratios, nehalem_ddr3_contention())
    points = [
        SweepPoint(
            workload={"kind": "synthetic", "ratio": ratio, "pairs": 48},
            policy={"kind": "offline"},
            label=f"sweep/r={ratio:.2f}",
        )
        for ratio in ratios
    ]
    outcomes = _executor_from_args(args).run(points)
    rows = []
    for prediction, outcome in zip(predictions, outcomes):
        if isinstance(outcome, PointFailure):
            rows.append(
                [
                    f"{prediction.ratio:.2f}",
                    "failed",
                    "-",
                    format_speedup(prediction.speedup),
                    str(prediction.best_mtl),
                ]
            )
            continue
        assert outcome.per_mtl_makespan is not None
        rows.append(
            [
                f"{prediction.ratio:.2f}",
                format_speedup(outcome.per_mtl_makespan[4] / outcome.makespan),
                str(outcome.selected_mtl),
                format_speedup(prediction.speedup),
                str(prediction.best_mtl),
            ]
        )
    print(
        render_table(
            ["T_m1/T_c", "measured", "S-MTL", "analytical", "model MTL"], rows
        )
    )
    return _report_failures(
        [o for o in outcomes if isinstance(o, PointFailure)]
    )


def _cmd_suite(args: argparse.Namespace) -> int:
    from repro.runtime.suite import run_suite_grid
    from repro.workloads import realistic_workloads

    names = args.workloads if args.workloads else realistic_workloads()
    workloads = {
        name: {"kind": "registry", "name": name} for name in names
    }
    machines = [
        {"preset": "i7_860", "channels": 1},
        {"preset": "i7_860", "channels": 2},
    ]
    if args.policies:
        policies = _policy_specs_from_args(args)
    else:
        policies = {
            "dynamic": {"kind": "dynamic"},
            "static-1": {"kind": "static", "mtl": 1},
            "static-2": {"kind": "static", "mtl": 2},
        }
    result = run_suite_grid(
        workloads, machines, policies, executor=_executor_from_args(args)
    )
    print(result.to_csv(), end="")
    return _report_failures(result.failures)


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import (
        LintEngine,
        build_rules,
        explain_rule,
        load_baseline,
        render_json,
        render_sarif,
        render_text,
        rule_catalogue,
    )
    from repro.lint.reporters import write_baseline

    if args.list_rules:
        for row in rule_catalogue():
            autofix = " autofix" if row["autofixable"] else ""
            print(
                f"{row['id']}  [{row['severity']}{autofix}] "
                f"({row['family']}) {row['title']}"
            )
        return 0
    if args.explain:
        print(explain_rule(args.explain), end="")
        return 0
    paths = args.paths or ["src", "tests"]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        raise ReproError(f"lint path(s) do not exist: {', '.join(missing)}")
    if args.write_baseline and not args.baseline:
        raise ReproError("--write-baseline needs --baseline PATH")
    if args.jobs < 1:
        raise ReproError(f"--jobs must be >= 1, got {args.jobs}")
    rules = build_rules(only=args.rules)
    enabled = set(args.rules) if args.rules else None
    baseline = set()
    if args.baseline and not args.write_baseline:
        baseline = load_baseline(args.baseline)
    engine = LintEngine(
        rules=rules,
        enabled=enabled,
        baseline=baseline,
        jobs=args.jobs,
        want_graph=bool(args.graph_output),
        want_units=bool(args.units_output),
        cache_dir=Path(args.cache_dir) if args.cache_dir else None,
    )
    report = engine.run([Path(p) for p in paths])
    if args.graph_output and engine.graph is not None:
        with open(args.graph_output, "w") as handle:
            handle.write(engine.graph.to_json())
    if args.units_output and engine.units is not None:
        with open(args.units_output, "w") as handle:
            handle.write(engine.units.to_json())
    if args.write_baseline:
        write_baseline(report, args.baseline)
        print(
            f"wrote {len(report.findings)} fingerprint(s) to {args.baseline}"
        )
        return 0
    if args.output == "-":
        # '-' means: the JSON document *is* the stdout stream (piped
        # into jq and friends), regardless of --format.
        print(render_json(report), end="")
        return 1 if report.findings else 0
    renderers = {"json": render_json, "sarif": render_sarif}
    rendered = renderers.get(args.fmt, render_text)(report)
    print(rendered, end="" if rendered.endswith("\n") else "\n")
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(rendered if rendered.endswith("\n") else rendered + "\n")
    return 1 if report.findings else 0


def _cmd_perfbench(args: argparse.Namespace) -> int:
    from repro.runtime.perfbench import (
        DEFAULT_BASELINE_PATH,
        DEFAULT_OUTPUT_PATH,
        check_against_baseline,
        format_report,
        run_perfbench,
    )

    telemetry = TelemetryWriter(args.telemetry) if args.telemetry else None
    baseline_path = args.baseline or DEFAULT_BASELINE_PATH
    report = run_perfbench(
        quick=args.quick,
        profile=args.profile,
        baseline_path=baseline_path,
        telemetry=telemetry,
    )
    output = args.output or DEFAULT_OUTPUT_PATH
    if output == "-":
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        with open(output, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(format_report(report))
        print(f"\nreport written to {output}")
    if args.check:
        failures = check_against_baseline(report, report.get("baseline"))
        for failure in failures:
            print(f"perf check failed: {failure}", file=sys.stderr)
        if failures:
            return 4
        print("perf check passed")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        if args.command == "list-workloads":
            return _cmd_list_workloads()
        if args.command == "list-policies":
            return _cmd_list_policies()
        if args.command == "ratio":
            return _cmd_ratio(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compare":
            return _cmd_compare(args)
        if args.command == "characterize":
            return _cmd_characterize(args)
        if args.command == "sweep":
            return _cmd_sweep(args)
        if args.command == "suite":
            return _cmd_suite(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "perfbench":
            return _cmd_perfbench(args)
        parser.error(f"unknown command {args.command!r}")
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that closed early; the Unix
        # convention is to exit quietly.
        try:
            sys.stdout.close()
        except OSError:
            pass
        return 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
