"""``repro lint --explain RPR###``: rule metadata plus its doc section.

The catalogue entry (id, title, family, severity, autofixability, and
the family's one-line contract) comes from the live registry; the
prose comes from ``docs/static_analysis.md``, located relative to this
file so the command works from any working directory.  Doc sections
are matched by their ``###`` headings, which name the rule ranges
they cover (``### Determinism (RPR101–RPR104)``) — the docs-parity
test keeps those headings honest, so ``--explain`` can never show the
wrong section for an id that exists.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.lint.rules import RULE_FAMILIES, all_rule_ids, rule_catalogue

__all__ = ["doc_section_for", "explain_rule"]

#: ``docs/static_analysis.md`` relative to the repository root (this
#: file is ``src/repro/lint/explain.py``).
_DOCS_PATH = Path(__file__).resolve().parents[3] / "docs" / "static_analysis.md"

#: A single rule id, or an en-dash/hyphen range, inside a heading.
_RANGE_RE = re.compile(r"RPR(\d{3})\s*[–—-]\s*RPR(\d{3})")
_SINGLE_RE = re.compile(r"RPR(\d{3})")


def _heading_covers(heading: str, number: int) -> bool:
    """Does a ``###`` heading's RPR range (or single id) cover ``number``?"""
    spans: List[Tuple[int, int]] = [
        (int(m.group(1)), int(m.group(2))) for m in _RANGE_RE.finditer(heading)
    ]
    # Mask ranges before collecting singles so a range's endpoints are
    # not double-counted as standalone ids.
    masked = _RANGE_RE.sub("", heading)
    spans.extend(
        (int(m.group(1)), int(m.group(1))) for m in _SINGLE_RE.finditer(masked)
    )
    return any(lo <= number <= hi for lo, hi in spans)


def doc_section_for(rule_id: str, docs_text: Optional[str] = None) -> str:
    """The ``docs/static_analysis.md`` section covering ``rule_id``.

    Returns the heading plus its body, up to the next heading of the
    same or higher level; ``""`` when no section names the id (the
    catalogue entry still prints, so --explain degrades, not fails).
    """
    if docs_text is None:
        try:
            docs_text = _DOCS_PATH.read_text(encoding="utf-8")
        except OSError:
            return ""
    number = int(rule_id[3:])
    lines = docs_text.splitlines()
    for index, line in enumerate(lines):
        if not line.startswith("### "):
            continue
        if not _heading_covers(line, number):
            continue
        body: List[str] = [line]
        for follow in lines[index + 1:]:
            if follow.startswith("### ") or follow.startswith("## "):
                break
            body.append(follow)
        return "\n".join(body).rstrip() + "\n"
    return ""


def explain_rule(rule_id: str) -> str:
    """Render the full ``--explain`` text for one rule id.

    Raises :class:`~repro.errors.ConfigurationError` for unknown ids,
    listing the known ones — same contract as ``--rule``.
    """
    entries: Dict[str, Dict[str, object]] = {
        str(entry["id"]): entry for entry in rule_catalogue()
    }
    entry = entries.get(rule_id)
    if entry is None:
        raise ConfigurationError(
            f"unknown lint rule id {rule_id}; known: "
            + ", ".join(all_rule_ids())
        )
    family = str(entry["family"])
    lines = [
        f"{rule_id}: {entry['title']}",
        f"family: {family} — {RULE_FAMILIES.get(family, '')}",
        f"severity: {entry['severity']}",
        f"autofixable: {'yes' if entry['autofixable'] else 'no'}",
    ]
    section = doc_section_for(rule_id)
    if section:
        lines.extend(["", section.rstrip()])
    else:
        lines.extend(["", "(no doc section found in docs/static_analysis.md)"])
    return "\n".join(lines) + "\n"
