"""Content-hash incremental cache for the per-file lint pass.

``repro lint --cache-dir DIR`` persists each file's
:class:`~repro.lint.engine.FileScan` keyed by a SHA-256 of the file's
*bytes* plus a run token (cache-format version, the per-file rule ids,
the known suppression ids, and whether summaries are extracted).  A
warm run therefore skips parsing and per-file rules for every
unchanged file and is byte-identical to a cold run: the cache stores
the per-file pass's exact product, and everything downstream (corpus
rules, graph, effects, baseline) runs fresh either way.

Keying by content rather than mtime makes the cache immune to
checkout churn (``git checkout`` rewrites timestamps, not bytes), and
folding the rule ids and :data:`LINT_CACHE_VERSION` into the key means
a rule-set change or an engine upgrade invalidates every entry
without needing a manifest or a cleanup pass.

Entries are pickles of frozen dataclasses this package itself
produced; the directory is engine-private (it is in
``EXCLUDED_DIR_NAMES`` spirit — point ``--cache-dir`` outside the
linted tree or at ``.repro-cache``, which the walker skips).  A stale
or corrupt entry deserializing to garbage is treated as a miss, never
an error: the cache is an accelerator, not a source of truth.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from pathlib import Path
from typing import Iterable, Optional, Set

from repro.lint.engine import FileScan

__all__ = ["LINT_CACHE_VERSION", "ScanCache", "cache_token"]

#: Bump whenever the per-file pass's behaviour changes in a way the
#: rule-id list cannot express (new extraction fields, changed
#: suppression semantics, FileScan shape).  Bumping orphans every old
#: entry, which is exactly the point.
LINT_CACHE_VERSION = 2  # v2: ModuleSummary grew per-function unit facts


def cache_token(
    rules: Iterable["Rule"],  # noqa: F821 — repro.lint.rules.base
    known_ids: Set[str],
    need_summary: bool,
) -> str:
    """Run token folded into every cache key.

    Everything the per-file pass's output depends on, beyond the file
    bytes themselves: the cache-format version, which per-file rules
    run, which ids suppressions may name, and whether a
    :class:`~repro.lint.graph.summary.ModuleSummary` is extracted.
    """
    parts = [
        f"v{LINT_CACHE_VERSION}",
        ",".join(sorted(rule.id for rule in rules)),
        ",".join(sorted(known_ids)),
        f"summary={int(need_summary)}",
    ]
    return "|".join(parts)


class ScanCache:
    """One ``--cache-dir`` directory of pickled :class:`FileScan` entries."""

    def __init__(self, directory: Path, token: str) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self._token = token
        self.hits = 0
        self.misses = 0

    def key(self, display_path: str, content: bytes) -> str:
        digest = hashlib.sha256()
        digest.update(self._token.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(display_path.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(content)
        return digest.hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / f"{key}.scan"

    def load(self, key: str) -> Optional[FileScan]:
        """Return the cached scan for ``key``, or ``None`` on any miss.

        Unreadable or undeserializable entries count as misses — a
        corrupt cache must never be able to fail (or skew) a run.
        """
        try:
            payload = self._entry_path(key).read_bytes()
            scan = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError, ValueError):
            self.misses += 1
            return None
        if not isinstance(scan, FileScan):
            self.misses += 1
            return None
        self.hits += 1
        return scan

    def store(self, key: str, scan: FileScan) -> None:
        """Persist ``scan`` atomically (tmp file + rename).

        Concurrent runs sharing a cache directory therefore never
        observe a half-written entry; best-effort — an unwritable
        cache degrades to cold scans, it does not fail the run.
        """
        target = self._entry_path(key)
        try:
            fd, tmp_name = tempfile.mkstemp(
                dir=str(self.directory), suffix=".tmp"
            )
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(scan, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, target)
        except OSError:
            pass
