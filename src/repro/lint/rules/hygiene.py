"""Executor-hygiene rules (RPR401–RPR403).

Motivated by real incidents in this repo's history: a broad ``except``
around pool teardown can swallow ``BrokenProcessPool`` and
``TimeoutError`` and turn a crashed sweep into a silent hang; a
mutable default argument shared across calls breaks the executor's
"every point is independent" contract; ``sum()`` over an unordered
``set`` of floats produces different totals under different insertion
orders because float addition is non-associative — the exact property
the equilibrium memo keys by *preserving* order.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.engine import FileContext, Finding
from repro.lint.rules.base import Rule, call_name, dotted_name

__all__ = ["BroadExceptRule", "MutableDefaultRule", "SumOverSetRule"]

_BROAD_EXCEPTIONS = frozenset({"Exception", "BaseException"})
_MUTABLE_CONSTRUCTORS = frozenset(
    {"set", "list", "dict", "defaultdict", "OrderedDict", "Counter", "deque"}
)


def _names_in_handler(node: ast.ExceptHandler) -> Iterator[str]:
    handler_type = node.type
    if handler_type is None:
        yield "<bare>"
        return
    elements = (
        handler_type.elts if isinstance(handler_type, ast.Tuple) else [handler_type]
    )
    for element in elements:
        name = dotted_name(element)
        if name is not None:
            yield name.rsplit(".", 1)[-1]


class BroadExceptRule(Rule):
    """RPR401: bare or blanket ``except`` clauses.

    ``except Exception`` in executor code swallows
    ``concurrent.futures.BrokenProcessPool`` and ``TimeoutError`` —
    the two signals the retry/respawn machinery *must* see.  Catch the
    concrete exceptions, re-raise what you cannot handle, or annotate
    a deliberate firewall with ``# repro: lint-ok RPR401 -- reason``.
    """

    id = "RPR401"
    title = "bare or blanket except clause"
    family = "executor-hygiene"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            for name in _names_in_handler(node):
                if name == "<bare>":
                    yield self.finding(
                        ctx,
                        node,
                        "bare 'except:' catches SystemExit/KeyboardInterrupt "
                        "and every pool-failure signal; name the exceptions",
                    )
                elif name in _BROAD_EXCEPTIONS:
                    yield self.finding(
                        ctx,
                        node,
                        f"'except {name}' swallows BrokenProcessPool/"
                        "TimeoutError along with real bugs; catch the "
                        "concrete exceptions or annotate why the blanket "
                        "is safe",
                    )


class MutableDefaultRule(Rule):
    """RPR402: mutable default argument values.

    A default ``[]``/``{}``/``set()`` is evaluated once at definition
    time and shared by every call — state leaking between sweep points
    that the content-addressed cache can never see.
    """

    id = "RPR402"
    title = "mutable default argument"
    family = "executor-hygiene"
    severity = "error"
    autofixable = True

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx,
                        default,
                        f"mutable default in {node.name}() is shared across "
                        "calls; default to None and build inside the body",
                    )

    @staticmethod
    def _is_mutable(node: ast.expr) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            return call_name(node) in _MUTABLE_CONSTRUCTORS
        return False


class SumOverSetRule(Rule):
    """RPR403: ``sum()`` over a set, where iteration order is unspecified.

    Float addition is non-associative; summing a ``set`` (whose
    iteration order depends on hash seeding and insertion history)
    yields different bits on different runs.  Sum a ``sorted(...)``
    sequence, or keep an ordered container.
    """

    id = "RPR403"
    title = "sum() over an unordered set"
    family = "executor-hygiene"
    severity = "error"

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                continue
            argument = node.args[0]
            unordered = isinstance(argument, (ast.Set, ast.SetComp)) or (
                isinstance(argument, ast.Call)
                and call_name(argument) in ("set", "frozenset")
            )
            if unordered:
                yield self.finding(
                    ctx,
                    node,
                    "sum() over a set: float addition is non-associative "
                    "and set iteration order is unspecified — sum a sorted "
                    "sequence to keep runs bit-identical",
                )
