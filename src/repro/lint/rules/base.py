"""Rule plugin API and shared AST helpers.

A rule is a class with class-level metadata (stable ``id``, human
``title``, ``severity``, ``autofixable``, an optional ``layers``
scope) and two hooks:

* :meth:`Rule.check` — called once per file with a
  :class:`~repro.lint.engine.FileContext`; yields findings;
* :meth:`Rule.finalize` — called once after every file, for rules
  whose invariant spans the corpus (e.g. the orphan-schema check).

Corpus-spanning rules set ``corpus_level = True``: their ``check`` is
never shipped to ``--jobs`` worker processes (worker rule instances
are discarded, so state accumulated there would be lost).  Instead
the engine feeds them every file's picklable
:class:`~repro.lint.graph.summary.ModuleSummary` through
:meth:`Rule.consume_summary`, in deterministic file order, before
``finalize``.  Rules that additionally set ``needs_graph = True``
receive the assembled
:class:`~repro.lint.graph.builder.ProjectGraph` through
:meth:`Rule.consume_graph` (the graph is built once per run and
shared).

Rules that resolve names (``time.time``, ``np.random.rand``) share
:class:`ImportMap`, which canonicalises call targets through the
file's imports, so ``from time import time as now`` cannot dodge the
wall-clock rule while a local variable that merely *shadows* ``time``
does not false-positive.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional

from repro.lint.engine import FileContext, Finding

__all__ = ["Rule", "ImportMap", "dotted_name", "call_name", "finding_at"]


class Rule:
    """Base class for lint rules; subclasses set the class attributes."""

    id: str = "RPR000"
    title: str = ""
    family: str = ""
    severity: str = "error"
    autofixable: bool = False
    #: Restrict to these architectural layers (None = every file).
    layers: Optional[frozenset] = None
    #: True: the rule accumulates cross-file state.  Its ``check`` never
    #: runs (in workers or otherwise); it sees the corpus through
    #: :meth:`consume_summary` and reports from :meth:`finalize`.
    corpus_level: bool = False
    #: True: the rule wants the project call graph; implies the engine
    #: builds one and calls :meth:`consume_graph` before ``finalize``.
    needs_graph: bool = False
    #: True: the rule wants transitive effect signatures; the engine
    #: then runs the SCC fixpoint once per run and calls
    #: :meth:`consume_effects` (after :meth:`consume_graph`, before
    #: ``finalize``).  Set ``needs_graph`` too — the analysis is built
    #: on the project graph.
    needs_effects: bool = False
    #: True: the rule wants interprocedural unit signatures; the engine
    #: then runs the unit fixpoint once per run and calls
    #: :meth:`consume_units` (after :meth:`consume_effects`, before
    #: ``finalize``).  Set ``needs_graph`` too — the analysis resolves
    #: calls through the project graph.
    needs_units: bool = False

    def applies_to(self, ctx: FileContext) -> bool:
        return self.layers is None or ctx.layer in self.layers

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        """Yield findings for one file."""
        return iter(())

    def consume_summary(self, summary: "ModuleSummary") -> None:  # noqa: F821
        """Observe one file's summary (corpus-level rules only)."""

    def consume_graph(self, graph: "ProjectGraph") -> None:  # noqa: F821
        """Observe the assembled project graph (``needs_graph`` rules)."""

    def consume_effects(self, analysis: "EffectAnalysis") -> None:  # noqa: F821
        """Observe the effect-signature fixpoint (``needs_effects`` rules)."""

    def consume_units(self, analysis: "UnitAnalysis") -> None:  # noqa: F821
        """Observe the unit-signature fixpoint (``needs_units`` rules)."""

    def finalize(self) -> Iterator[Finding]:
        """Yield corpus-level findings after every file was checked."""
        return iter(())

    # ------------------------------------------------------------------

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
    ) -> Finding:
        return finding_at(
            rule=self.id,
            severity=self.severity,
            ctx=ctx,
            line=getattr(node, "lineno", 0),
            col=getattr(node, "col_offset", -1) + 1,
            message=message,
        )


def finding_at(
    rule: str,
    severity: str,
    ctx: FileContext,
    line: int,
    col: int,
    message: str,
) -> Finding:
    return Finding(
        rule=rule,
        severity=severity,
        path=ctx.display_path,
        line=line,
        col=col,
        message=message,
        source_line=ctx.line_text(line),
    )


class ImportMap:
    """Maps local names to canonical dotted module paths.

    ``import numpy as np`` binds ``np -> numpy``; ``from time import
    time as now`` binds ``now -> time.time``; ``from datetime import
    datetime`` binds ``datetime -> datetime.datetime``.  Names never
    bound by an import resolve to ``None``, so locals that shadow a
    module name do not false-positive.
    """

    def __init__(self, tree: ast.Module) -> None:
        self._bindings: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    canonical = alias.name if alias.asname else local
                    self._bindings[local] = canonical
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports stay repo-internal
                for alias in node.names:
                    local = alias.asname or alias.name
                    self._bindings[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted path of a Name/Attribute chain, if imported."""
        chain: List[str] = []
        current = node
        while isinstance(current, ast.Attribute):
            chain.append(current.attr)
            current = current.value
        if not isinstance(current, ast.Name):
            return None
        base = self._bindings.get(current.id)
        if base is None:
            return None
        chain.append(base)
        return ".".join(reversed(chain))


def dotted_name(node: ast.AST) -> Optional[str]:
    """Literal dotted text of a Name/Attribute chain (no import logic)."""
    chain: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        chain.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    chain.append(current.id)
    return ".".join(reversed(chain))


def call_name(node: ast.Call) -> Optional[str]:
    """Bare callee name of a call (``f(...)`` or ``pkg.f(...)`` -> last part)."""
    name = dotted_name(node.func)
    if name is None:
        return None
    return name.rsplit(".", 1)[-1]
